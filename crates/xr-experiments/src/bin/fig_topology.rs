//! Topology figure: edge-to-edge state-migration cost against the
//! edge-site density of a square tiling, under eager and lazy re-offload
//! policies, replicated with 95 % confidence intervals through the shared
//! campaign engine.

use xr_experiments::topology_experiments::{topology_sweep, FIG_TOPOLOGY_HEADER};
use xr_experiments::{output, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::from_args();
    let points = topology_sweep(&ctx).expect("topology sweep failed");
    let cells: Vec<Vec<String>> = points.iter().map(|p| p.cells()).collect();
    output::print_experiment(
        "Topology — migration cost vs edge-site density",
        &FIG_TOPOLOGY_HEADER,
        &cells,
        "fig_topology.csv",
    );
    let densest = points.last().expect("densities swept");
    println!(
        "{} density × policy points evaluated with {} worker(s); densest tiling visits {} sites at {:.4} ms/frame migration cost",
        points.len(),
        ctx.runner().workers(),
        densest.row.sites_visited,
        densest.row.gt_migration_ms_mean
    );
}
