//! The regression-fit report: in-sample and held-out R² of the four
//! regression sub-models, the counterpart of the paper's reported
//! R² = 0.87 (Eq. 3), 0.79 (Eq. 10), 0.844 (Eq. 12) and 0.863 (Eq. 21).

use crate::context::ExperimentContext;
use serde::{Deserialize, Serialize};
use xr_devices::DeviceCatalog;
use xr_testbed::{CalibratedModels, MeasurementCampaign};
use xr_types::Result;

/// In-sample and held-out R² for each regression sub-model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegressionReport {
    /// Training-set R² (compute resource, power, encoding, complexity).
    pub train: [f64; 4],
    /// Held-out-device R² in the same order.
    pub test: [f64; 4],
    /// Number of training records.
    pub train_records: usize,
    /// Number of test records.
    pub test_records: usize,
}

impl RegressionReport {
    /// Fits the sub-models on a training campaign over the training devices
    /// and scores them on a test campaign over the held-out devices,
    /// reproducing the paper's methodology.
    ///
    /// # Errors
    ///
    /// Propagates regression errors.
    pub fn compute(ctx: &ExperimentContext, records: usize) -> Result<Self> {
        let laws = ctx.testbed().laws();
        let train_campaign =
            MeasurementCampaign::paper_scale(ctx.seed()).with_target_records(records);
        let test_campaign = MeasurementCampaign::paper_scale_test(ctx.seed() + 1)
            .with_target_records(records * 36_083 / 119_465 + 100);
        let train = train_campaign.collect(laws, &DeviceCatalog::training_devices());
        let test = test_campaign.collect(laws, &DeviceCatalog::validation_devices());
        let models = CalibratedModels::fit(&train)?;
        let in_sample = models.training_r_squared();
        let held_out = models.evaluate(&test);
        Ok(Self {
            train: [
                in_sample.resource_r_squared,
                in_sample.power_r_squared,
                in_sample.encoding_r_squared,
                in_sample.complexity_r_squared,
            ],
            test: [
                held_out.resource_r_squared,
                held_out.power_r_squared,
                held_out.encoding_r_squared,
                held_out.complexity_r_squared,
            ],
            train_records: train.len(),
            test_records: test.len(),
        })
    }

    /// Console/CSV rows comparing against the paper's published R² values.
    #[must_use]
    pub fn rows(&self) -> Vec<Vec<String>> {
        let names = [
            "compute resource (Eq. 3)",
            "mean power (Eq. 21)",
            "encoding latency (Eq. 10)",
            "CNN complexity (Eq. 12)",
        ];
        let published = [0.87, 0.863, 0.79, 0.844];
        names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                vec![
                    (*name).to_string(),
                    format!("{:.3}", self.train[i]),
                    format!("{:.3}", self.test[i]),
                    format!("{:.3}", published[i]),
                ]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_report_shows_strong_fits() {
        let ctx = ExperimentContext::quick(51).unwrap();
        let report = RegressionReport::compute(&ctx, 4_000).unwrap();
        for r2 in report.train {
            assert!(r2 > 0.8, "train R² {r2}");
        }
        for r2 in report.test {
            assert!(r2 > 0.7, "test R² {r2}");
        }
        assert!(report.train_records > 3_000);
        assert!(report.test_records > 1_000);
        assert_eq!(report.rows().len(), 4);
    }
}
