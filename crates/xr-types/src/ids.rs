//! Opaque identifiers for frames, devices, sensors, and edge servers.
//!
//! The testbed simulator and the analytical models exchange these identifiers
//! instead of raw integers so that, e.g., an edge-server index can never be
//! used to index the external-sensor set.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u64);

        impl $name {
            /// Creates an identifier from a raw index.
            #[must_use]
            pub const fn new(index: u64) -> Self {
                Self(index)
            }

            /// Returns the raw index.
            #[must_use]
            pub const fn index(self) -> u64 {
                self.0
            }

            /// Returns the identifier following this one.
            #[must_use]
            pub const fn next(self) -> Self {
                Self(self.0 + 1)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(index: u64) -> Self {
                Self(index)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifies a generated frame `q ∈ {1, …, Q_n}`.
    FrameId,
    "frame-"
);
id_type!(
    /// Identifies an XR device (a row of Table I, or an additional simulated
    /// device).
    DeviceId,
    "device-"
);
id_type!(
    /// Identifies an external sensor or cooperating device `m ∈ {0, …, M}`.
    SensorId,
    "sensor-"
);
id_type!(
    /// Identifies an edge server `e ∈ E` that can host remote inference.
    EdgeServerId,
    "edge-"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        let a = FrameId::new(1);
        let b = a.next();
        assert!(b > a);
        assert_eq!(b.index(), 2);
        assert_eq!(format!("{a}"), "frame-1");
        assert_eq!(format!("{}", SensorId::new(3)), "sensor-3");
        assert_eq!(format!("{}", EdgeServerId::new(0)), "edge-0");
        assert_eq!(format!("{}", DeviceId::new(7)), "device-7");
    }

    #[test]
    fn ids_round_trip_through_u64() {
        let id = DeviceId::from(42u64);
        assert_eq!(u64::from(id), 42);
    }

    #[test]
    fn ids_usable_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(SensorId::new(1), "lidar");
        m.insert(SensorId::new(2), "rsu");
        assert_eq!(m[&SensorId::new(1)], "lidar");
        assert_eq!(m.len(), 2);
    }
}
