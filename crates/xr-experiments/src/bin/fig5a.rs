//! Fig. 5(a): normalized latency accuracy of Proposed vs FACT vs LEAF.

use xr_experiments::comparison::{comparison_sweep, Metric};
use xr_experiments::{output, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::from_args();
    let sweep = comparison_sweep(&ctx, Metric::Latency).expect("comparison failed");
    output::print_experiment(
        "Fig. 5(a) — normalized accuracy of end-to-end latency, remote inference (%)",
        &["frame_size", "GT", "Proposed", "FACT", "LEAF"],
        &sweep.rows(),
        "fig5a.csv",
    );
    let (vs_fact, vs_leaf) = sweep.improvement_over_baselines();
    println!(
        "accuracy: proposed {:.2}%, FACT {:.2}%, LEAF {:.2}% — improvement {:.2} pp over FACT (paper: 17.59), {:.2} pp over LEAF (paper: 7.49)",
        sweep.proposed_accuracy(),
        sweep.fact_accuracy(),
        sweep.leaf_accuracy(),
        vs_fact,
        vs_leaf
    );
}
