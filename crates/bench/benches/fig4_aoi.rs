//! Benchmarks regenerating Fig. 4(e)/(f): the AoI/RoI analysis and its
//! event-driven ground truth.

use bench::bench_context;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xr_core::{AoiModel, SensorConfig};
use xr_experiments::aoi_experiments::{aoi_over_time, roi_staircase};
use xr_testbed::AoiGroundTruth;
use xr_types::{Hertz, Meters, Seconds};

fn analytic_aoi(c: &mut Criterion) {
    let model = AoiModel::published();
    let mut group = c.benchmark_group("fig4_aoi/analytic_series");
    for freq in [200.0, 100.0, 66.67] {
        let sensor = SensorConfig::new("bench", Hertz::new(freq), Meters::new(30.0));
        group.bench_with_input(BenchmarkId::from_parameter(freq as u64), &sensor, |b, s| {
            b.iter(|| {
                black_box(
                    model
                        .sensor_series(s, 2_000.0, Seconds::from_millis(5.0), 18)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn ground_truth_aoi(c: &mut Criterion) {
    let sensor = SensorConfig::new("bench", Hertz::new(100.0), Meters::new(30.0));
    c.bench_function("fig4_aoi/ground_truth_series", |b| {
        b.iter(|| {
            black_box(
                AoiGroundTruth::simulate(&sensor, 2_000.0, Seconds::from_millis(5.0), 18, 0.02, 7)
                    .unwrap(),
            )
        })
    });
}

fn full_figures(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("fig4_aoi/full_figures");
    group.sample_size(20);
    group.bench_function("fig4e", |b| {
        b.iter(|| black_box(aoi_over_time(&ctx).unwrap()))
    });
    group.bench_function("fig4f", |b| {
        b.iter(|| black_box(roi_staircase(&ctx).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, analytic_aoi, ground_truth_aoi, full_figures);
criterion_main!(benches);
