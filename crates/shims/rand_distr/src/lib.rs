//! Offline stand-in for the `rand_distr` 0.4 crate.
//!
//! Provides the [`Distribution`] trait plus the [`Exp`] and [`Normal`]
//! distributions used by the queueing and testbed simulators, built on the
//! vectorizable polynomial transcendentals in [`math`] rather than the
//! platform libm, so every draw is reproducible bit for bit across hosts,
//! engines, and SIMD paths.
//!
//! Exponential sampling uses inversion. Normal sampling uses Box–Muller
//! **with the second variate kept**: one raw word pair `(u1, u2)` yields
//! the full rotation `(r·cos, r·sin)` — see
//! [`standard_normal_pair_from_words`]. The stateless [`Normal::sample`]
//! returns the cosine variate (two words per draw, like the real crate's
//! API); the stateful [`StandardNormalPairs`] cache hands out both halves
//! in turn, so consumers that draw several normals from one stream consume
//! one word pair — and one `ln`/`sqrt`/`sincos` set — per **two**
//! variates. This is the PR-8 sanctioned re-key of the draw scheme: the
//! previous scheme discarded the sine variate and paid a fresh word pair
//! (and a fresh libm `ln`/`cos`) for every draw.

use rand::{FromRng, RngCore};

pub mod math;

/// Types that can produce samples of `T` from a random source.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Exp::new`] for non-positive rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpError;

impl core::fmt::Display for ExpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "rate (lambda) must be positive and finite")
    }
}

impl std::error::Error for ExpError {}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates the distribution; `lambda` must be positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`ExpError`] if `lambda` is not a positive finite number.
    pub fn new(lambda: f64) -> Result<Self, ExpError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ExpError)
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inversion: -ln(1 - U) / lambda, with U in [0, 1); `1 - U` is in
        // (0, 1], inside the ln kernel's domain.
        let u = f64::from_rng(rng);
        -math::ln(1.0 - u) / self.lambda
    }
}

/// Error returned by [`Normal::new`] for invalid standard deviations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl core::fmt::Display for NormalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "standard deviation must be non-negative and finite")
    }
}

impl std::error::Error for NormalError {}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution; `std_dev` must be non-negative and finite.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] if `std_dev` is negative, NaN, or infinite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(NormalError)
        }
    }

    /// Scales a standard variate into this distribution: `mean + σ·z`.
    ///
    /// This is the **single** affine expression every consumer of a cached
    /// pair must apply — the column transforms, the scalar samplers, and
    /// the Monsoon monitor all route through it, so a variate produced by
    /// any path has identical bits.
    #[must_use]
    pub fn from_standard(&self, z: f64) -> f64 {
        self.mean + self.std_dev * z
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // The cosine half of the Box–Muller rotation: identical to the
        // first draw of a fresh `StandardNormalPairs`, so a stage that
        // draws one normal per stream sees the same value either way.
        let (z, _) = standard_normal_pair(rng);
        self.from_standard(z)
    }
}

/// The full Box–Muller rotation from one raw word pair: `u1` (clamped away
/// from zero so `ln` stays finite) and `u2` map to `r = √(−2·ln u1)` and
/// angle `τ·u2`, returning `(r·cos, r·sin)` — two independent standard
/// normal variates for one `ln`/`sqrt`/`sincos` set.
#[must_use]
pub fn standard_normal_pair_from_words(a: u64, b: u64) -> (f64, f64) {
    let u1 = rand::unit_f64_from_word(a).max(f64::MIN_POSITIVE);
    let u2 = rand::unit_f64_from_word(b);
    let r = (-2.0 * math::ln(u1)).sqrt();
    let (sin, cos) = math::sincos(core::f64::consts::TAU * u2);
    (r * cos, r * sin)
}

/// Draws one word pair from `rng` and applies
/// [`standard_normal_pair_from_words`].
pub fn standard_normal_pair<R: RngCore + ?Sized>(rng: &mut R) -> (f64, f64) {
    let a = rng.next_u64();
    let b = rng.next_u64();
    standard_normal_pair_from_words(a, b)
}

/// A stateful standard-normal source that keeps Box–Muller's second
/// variate: odd-numbered draws consume one word pair from the rng and
/// return the cosine half; even-numbered draws consume **nothing** and
/// return the cached sine half.
///
/// The cache is deliberately *not* tied to the rng's word position —
/// interleaved non-normal draws (uniform jitter, exponential sojourns) on
/// the same stream leave it intact. Scope one instance per
/// `(stage, frame)` stream so both frame engines agree on which draw is
/// which half.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormalPairs {
    cached: Option<f64>,
}

impl StandardNormalPairs {
    /// A fresh cache (the first draw will consume a word pair).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The next standard variate: the cached sine half if one is pending,
    /// otherwise the cosine half of a freshly drawn pair.
    pub fn next<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> f64 {
        match self.cached.take() {
            Some(z) => z,
            None => {
                let (z1, z2) = standard_normal_pair(rng);
                self.cached = Some(z2);
                z1
            }
        }
    }
}

/// Column (lane-oriented) forms of the scalar samplers: each `fill_*` maps
/// columns of raw `u64` generator words to the **exact** `f64` draws the
/// matching scalar sampler would produce from those words, one element at a
/// time, in bounds-check-free passes over contiguous slices.
///
/// The batched frame engine pre-fills raw word columns with
/// `xr_types::lanes::LaneStreams` (lane `j` = frame `j`'s own stream) and
/// pushes them through these transforms, so the per-frame loops never touch
/// an RNG object. Bit-identity with the scalar samplers is load-bearing —
/// the batched engine must match the scalar reference bit for bit — and is
/// pinned by the tests below:
///
/// * every transcendental comes from the [`math`] kernels (never the
///   libm), and the portable and AVX2 passes execute the same
///   exact-arithmetic operation DAG per element, so the SIMD paths are
///   bit-identical — not approximately equal — to the portable ones
///   (asserted by tests on AVX2 hosts, and re-asserted portable-only under
///   `XR_FORCE_PORTABLE=1` in CI);
/// * the normal-family transforms come in *pair* form
///   ([`fill_lognormal_pair`](column::fill_lognormal_pair)) writing both
///   Box–Muller halves of each word pair, mirroring
///   [`StandardNormalPairs`]: a batched stage that consumes two variates
///   per frame fills both columns from **one** pair of raw-word columns.
pub mod column {
    use super::{math, Exp, Normal};
    use rand::unit_f64_from_word;

    /// True when this host should take the AVX2 passes: the CPU supports
    /// them and `XR_FORCE_PORTABLE` is unset.
    #[cfg(target_arch = "x86_64")]
    fn use_avx2() -> bool {
        !math::force_portable() && std::arch::is_x86_feature_detected!("avx2")
    }

    /// Writes `out[i] = ` the draw `normal.sample` would produce from the
    /// raw words `(raw_a[i], raw_b[i])` — the cosine Box–Muller half,
    /// bit-identical to [`Normal::sample`](super::Normal).
    ///
    /// # Panics
    ///
    /// Panics if the three slices differ in length.
    pub fn fill_normal(normal: &Normal, raw_a: &[u64], raw_b: &[u64], out: &mut [f64]) {
        assert_eq!(raw_a.len(), out.len(), "raw_a column length mismatch");
        assert_eq!(raw_b.len(), out.len(), "raw_b column length mismatch");
        for ((out, &a), &b) in out.iter_mut().zip(raw_a).zip(raw_b) {
            let (z, _) = super::standard_normal_pair_from_words(a, b);
            *out = normal.from_standard(z);
        }
    }

    /// Writes `out[i] = ` the noise factor `exp(normal draw)` from the raw
    /// words `(raw_a[i], raw_b[i])` — the cosine half only, for stages
    /// that consume a single factor per frame. Bit-identical to the scalar
    /// sequence `math::exp(normal.from_standard(pairs.next(rng)))` on a
    /// fresh [`StandardNormalPairs`](super::StandardNormalPairs).
    ///
    /// # Panics
    ///
    /// Panics if the three slices differ in length.
    pub fn fill_lognormal(normal: &Normal, raw_a: &[u64], raw_b: &[u64], out: &mut [f64]) {
        assert_eq!(raw_a.len(), out.len(), "raw_a column length mismatch");
        assert_eq!(raw_b.len(), out.len(), "raw_b column length mismatch");
        #[cfg(target_arch = "x86_64")]
        if use_avx2() {
            // SAFETY: AVX2 support was just confirmed at runtime.
            #[allow(unsafe_code)]
            unsafe {
                avx2::fill_lognormal_avx2(normal, raw_a, raw_b, out);
            }
            return;
        }
        fill_lognormal_portable(normal, raw_a, raw_b, out);
    }

    /// The portable pass behind [`fill_lognormal`]; also the reference the
    /// AVX2 path is pinned against, and a stable target for benches that
    /// measure the dispatch delta.
    pub fn fill_lognormal_portable(normal: &Normal, raw_a: &[u64], raw_b: &[u64], out: &mut [f64]) {
        for ((out, &a), &b) in out.iter_mut().zip(raw_a).zip(raw_b) {
            let (z, _) = super::standard_normal_pair_from_words(a, b);
            *out = math::exp(normal.from_standard(z));
        }
    }

    /// Writes **both** Box–Muller noise factors of each raw word pair:
    /// `out_cos[i]` is the cosine-half factor (what the first scalar draw
    /// on the stream returns) and `out_sin[i]` the sine-half factor (the
    /// second, cached draw). One `ln`/`sqrt`/`sincos` set per element
    /// feeds two columns — the draw-scheme change that halves the
    /// transcendental budget of two-factor stages.
    ///
    /// # Panics
    ///
    /// Panics if the four slices differ in length.
    pub fn fill_lognormal_pair(
        normal: &Normal,
        raw_a: &[u64],
        raw_b: &[u64],
        out_cos: &mut [f64],
        out_sin: &mut [f64],
    ) {
        assert_eq!(raw_a.len(), out_cos.len(), "raw_a column length mismatch");
        assert_eq!(raw_b.len(), out_cos.len(), "raw_b column length mismatch");
        assert_eq!(
            out_sin.len(),
            out_cos.len(),
            "out_sin column length mismatch"
        );
        #[cfg(target_arch = "x86_64")]
        if use_avx2() {
            // SAFETY: AVX2 support was just confirmed at runtime.
            #[allow(unsafe_code)]
            unsafe {
                avx2::fill_lognormal_pair_avx2(normal, raw_a, raw_b, out_cos, out_sin);
            }
            return;
        }
        fill_lognormal_pair_portable(normal, raw_a, raw_b, out_cos, out_sin);
    }

    /// The portable pass behind [`fill_lognormal_pair`]; also the
    /// reference the AVX2 path is pinned against.
    pub fn fill_lognormal_pair_portable(
        normal: &Normal,
        raw_a: &[u64],
        raw_b: &[u64],
        out_cos: &mut [f64],
        out_sin: &mut [f64],
    ) {
        for (i, (&a, &b)) in raw_a.iter().zip(raw_b).enumerate() {
            let (z1, z2) = super::standard_normal_pair_from_words(a, b);
            out_cos[i] = math::exp(normal.from_standard(z1));
            out_sin[i] = math::exp(normal.from_standard(z2));
        }
    }

    /// Writes `out[i] = ` the draw `rng.gen_range(lo..hi)` would produce
    /// from the raw word `raw[i]` — `lo + u * (hi - lo)` over the unit
    /// uniform, bit-identical to the `rand` shim's `f64` range sampler.
    ///
    /// Dispatches to an AVX2 pass on x86-64 hosts that support it (the
    /// transform is exact in IEEE-754 arithmetic, so the SIMD path is
    /// bit-identical); otherwise runs the portable chunked pass.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or the range is empty.
    pub fn fill_uniform_range(lo: f64, hi: f64, raw: &[u64], out: &mut [f64]) {
        assert_eq!(raw.len(), out.len(), "raw column length mismatch");
        assert!(lo < hi, "cannot sample empty range");
        let span = hi - lo;
        #[cfg(target_arch = "x86_64")]
        if use_avx2() {
            // SAFETY: AVX2 support was just confirmed at runtime.
            #[allow(unsafe_code)]
            unsafe {
                avx2::fill_uniform_range_avx2(lo, span, raw, out);
            }
            return;
        }
        fill_uniform_range_portable(lo, span, raw, out);
    }

    /// The portable pass behind [`fill_uniform_range`]; also the reference
    /// the AVX2 path is pinned against.
    pub fn fill_uniform_range_portable(lo: f64, span: f64, raw: &[u64], out: &mut [f64]) {
        for (out, &word) in out.iter_mut().zip(raw) {
            *out = lo + unit_f64_from_word(word) * span;
        }
    }

    /// Writes `out[i] = ` the draw `exp.sample` would produce from the raw
    /// word `raw[i]` — inversion over the unit uniform, bit-identical to
    /// [`Exp::sample`](super::Exp).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn fill_exp(exp: &Exp, raw: &[u64], out: &mut [f64]) {
        assert_eq!(raw.len(), out.len(), "raw column length mismatch");
        #[cfg(target_arch = "x86_64")]
        if use_avx2() {
            // SAFETY: AVX2 support was just confirmed at runtime.
            #[allow(unsafe_code)]
            unsafe {
                avx2::fill_exp_avx2(exp.lambda, raw, out);
            }
            return;
        }
        fill_exp_portable(exp.lambda, raw, out);
    }

    /// The portable pass behind [`fill_exp`]; also the reference the AVX2
    /// path is pinned against.
    pub fn fill_exp_portable(lambda: f64, raw: &[u64], out: &mut [f64]) {
        for (out, &word) in out.iter_mut().zip(raw) {
            let u = unit_f64_from_word(word);
            *out = -math::ln(1.0 - u) / lambda;
        }
    }

    /// The AVX2 lane passes. Isolated in their own module so the `unsafe`
    /// SIMD surface stays small; the workspace otherwise denies
    /// `unsafe_code`. Every vector kernel replays the exact op DAG of its
    /// scalar counterpart (see [`math`]'s bit-identity policy).
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    #[deny(unsafe_op_in_unsafe_fn)]
    mod avx2 {
        use super::math::avx2 as mathx;
        use super::Normal;
        use core::arch::x86_64::{
            __m256d, __m256i, _mm256_add_pd, _mm256_and_si256, _mm256_castsi256_pd, _mm256_div_pd,
            _mm256_loadu_si256, _mm256_max_pd, _mm256_mul_pd, _mm256_or_si256, _mm256_set1_epi64x,
            _mm256_set1_pd, _mm256_sqrt_pd, _mm256_srli_epi64, _mm256_storeu_pd, _mm256_sub_pd,
            _mm256_xor_pd,
        };

        /// `2^52` with the double-precision exponent bits set: OR-ing a
        /// 32-bit integer into the mantissa of this constant yields the
        /// double `2^52 + n` exactly.
        const EXP_LO: i64 = 0x4330_0000_0000_0000;
        /// The same trick one exponent step up: OR-ing the high 32-bit half
        /// into this constant's mantissa yields `2^84 + hi · 2^32` exactly
        /// (one mantissa ulp at exponent 84 is `2^32`).
        const EXP_HI: i64 = 0x4530_0000_0000_0000;
        /// `2^84 + 2^52`, subtracted once to cancel both offsets. Exactly
        /// representable: `2^52` is a multiple of the `2^32` ulp at `2^84`.
        const EXP_BIAS: f64 = ((1u128 << 84) + (1u128 << 52)) as f64;

        /// Converts four `u64` words (each `< 2^53` after the `>> 11`
        /// shift) to the exact doubles `(word >> 11) as f64`, using the
        /// split hi/lo exponent-bias trick. Every FP operation here is
        /// exact (no rounding occurs): the halves are multiples of `2^32`
        /// and `1` respectively and all intermediate sums stay below
        /// `2^53`, so the result equals the scalar `as f64` conversion bit
        /// for bit.
        #[inline]
        #[target_feature(enable = "avx2")]
        fn mantissa_to_f64(words: __m256i) -> __m256d {
            // Value-based AVX2 intrinsics are safe inside a target_feature
            // fn; only the caller's feature check is a safety obligation.
            let x = _mm256_srli_epi64::<11>(words);
            let lo = _mm256_or_si256(
                _mm256_and_si256(x, _mm256_set1_epi64x(0xFFFF_FFFF)),
                _mm256_set1_epi64x(EXP_LO),
            );
            let hi = _mm256_or_si256(_mm256_srli_epi64::<32>(x), _mm256_set1_epi64x(EXP_HI));
            _mm256_add_pd(
                _mm256_sub_pd(_mm256_castsi256_pd(hi), _mm256_set1_pd(EXP_BIAS)),
                _mm256_castsi256_pd(lo),
            )
        }

        /// `(word >> 11) · 2^-53` — four unit uniforms, exactly as the
        /// scalar `unit_f64_from_word`.
        #[inline]
        #[target_feature(enable = "avx2")]
        fn unit_f64(words: __m256i) -> __m256d {
            const UNIT: f64 = 1.0 / (1u64 << 53) as f64;
            _mm256_mul_pd(mantissa_to_f64(words), _mm256_set1_pd(UNIT))
        }

        /// Four-wide Box–Muller standard pair from four raw word pairs:
        /// the vector form of `standard_normal_pair_from_words`.
        #[inline]
        #[target_feature(enable = "avx2")]
        fn standard_pair(words_a: __m256i, words_b: __m256i) -> (__m256d, __m256d) {
            // max(u1, MIN_POSITIVE): neither operand is NaN, so the vector
            // max matches `f64::max` bit for bit.
            let u1 = _mm256_max_pd(unit_f64(words_a), _mm256_set1_pd(f64::MIN_POSITIVE));
            let u2 = unit_f64(words_b);
            let r = _mm256_sqrt_pd(_mm256_mul_pd(_mm256_set1_pd(-2.0), mathx::ln4(u1)));
            let (sin, cos) =
                mathx::sincos4(_mm256_mul_pd(_mm256_set1_pd(core::f64::consts::TAU), u2));
            (_mm256_mul_pd(r, cos), _mm256_mul_pd(r, sin))
        }

        /// Four-wide `exp(mean + σ·z)`.
        #[inline]
        #[target_feature(enable = "avx2")]
        fn lognormal_factor(normal: &Normal, z: __m256d) -> __m256d {
            mathx::exp4(_mm256_add_pd(
                _mm256_set1_pd(normal.mean),
                _mm256_mul_pd(_mm256_set1_pd(normal.std_dev), z),
            ))
        }

        /// Four-wide single-factor lognormal pass (cosine halves only),
        /// with the portable pass finishing any tail.
        #[target_feature(enable = "avx2")]
        pub(super) unsafe fn fill_lognormal_avx2(
            normal: &Normal,
            raw_a: &[u64],
            raw_b: &[u64],
            out: &mut [f64],
        ) {
            let chunks = out.len() / 4;
            for c in 0..chunks {
                // SAFETY: `c * 4 + 4 <= len` for all three equal-length
                // slices, so the unaligned loads and store stay in bounds.
                unsafe {
                    let wa = _mm256_loadu_si256(raw_a.as_ptr().add(c * 4).cast::<__m256i>());
                    let wb = _mm256_loadu_si256(raw_b.as_ptr().add(c * 4).cast::<__m256i>());
                    let (z_cos, _) = standard_pair(wa, wb);
                    _mm256_storeu_pd(out.as_mut_ptr().add(c * 4), lognormal_factor(normal, z_cos));
                }
            }
            let tail = chunks * 4;
            super::fill_lognormal_portable(
                normal,
                &raw_a[tail..],
                &raw_b[tail..],
                &mut out[tail..],
            );
        }

        /// Four-wide paired lognormal pass (both Box–Muller halves), with
        /// the portable pass finishing any tail.
        #[target_feature(enable = "avx2")]
        pub(super) unsafe fn fill_lognormal_pair_avx2(
            normal: &Normal,
            raw_a: &[u64],
            raw_b: &[u64],
            out_cos: &mut [f64],
            out_sin: &mut [f64],
        ) {
            let chunks = out_cos.len() / 4;
            for c in 0..chunks {
                // SAFETY: `c * 4 + 4 <= len` for all four equal-length
                // slices, so the unaligned loads and stores stay in bounds.
                unsafe {
                    let wa = _mm256_loadu_si256(raw_a.as_ptr().add(c * 4).cast::<__m256i>());
                    let wb = _mm256_loadu_si256(raw_b.as_ptr().add(c * 4).cast::<__m256i>());
                    let (z_cos, z_sin) = standard_pair(wa, wb);
                    _mm256_storeu_pd(
                        out_cos.as_mut_ptr().add(c * 4),
                        lognormal_factor(normal, z_cos),
                    );
                    _mm256_storeu_pd(
                        out_sin.as_mut_ptr().add(c * 4),
                        lognormal_factor(normal, z_sin),
                    );
                }
            }
            let tail = chunks * 4;
            super::fill_lognormal_pair_portable(
                normal,
                &raw_a[tail..],
                &raw_b[tail..],
                &mut out_cos[tail..],
                &mut out_sin[tail..],
            );
        }

        /// Four-wide `lo + unit(word) * span`, with the scalar pass
        /// finishing any tail — the same single-rounding multiply and add
        /// as the portable code, so results are bit-identical.
        #[target_feature(enable = "avx2")]
        pub(super) unsafe fn fill_uniform_range_avx2(
            lo: f64,
            span: f64,
            raw: &[u64],
            out: &mut [f64],
        ) {
            let lanes = _mm256_set1_pd(lo);
            let spans = _mm256_set1_pd(span);
            let chunks = raw.len() / 4;
            for c in 0..chunks {
                // SAFETY: `c * 4 + 4 <= raw.len() == out.len()`, so both the
                // unaligned 32-byte load and store stay in bounds.
                unsafe {
                    let words = _mm256_loadu_si256(raw.as_ptr().add(c * 4).cast::<__m256i>());
                    let value = _mm256_add_pd(lanes, _mm256_mul_pd(unit_f64(words), spans));
                    _mm256_storeu_pd(out.as_mut_ptr().add(c * 4), value);
                }
            }
            let tail = chunks * 4;
            super::fill_uniform_range_portable(lo, span, &raw[tail..], &mut out[tail..]);
        }

        /// Four-wide `-ln(1 - u) / λ`, with the portable pass finishing
        /// any tail. The negation is a sign-bit XOR (like scalar `-x`),
        /// **not** `0 - x`, which would turn `-0.0` into `+0.0` at `u = 0`
        /// and break bit-identity.
        #[target_feature(enable = "avx2")]
        pub(super) unsafe fn fill_exp_avx2(lambda: f64, raw: &[u64], out: &mut [f64]) {
            let one = _mm256_set1_pd(1.0);
            let neg_zero = _mm256_set1_pd(-0.0);
            let lambdas = _mm256_set1_pd(lambda);
            let chunks = raw.len() / 4;
            for c in 0..chunks {
                // SAFETY: `c * 4 + 4 <= raw.len() == out.len()`, so both the
                // unaligned 32-byte load and store stay in bounds.
                unsafe {
                    let words = _mm256_loadu_si256(raw.as_ptr().add(c * 4).cast::<__m256i>());
                    let t = mathx::ln4(_mm256_sub_pd(one, unit_f64(words)));
                    let value = _mm256_div_pd(_mm256_xor_pd(t, neg_zero), lambdas);
                    _mm256_storeu_pd(out.as_mut_ptr().add(c * 4), value);
                }
            }
            let tail = chunks * 4;
            super::fill_exp_portable(lambda, &raw[tail..], &mut out[tail..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Distribution, Exp, Normal, StandardNormalPairs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_rejects_bad_rates() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Exp::new(2.5).is_ok());
    }

    #[test]
    fn exp_mean_matches_one_over_lambda() {
        let mut rng = StdRng::seed_from_u64(11);
        let exp = Exp::new(4.0).unwrap();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.25).abs() < 5e-3, "mean {mean} far from 0.25");
    }

    fn raw_words(seed: u64, n: usize) -> Vec<u64> {
        use rand::RngCore;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    /// An rng that replays a fixed word sequence, for pinning column
    /// transforms against the scalar samplers.
    struct Replay(Vec<u64>, usize);
    impl rand::RngCore for Replay {
        fn next_u64(&mut self) -> u64 {
            let w = self.0[self.1];
            self.1 += 1;
            w
        }
    }

    #[test]
    fn fill_normal_matches_scalar_sampling_bit_for_bit() {
        // A column transform over words (a_i, b_i) must equal sampling from
        // an RNG that replays exactly those words.
        for (mean, std_dev) in [(0.0, 0.04), (3.0, 2.0), (-1.0, 0.0)] {
            let normal = Normal::new(mean, std_dev).unwrap();
            let a = raw_words(1, 257);
            let b = raw_words(2, 257);
            let mut out = vec![0.0; 257];
            super::column::fill_normal(&normal, &a, &b, &mut out);
            for i in 0..a.len() {
                let mut replay = Replay(vec![a[i], b[i]], 0);
                let expected = normal.sample(&mut replay);
                assert!(
                    out[i] == expected || (out[i].is_nan() && expected.is_nan()),
                    "element {i}: column {} != scalar {expected}",
                    out[i]
                );
            }
        }
        // Degenerate words (all zeros / all ones) go through the same
        // MIN_POSITIVE clamp as the scalar sampler.
        let normal = Normal::new(0.0, 1.0).unwrap();
        let mut out = [0.0; 2];
        super::column::fill_normal(&normal, &[0, u64::MAX], &[0, u64::MAX], &mut out);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fill_lognormal_matches_scalar_sample_then_exp_bit_for_bit() {
        let normal = Normal::new(0.0, 0.04).unwrap();
        let a = raw_words(21, 129);
        let b = raw_words(22, 129);
        let mut fused = vec![0.0; 129];
        let mut staged = vec![0.0; 129];
        super::column::fill_lognormal(&normal, &a, &b, &mut fused);
        super::column::fill_normal(&normal, &a, &b, &mut staged);
        for (i, value) in staged.iter_mut().enumerate() {
            *value = super::math::exp(*value);
            assert_eq!(fused[i], *value, "element {i} diverged");
        }
    }

    #[test]
    fn fill_lognormal_pair_matches_the_cached_pair_sampler_bit_for_bit() {
        // The pair transform's two columns must replay exactly what two
        // consecutive draws from a fresh StandardNormalPairs produce on a
        // stream containing those words.
        let normal = Normal::new(0.0, 0.04).unwrap();
        let a = raw_words(31, 137);
        let b = raw_words(32, 137);
        let mut cos = vec![0.0; 137];
        let mut sin = vec![0.0; 137];
        super::column::fill_lognormal_pair(&normal, &a, &b, &mut cos, &mut sin);
        for i in 0..a.len() {
            let mut replay = Replay(vec![a[i], b[i]], 0);
            let mut pairs = StandardNormalPairs::new();
            let first = super::math::exp(normal.from_standard(pairs.next(&mut replay)));
            let second = super::math::exp(normal.from_standard(pairs.next(&mut replay)));
            assert_eq!(replay.1, 2, "a pair must consume exactly two words");
            assert_eq!(cos[i], first, "element {i} cosine half diverged");
            assert_eq!(sin[i], second, "element {i} sine half diverged");
        }
    }

    #[test]
    fn cached_pairs_survive_interleaved_non_normal_draws() {
        // The cache is positional in *normal draws*, not rng words: a
        // gen_range between the two halves must not disturb the second.
        use rand::Rng;
        let words = raw_words(41, 8);
        let mut replay = Replay(words.clone(), 0);
        let mut pairs = StandardNormalPairs::new();
        let z1 = pairs.next(&mut replay);
        let _jitter: f64 = replay.gen_range(0.0..0.12);
        let z2 = pairs.next(&mut replay);
        assert_eq!(replay.1, 3, "pair + jitter must consume three words");
        let (e1, e2) = super::standard_normal_pair_from_words(words[0], words[1]);
        assert_eq!((z1, z2), (e1, e2));
    }

    #[test]
    fn avx2_and_portable_passes_are_bit_identical() {
        // On hosts with AVX2 the public entry points take the SIMD path;
        // pin every fill against its portable reference on awkward lengths
        // (0, 1, tail-only, multiple-of-4, large) and extreme words.
        let normal = Normal::new(0.0, 0.04).unwrap();
        for n in [0usize, 1, 3, 4, 5, 64, 1021] {
            let mut wa = raw_words(7, n);
            let wb = raw_words(8, n);
            if n > 2 {
                wa[0] = 0;
                wa[1] = u64::MAX;
            }
            let mut simd = vec![0.0; n];
            let mut portable = vec![0.0; n];
            super::column::fill_uniform_range(-0.05, 0.05, &wa, &mut simd);
            super::column::fill_uniform_range_portable(-0.05, 0.1, &wa, &mut portable);
            assert_eq!(simd, portable, "uniform length {n} diverged");

            super::column::fill_lognormal(&normal, &wa, &wb, &mut simd);
            super::column::fill_lognormal_portable(&normal, &wa, &wb, &mut portable);
            assert_eq!(simd, portable, "lognormal length {n} diverged");

            super::column::fill_exp(&Exp::new(4.0).unwrap(), &wa, &mut simd);
            super::column::fill_exp_portable(4.0, &wa, &mut portable);
            assert_eq!(simd, portable, "exp length {n} diverged");

            let mut simd_sin = vec![0.0; n];
            let mut portable_sin = vec![0.0; n];
            super::column::fill_lognormal_pair(&normal, &wa, &wb, &mut simd, &mut simd_sin);
            super::column::fill_lognormal_pair_portable(
                &normal,
                &wa,
                &wb,
                &mut portable,
                &mut portable_sin,
            );
            assert_eq!(simd, portable, "pair cosine length {n} diverged");
            assert_eq!(simd_sin, portable_sin, "pair sine length {n} diverged");
        }
    }

    mod properties {
        use super::super::{column, Exp, Normal};
        use super::raw_words;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            // The AVX2 and portable passes are bit-identical for arbitrary
            // word streams, column lengths, and distribution parameters —
            // the exactness contract behind the cross-build determinism
            // pin. (On hosts without AVX2, or under `XR_FORCE_PORTABLE`,
            // both sides take the portable pass and the property holds
            // trivially.)
            #[test]
            fn simd_and_portable_fills_are_bit_identical(
                seed in 0u64..u64::MAX,
                len in 0usize..200,
                mean in -3.0f64..3.0,
                sigma in 0.0f64..2.0,
                rate in 0.05f64..50.0,
                lo in -10.0f64..10.0,
                span in 0.0f64..20.0,
            ) {
                let normal = Normal::new(mean, sigma).unwrap();
                let wa = raw_words(seed, len);
                let wb = raw_words(seed ^ 0x9E37_79B9_7F4A_7C15, len);
                let mut simd = vec![0.0; len];
                let mut portable = vec![0.0; len];

                // The public entry derives the span as `hi - lo`; hand the
                // portable reference the identical derived value.
                let hi = lo + span;
                column::fill_uniform_range(lo, hi, &wa, &mut simd);
                column::fill_uniform_range_portable(lo, hi - lo, &wa, &mut portable);
                prop_assert!(simd == portable, "uniform diverged");

                column::fill_lognormal(&normal, &wa, &wb, &mut simd);
                column::fill_lognormal_portable(&normal, &wa, &wb, &mut portable);
                prop_assert!(simd == portable, "lognormal diverged");

                column::fill_exp(&Exp::new(rate).unwrap(), &wa, &mut simd);
                column::fill_exp_portable(rate, &wa, &mut portable);
                prop_assert!(simd == portable, "exp diverged");

                let mut simd_sin = vec![0.0; len];
                let mut portable_sin = vec![0.0; len];
                column::fill_lognormal_pair(&normal, &wa, &wb, &mut simd, &mut simd_sin);
                column::fill_lognormal_pair_portable(
                    &normal, &wa, &wb, &mut portable, &mut portable_sin,
                );
                prop_assert!(simd == portable, "pair cosine diverged");
                prop_assert!(simd_sin == portable_sin, "pair sine diverged");
            }
        }
    }

    #[test]
    fn fill_exp_matches_scalar_sampling_bit_for_bit() {
        let exp = Exp::new(4.0).unwrap();
        let words = raw_words(11, 513);
        let mut out = vec![0.0; 513];
        super::column::fill_exp(&exp, &words, &mut out);
        let mut rng = StdRng::seed_from_u64(11);
        for (i, &value) in out.iter().enumerate() {
            assert_eq!(value, exp.sample(&mut rng), "element {i} diverged");
        }
    }

    #[test]
    #[should_panic(expected = "raw column length mismatch")]
    fn column_length_mismatch_is_rejected() {
        let exp = Exp::new(1.0).unwrap();
        let mut out = [0.0; 2];
        super::column::fill_exp(&exp, &[1, 2, 3], &mut out);
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = StdRng::seed_from_u64(23);
        let normal = Normal::new(3.0, 2.0).unwrap();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 3.0).abs() < 2e-2, "mean {mean} far from 3.0");
        assert!((var - 4.0).abs() < 8e-2, "variance {var} far from 4.0");
    }

    #[test]
    fn cached_pair_moments_match() {
        // Both Box–Muller halves together must still be standard normal.
        let mut rng = StdRng::seed_from_u64(29);
        let mut pairs = StandardNormalPairs::new();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| pairs.next(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 1e-2, "mean {mean} far from 0");
        assert!((var - 1.0).abs() < 2e-2, "variance {var} far from 1");
    }
}
