//! Fig. 4(f): AoI staircase and RoI of a 100 Hz sensor under a 5 ms update
//! requirement.

use xr_experiments::aoi_experiments::roi_staircase;
use xr_experiments::{output, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::from_args();
    let staircase = roi_staircase(&ctx).expect("RoI experiment failed");
    let rows: Vec<Vec<String>> = staircase
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.time_ms),
                format!("{:.2}", p.aoi_ms),
                format!("{:.3}", p.roi),
            ]
        })
        .collect();
    output::print_experiment(
        "Fig. 4(f) — AoI and RoI for a 100 Hz sensor, 5 ms update requirement",
        &["time_ms", "aoi_ms", "roi"],
        &rows,
        "fig4f.csv",
    );
}
