//! Contention figure: ground-truth latency knee against the number of
//! sessions sharing one edge server, replicated with 95 % confidence
//! intervals through the shared campaign engine.

use xr_experiments::contention_experiments::{contention_sweep, FIG_CONTENTION_HEADER};
use xr_experiments::{output, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::from_args();
    let points = contention_sweep(&ctx).expect("contention sweep failed");
    let cells: Vec<Vec<String>> = points.iter().map(|p| p.cells()).collect();
    output::print_experiment(
        "Contention — latency knee vs sessions per edge server",
        &FIG_CONTENTION_HEADER,
        &cells,
        "fig_contention.csv",
    );
    let peak = points.last().expect("populations swept");
    println!(
        "{} populations evaluated with {} worker(s); bottleneck utilisation peaks at {:.3}",
        points.len(),
        ctx.runner().workers(),
        peak.row.edge_utilization
    );
}
