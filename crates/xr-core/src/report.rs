//! The combined performance model and its per-frame report.

use crate::aoi::{AoiModel, AoiReport};
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::latency::{LatencyBreakdown, LatencyModel};
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use xr_types::{MilliJoules, MilliSeconds, Result};

/// The full per-frame analysis: latency, energy, and AoI/RoI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformanceReport {
    /// Latency breakdown (Eq. 1).
    pub latency: LatencyBreakdown,
    /// Energy breakdown (Eq. 19).
    pub energy: EnergyBreakdown,
    /// AoI/RoI report (Eqs. 22–26).
    pub aoi: AoiReport,
}

impl PerformanceReport {
    /// End-to-end latency in the figure's unit (milliseconds).
    #[must_use]
    pub fn latency_ms(&self) -> MilliSeconds {
        self.latency.total().to_millis()
    }

    /// Total energy in the figure's unit (millijoules).
    #[must_use]
    pub fn energy_mj(&self) -> MilliJoules {
        self.energy.total().to_millijoules()
    }
}

/// The proposed XR performance-analysis framework: latency, energy and AoI
/// models bundled behind a single entry point.
#[derive(Debug, Clone, Default)]
pub struct XrPerformanceModel {
    latency: LatencyModel,
    energy: EnergyModel,
    aoi: AoiModel,
}

impl XrPerformanceModel {
    /// Builds the framework with every sub-model at its published
    /// coefficients.
    #[must_use]
    pub fn published() -> Self {
        Self {
            latency: LatencyModel::published(),
            energy: EnergyModel::published(),
            aoi: AoiModel::published(),
        }
    }

    /// Builds the framework from explicit sub-models (e.g. after refitting
    /// the regressions on simulated training data).
    #[must_use]
    pub fn new(latency: LatencyModel, energy: EnergyModel, aoi: AoiModel) -> Self {
        Self {
            latency,
            energy,
            aoi,
        }
    }

    /// The latency sub-model.
    #[must_use]
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// The energy sub-model.
    #[must_use]
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// The AoI sub-model.
    #[must_use]
    pub fn aoi_model(&self) -> &AoiModel {
        &self.aoi
    }

    /// Replaces the latency sub-model.
    #[must_use]
    pub fn with_latency_model(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Replaces the energy sub-model.
    #[must_use]
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Replaces the AoI sub-model.
    #[must_use]
    pub fn with_aoi_model(mut self, aoi: AoiModel) -> Self {
        self.aoi = aoi;
        self
    }

    /// Analyses one frame of a scenario: latency (Eq. 1), energy (Eq. 19),
    /// and AoI/RoI (Eqs. 22–26).
    ///
    /// # Errors
    ///
    /// Returns scenario-validation or queueing errors.
    pub fn analyze(&self, scenario: &Scenario) -> Result<PerformanceReport> {
        let latency = self.latency.analyze(scenario)?;
        let energy = self.energy.analyze_with_latency(scenario, &latency);
        let aoi = self.aoi.analyze(scenario, latency.total())?;
        Ok(PerformanceReport {
            latency,
            energy,
            aoi,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr_types::{ExecutionTarget, Segment};

    #[test]
    fn full_report_for_local_and_remote() {
        let model = XrPerformanceModel::published();
        for target in [ExecutionTarget::Local, ExecutionTarget::Remote] {
            let scenario = Scenario::builder().execution(target).build().unwrap();
            let report = model.analyze(&scenario).unwrap();
            assert!(report.latency_ms().as_f64() > 0.0);
            assert!(report.energy_mj().as_f64() > 0.0);
            assert_eq!(report.aoi.sensors.len(), scenario.sensors.len());
        }
    }

    #[test]
    fn report_units_are_consistent() {
        let model = XrPerformanceModel::published();
        let scenario = Scenario::builder().build().unwrap();
        let report = model.analyze(&scenario).unwrap();
        assert!(
            (report.latency_ms().as_f64() - report.latency.total().as_f64() * 1e3).abs() < 1e-9
        );
        assert!((report.energy_mj().as_f64() - report.energy.total().as_f64() * 1e3).abs() < 1e-9);
    }

    #[test]
    fn sub_model_accessors_and_replacement() {
        let model = XrPerformanceModel::published();
        let scenario = Scenario::builder()
            .execution(ExecutionTarget::Remote)
            .build()
            .unwrap();
        let baseline = model.analyze(&scenario).unwrap();
        // Replace the latency model with an ablated variant; remote totals
        // must drop because the memory terms disappear.
        let ablated = XrPerformanceModel::published()
            .with_latency_model(LatencyModel::published().without_memory_terms());
        let report = ablated.analyze(&scenario).unwrap();
        assert!(report.latency.total() < baseline.latency.total());
        assert!(model.latency_model().analyze(&scenario).is_ok());
        let _ = model.energy_model();
        let _ = model.aoi_model();
    }

    #[test]
    fn default_equals_published_behaviour() {
        let scenario = Scenario::builder().build().unwrap();
        let a = XrPerformanceModel::default().analyze(&scenario).unwrap();
        let b = XrPerformanceModel::published().analyze(&scenario).unwrap();
        assert_eq!(a.latency.total(), b.latency.total());
        assert_eq!(a.energy.total(), b.energy.total());
    }

    #[test]
    fn rendering_is_always_part_of_the_breakdown() {
        let model = XrPerformanceModel::published();
        let scenario = Scenario::builder().build().unwrap();
        let report = model.analyze(&scenario).unwrap();
        assert!(report.latency.segment(Segment::FrameRendering).as_f64() > 0.0);
        assert!(report.energy.segment(Segment::FrameRendering).as_f64() > 0.0);
    }
}
