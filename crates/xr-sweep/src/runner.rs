//! The parallel campaign executor.

use crate::collector::InOrderCollector;
use crate::seed::{point_seed, replication_seed};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use xr_types::{Error, Result};

/// Everything a point-evaluation closure may depend on besides the point
/// itself: the point's stable index and its deterministically derived seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointContext {
    /// The point's position in the grid's enumeration order.
    pub index: usize,
    /// Seed derived from `(campaign_seed, index)` via [`point_seed`].
    pub seed: u64,
}

/// Everything a replicated evaluation closure may depend on: the operating
/// point's index, which replication of it this is, and the replication's
/// deterministically derived seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepContext {
    /// The operating point's position in the grid's enumeration order.
    pub point_index: usize,
    /// Which independent repetition of the point this is (0-based).
    pub rep_index: usize,
    /// Seed derived from `(campaign_seed, point_index, rep_index)` via
    /// [`replication_seed`].
    pub seed: u64,
}

/// Executes the points of a campaign over a pool of scoped worker threads.
///
/// Workers claim points from a shared atomic cursor, so load balances
/// automatically, but nothing about the *results* depends on which worker
/// evaluates which point: the evaluation closure receives only the point and
/// its [`PointContext`], and results are returned (or streamed) in point
/// order. A campaign is therefore bit-identical for any worker count.
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    workers: usize,
    campaign_seed: u64,
    reorder_cap: usize,
}

/// Environment variable overriding the default worker count.
pub const WORKERS_ENV: &str = "XR_SWEEP_WORKERS";

/// Default bound on the streaming hold-back window (rows buffered past one
/// slow point before faster workers are backpressured). Generous enough
/// that balanced campaigns never block, small enough that a pathological
/// point cannot buffer a whole campaign in memory.
pub const DEFAULT_REORDER_CAP: usize = 1024;

impl CampaignRunner {
    /// A runner with an explicit worker count (clamped to at least 1).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            campaign_seed: 0,
            reorder_cap: DEFAULT_REORDER_CAP,
        }
    }

    /// A runner sized from the `XR_SWEEP_WORKERS` environment variable
    /// (clamped to at least 1, like [`CampaignRunner::new`]), falling back
    /// to the machine's available parallelism when the variable is unset or
    /// unparseable.
    #[must_use]
    pub fn from_env() -> Self {
        let workers = std::env::var(WORKERS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|w| w.max(1))
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        Self::new(workers)
    }

    /// Sets the campaign seed from which per-point seeds derive.
    #[must_use]
    pub fn with_campaign_seed(mut self, seed: u64) -> Self {
        self.campaign_seed = seed;
        self
    }

    /// Bounds the streaming hold-back window (clamped to at least 1): when
    /// one point is slow, faster workers may run at most `cap` results
    /// ahead before they block, so memory stays bounded instead of
    /// buffering the rest of the campaign. Defaults to
    /// [`DEFAULT_REORDER_CAP`].
    #[must_use]
    pub fn with_reorder_cap(mut self, cap: usize) -> Self {
        self.reorder_cap = cap.max(1);
        self
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The campaign seed.
    #[must_use]
    pub fn campaign_seed(&self) -> u64 {
        self.campaign_seed
    }

    /// The streaming hold-back bound.
    #[must_use]
    pub fn reorder_cap(&self) -> usize {
        self.reorder_cap
    }

    /// Evaluates `eval` at every point and returns the results in point
    /// order, regardless of worker count or completion order.
    ///
    /// # Errors
    ///
    /// If any evaluation fails, the error for the *lowest-indexed* failing
    /// point is returned — again independent of scheduling — and work past
    /// the failing point is abandoned as soon as workers notice.
    pub fn run<P, R, F>(&self, points: &[P], eval: F) -> Result<Vec<R>>
    where
        P: Sync,
        R: Send,
        F: Fn(PointContext, &P) -> Result<R> + Sync,
    {
        let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..points.len()).map(|_| None).collect());
        self.execute(
            points,
            &eval,
            |index, value| {
                slots.lock().expect("slot lock")[index] = Some(value);
            },
            &|| {},
        )?;
        Ok(slots
            .into_inner()
            .expect("slot lock")
            .into_iter()
            .map(|slot| slot.expect("every point evaluated"))
            .collect())
    }

    /// Evaluates every point and streams results **in point order** into
    /// `sink` as contiguous prefixes complete, via an [`InOrderCollector`]
    /// hold-back buffer. The emission order (and therefore any CSV appended
    /// row by row) is identical for every worker count.
    ///
    /// The hold-back window is bounded by
    /// [`CampaignRunner::with_reorder_cap`]: a worker whose result is more
    /// than `cap` rows ahead of the sink **blocks** until the gap fills, so
    /// one slow point backpressures the pool instead of buffering the rest
    /// of the campaign in memory. The worker owning the gap's own point is
    /// never blocked (its index is always admitted), so backpressure cannot
    /// deadlock, and on failure every blocked worker is released.
    ///
    /// # Errors
    ///
    /// Same contract as [`CampaignRunner::run`]. On failure the sink has
    /// observed some prefix of the rows before the failing index, never
    /// anything at or beyond it; callers should discard the partial artifact.
    pub fn run_streaming<P, R, F, S>(&self, points: &[P], eval: F, sink: S) -> Result<()>
    where
        P: Sync,
        R: Send,
        F: Fn(PointContext, &P) -> Result<R> + Sync,
        S: FnMut(usize, R) + Send,
    {
        struct StreamState<R, F: FnMut(usize, R)> {
            collector: InOrderCollector<R, F>,
            /// Set when a point failed: blocked deliveries bail out instead
            /// of waiting for a gap that will never fill.
            aborted: bool,
        }
        let state = Mutex::new(StreamState {
            collector: InOrderCollector::new(sink).with_cap(self.reorder_cap),
            aborted: false,
        });
        let room = Condvar::new();
        self.execute(
            points,
            &eval,
            |index, value| {
                let mut guard = state.lock().expect("collector lock");
                while !guard.aborted && !guard.collector.accepts(index) {
                    guard = room.wait(guard).expect("collector lock");
                }
                if guard.aborted {
                    // The artifact will be discarded; drop the result.
                    return;
                }
                guard.collector.push(index, value);
                drop(guard);
                room.notify_all();
            },
            &|| {
                state.lock().expect("collector lock").aborted = true;
                room.notify_all();
            },
        )?;
        debug_assert!(
            state
                .into_inner()
                .expect("collector lock")
                .collector
                .is_drained(),
            "a successful campaign leaves no held-back rows"
        );
        Ok(())
    }

    /// Evaluates every point `replications` times (clamped to at least 1)
    /// and returns, in point order, the vector of replication results for
    /// each point. Work is distributed at `(point, replication)` granularity
    /// — a campaign with few points and many replications still saturates
    /// the worker pool — and every replication's seed is a pure function of
    /// `(campaign_seed, point_index, rep_index)` via [`replication_seed`],
    /// so the output is bit-identical for any worker count.
    ///
    /// # Errors
    ///
    /// Same contract as [`CampaignRunner::run`]: the error of the
    /// lowest-indexed failing `(point, replication)` item wins.
    pub fn run_replicated<P, R, F>(
        &self,
        points: &[P],
        replications: usize,
        eval: F,
    ) -> Result<Vec<Vec<R>>>
    where
        P: Sync,
        R: Send,
        F: Fn(RepContext, &P) -> Result<R> + Sync,
    {
        let mut groups = Vec::with_capacity(points.len());
        self.run_replicated_streaming(points, replications, eval, |_, group| {
            groups.push(group);
        })?;
        Ok(groups)
    }

    /// Replicated evaluation with streaming collection: once every
    /// replication of an operating point has completed, the point's result
    /// vector (always of length `max(replications, 1)`, in replication
    /// order) is handed to `sink` — **in point order**, like
    /// [`CampaignRunner::run_streaming`]. This is the aggregation bridge a
    /// mean-±-CI campaign row rides on.
    ///
    /// # Errors
    ///
    /// Same contract as [`CampaignRunner::run`].
    pub fn run_replicated_streaming<P, R, F, S>(
        &self,
        points: &[P],
        replications: usize,
        eval: F,
        sink: S,
    ) -> Result<()>
    where
        P: Sync,
        R: Send,
        F: Fn(RepContext, &P) -> Result<R> + Sync,
        S: FnMut(usize, Vec<R>) + Send,
    {
        let indexed: Vec<(usize, &P)> = points.iter().enumerate().collect();
        self.run_indexed_replicated_streaming(
            &indexed,
            replications,
            |context, point| eval(context, point),
            sink,
        )
    }

    /// Replicated streaming evaluation over an **explicitly indexed** point
    /// subset — the sharded-campaign entry point. Each `(index, point)` pair
    /// carries the point's index in the *full* grid enumeration: every
    /// replication seed derives from that original index (never the slice
    /// position), and `sink` receives it back, so a shard's rows are
    /// bit-identical to the same rows of an unsharded run regardless of how
    /// the subset was carved.
    ///
    /// Points are evaluated in slice order with the same worker pool,
    /// hold-back window, and backpressure as
    /// [`CampaignRunner::run_replicated_streaming`].
    ///
    /// # Errors
    ///
    /// Same contract as [`CampaignRunner::run`].
    pub fn run_indexed_replicated_streaming<P, R, F, S>(
        &self,
        points: &[(usize, P)],
        replications: usize,
        eval: F,
        mut sink: S,
    ) -> Result<()>
    where
        P: Sync,
        R: Send,
        F: Fn(RepContext, &P) -> Result<R> + Sync,
        S: FnMut(usize, Vec<R>) + Send,
    {
        let reps = replications.max(1);
        let items: Vec<(usize, usize)> = (0..points.len())
            .flat_map(|slot| (0..reps).map(move |rep| (slot, rep)))
            .collect();
        let mut group: Vec<R> = Vec::with_capacity(reps);
        self.run_streaming(
            &items,
            |_, &(slot, rep_index): &(usize, usize)| {
                let (point_index, ref point) = points[slot];
                let context = RepContext {
                    point_index,
                    rep_index,
                    seed: replication_seed(self.campaign_seed, point_index, rep_index),
                };
                eval(context, point)
            },
            |index, value| {
                // Items stream in (point-major) order, so each contiguous
                // run of `reps` results belongs to one point.
                group.push(value);
                if group.len() == reps {
                    sink(points[index / reps].0, std::mem::take(&mut group));
                }
            },
        )
    }

    /// Replication-fused streaming evaluation over an explicitly indexed
    /// point subset: the whole *point* is one work item, and `eval` returns
    /// the vector of all its replication results at once (the
    /// replication-fused engine's natural shape —
    /// `TestbedSimulator::simulate_point` in `xr-testbed`). Like
    /// [`CampaignRunner::run_indexed_replicated_streaming`], each `(index,
    /// point)` pair carries the point's index in the full grid enumeration;
    /// the [`PointContext`] seed derives from that original index via
    /// [`point_seed`], which is exactly the `point_seed` the per-rep path's
    /// [`replication_seed`]s expand from — so a fused campaign's rows are
    /// bit-identical to the per-rep path for any worker count.
    ///
    /// Work is distributed at *point* granularity (coarser than the per-rep
    /// path's `(point, replication)` items), with the same hold-back window
    /// and backpressure as [`CampaignRunner::run_streaming`].
    ///
    /// # Errors
    ///
    /// Same contract as [`CampaignRunner::run`]: the error of the
    /// lowest-indexed failing point wins.
    pub fn run_indexed_fused_streaming<P, R, F, S>(
        &self,
        points: &[(usize, P)],
        eval: F,
        mut sink: S,
    ) -> Result<()>
    where
        P: Sync,
        R: Send,
        F: Fn(PointContext, &P) -> Result<Vec<R>> + Sync,
        S: FnMut(usize, Vec<R>) + Send,
    {
        let slots: Vec<usize> = (0..points.len()).collect();
        self.run_streaming(
            &slots,
            |_, &slot: &usize| {
                let (point_index, ref point) = points[slot];
                let context = PointContext {
                    index: point_index,
                    seed: point_seed(self.campaign_seed, point_index),
                };
                eval(context, point)
            },
            |index, group| sink(points[index].0, group),
        )
    }

    /// The shared worker loop: claims indices from an atomic cursor, calls
    /// `eval`, and hands successes to `deliver` (which must tolerate
    /// arbitrary completion order and may block for backpressure). Keeps the
    /// lowest-indexed error; `on_fail` fires after any failure is recorded
    /// so blocked deliveries can be released.
    fn execute<P, R, F, D>(
        &self,
        points: &[P],
        eval: &F,
        deliver: D,
        on_fail: &(dyn Fn() + Sync),
    ) -> Result<()>
    where
        P: Sync,
        R: Send,
        F: Fn(PointContext, &P) -> Result<R> + Sync,
        D: Fn(usize, R) + Sync,
    {
        if points.is_empty() {
            return Ok(());
        }
        let context = |index: usize| PointContext {
            index,
            seed: point_seed(self.campaign_seed, index),
        };
        let workers = self.workers.min(points.len());
        if workers == 1 {
            // Sequential fast path: no thread or lock overhead, and the
            // reference ordering the parallel path must reproduce.
            for (index, point) in points.iter().enumerate() {
                deliver(index, eval(context(index), point)?);
            }
            return Ok(());
        }

        let cursor = AtomicUsize::new(0);
        // Lowest failing point index + its error, so the reported failure is
        // scheduling-independent.
        let failure: Mutex<Option<(usize, Error)>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= points.len() {
                        break;
                    }
                    {
                        let failed = failure.lock().expect("failure lock");
                        if failed.as_ref().is_some_and(|(fi, _)| *fi < index) {
                            // Everything past the failing point is abandoned;
                            // earlier points still complete so the lowest
                            // failure wins deterministically.
                            continue;
                        }
                    }
                    match eval(context(index), &points[index]) {
                        Ok(result) => deliver(index, result),
                        Err(error) => {
                            {
                                let mut failed = failure.lock().expect("failure lock");
                                if failed.as_ref().is_none_or(|(fi, _)| index < *fi) {
                                    *failed = Some((index, error));
                                }
                            }
                            on_fail();
                        }
                    }
                });
            }
        });

        if let Some((_, error)) = failure.into_inner().expect("failure lock") {
            return Err(error);
        }
        Ok(())
    }
}

impl Default for CampaignRunner {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_identical_for_any_worker_count() {
        let points: Vec<u64> = (0..37).collect();
        let eval =
            |ctx: PointContext, p: &u64| Ok::<_, Error>(p.wrapping_mul(31) ^ ctx.seed ^ 0xABCD);
        let reference = CampaignRunner::new(1)
            .with_campaign_seed(99)
            .run(&points, eval)
            .unwrap();
        for workers in [2, 3, 4, 8, 64] {
            let parallel = CampaignRunner::new(workers)
                .with_campaign_seed(99)
                .run(&points, eval)
                .unwrap();
            assert_eq!(parallel, reference, "{workers} workers diverged");
        }
    }

    #[test]
    fn lowest_indexed_error_wins() {
        let points: Vec<usize> = (0..64).collect();
        let eval = |_: PointContext, p: &usize| {
            if *p >= 10 {
                Err(Error::invalid_parameter("point", format!("boom {p}")))
            } else {
                Ok(*p)
            }
        };
        for workers in [1, 4, 16] {
            let err = CampaignRunner::new(workers)
                .run(&points, eval)
                .expect_err("must fail");
            assert!(
                err.to_string().contains("boom 10"),
                "workers={workers}: {err}"
            );
        }
    }

    #[test]
    fn streaming_emits_in_point_order() {
        let points: Vec<usize> = (0..23).collect();
        let mut seen = Vec::new();
        CampaignRunner::new(5)
            .run_streaming(
                &points,
                |ctx, p| Ok::<_, Error>(p * 2 + ctx.index),
                |index, value| seen.push((index, value)),
            )
            .unwrap();
        assert_eq!(seen.len(), 23);
        for (i, (index, value)) in seen.iter().enumerate() {
            assert_eq!(*index, i);
            assert_eq!(*value, i * 3);
        }
    }

    #[test]
    fn replicated_runs_group_in_point_order_for_any_worker_count() {
        let points: Vec<u64> = (0..11).collect();
        let eval = |ctx: RepContext, p: &u64| {
            Ok::<_, Error>((*p, ctx.rep_index, ctx.seed ^ p.wrapping_mul(7)))
        };
        let reference = CampaignRunner::new(1)
            .with_campaign_seed(42)
            .run_replicated(&points, 3, eval)
            .unwrap();
        assert_eq!(reference.len(), 11);
        for (p, group) in reference.iter().enumerate() {
            assert_eq!(group.len(), 3);
            for (r, entry) in group.iter().enumerate() {
                assert_eq!(entry.0, p as u64);
                assert_eq!(entry.1, r);
            }
        }
        for workers in [2, 5, 32] {
            let parallel = CampaignRunner::new(workers)
                .with_campaign_seed(42)
                .run_replicated(&points, 3, eval)
                .unwrap();
            assert_eq!(parallel, reference, "{workers} workers diverged");
        }
        // Zero replications clamp to one.
        let single = CampaignRunner::new(4)
            .with_campaign_seed(42)
            .run_replicated(&points, 0, eval)
            .unwrap();
        assert!(single.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn replicated_streaming_emits_complete_groups_in_order() {
        let points: Vec<usize> = (0..7).collect();
        let mut seen = Vec::new();
        CampaignRunner::new(3)
            .run_replicated_streaming(
                &points,
                4,
                |ctx, p| Ok::<_, Error>(p * 100 + ctx.rep_index),
                |point, group| seen.push((point, group)),
            )
            .unwrap();
        assert_eq!(seen.len(), 7);
        for (i, (point, group)) in seen.iter().enumerate() {
            assert_eq!(*point, i);
            assert_eq!(*group, (0..4).map(|r| i * 100 + r).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_oversized_pools_are_fine() {
        let runner = CampaignRunner::new(0); // clamps to 1
        assert_eq!(runner.workers(), 1);
        let none: Vec<u8> = Vec::new();
        assert!(runner
            .run(&none, |_, p: &u8| Ok::<_, Error>(*p))
            .unwrap()
            .is_empty());
        let few = vec![1u8, 2];
        let out = CampaignRunner::new(16)
            .run(&few, |_, p| Ok::<_, Error>(*p))
            .unwrap();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn indexed_streaming_reuses_original_indices_for_seeds_and_sinks() {
        let points: Vec<u64> = (0..20).collect();
        let eval = |ctx: RepContext, p: &u64| Ok::<_, Error>((*p, ctx.point_index, ctx.seed));
        // Reference: every point's groups from an unsharded run.
        let mut full = Vec::new();
        CampaignRunner::new(3)
            .with_campaign_seed(7)
            .run_replicated_streaming(&points, 2, eval, |i, g| full.push((i, g)))
            .unwrap();
        // A round-robin shard (2/3) must reproduce exactly its slice of the
        // full run — same seeds, same sink indices.
        let subset: Vec<(usize, u64)> = (0..points.len())
            .filter(|p| p % 3 == 1)
            .map(|p| (p, points[p]))
            .collect();
        let mut shard = Vec::new();
        CampaignRunner::new(4)
            .with_campaign_seed(7)
            .run_indexed_replicated_streaming(
                &subset,
                2,
                |ctx, p| eval(ctx, p),
                |i, g| {
                    shard.push((i, g));
                },
            )
            .unwrap();
        let expected: Vec<_> = full.iter().filter(|(i, _)| i % 3 == 1).cloned().collect();
        assert_eq!(shard, expected);
    }

    #[test]
    fn fused_streaming_matches_the_per_rep_path_for_any_worker_count() {
        // A fused eval that expands the point seed exactly like the per-rep
        // path (`replication_seed = mix(point_seed, rep)`) must reproduce
        // the replicated runner's groups — original-index seeds included —
        // for every worker count, over a sharded subset.
        const REPS: usize = 3;
        let points: Vec<u64> = (0..20).collect();
        let mut reference = Vec::new();
        CampaignRunner::new(1)
            .with_campaign_seed(7)
            .run_replicated_streaming(
                &points,
                REPS,
                |ctx: RepContext, p: &u64| Ok::<_, Error>((*p, ctx.rep_index, ctx.seed)),
                |i, g| reference.push((i, g)),
            )
            .unwrap();
        let subset: Vec<(usize, u64)> = (0..points.len())
            .filter(|p| p % 2 == 1)
            .map(|p| (p, points[p]))
            .collect();
        let expected: Vec<_> = reference
            .iter()
            .filter(|(i, _)| i % 2 == 1)
            .cloned()
            .collect();
        for workers in [1, 3, 4] {
            let mut fused = Vec::new();
            CampaignRunner::new(workers)
                .with_campaign_seed(7)
                .run_indexed_fused_streaming(
                    &subset,
                    |ctx: PointContext, p: &u64| {
                        Ok::<_, Error>(
                            (0..REPS)
                                .map(|rep| (*p, rep, xr_types::seed::mix(ctx.seed, rep as u64)))
                                .collect(),
                        )
                    },
                    |i, g| fused.push((i, g)),
                )
                .unwrap();
            assert_eq!(fused, expected, "{workers} workers diverged");
        }
    }

    #[test]
    fn bounded_windows_hold_memory_while_a_slow_point_blocks_the_prefix() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;

        const POINTS: usize = 64;
        const WORKERS: usize = 4;
        const CAP: usize = 4;
        let points: Vec<usize> = (0..POINTS).collect();
        // Point 0 waits until every other worker has had the chance to race
        // ahead; the bounded window must stop them at CAP buffered rows.
        let gate = Barrier::new(2);
        let completed = AtomicUsize::new(0);
        let sunk = AtomicUsize::new(0);
        let outstanding_high_water = AtomicUsize::new(0);
        let mut seen = Vec::new();
        CampaignRunner::new(WORKERS)
            .with_reorder_cap(CAP)
            .run_streaming(
                &points,
                |ctx, p: &usize| {
                    if ctx.index == 0 {
                        gate.wait();
                    }
                    let done = completed.fetch_add(1, Ordering::SeqCst) + 1;
                    let outstanding = done.saturating_sub(sunk.load(Ordering::SeqCst));
                    outstanding_high_water.fetch_max(outstanding, Ordering::SeqCst);
                    if done == CAP + WORKERS - 1 {
                        // Everyone who can run ahead has: CAP rows buffered
                        // plus one blocked in-flight result per free worker
                        // (the last of which is this one, releasing point 0
                        // before its own delivery blocks).
                        gate.wait();
                    }
                    Ok::<_, Error>(*p)
                },
                |index, value| {
                    sunk.fetch_add(1, Ordering::SeqCst);
                    seen.push((index, value));
                },
            )
            .unwrap();
        assert_eq!(seen, (0..POINTS).map(|i| (i, i)).collect::<Vec<_>>());
        // With point 0 stalled, at most CAP rows buffer in the window plus
        // one in-flight result per worker — never the whole campaign.
        let high = outstanding_high_water.load(Ordering::SeqCst);
        assert!(
            high <= CAP + WORKERS,
            "{high} results were outstanding with cap {CAP} and {WORKERS} workers"
        );
        assert!(high >= CAP, "the window never filled ({high} outstanding)");
    }

    #[test]
    fn failures_release_backpressured_workers_without_deadlock() {
        // Point 0 fails while run-ahead workers are blocked on a full
        // hold-back window; the failure must wake them so the campaign
        // terminates with point 0's error instead of deadlocking.
        let points: Vec<usize> = (0..40).collect();
        for workers in [2, 4, 8] {
            let err = CampaignRunner::new(workers)
                .with_reorder_cap(2)
                .run_streaming(
                    &points,
                    |ctx, _p: &usize| {
                        if ctx.index == 0 {
                            // Let the others pile up against the window first.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            return Err(Error::invalid_parameter("point", "boom 0"));
                        }
                        Ok(ctx.index)
                    },
                    |_, _| {},
                )
                .expect_err("point 0 must fail the campaign");
            assert!(
                err.to_string().contains("boom 0"),
                "workers={workers}: {err}"
            );
        }
    }

    #[test]
    fn bounded_caps_do_not_change_streamed_output() {
        let points: Vec<usize> = (0..50).collect();
        let eval = |ctx: PointContext, p: &usize| Ok::<_, Error>(p.wrapping_mul(3) ^ ctx.index);
        let mut reference = Vec::new();
        CampaignRunner::new(1)
            .run_streaming(&points, eval, |i, v| reference.push((i, v)))
            .unwrap();
        for (workers, cap) in [(4, 1), (4, 3), (8, 2), (16, 5)] {
            let runner = CampaignRunner::new(workers).with_reorder_cap(cap);
            assert_eq!(runner.reorder_cap(), cap.max(1));
            let mut seen = Vec::new();
            runner
                .run_streaming(&points, eval, |i, v| seen.push((i, v)))
                .unwrap();
            assert_eq!(seen, reference, "workers={workers} cap={cap} diverged");
        }
        // Cap 0 clamps to 1 — fully lock-step draining still succeeds.
        assert_eq!(CampaignRunner::new(2).with_reorder_cap(0).reorder_cap(), 1);
    }
}
