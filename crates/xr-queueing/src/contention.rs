//! Multi-tenant edge contention: the M/M/1 coupling between a population of
//! XR sessions and one edge inference server.
//!
//! The paper's latency model gives every session the edge server to itself.
//! [`EdgeContention`] drops that assumption: `N` concurrent sessions, each
//! generating frames at the same per-session rate, share one edge server
//! whose deterministic service time comes from the testbed's edge compute
//! model. The aggregate inference queue is a stable M/M/1 system with
//!
//! * arrival rate `λ = N × per-session frame rate`, and
//! * service rate `µ = 1 / service time`,
//!
//! so the tagged session's per-frame sojourn (waiting + inference) is
//! exponentially distributed with rate `µ − λ` and mean
//! [`MM1Queue::mean_time_in_system`] — the closed form the testbed's
//! contended stage is property-tested against.

use crate::mm1::MM1Queue;
use serde::{Deserialize, Serialize};
use xr_types::{Error, Result, Seconds};

/// A population of `users` XR sessions sharing one edge inference server,
/// modelled as a stable M/M/1 queue over the aggregate frame stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeContention {
    users: u32,
    per_session_rate: f64,
    service_time: Seconds,
    queue: MM1Queue,
}

impl EdgeContention {
    /// Couples `users` sessions, each producing frames at
    /// `per_session_rate` Hz, to an edge server with the given deterministic
    /// per-frame `service_time`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `users` is zero or a rate or
    /// service time is non-positive/non-finite, and [`Error::UnstableQueue`]
    /// when the offered load `users × per_session_rate` reaches the service
    /// rate `1 / service_time` (the steady state would not exist).
    pub fn new(users: u32, per_session_rate: f64, service_time: Seconds) -> Result<Self> {
        if users == 0 {
            return Err(Error::invalid_parameter("users", "must be at least 1"));
        }
        if !(per_session_rate.is_finite() && per_session_rate > 0.0) {
            return Err(Error::invalid_parameter(
                "per_session_rate",
                "must be positive and finite",
            ));
        }
        let service = service_time.as_f64();
        if !(service.is_finite() && service > 0.0) {
            return Err(Error::invalid_parameter(
                "service_time",
                "must be positive and finite",
            ));
        }
        let queue = MM1Queue::new(f64::from(users) * per_session_rate, 1.0 / service)?;
        Ok(Self {
            users,
            per_session_rate,
            service_time,
            queue,
        })
    }

    /// The same server and per-session rate under a different tenant
    /// population — how the testbed derives each edge *site's* queue from
    /// the base contention configuration when a session roams a multi-edge
    /// topology (the site the tagged session is attached to sets `λ`, so its
    /// utilisation ρ genuinely changes as it migrates).
    ///
    /// # Errors
    ///
    /// As [`EdgeContention::new`]: zero `users`, or a population that
    /// saturates the server, is rejected.
    pub fn with_users(&self, users: u32) -> Result<Self> {
        Self::new(users, self.per_session_rate, self.service_time)
    }

    /// Number of sessions sharing the server (including the tagged one).
    #[must_use]
    pub fn users(&self) -> u32 {
        self.users
    }

    /// Frame rate of one session in Hz.
    #[must_use]
    pub fn per_session_rate(&self) -> f64 {
        self.per_session_rate
    }

    /// Deterministic per-frame service time of the edge server.
    #[must_use]
    pub fn service_time(&self) -> Seconds {
        self.service_time
    }

    /// The underlying aggregate M/M/1 queue.
    #[must_use]
    pub fn queue(&self) -> &MM1Queue {
        &self.queue
    }

    /// Aggregate arrival rate `λ = users × per_session_rate`.
    #[must_use]
    pub fn arrival_rate(&self) -> f64 {
        self.queue.arrival_rate()
    }

    /// Service rate `µ = 1 / service_time`.
    #[must_use]
    pub fn service_rate(&self) -> f64 {
        self.queue.service_rate()
    }

    /// Server utilisation `ρ = λ/µ`, strictly below one.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.queue.utilization()
    }

    /// Rate `µ − λ` of the exponential sojourn distribution the tagged
    /// session's frames experience — what the testbed's contended stage
    /// samples from.
    #[must_use]
    pub fn sojourn_rate(&self) -> f64 {
        self.queue.service_rate() - self.queue.arrival_rate()
    }

    /// Mean sojourn (waiting + inference) of one frame,
    /// `T̄ = 1/(µ − λ)` — the closed form the simulated mean must converge
    /// to.
    #[must_use]
    pub fn mean_sojourn(&self) -> Seconds {
        self.queue.mean_time_in_system()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_the_population_into_one_queue() {
        // 4 users at 30 fps against a 2 ms service time: λ = 120/s, µ = 500/s.
        let c = EdgeContention::new(4, 30.0, Seconds::from_millis(2.0)).unwrap();
        assert_eq!(c.users(), 4);
        assert!((c.arrival_rate() - 120.0).abs() < 1e-12);
        assert!((c.service_rate() - 500.0).abs() < 1e-9);
        assert!((c.utilization() - 0.24).abs() < 1e-12);
        assert!((c.sojourn_rate() - 380.0).abs() < 1e-9);
        assert!((c.mean_sojourn().as_f64() - 1.0 / 380.0).abs() < 1e-12);
        assert_eq!(c.queue().arrival_rate(), c.arrival_rate());
    }

    #[test]
    fn single_user_light_load_sojourn_approaches_service_time() {
        // One 30 fps session on a 0.1 ms server: ρ = 0.003, so the mean
        // sojourn is within half a percent of the bare service time — the
        // regime where contention must reproduce the uncontended model.
        let c = EdgeContention::new(1, 30.0, Seconds::from_millis(0.1)).unwrap();
        let ratio = c.mean_sojourn().as_f64() / c.service_time().as_f64();
        assert!(ratio > 1.0);
        assert!(ratio < 1.005, "ratio {ratio}");
    }

    #[test]
    fn repopulating_preserves_server_and_rate() {
        let base = EdgeContention::new(4, 30.0, Seconds::from_millis(2.0)).unwrap();
        let heavier = base.with_users(6).unwrap();
        assert_eq!(heavier.users(), 6);
        assert!((heavier.per_session_rate() - base.per_session_rate()).abs() < 1e-15);
        assert_eq!(heavier.service_time(), base.service_time());
        assert!((heavier.arrival_rate() - 180.0).abs() < 1e-12);
        assert!(heavier.mean_sojourn() > base.mean_sojourn());
        assert_eq!(base.with_users(4).unwrap(), base);
        assert!(base.with_users(0).is_err());
        assert!(matches!(
            base.with_users(17),
            Err(Error::UnstableQueue { .. })
        ));
    }

    #[test]
    fn sojourn_grows_with_population() {
        let service = Seconds::from_millis(2.0);
        let mut last = Seconds::ZERO;
        for users in [1, 4, 8, 12, 16] {
            let c = EdgeContention::new(users, 30.0, service).unwrap();
            assert!(c.mean_sojourn() > last, "users {users}");
            assert!(c.utilization() < 1.0);
            last = c.mean_sojourn();
        }
    }

    #[test]
    fn saturated_and_invalid_populations_are_rejected() {
        // 17 × 30 fps = 510/s ≥ µ = 500/s.
        let service = Seconds::from_millis(2.0);
        assert!(matches!(
            EdgeContention::new(17, 30.0, service),
            Err(Error::UnstableQueue { .. })
        ));
        assert!(EdgeContention::new(0, 30.0, service).is_err());
        assert!(EdgeContention::new(1, 0.0, service).is_err());
        assert!(EdgeContention::new(1, f64::NAN, service).is_err());
        assert!(EdgeContention::new(1, 30.0, Seconds::ZERO).is_err());
        assert!(EdgeContention::new(1, 30.0, Seconds::new(f64::INFINITY)).is_err());
    }
}
