//! End-to-end integration: scenario → analytical framework → report, across
//! execution targets, devices and CNNs.

use xr_core::{Scenario, XrPerformanceModel};
use xr_devices::{CnnCatalog, DeviceCatalog};
use xr_integration::evaluation_scenario;
use xr_types::{ExecutionTarget, Segment};

#[test]
fn every_device_and_target_produces_a_consistent_report() {
    let model = XrPerformanceModel::published();
    for device in DeviceCatalog::table1().xr_clients() {
        for target in [
            ExecutionTarget::Local,
            ExecutionTarget::Remote,
            ExecutionTarget::Split { client_share: 0.5 },
        ] {
            let scenario = Scenario::builder()
                .client_from_catalog(&device.name)
                .unwrap()
                .execution(target)
                .build()
                .unwrap();
            let report = model.analyze(&scenario).unwrap();
            assert!(
                report.latency.total().as_f64() > 0.0,
                "{} / {target}",
                device.name
            );
            assert!(report.energy.total().as_f64() > 0.0);
            // The gated total never exceeds the sum of all segments.
            assert!(report.latency.total() <= report.latency.sum_of_segments());
            // Energy includes base + thermal on top of the segments.
            assert!(report.energy.total() > report.energy.base());
        }
    }
}

#[test]
fn every_on_device_cnn_is_analysable() {
    let model = XrPerformanceModel::published();
    let catalog = CnnCatalog::table2();
    let mut latencies = Vec::new();
    for cnn in catalog.on_device_models() {
        let scenario = Scenario::builder()
            .local_cnn(&cnn.name)
            .unwrap()
            .execution(ExecutionTarget::Local)
            .build()
            .unwrap();
        let report = model.analyze(&scenario).unwrap();
        latencies.push((
            cnn.name.clone(),
            report.latency.segment(Segment::LocalInference),
        ));
    }
    assert_eq!(latencies.len(), 9);
    // Heavier networks must never be faster than the lightest quantised one.
    let lightest = latencies
        .iter()
        .find(|(name, _)| name == "MobileNetV1_240_Quant")
        .unwrap()
        .1;
    for (name, latency) in &latencies {
        assert!(
            *latency >= lightest * 0.99,
            "{name} faster than the lightest model"
        );
    }
}

#[test]
fn remote_offload_reduces_client_compute_energy() {
    let model = XrPerformanceModel::published();
    let local = model
        .analyze(&evaluation_scenario(500.0, 2.0, ExecutionTarget::Local))
        .unwrap();
    let remote = model
        .analyze(&evaluation_scenario(500.0, 2.0, ExecutionTarget::Remote))
        .unwrap();
    // Offloading removes local inference energy entirely…
    assert_eq!(remote.energy.segment(Segment::LocalInference).as_f64(), 0.0);
    assert!(local.energy.segment(Segment::LocalInference).as_f64() > 0.0);
    // …and the energy spent while waiting for the edge (idle radio) is far
    // below what the same inference would have cost locally.
    assert!(
        remote.energy.segment(Segment::RemoteInference)
            < local.energy.segment(Segment::LocalInference)
    );
}

#[test]
fn latency_budget_analysis_is_monotone_in_frame_size() {
    let model = XrPerformanceModel::published();
    let mut last = 0.0;
    for size in [300.0, 400.0, 500.0, 600.0, 700.0] {
        let report = model
            .analyze(&evaluation_scenario(size, 2.0, ExecutionTarget::Remote))
            .unwrap();
        let total = report.latency_ms().as_f64();
        assert!(total > last, "latency must grow with frame size");
        last = total;
    }
}

#[test]
fn cooperation_segment_only_counts_when_requested() {
    let model = XrPerformanceModel::published();
    let default_scenario = evaluation_scenario(500.0, 2.0, ExecutionTarget::Local);
    let default_report = model.analyze(&default_scenario).unwrap();

    let mut coop = default_scenario.clone();
    coop.cooperation.include_in_totals = true;
    coop.segments = xr_types::SegmentSet::full();
    let coop_report = model.analyze(&coop).unwrap();
    assert!(coop_report.latency.total() > default_report.latency.total());
    assert!(coop_report.energy.total() > default_report.energy.total());
}
