//! Quickstart: analyse one XR object-detection scenario with the proposed
//! framework and print the per-segment latency/energy breakdown and the
//! AoI/RoI of every sensor.
//!
//! ```text
//! cargo run -p xr-examples --bin quickstart
//! ```

use xr_core::{Scenario, XrPerformanceModel};
use xr_types::{Error, ExecutionTarget, Segment};

fn main() -> Result<(), Error> {
    // A OnePlus 8 Pro (XR2 in Table I) runs object detection at 30 fps on
    // 500 px² frames and offloads inference to a Jetson AGX Xavier edge
    // server over 5 GHz Wi-Fi.
    let scenario = Scenario::builder()
        .client_from_catalog("XR2")?
        .frame_side(500.0)
        .execution(ExecutionTarget::Remote)
        .build()?;

    let model = XrPerformanceModel::published();
    let report = model.analyze(&scenario)?;

    println!(
        "=== xr-perf quickstart: remote inference on {} ===",
        scenario.client.name
    );
    println!("\nPer-segment latency:");
    for (segment, latency) in report.latency.iter() {
        if latency.as_f64() > 0.0 {
            println!(
                "  {:<42} {:>9.2} ms",
                segment.to_string(),
                latency.as_f64() * 1e3
            );
        }
    }
    println!(
        "  {:<42} {:>9.2} ms",
        "END-TO-END (Eq. 1)",
        report.latency_ms().as_f64()
    );

    println!("\nPer-segment energy:");
    for (segment, energy) in report.energy.iter() {
        if energy.as_f64() > 0.0 {
            println!(
                "  {:<42} {:>9.2} mJ",
                segment.to_string(),
                energy.as_f64() * 1e3
            );
        }
    }
    println!(
        "  {:<42} {:>9.2} mJ",
        "base energy",
        report.energy.base().as_f64() * 1e3
    );
    println!(
        "  {:<42} {:>9.2} mJ",
        "thermal energy",
        report.energy.thermal().as_f64() * 1e3
    );
    println!(
        "  {:<42} {:>9.2} mJ",
        "TOTAL (Eq. 19)",
        report.energy_mj().as_f64()
    );

    println!("\nAge-of-Information per external sensor:");
    for sensor in &report.aoi.sensors {
        println!(
            "  {:<20} generation {:>7.2} Hz | mean AoI {:>7.2} ms | RoI {:>5.2} ({})",
            sensor.name,
            sensor.generation_frequency.as_f64(),
            sensor.average.as_f64() * 1e3,
            sensor.roi,
            if sensor.is_fresh() { "fresh" } else { "STALE" }
        );
    }

    // How much of the end-to-end latency is the edge round trip?
    let offload = report.latency.segment(Segment::RemoteInference)
        + report.latency.segment(Segment::Transmission)
        + report.latency.segment(Segment::FrameEncoding);
    println!(
        "\nOffload path (encode + uplink + edge inference): {:.2} ms of {:.2} ms total",
        offload.as_f64() * 1e3,
        report.latency_ms().as_f64()
    );
    Ok(())
}
