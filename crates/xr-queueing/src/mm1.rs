//! Closed-form steady-state results for the M/M/1 queue.

use serde::{Deserialize, Serialize};
use xr_types::{Error, Result, Seconds};

/// A stable M/M/1 queue with Poisson arrivals at rate `λ` and exponential
/// service at rate `µ` (both in events per second).
///
/// The paper uses the mean time in system `T̄ = 1/(µ − λ)` as the buffering
/// delay of the XR input buffer (Eq. 7 via Eq. 22).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MM1Queue {
    arrival_rate: f64,
    service_rate: f64,
}

impl MM1Queue {
    /// Creates a queue from an arrival rate `λ` and a service rate `µ`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if either rate is non-positive or
    /// non-finite, and [`Error::UnstableQueue`] if `λ ≥ µ` (the steady state
    /// would not exist).
    pub fn new(arrival_rate: f64, service_rate: f64) -> Result<Self> {
        if !(arrival_rate.is_finite() && arrival_rate > 0.0) {
            return Err(Error::invalid_parameter(
                "arrival_rate",
                "must be positive and finite",
            ));
        }
        if !(service_rate.is_finite() && service_rate > 0.0) {
            return Err(Error::invalid_parameter(
                "service_rate",
                "must be positive and finite",
            ));
        }
        if arrival_rate >= service_rate {
            return Err(Error::UnstableQueue {
                arrival_rate,
                service_rate,
            });
        }
        Ok(Self {
            arrival_rate,
            service_rate,
        })
    }

    /// Arrival rate `λ` in events per second.
    #[must_use]
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    /// Service rate `µ` in events per second.
    #[must_use]
    pub fn service_rate(&self) -> f64 {
        self.service_rate
    }

    /// Server utilisation `ρ = λ/µ`, strictly below one for a stable queue.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.arrival_rate / self.service_rate
    }

    /// Mean time spent in the system (waiting + service), `T̄ = 1/(µ − λ)` —
    /// Eq. 22 of the paper.
    #[must_use]
    pub fn mean_time_in_system(&self) -> Seconds {
        Seconds::new(1.0 / (self.service_rate - self.arrival_rate))
    }

    /// Mean waiting time in the queue (excluding service),
    /// `W_q = ρ / (µ − λ)`.
    #[must_use]
    pub fn mean_waiting_time(&self) -> Seconds {
        Seconds::new(self.utilization() / (self.service_rate - self.arrival_rate))
    }

    /// Mean number of customers in the system, `L = ρ / (1 − ρ)`.
    #[must_use]
    pub fn mean_number_in_system(&self) -> f64 {
        let rho = self.utilization();
        rho / (1.0 - rho)
    }

    /// Mean number waiting in the queue, `L_q = ρ² / (1 − ρ)`.
    #[must_use]
    pub fn mean_queue_length(&self) -> f64 {
        let rho = self.utilization();
        rho * rho / (1.0 - rho)
    }

    /// Probability that an arriving customer finds exactly `n` customers in
    /// the system, `P(N = n) = (1 − ρ)·ρⁿ`.
    #[must_use]
    pub fn probability_of_n(&self, n: u32) -> f64 {
        let rho = self.utilization();
        (1.0 - rho) * rho.powi(n as i32)
    }

    /// Probability that the time in system exceeds `t`:
    /// `P(T > t) = exp(−(µ − λ)·t)` for `t > 0`, and exactly 1 for `t ≤ 0`
    /// (the sojourn is almost surely positive; without the clamp a negative
    /// `t` would produce an "exceedance probability" above one).
    #[must_use]
    pub fn probability_sojourn_exceeds(&self, t: Seconds) -> f64 {
        if t.as_f64() <= 0.0 {
            return 1.0;
        }
        (-(self.service_rate - self.arrival_rate) * t.as_f64()).exp()
    }

    /// Verifies Little's law `L = λ·T̄` to within floating-point error; used
    /// by tests and by the simulator's self-check.
    #[must_use]
    pub fn littles_law_residual(&self) -> f64 {
        self.mean_number_in_system() - self.arrival_rate * self.mean_time_in_system().as_f64()
    }

    /// The steady-state mean AoI of a status-update stream through an M/M/1
    /// first-come-first-served queue,
    /// `Δ̄ = (1/µ)·(1 + 1/ρ + ρ²/(1−ρ))` (Kaul–Yates–Gruteser).
    ///
    /// The paper's AoI model (Eq. 23) approximates the queueing contribution
    /// with `T̄`; the exact expression is provided for the ablation bench that
    /// quantifies the approximation error.
    #[must_use]
    pub fn mean_aoi_exact(&self) -> Seconds {
        let rho = self.utilization();
        let mu = self.service_rate;
        Seconds::new((1.0 / mu) * (1.0 + 1.0 / rho + rho * rho / (1.0 - rho)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_values() {
        // λ = 2/s, µ = 5/s → ρ = 0.4, T = 1/3 s, W = 0.4/3, L = 2/3, Lq = 4/15.
        let q = MM1Queue::new(2.0, 5.0).unwrap();
        assert!((q.utilization() - 0.4).abs() < 1e-12);
        assert!((q.mean_time_in_system().as_f64() - 1.0 / 3.0).abs() < 1e-12);
        assert!((q.mean_waiting_time().as_f64() - 0.4 / 3.0).abs() < 1e-12);
        assert!((q.mean_number_in_system() - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.mean_queue_length() - 4.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn littles_law_holds() {
        for (lambda, mu) in [(1.0, 2.0), (10.0, 11.0), (100.0, 400.0), (0.5, 3.0)] {
            let q = MM1Queue::new(lambda, mu).unwrap();
            assert!(q.littles_law_residual().abs() < 1e-9, "λ={lambda} µ={mu}");
        }
    }

    #[test]
    fn waiting_plus_service_equals_sojourn() {
        let q = MM1Queue::new(3.0, 7.0).unwrap();
        let total = q.mean_waiting_time().as_f64() + 1.0 / q.service_rate();
        assert!((total - q.mean_time_in_system().as_f64()) < 1e-12);
    }

    #[test]
    fn state_probabilities_sum_to_one() {
        let q = MM1Queue::new(4.0, 9.0).unwrap();
        let total: f64 = (0..1000).map(|n| q.probability_of_n(n)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Geometric decay.
        assert!(q.probability_of_n(0) > q.probability_of_n(1));
    }

    #[test]
    fn sojourn_tail_is_exponential() {
        let q = MM1Queue::new(1.0, 3.0).unwrap();
        assert!((q.probability_sojourn_exceeds(Seconds::ZERO) - 1.0).abs() < 1e-12);
        let half_life = (2.0_f64).ln() / 2.0;
        assert!((q.probability_sojourn_exceeds(Seconds::new(half_life)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exact_aoi_exceeds_paper_approximation_at_low_load() {
        // At low ρ the AoI is dominated by the inter-arrival gap, which the
        // paper's T̄ approximation ignores; the exact formula must be larger.
        let q = MM1Queue::new(10.0, 1000.0).unwrap();
        assert!(q.mean_aoi_exact() > q.mean_time_in_system());
    }

    #[test]
    fn unstable_and_invalid_queues_rejected() {
        assert!(matches!(
            MM1Queue::new(5.0, 5.0),
            Err(Error::UnstableQueue { .. })
        ));
        assert!(matches!(
            MM1Queue::new(6.0, 5.0),
            Err(Error::UnstableQueue { .. })
        ));
        assert!(MM1Queue::new(0.0, 5.0).is_err());
        assert!(MM1Queue::new(1.0, 0.0).is_err());
        assert!(MM1Queue::new(f64::NAN, 5.0).is_err());
        assert!(MM1Queue::new(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn sojourn_tail_clamps_at_and_below_zero() {
        // P(T > 0) = 1 exactly, and negative horizons must not report an
        // exceedance "probability" above one (exp of a positive number).
        let q = MM1Queue::new(2.0, 5.0).unwrap();
        assert_eq!(q.probability_sojourn_exceeds(Seconds::ZERO), 1.0);
        assert_eq!(q.probability_sojourn_exceeds(Seconds::new(-1.0)), 1.0);
        assert_eq!(
            q.probability_sojourn_exceeds(Seconds::from_millis(-0.1)),
            1.0
        );
        // Positive horizons stay a proper tail: decreasing towards zero.
        let near = q.probability_sojourn_exceeds(Seconds::new(1e-9));
        assert!(near < 1.0 && near > 0.999_999);
        assert!(q.probability_sojourn_exceeds(Seconds::new(1e6)) < 1e-300);
    }

    #[test]
    fn near_saturation_stays_finite_and_ordered() {
        // ρ → 1: the closed forms blow up but must remain finite, positive
        // and correctly ordered for every representable stable queue.
        let mu = 10.0;
        let q = MM1Queue::new(mu * (1.0 - 1e-12), mu).unwrap();
        let sojourn = q.mean_time_in_system().as_f64();
        assert!(sojourn.is_finite() && sojourn > 1e10);
        let aoi = q.mean_aoi_exact().as_f64();
        assert!(aoi.is_finite() && aoi > 0.0);
        // Near saturation the AoI is dominated by the queueing term
        // ρ²/(µ(1−ρ)), which approaches the mean sojourn 1/(µ−λ); the exact
        // AoI must exceed the sojourn (it adds the 1/µ and 1/λ terms).
        assert!(aoi > sojourn);
        assert!(aoi < sojourn * 1.001);
        // The sojourn tail barely decays over any practical horizon.
        assert!(q.probability_sojourn_exceeds(Seconds::new(1.0)) > 0.999);
    }

    #[test]
    fn low_load_aoi_is_dominated_by_the_interarrival_gap() {
        // ρ → 0: Δ̄ → 1/λ (a sample ages a full inter-arrival gap before the
        // next one exists); the queueing term vanishes.
        let q = MM1Queue::new(1.0, 1e9).unwrap();
        let aoi = q.mean_aoi_exact().as_f64();
        assert!((aoi - 1.0).abs() < 1e-6, "Δ̄ {aoi} should approach 1/λ = 1");
    }

    #[test]
    fn high_utilisation_blows_up_delay() {
        let light = MM1Queue::new(1.0, 10.0).unwrap();
        let heavy = MM1Queue::new(9.9, 10.0).unwrap();
        assert!(heavy.mean_time_in_system() > light.mean_time_in_system() * 50.0);
    }
}
