//! Offline stand-in for the `rand_distr` 0.4 crate.
//!
//! Provides the [`Distribution`] trait plus the [`Exp`] and [`Normal`]
//! distributions used by the queueing and testbed simulators. Exponential
//! sampling uses inversion; normal sampling uses Box–Muller (no cached
//! second variate, which costs one extra uniform draw per sample but keeps
//! the sampler stateless like the real crate's API).

use rand::{FromRng, RngCore};

/// Types that can produce samples of `T` from a random source.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Exp::new`] for non-positive rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpError;

impl core::fmt::Display for ExpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "rate (lambda) must be positive and finite")
    }
}

impl std::error::Error for ExpError {}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates the distribution; `lambda` must be positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`ExpError`] if `lambda` is not a positive finite number.
    pub fn new(lambda: f64) -> Result<Self, ExpError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ExpError)
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inversion: -ln(1 - U) / lambda, with U in [0, 1).
        let u = f64::from_rng(rng);
        -(1.0 - u).ln() / self.lambda
    }
}

/// Error returned by [`Normal::new`] for invalid standard deviations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl core::fmt::Display for NormalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "standard deviation must be non-negative and finite")
    }
}

impl std::error::Error for NormalError {}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution; `std_dev` must be non-negative and finite.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] if `std_dev` is negative, NaN, or infinite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(NormalError)
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller transform; clamp u1 away from zero so ln stays finite.
        let u1 = f64::from_rng(rng).max(f64::MIN_POSITIVE);
        let u2 = f64::from_rng(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::{Distribution, Exp, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_rejects_bad_rates() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Exp::new(2.5).is_ok());
    }

    #[test]
    fn exp_mean_matches_one_over_lambda() {
        let mut rng = StdRng::seed_from_u64(11);
        let exp = Exp::new(4.0).unwrap();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.25).abs() < 5e-3, "mean {mean} far from 0.25");
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = StdRng::seed_from_u64(23);
        let normal = Normal::new(3.0, 2.0).unwrap();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 3.0).abs() < 2e-2, "mean {mean} far from 3.0");
        assert!((var - 4.0).abs() < 8e-2, "variance {var} far from 4.0");
    }
}
