//! The Fig. 4(e)/(f) Age-of-Information experiments.
//!
//! Fig. 4(e): three sensors generating information every 5, 10 and 15 ms
//! (200, 100 and 66.67 Hz) feed an XR application that requires one update
//! every 5 ms; AoI is plotted over time for ground truth and for the
//! analytical model. Fig. 4(f): the 100 Hz sensor's AoI staircase and the
//! corresponding RoI at each update.

use crate::context::ExperimentContext;
use serde::{Deserialize, Serialize};
use xr_core::{AoiModel, SensorConfig};
use xr_stats::metrics;
use xr_testbed::AoiGroundTruth;
use xr_types::{Hertz, Meters, Result, Seconds};

/// The request period of the Fig. 4(e)/(f) scenario: one update every 5 ms.
pub const REQUEST_PERIOD_MS: f64 = 5.0;
/// Number of update cycles observed (x-axis of Fig. 4(e): 15–90 ms).
pub const UPDATES: u32 = 18;
/// Input-buffer service rate used in the AoI experiments (items/s).
pub const SERVICE_RATE: f64 = 2_000.0;

/// One point of an AoI time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AoiPoint {
    /// Time of the update request (ms).
    pub time_ms: f64,
    /// Ground-truth AoI (ms).
    pub ground_truth_ms: f64,
    /// Model-predicted AoI (ms).
    pub proposed_ms: f64,
}

/// One point of the Fig. 4(f) RoI staircase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoiPoint {
    /// Time of the update request (ms).
    pub time_ms: f64,
    /// Model-predicted AoI at this update (ms).
    pub aoi_ms: f64,
    /// RoI accumulated up to this update.
    pub roi: f64,
}

/// The Fig. 4(e) sweep: one AoI series per sensor frequency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AoiSweep {
    /// Sensor generation frequencies (Hz), one per series.
    pub frequencies: Vec<f64>,
    /// Per-frequency AoI series.
    pub series: Vec<Vec<AoiPoint>>,
}

impl AoiSweep {
    /// Mean absolute error of the model against the ground truth over every
    /// series, in ms.
    #[must_use]
    pub fn mean_absolute_error_ms(&self) -> f64 {
        let truth: Vec<f64> = self
            .series
            .iter()
            .flatten()
            .map(|p| p.ground_truth_ms)
            .collect();
        let predicted: Vec<f64> = self
            .series
            .iter()
            .flatten()
            .map(|p| p.proposed_ms)
            .collect();
        metrics::mean_absolute_error(&truth, &predicted)
    }

    /// CSV/console rows: `frequency, time, gt, proposed`.
    #[must_use]
    pub fn rows(&self) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        for (freq, series) in self.frequencies.iter().zip(&self.series) {
            for p in series {
                rows.push(vec![
                    format!("{freq:.2}"),
                    format!("{:.1}", p.time_ms),
                    format!("{:.2}", p.ground_truth_ms),
                    format!("{:.2}", p.proposed_ms),
                ]);
            }
        }
        rows
    }
}

fn sensor(freq_hz: f64) -> SensorConfig {
    SensorConfig::new(
        format!("sensor-{freq_hz:.0}hz"),
        Hertz::new(freq_hz),
        Meters::new(30.0),
    )
}

/// Runs the Fig. 4(e) experiment: AoI over time for sensors at 200, 100 and
/// 66.67 Hz against a 5 ms update requirement.
///
/// # Errors
///
/// Propagates queueing errors.
pub fn aoi_over_time(ctx: &ExperimentContext) -> Result<AoiSweep> {
    let model = AoiModel::published();
    let request_period = Seconds::from_millis(REQUEST_PERIOD_MS);
    let frequencies = vec![200.0, 100.0, 66.67];
    let mut series = Vec::new();
    for (i, freq) in frequencies.iter().enumerate() {
        let cfg = sensor(*freq);
        let analytic = model.sensor_series(&cfg, SERVICE_RATE, request_period, UPDATES)?;
        let measured = AoiGroundTruth::simulate(
            &cfg,
            SERVICE_RATE,
            request_period,
            UPDATES,
            0.02,
            ctx.seed() ^ (i as u64 + 1),
        )?;
        let points = analytic
            .iter()
            .zip(&measured.aoi)
            .enumerate()
            .map(|(n, (a, gt))| AoiPoint {
                time_ms: REQUEST_PERIOD_MS * (n as f64 + 1.0),
                ground_truth_ms: gt.as_f64() * 1e3,
                proposed_ms: a.as_f64() * 1e3,
            })
            .collect();
        series.push(points);
    }
    Ok(AoiSweep {
        frequencies,
        series,
    })
}

/// Runs the Fig. 4(f) experiment: the AoI staircase and RoI of the 100 Hz
/// sensor under a 5 ms update requirement.
///
/// # Errors
///
/// Propagates queueing errors.
pub fn roi_staircase(_ctx: &ExperimentContext) -> Result<Vec<RoiPoint>> {
    let model = AoiModel::published();
    let request_period = Seconds::from_millis(REQUEST_PERIOD_MS);
    let cfg = sensor(100.0);
    let series = model.sensor_series(&cfg, SERVICE_RATE, request_period, 8)?;
    let mut points = Vec::new();
    for (i, aoi) in series.iter().enumerate() {
        let n = i as f64 + 1.0;
        // RoI up to this update: processed frequency (1 / mean AoI so far)
        // over the required frequency (1 / request period), Eqs. 25–26.
        let mean_so_far: f64 = series[..=i].iter().map(|a| a.as_f64()).sum::<f64>() / n;
        let processed = 1.0 / mean_so_far.max(f64::MIN_POSITIVE);
        let required = 1.0 / request_period.as_f64();
        points.push(RoiPoint {
            time_ms: REQUEST_PERIOD_MS * n,
            aoi_ms: aoi.as_f64() * 1e3,
            roi: processed / required,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aoi_grows_when_sensors_lag_the_request_rate() {
        let ctx = ExperimentContext::quick(31).unwrap();
        let sweep = aoi_over_time(&ctx).unwrap();
        assert_eq!(sweep.frequencies, vec![200.0, 100.0, 66.67]);
        assert_eq!(sweep.series.len(), 3);
        for series in &sweep.series {
            assert_eq!(series.len(), UPDATES as usize);
        }
        // 200 Hz stays flat and small; 66.67 Hz grows the fastest.
        let last = |i: usize| sweep.series[i].last().unwrap().proposed_ms;
        assert!(last(0) < last(1));
        assert!(last(1) < last(2));
        // Model tracks the simulated ground truth within a few ms on average.
        assert!(
            sweep.mean_absolute_error_ms() < 5.0,
            "{}",
            sweep.mean_absolute_error_ms()
        );
        assert!(!sweep.rows().is_empty());
    }

    #[test]
    fn roi_staircase_decreases_as_information_goes_stale() {
        let ctx = ExperimentContext::quick(32).unwrap();
        let staircase = roi_staircase(&ctx).unwrap();
        assert_eq!(staircase.len(), 8);
        // AoI increases step by step (the 100 Hz sensor lags a 5 ms cadence)…
        assert!(staircase.last().unwrap().aoi_ms > staircase.first().unwrap().aoi_ms);
        // …and the RoI keeps dropping below 1.
        assert!(staircase.last().unwrap().roi < staircase.first().unwrap().roi);
        assert!(staircase.last().unwrap().roi < 1.0);
        // The Fig. 4(f) annotations: AoI ≈ 10/15/20 ms at successive marks.
        let steps: Vec<f64> = staircase
            .windows(2)
            .map(|w| w[1].aoi_ms - w[0].aoi_ms)
            .collect();
        for step in steps {
            assert!((step - 5.0).abs() < 1.0, "step {step}");
        }
    }
}
