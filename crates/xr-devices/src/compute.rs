//! The computation-resource availability model of Eq. 3.
//!
//! The XR application asks the OS for a share of the CPU and GPU; the
//! *effective* compute resource `c_client` that results cannot be written in
//! closed form, so the paper regresses it on the clock frequencies and the
//! utilisation split:
//!
//! ```text
//! c_client = ω_c·(18.24 + 1.84·f_c² − 6.02·f_c)
//!          + (1 − ω_c)·(193.67 + 400.96·f_g² − 558.29·f_g)      (R² = 0.87)
//! ```
//!
//! `c_client` divides the frame-size terms in every computation segment
//! (Eqs. 2, 4, 8–11), so its unit is "pixel² per millisecond of work". The
//! paper also derives the edge/client coupling `c_ε = 11.76 · c_client` from
//! the decoding-discount experiment around Eq. 14.
//!
//! Two usage modes are provided, mirroring the paper's methodology:
//!
//! * [`ComputeResourceModel::published`] — the exact published coefficients.
//! * [`ComputeResourceModel::fit`] — refit the same functional form on a
//!   (simulated) training set, which is what the experiment harness does
//!   before validating against held-out devices.

use serde::{Deserialize, Serialize};
use xr_stats::{FittedLinearModel, LinearRegression};
use xr_types::{GigaHertz, Ratio, Result};

/// Default edge-to-client compute coupling derived in the paper from the
/// decode-discount experiment: `c_ε = 11.76 · c_client`.
pub const EDGE_CLIENT_COMPUTE_RATIO: f64 = 11.76;

/// Lower clamp applied to the regression output so the resource stays usable
/// as a divisor even outside the fitted covariate range.
const MIN_RESOURCE: f64 = 0.5;

/// The compute-resource availability regression (Eq. 3).
///
/// Internally the model is linear in the six structural features
/// `[ω_c, ω_c·f_c, ω_c·f_c², ω̄_c, ω̄_c·f_g, ω̄_c·f_g²]` with no global
/// intercept, which is exactly the shape of Eq. 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComputeResourceModel {
    model: FittedLinearModel,
    edge_ratio: f64,
}

impl ComputeResourceModel {
    /// The published coefficients of Eq. 3 (R² = 0.87).
    #[must_use]
    pub fn published() -> Self {
        // Feature order: [ω_c, ω_c·f_c, ω_c·f_c², ω̄_c, ω̄_c·f_g, ω̄_c·f_g²]
        Self {
            model: FittedLinearModel::from_coefficients(
                0.0,
                vec![18.24, -6.02, 1.84, 193.67, -558.29, 400.96],
                0.87,
            ),
            edge_ratio: EDGE_CLIENT_COMPUTE_RATIO,
        }
    }

    /// Refits the Eq.-3 functional form on observations
    /// `(f_c, f_g, ω_c) → c_client`.
    ///
    /// # Errors
    ///
    /// Propagates regression errors (empty, ragged, or singular designs).
    pub fn fit(observations: &[(GigaHertz, GigaHertz, Ratio)], resources: &[f64]) -> Result<Self> {
        let xs: Vec<Vec<f64>> = observations
            .iter()
            .map(|(fc, fg, wc)| Self::features(*fc, *fg, *wc))
            .collect();
        let model = LinearRegression::new()
            .without_intercept()
            .fit(&xs, resources)?;
        Ok(Self {
            model,
            edge_ratio: EDGE_CLIENT_COMPUTE_RATIO,
        })
    }

    /// Overrides the edge/client coupling ratio (default 11.76).
    ///
    /// # Panics
    ///
    /// Panics if the ratio is not strictly positive.
    #[must_use]
    pub fn with_edge_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio > 0.0, "edge/client ratio must be positive");
        self.edge_ratio = ratio;
        self
    }

    /// The structural feature vector of Eq. 3 for a covariate triple.
    #[must_use]
    pub fn features(cpu_clock: GigaHertz, gpu_clock: GigaHertz, cpu_share: Ratio) -> Vec<f64> {
        let fc = cpu_clock.as_f64();
        let fg = gpu_clock.as_f64();
        let wc = cpu_share.as_f64();
        let wg = 1.0 - wc;
        vec![wc, wc * fc, wc * fc * fc, wg, wg * fg, wg * fg * fg]
    }

    /// The allocated client compute resource `c_client` (pixel²/ms), clamped
    /// below so it remains usable as a divisor outside the fitted range.
    #[must_use]
    pub fn client_resource(
        &self,
        cpu_clock: GigaHertz,
        gpu_clock: GigaHertz,
        cpu_share: Ratio,
    ) -> f64 {
        self.model
            .predict(&Self::features(cpu_clock, gpu_clock, cpu_share))
            .max(MIN_RESOURCE)
    }

    /// The edge-server compute resource `c_ε` coupled to a client resource
    /// through the paper's ratio (`c_ε = 11.76 · c_client` by default).
    #[must_use]
    pub fn edge_resource_from_client(&self, client_resource: f64) -> f64 {
        (client_resource * self.edge_ratio).max(MIN_RESOURCE)
    }

    /// The edge-server compute resource evaluated directly from the edge
    /// device's own clocks (used when the edge server is modelled explicitly
    /// rather than through the coupling ratio).
    #[must_use]
    pub fn edge_resource(
        &self,
        cpu_clock: GigaHertz,
        gpu_clock: GigaHertz,
        cpu_share: Ratio,
    ) -> f64 {
        self.client_resource(cpu_clock, gpu_clock, cpu_share) * self.edge_ratio
    }

    /// The edge/client coupling ratio in use.
    #[must_use]
    pub fn edge_ratio(&self) -> f64 {
        self.edge_ratio
    }

    /// R² of the underlying regression.
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        self.model.r_squared()
    }

    /// Access to the fitted regression.
    #[must_use]
    pub fn regression(&self) -> &FittedLinearModel {
        &self.model
    }
}

impl Default for ComputeResourceModel {
    fn default() -> Self {
        Self::published()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(v: f64) -> GigaHertz {
        GigaHertz::new(v)
    }

    #[test]
    fn published_matches_eq3_cpu_only() {
        let m = ComputeResourceModel::published();
        // ω_c = 1: c = 18.24 + 1.84·f² − 6.02·f
        for f in [1.0, 2.0, 2.5, 3.0] {
            let expected = 18.24 + 1.84 * f * f - 6.02 * f;
            let got = m.client_resource(ghz(f), ghz(0.6), Ratio::ONE);
            assert!((got - expected).abs() < 1e-9, "f={f}: {got} vs {expected}");
        }
    }

    #[test]
    fn published_matches_eq3_gpu_only() {
        let m = ComputeResourceModel::published();
        // ω_c = 0: c = 193.67 + 400.96·f_g² − 558.29·f_g (clamped below).
        let f = 1.3;
        let expected = 193.67 + 400.96 * f * f - 558.29 * f;
        let got = m.client_resource(ghz(2.0), ghz(f), Ratio::ZERO);
        assert!((got - expected).abs() < 1e-9);
    }

    #[test]
    fn mixed_share_interpolates() {
        let m = ComputeResourceModel::published();
        let cpu_only = m.client_resource(ghz(3.0), ghz(1.3), Ratio::ONE);
        let gpu_only = m.client_resource(ghz(3.0), ghz(1.3), Ratio::ZERO);
        let mixed = m.client_resource(ghz(3.0), ghz(1.3), Ratio::new(0.5));
        let expected = 0.5 * cpu_only + 0.5 * gpu_only;
        assert!((mixed - expected).abs() < 1e-9);
    }

    #[test]
    fn extrapolated_negative_region_is_clamped() {
        let m = ComputeResourceModel::published();
        // Near the GPU quadratic's minimum (~0.7 GHz) the raw value dips below
        // zero; the clamp keeps it usable as a divisor.
        let c = m.client_resource(ghz(2.0), ghz(0.7), Ratio::ZERO);
        assert!(c >= 0.5);
    }

    #[test]
    fn edge_resource_uses_published_coupling() {
        let m = ComputeResourceModel::published();
        let c = m.client_resource(ghz(2.84), ghz(0.587), Ratio::new(0.7));
        assert!((m.edge_resource_from_client(c) - 11.76 * c).abs() < 1e-9);
        assert!((m.edge_ratio() - EDGE_CLIENT_COMPUTE_RATIO).abs() < 1e-12);
        let m = m.with_edge_ratio(5.0);
        assert!((m.edge_resource_from_client(c) - 5.0 * c).abs() < 1e-9);
        assert!((m.edge_resource(ghz(2.84), ghz(0.587), Ratio::new(0.7)) - 5.0 * c).abs() < 1e-9);
    }

    #[test]
    fn refit_recovers_structural_coefficients() {
        // Generate data from a known monotone law and refit the Eq.-3 form.
        let mut observations = Vec::new();
        let mut resources = Vec::new();
        for fc10 in 10..=32 {
            for fg10 in 4..=14 {
                for wc10 in 0..=10 {
                    let fc = fc10 as f64 / 10.0;
                    let fg = fg10 as f64 / 10.0;
                    let wc = wc10 as f64 / 10.0;
                    observations.push((ghz(fc), ghz(fg), Ratio::new(wc)));
                    // True law: c = ω_c·(4 + 5·f_c) + ω̄_c·(2 + 30·f_g)
                    resources.push(wc * (4.0 + 5.0 * fc) + (1.0 - wc) * (2.0 + 30.0 * fg));
                }
            }
        }
        let fit = ComputeResourceModel::fit(&observations, &resources).unwrap();
        assert!(fit.r_squared() > 0.999);
        let predicted = fit.client_resource(ghz(2.2), ghz(1.0), Ratio::new(0.3));
        let truth = 0.3 * (4.0 + 5.0 * 2.2) + 0.7 * (2.0 + 30.0 * 1.0);
        assert!((predicted - truth).abs() < 1e-6);
    }

    #[test]
    fn feature_vector_structure() {
        let f = ComputeResourceModel::features(ghz(2.0), ghz(1.0), Ratio::new(0.25));
        assert_eq!(f, vec![0.25, 0.5, 1.0, 0.75, 0.75, 0.75]);
    }

    #[test]
    #[should_panic(expected = "edge/client ratio must be positive")]
    fn zero_edge_ratio_rejected() {
        let _ = ComputeResourceModel::published().with_edge_ratio(0.0);
    }
}
