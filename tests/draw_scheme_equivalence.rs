//! Statistical acceptance of the PR-8 draw-scheme re-key (cached Box–Muller
//! pair + vectorized transcendental kernels), and the cross-build
//! determinism pin for the re-keyed campaign artifacts.
//!
//! The checked-in baselines under `baselines/draw_scheme/` hold three runs
//! of every campaign grid: the old PR-7 scheme at seed 2024, the old scheme
//! reseeded to 2025 (the *same-scheme null* — how far two statistically
//! equivalent campaigns drift), and the re-keyed PR-8 scheme at seed 2024.
//! A sanctioned re-key is accepted when the old→new shift is no larger than
//! the reseed null, per `xr_stats::equivalence`.

use std::fs;
use std::path::PathBuf;

use xr_experiments::campaign::{quick_grid, run_campaign, CAMPAIGN_HEADER};
use xr_experiments::ExperimentContext;
use xr_stats::equivalence::{compare_campaigns, EquivalenceReport};
use xr_sweep::{parse_grid_spec, SweepGrid};

const GRIDS: [&str; 4] = ["quick", "mobility", "contention", "topology"];

fn repo_path(relative: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(relative)
}

fn baseline(name: &str) -> String {
    let path = repo_path("baselines/draw_scheme").join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Pools the per-grid diffs between two baseline run prefixes.
fn pooled_diff(prefix_a: &str, prefix_b: &str) -> EquivalenceReport {
    GRIDS
        .iter()
        .map(|grid| {
            let a = baseline(&format!("{prefix_a}-{grid}.csv"));
            let b = baseline(&format!("{prefix_b}-{grid}.csv"));
            compare_campaigns(&a, &b)
                .unwrap_or_else(|e| panic!("{prefix_a} vs {prefix_b} on {grid}: {e}"))
        })
        .reduce(|acc, r| acc.pooled(&r))
        .expect("at least one grid")
}

#[test]
fn rekey_shift_is_within_the_same_scheme_reseed_null() {
    let null = pooled_diff("pr7-seed2024", "pr7-seed2025");
    let rekey = pooled_diff("pr7-seed2024", "pr8-seed2024");
    eprintln!(
        "reseed null: {null:?} (outside-CI rate {:.4})",
        null.outside_ci_rate()
    );
    eprintln!(
        "re-key:      {rekey:?} (outside-CI rate {:.4})",
        rekey.outside_ci_rate()
    );

    // The pooled baselines must be substantial enough for the rates to mean
    // something: 4 grids × (96 + 6 + 6 + 8 rows) × 2 metric triples × 2
    // directions = 464 containment checks.
    assert_eq!(null.comparisons, 464);
    assert_eq!(rekey.comparisons, null.comparisons);

    // The reseed null itself must be a real perturbation, not a copy of the
    // reference — otherwise the test would accept only byte-identity.
    assert!(null.mean_rel_shift > 0.0, "reseed null collapsed to zero");

    // Acceptance: the re-key drifts no more than an ordinary reseed. The
    // margins leave room for the discreteness of the outside-CI count (a
    // handful of borderline points) without letting a genuine distribution
    // change through — a biased re-key moves *every* mean, which multiplies
    // the pooled shift far beyond 1.5× the null.
    assert!(
        rekey.outside_ci_rate() <= null.outside_ci_rate() + 0.05,
        "re-key outside-CI rate {:.4} exceeds reseed null {:.4} + 0.05",
        rekey.outside_ci_rate(),
        null.outside_ci_rate()
    );
    assert!(
        rekey.mean_rel_shift <= null.mean_rel_shift * 1.5,
        "re-key mean shift {:.6} exceeds 1.5× reseed null {:.6}",
        rekey.mean_rel_shift,
        null.mean_rel_shift
    );
    assert!(
        rekey.max_rel_shift <= null.max_rel_shift * 1.5,
        "re-key max shift {:.6} exceeds 1.5× reseed null {:.6}",
        rekey.max_rel_shift,
        null.max_rel_shift
    );
}

#[test]
fn analytic_model_columns_are_untouched_by_the_rekey() {
    // The proposed-model columns are closed-form (no simulation draws), so
    // the re-key must leave them byte-identical in every grid.
    for grid in GRIDS {
        let old = baseline(&format!("pr7-seed2024-{grid}.csv"));
        let new = baseline(&format!("pr8-seed2024-{grid}.csv"));
        let header: Vec<&str> = old.lines().next().unwrap().split(',').collect();
        let analytic: Vec<usize> = header
            .iter()
            .enumerate()
            .filter(|(_, name)| name.starts_with("proposed_"))
            .map(|(i, _)| i)
            .collect();
        assert!(!analytic.is_empty());
        for (line_old, line_new) in old.lines().zip(new.lines()).skip(1) {
            let fields_old: Vec<&str> = line_old.split(',').collect();
            let fields_new: Vec<&str> = line_new.split(',').collect();
            for &i in &analytic {
                assert_eq!(
                    fields_old[i], fields_new[i],
                    "analytic column {} drifted on {grid}",
                    header[i]
                );
            }
        }
    }
}

/// Renders campaign rows exactly as the CSV layer writes them (header line,
/// one row per point, trailing newline).
fn campaign_csv(ctx: &ExperimentContext, grid: &SweepGrid) -> String {
    let rows = run_campaign(ctx, grid).expect("campaign failed");
    let mut out = CAMPAIGN_HEADER.join(",");
    out.push('\n');
    for row in &rows {
        out.push_str(&row.cells().join(","));
        out.push('\n');
    }
    out
}

fn config_grid(name: &str) -> SweepGrid {
    let path = repo_path("configs").join(format!("campaign-{name}.grid"));
    let text =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    parse_grid_spec(&text).expect("checked-in grid spec must parse")
}

#[test]
fn checked_in_pr8_baselines_match_a_fresh_in_process_run() {
    // Cross-build determinism: the pinned CSVs were produced by the release
    // `campaign` binary; this re-derives them in-process (different build
    // profile, different process, in-memory sink) and requires byte
    // equality. The transcendental kernels are exact-arithmetic by
    // contract, so optimization level must not change a single bit.
    let ctx = ExperimentContext::quick(2024).unwrap();
    assert_eq!(
        campaign_csv(&ctx, &quick_grid()),
        baseline("pr8-seed2024-quick.csv"),
        "quick-grid campaign diverged from the checked-in PR-8 baseline"
    );
    for grid in ["mobility", "contention"] {
        assert_eq!(
            campaign_csv(&ctx, &config_grid(grid)),
            baseline(&format!("pr8-seed2024-{grid}.csv")),
            "{grid} campaign diverged from the checked-in PR-8 baseline"
        );
    }
    // The scalar reference engine must reproduce the same bytes — the
    // re-keyed draw scheme is engine-agnostic.
    let scalar = ExperimentContext::quick(2024)
        .unwrap()
        .with_scalar_sessions();
    assert_eq!(
        campaign_csv(&scalar, &config_grid("topology")),
        baseline("pr8-seed2024-topology.csv"),
        "scalar-engine topology campaign diverged from the checked-in PR-8 baseline"
    );
}
