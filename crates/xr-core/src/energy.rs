//! The energy-consumption analysis model of Section V (Eqs. 19–21).
//!
//! Per-segment energy is the per-segment latency multiplied by the power the
//! XR device draws while that segment runs: the compute segments use the
//! mean-power regression of Eq. 21, the radio-bound segments (external
//! information, transmission, handoff, cooperation, waiting for remote
//! inference) use a radio power model, and the whole frame additionally pays
//! base power `E_base` and a thermal-conversion share `E_θ`.

use crate::latency::{LatencyBreakdown, LatencyModel};
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use xr_devices::{BasePower, MeanPowerModel, ThermalModel};
use xr_types::{Joules, Result, Seconds, Segment, Watts};

/// Power drawn by the device's radio chains in each activity state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioPowerModel {
    /// Power while actively transmitting (uplink frames, cooperation).
    pub transmit: Watts,
    /// Power while actively receiving (external sensor information,
    /// downlink results).
    pub receive: Watts,
    /// Power while idling/waiting for a remote response (the XR device's
    /// draw during the edge server's inference time).
    pub idle_wait: Watts,
}

impl RadioPowerModel {
    /// Wi-Fi figures representative of the 802.11ac phones in Table I.
    #[must_use]
    pub fn wifi_defaults() -> Self {
        Self {
            transmit: Watts::new(1.25),
            receive: Watts::new(0.9),
            idle_wait: Watts::new(0.35),
        }
    }
}

impl Default for RadioPowerModel {
    fn default() -> Self {
        Self::wifi_defaults()
    }
}

/// Per-frame energy breakdown: one entry per pipeline segment plus base and
/// thermal energy and the total of Eq. 19.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    segments: BTreeMap<Segment, Joules>,
    base: Joules,
    thermal: Joules,
    total: Joules,
}

impl EnergyBreakdown {
    /// Energy attributed to one segment.
    #[must_use]
    pub fn segment(&self, segment: Segment) -> Joules {
        self.segments.get(&segment).copied().unwrap_or(Joules::ZERO)
    }

    /// Base energy `E_base` over the frame.
    #[must_use]
    pub fn base(&self) -> Joules {
        self.base
    }

    /// Thermal energy `E_θ` over the frame.
    #[must_use]
    pub fn thermal(&self) -> Joules {
        self.thermal
    }

    /// Total energy `E_tot` of Eq. 19.
    #[must_use]
    pub fn total(&self) -> Joules {
        self.total
    }

    /// Iterates over `(segment, energy)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Segment, Joules)> + '_ {
        self.segments.iter().map(|(s, e)| (*s, *e))
    }
}

/// The proposed energy analysis model.
#[derive(Debug, Clone)]
pub struct EnergyModel {
    power: MeanPowerModel,
    radio: RadioPowerModel,
    base: BasePower,
    thermal: ThermalModel,
}

impl EnergyModel {
    /// Builds the model with the published Eq.-21 coefficients and default
    /// radio/base/thermal parameters.
    #[must_use]
    pub fn published() -> Self {
        Self {
            power: MeanPowerModel::published(),
            radio: RadioPowerModel::wifi_defaults(),
            base: BasePower::typical_smartphone(),
            thermal: ThermalModel::typical(),
        }
    }

    /// Replaces the mean-power sub-model (e.g. one refit on simulated data).
    #[must_use]
    pub fn with_power_model(mut self, power: MeanPowerModel) -> Self {
        self.power = power;
        self
    }

    /// Replaces the radio power model.
    #[must_use]
    pub fn with_radio_model(mut self, radio: RadioPowerModel) -> Self {
        self.radio = radio;
        self
    }

    /// Replaces the base-power model.
    #[must_use]
    pub fn with_base_power(mut self, base: BasePower) -> Self {
        self.base = base;
        self
    }

    /// Replaces the thermal model.
    #[must_use]
    pub fn with_thermal_model(mut self, thermal: ThermalModel) -> Self {
        self.thermal = thermal;
        self
    }

    /// The compute power the client draws for this scenario (Eq. 21).
    #[must_use]
    pub fn compute_power(&self, scenario: &Scenario) -> Watts {
        self.power.mean_power(
            scenario.client.cpu_clock,
            scenario.client.gpu_clock,
            scenario.client.cpu_share,
        )
    }

    /// The power the XR device draws while a given segment runs.
    #[must_use]
    pub fn segment_power(&self, scenario: &Scenario, segment: Segment) -> Watts {
        match segment {
            // Client-side computation segments follow Eq. 21.
            Segment::FrameGeneration
            | Segment::VolumetricDataGeneration
            | Segment::FrameConversion
            | Segment::FrameEncoding
            | Segment::LocalInference
            | Segment::FrameRendering => self.compute_power(scenario),
            // Radio-bound segments.
            Segment::ExternalSensorInformation => self.radio.receive,
            Segment::Transmission | Segment::XrCooperation => self.radio.transmit,
            Segment::Handoff => self.radio.transmit,
            // While the edge server computes, the XR device only waits.
            Segment::RemoteInference => self.radio.idle_wait,
        }
    }

    /// Computes the per-segment energy breakdown of Eq. 19/20 for a frame,
    /// given the latency breakdown produced by [`LatencyModel::analyze`].
    #[must_use]
    pub fn analyze_with_latency(
        &self,
        scenario: &Scenario,
        latency: &LatencyBreakdown,
    ) -> EnergyBreakdown {
        let uses_local = scenario.execution.uses_client();
        let uses_edge = scenario.execution.uses_edge();

        let mut segments = BTreeMap::new();
        let mut active_compute_energy = Joules::ZERO;
        let mut total = Joules::ZERO;

        for (segment, segment_latency) in latency.iter() {
            let power = self.segment_power(scenario, segment);
            let energy = power * segment_latency.max(Seconds::ZERO);
            segments.insert(segment, energy);

            let included_in_total = scenario.segments.contains(segment)
                && match segment {
                    Segment::FrameConversion | Segment::LocalInference => uses_local,
                    Segment::FrameEncoding
                    | Segment::RemoteInference
                    | Segment::Transmission
                    | Segment::Handoff => uses_edge,
                    Segment::XrCooperation => scenario.cooperation.include_in_totals,
                    _ => true,
                };
            if included_in_total {
                total += energy;
                if matches!(
                    segment,
                    Segment::FrameGeneration
                        | Segment::VolumetricDataGeneration
                        | Segment::FrameConversion
                        | Segment::FrameEncoding
                        | Segment::LocalInference
                        | Segment::FrameRendering
                ) {
                    active_compute_energy += energy;
                }
            }
        }

        let base = self.base.energy_over(latency.total());
        let thermal = self.thermal.thermal_energy(active_compute_energy);
        total += base + thermal;

        EnergyBreakdown {
            segments,
            base,
            thermal,
            total,
        }
    }

    /// Convenience wrapper: run the latency model and then the energy model.
    ///
    /// # Errors
    ///
    /// Propagates latency-model errors.
    pub fn analyze(
        &self,
        latency_model: &LatencyModel,
        scenario: &Scenario,
    ) -> Result<EnergyBreakdown> {
        let latency = latency_model.analyze(scenario)?;
        Ok(self.analyze_with_latency(scenario, &latency))
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::published()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr_types::{ExecutionTarget, GigaHertz};

    fn scenario(execution: ExecutionTarget, clock: f64) -> Scenario {
        Scenario::builder()
            .cpu_clock(GigaHertz::new(clock))
            .execution(execution)
            .build()
            .unwrap()
    }

    #[test]
    fn energy_total_exceeds_sum_of_compute_segments() {
        let lm = LatencyModel::published();
        let em = EnergyModel::published();
        let s = scenario(ExecutionTarget::Local, 2.5);
        let e = em.analyze(&lm, &s).unwrap();
        assert!(e.total().as_f64() > 0.0);
        assert!(e.base().as_f64() > 0.0);
        assert!(e.thermal().as_f64() > 0.0);
        assert!(e.total() > e.base() + e.thermal());
    }

    #[test]
    fn energy_grows_with_frame_size() {
        let lm = LatencyModel::published();
        let em = EnergyModel::published();
        for target in [ExecutionTarget::Local, ExecutionTarget::Remote] {
            let small = Scenario::builder()
                .frame_side(300.0)
                .execution(target)
                .build()
                .unwrap();
            let large = Scenario::builder()
                .frame_side(700.0)
                .execution(target)
                .build()
                .unwrap();
            let e_small = em.analyze(&lm, &small).unwrap().total();
            let e_large = em.analyze(&lm, &large).unwrap().total();
            assert!(e_large > e_small);
        }
    }

    #[test]
    fn remote_execution_draws_radio_power_not_compute_power() {
        let lm = LatencyModel::published();
        let em = EnergyModel::published();
        let s = scenario(ExecutionTarget::Remote, 2.5);
        let latency = lm.analyze(&s).unwrap();
        let e = em.analyze_with_latency(&s, &latency);
        // Remote inference energy = idle-wait power × remote latency.
        let expected = em.radio.idle_wait * latency.segment(Segment::RemoteInference);
        assert!((e.segment(Segment::RemoteInference).as_f64() - expected.as_f64()).abs() < 1e-12);
        // Transmission uses transmit power.
        let expected_tx = em.radio.transmit * latency.segment(Segment::Transmission);
        assert!((e.segment(Segment::Transmission).as_f64() - expected_tx.as_f64()).abs() < 1e-12);
        // Local segments carry zero energy under remote execution.
        assert_eq!(e.segment(Segment::LocalInference), Joules::ZERO);
    }

    #[test]
    fn segment_power_mapping() {
        let em = EnergyModel::published();
        let s = scenario(ExecutionTarget::Local, 2.8);
        assert_eq!(
            em.segment_power(&s, Segment::Transmission),
            em.radio.transmit
        );
        assert_eq!(
            em.segment_power(&s, Segment::ExternalSensorInformation),
            em.radio.receive
        );
        assert_eq!(
            em.segment_power(&s, Segment::RemoteInference),
            em.radio.idle_wait
        );
        assert_eq!(
            em.segment_power(&s, Segment::FrameGeneration),
            em.compute_power(&s)
        );
    }

    #[test]
    fn base_energy_scales_with_total_latency() {
        let lm = LatencyModel::published();
        let em = EnergyModel::published();
        let small = Scenario::builder().frame_side(300.0).build().unwrap();
        let large = Scenario::builder().frame_side(700.0).build().unwrap();
        let e_small = em.analyze(&lm, &small).unwrap();
        let e_large = em.analyze(&lm, &large).unwrap();
        assert!(e_large.base() > e_small.base());
    }

    #[test]
    fn customised_models_change_the_answer() {
        let lm = LatencyModel::published();
        let s = scenario(ExecutionTarget::Local, 2.5);
        let default_total = EnergyModel::published().analyze(&lm, &s).unwrap().total();
        let hot = EnergyModel::published()
            .with_thermal_model(ThermalModel::new(xr_types::Ratio::new(0.5)))
            .analyze(&lm, &s)
            .unwrap()
            .total();
        assert!(hot > default_total);
        let heavy_base = EnergyModel::published()
            .with_base_power(BasePower::new(Watts::new(3.0)))
            .analyze(&lm, &s)
            .unwrap()
            .total();
        assert!(heavy_base > default_total);
        let power_hungry_radio = EnergyModel::published()
            .with_radio_model(RadioPowerModel {
                transmit: Watts::new(5.0),
                receive: Watts::new(5.0),
                idle_wait: Watts::new(5.0),
            })
            .analyze(&lm, &scenario(ExecutionTarget::Remote, 2.5))
            .unwrap()
            .total();
        let default_remote = EnergyModel::published()
            .analyze(&lm, &scenario(ExecutionTarget::Remote, 2.5))
            .unwrap()
            .total();
        assert!(power_hungry_radio > default_remote);
    }

    #[test]
    fn energy_iteration_covers_all_segments() {
        let lm = LatencyModel::published();
        let em = EnergyModel::published();
        let s = scenario(ExecutionTarget::Remote, 2.5);
        let e = em.analyze(&lm, &s).unwrap();
        assert_eq!(e.iter().count(), Segment::ALL.len());
    }
}
