//! Deterministic campaign sharding: partition a grid's point enumeration
//! across independent processes, and merge the shard artifacts back into the
//! unsharded CSV **byte for byte**.
//!
//! Because every replication's seed is a pure function of
//! `(campaign_seed, point_index, rep_index)` — see [`crate::seed`] — a
//! campaign is embarrassingly partitionable: shard `i/N` evaluates exactly
//! the points whose original grid index `p` satisfies `p % N == i - 1`
//! (round-robin, so neighbouring grid corners spread across shards and the
//! load balances), derives every seed from the **original** index, and emits
//! its rows in canonical point order. Merging interleaves the shard CSVs
//! back into grid order: merged row `j` is shard `(j % N) + 1`'s local row
//! `j / N`. Nothing is re-measured and nothing is re-ordered by value, so
//! the merged artifact is provably identical to a one-shot run.
//!
//! Each shard CSV travels with a small `key = value` *manifest* recording
//! the campaign seed, the grid fingerprint ([`SweepGrid::fingerprint`]), the
//! shard spec, and the row count; [`merge_shard_rows`] refuses to combine
//! shards from different campaigns, different grids, or an incomplete /
//! overlapping cover.

use crate::grid::SweepGrid;
use std::fmt;
use std::str::FromStr;
use xr_types::{Error, Result};

fn shard_error(message: impl fmt::Display) -> Error {
    Error::invalid_parameter("shard spec", message.to_string())
}

fn merge_error(message: impl fmt::Display) -> Error {
    Error::invalid_parameter("shard merge", message.to_string())
}

/// One shard of a campaign: `index/count` with a 1-based index, parsed from
/// the `campaign --shard i/N` flag. The full (unsharded) campaign is the
/// degenerate spec `1/1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    index: usize,
    count: usize,
}

impl ShardSpec {
    /// A validated `index/count` spec.
    ///
    /// # Errors
    ///
    /// Rejects a zero count, the 0-based-looking index `0`, and an index
    /// past the count, each with a message naming the offending value.
    pub fn new(index: usize, count: usize) -> Result<Self> {
        if count == 0 {
            return Err(shard_error("shard count must be at least 1"));
        }
        if index == 0 {
            return Err(shard_error(format!(
                "shard index is 1-based: `0/{count}` names no shard (use `1/{count}` through `{count}/{count}`)"
            )));
        }
        if index > count {
            return Err(shard_error(format!(
                "shard index {index} exceeds shard count {count}"
            )));
        }
        Ok(Self { index, count })
    }

    /// The whole campaign as a single shard (`1/1`).
    #[must_use]
    pub fn full() -> Self {
        Self { index: 1, count: 1 }
    }

    /// Parses an `i/N` token (e.g. `2/4`).
    ///
    /// # Errors
    ///
    /// Rejects malformed tokens and the same invalid pairs as
    /// [`ShardSpec::new`].
    pub fn parse(token: &str) -> Result<Self> {
        let malformed = || shard_error(format!("`{token}` is not `<index>/<count>` (e.g. `2/4`)"));
        let (index, count) = token.split_once('/').ok_or_else(malformed)?;
        let index: usize = index.trim().parse().map_err(|_| malformed())?;
        let count: usize = count.trim().parse().map_err(|_| malformed())?;
        Self::new(index, count)
    }

    /// The 1-based shard index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The total number of shards.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// `true` for the degenerate `1/1` spec covering the whole campaign.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.count == 1
    }

    /// `true` when this shard owns the point at original grid index
    /// `point_index` (round-robin partition; all replications of a point
    /// stay on one shard).
    #[must_use]
    pub fn owns(&self, point_index: usize) -> bool {
        point_index % self.count == self.index - 1
    }

    /// Number of points this shard owns out of a grid of `total_points`.
    #[must_use]
    pub fn owned_len(&self, total_points: usize) -> usize {
        // Owned indices are index-1, index-1+N, index-1+2N, … < total.
        total_points
            .saturating_sub(self.index - 1)
            .div_ceil(self.count)
    }

    /// The original grid indices this shard owns, in canonical order.
    pub fn owned_indices(&self, total_points: usize) -> impl Iterator<Item = usize> {
        (self.index - 1..total_points).step_by(self.count)
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl FromStr for ShardSpec {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        Self::parse(s)
    }
}

/// The provenance record a shard CSV travels with: enough to prove two
/// shards came from the same campaign (seed + grid fingerprint), to place
/// the shard in the cover (spec), and to cross-check the artifact (rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardManifest {
    /// The campaign seed every replication seed derives from.
    pub campaign_seed: u64,
    /// [`SweepGrid::fingerprint`] of the swept grid.
    pub grid_fingerprint: u64,
    /// Number of operating points in the full grid (all shards together).
    pub points: usize,
    /// Which shard of how many this artifact is.
    pub shard: ShardSpec,
    /// Number of data rows in the shard CSV (header excluded).
    pub rows: usize,
}

impl ShardManifest {
    /// Serializes the manifest in the workspace's `key = value` spec style.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "# xr-sweep shard manifest v1\n\
             campaign_seed = {}\n\
             grid_fingerprint = {}\n\
             points = {}\n\
             shard = {}\n\
             rows = {}\n",
            self.campaign_seed, self.grid_fingerprint, self.points, self.shard, self.rows
        )
    }

    /// Parses a manifest rendered by [`ShardManifest::render`]. Blank lines
    /// and `#` comments are ignored; all four keys are required.
    ///
    /// # Errors
    ///
    /// Rejects unknown keys, malformed values, and missing keys, naming the
    /// offending line.
    pub fn parse(text: &str) -> Result<Self> {
        let mut campaign_seed = None;
        let mut grid_fingerprint = None;
        let mut points = None;
        let mut shard = None;
        let mut rows = None;
        for (number, raw) in text.lines().enumerate() {
            let line_number = number + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                merge_error(format!(
                    "manifest line {line_number}: `{raw}` is not `key = value`"
                ))
            })?;
            let (key, value) = (key.trim(), value.trim());
            let bad_value = || {
                merge_error(format!(
                    "manifest line {line_number}: `{value}` is not a valid {key}"
                ))
            };
            match key {
                "campaign_seed" => {
                    campaign_seed = Some(value.parse::<u64>().map_err(|_| bad_value())?);
                }
                "grid_fingerprint" => {
                    grid_fingerprint = Some(value.parse::<u64>().map_err(|_| bad_value())?);
                }
                "points" => points = Some(value.parse::<usize>().map_err(|_| bad_value())?),
                "shard" => shard = Some(ShardSpec::parse(value)?),
                "rows" => rows = Some(value.parse::<usize>().map_err(|_| bad_value())?),
                _ => {
                    return Err(merge_error(format!(
                        "manifest line {line_number}: unknown key `{key}`"
                    )))
                }
            }
        }
        let require = |name: &str, value: Option<u64>| {
            value.ok_or_else(|| merge_error(format!("manifest is missing `{name}`")))
        };
        Ok(Self {
            campaign_seed: require("campaign_seed", campaign_seed)?,
            grid_fingerprint: require("grid_fingerprint", grid_fingerprint)?,
            points: points.ok_or_else(|| merge_error("manifest is missing `points`"))?,
            shard: shard.ok_or_else(|| merge_error("manifest is missing `shard`"))?,
            rows: rows.ok_or_else(|| merge_error("manifest is missing `rows`"))?,
        })
    }

    /// The manifest a shard run over `grid` should carry.
    #[must_use]
    pub fn for_grid(grid: &SweepGrid, campaign_seed: u64, shard: ShardSpec) -> Self {
        Self {
            campaign_seed,
            grid_fingerprint: grid.fingerprint(),
            points: grid.len(),
            shard,
            rows: shard.owned_len(grid.len()),
        }
    }
}

/// Validates a set of shard artifacts and interleaves their data rows back
/// into canonical grid order: merged row `j` is shard `(j % N) + 1`'s local
/// row `j / N`. Returns the merged rows; prepending the campaign header
/// reproduces the unsharded CSV byte for byte.
///
/// # Errors
///
/// Rejects an empty set, shards of different campaigns (seed or grid
/// fingerprint mismatch), disagreeing shard counts, duplicate or missing
/// shard indices (the cover must be disjoint and complete), and row counts
/// inconsistent with the manifest or with the interleaving.
pub fn merge_shard_rows(shards: &[(ShardManifest, Vec<String>)]) -> Result<Vec<String>> {
    let Some(((first, _), rest)) = shards.split_first() else {
        return Err(merge_error("no shards to merge"));
    };
    for (manifest, _) in rest {
        if manifest.campaign_seed != first.campaign_seed {
            return Err(merge_error(format!(
                "campaign seeds differ: shard {} ran with seed {}, shard {} with seed {}",
                first.shard, first.campaign_seed, manifest.shard, manifest.campaign_seed
            )));
        }
        if manifest.grid_fingerprint != first.grid_fingerprint {
            return Err(merge_error(format!(
                "grid fingerprints differ: shard {} swept grid {:#x}, shard {} swept grid {:#x} — shards must come from one grid",
                first.shard,
                first.grid_fingerprint,
                manifest.shard,
                manifest.grid_fingerprint
            )));
        }
        if manifest.shard.count() != first.shard.count() {
            return Err(merge_error(format!(
                "shard counts differ: {} vs {}",
                first.shard, manifest.shard
            )));
        }
        if manifest.points != first.points {
            return Err(merge_error(format!(
                "grid sizes differ: shard {} swept {} points, shard {} swept {}",
                first.shard, first.points, manifest.shard, manifest.points
            )));
        }
    }
    let count = first.shard.count();
    // Order the shards 1..=N and demand a disjoint, complete cover.
    let mut by_index: Vec<Option<&(ShardManifest, Vec<String>)>> = vec![None; count];
    for entry in shards {
        let slot = &mut by_index[entry.0.shard.index() - 1];
        if slot.is_some() {
            return Err(merge_error(format!(
                "duplicate shard {} — the cover must be disjoint",
                entry.0.shard
            )));
        }
        *slot = Some(entry);
    }
    if let Some(missing) = by_index.iter().position(Option::is_none) {
        return Err(merge_error(format!(
            "missing shard {}/{count} — the cover must be complete",
            missing + 1
        )));
    }
    let shards: Vec<&(ShardManifest, Vec<String>)> = by_index
        .into_iter()
        .map(|s| s.expect("cover checked"))
        .collect();
    let total = first.points;
    for (manifest, rows) in &shards {
        if rows.len() != manifest.rows {
            return Err(merge_error(format!(
                "shard {} declares {} rows but its CSV carries {}",
                manifest.shard,
                manifest.rows,
                rows.len()
            )));
        }
        let expected = manifest.shard.owned_len(total);
        if manifest.rows != expected {
            return Err(merge_error(format!(
                "shard {} carries {} rows but a round-robin cover of {total} points gives it {expected}",
                manifest.shard, manifest.rows
            )));
        }
    }
    let mut merged = Vec::with_capacity(total);
    for j in 0..total {
        merged.push(shards[j % count].1[j / count].clone());
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_partition_round_robin() {
        let shard = ShardSpec::parse("2/3").unwrap();
        assert_eq!(shard.index(), 2);
        assert_eq!(shard.count(), 3);
        assert_eq!(shard.to_string(), "2/3");
        assert!(!shard.is_full());
        assert!(ShardSpec::parse("1/1").unwrap().is_full());
        assert_eq!("4/8".parse::<ShardSpec>().unwrap().index(), 4);

        // Round-robin by original point index: shard 2/3 owns 1, 4, 7, …
        let owned: Vec<usize> = shard.owned_indices(10).collect();
        assert_eq!(owned, vec![1, 4, 7]);
        assert_eq!(shard.owned_len(10), 3);
        for p in 0..10 {
            assert_eq!(shard.owns(p), owned.contains(&p));
        }
        // Every point lands on exactly one shard.
        for total in [0usize, 1, 7, 10, 96] {
            for count in [1usize, 2, 3, 8] {
                let mut seen = vec![0usize; total];
                let mut len_sum = 0;
                for index in 1..=count {
                    let s = ShardSpec::new(index, count).unwrap();
                    len_sum += s.owned_len(total);
                    for p in s.owned_indices(total) {
                        seen[p] += 1;
                    }
                }
                assert_eq!(len_sum, total);
                assert!(seen.iter().all(|&n| n == 1), "{count} shards over {total}");
            }
        }
    }

    #[test]
    fn invalid_specs_name_the_offence() {
        let err = |token: &str| ShardSpec::parse(token).unwrap_err().to_string();
        assert!(
            err("0/4").contains("shard index is 1-based"),
            "{}",
            err("0/4")
        );
        assert!(err("5/4").contains("shard index 5 exceeds shard count 4"));
        assert!(err("1/0").contains("shard count must be at least 1"));
        for token in ["", "3", "a/b", "1/", "/4", "1//2", "-1/4", "1.5/4"] {
            assert!(
                err(token).contains("is not `<index>/<count>`"),
                "`{token}`: {}",
                err(token)
            );
        }
    }

    #[test]
    fn manifests_round_trip_and_reject_garbage() {
        let manifest = ShardManifest {
            campaign_seed: 2024,
            grid_fingerprint: 0xDEAD_BEEF,
            points: 96,
            shard: ShardSpec::parse("2/3").unwrap(),
            rows: 32,
        };
        let text = manifest.render();
        assert_eq!(ShardManifest::parse(&text).unwrap(), manifest);

        let err = ShardManifest::parse("campaign_seed = 1\n").unwrap_err();
        assert!(err.to_string().contains("missing `grid_fingerprint`"));
        let err = ShardManifest::parse("bogus = 1\n").unwrap_err();
        assert!(err.to_string().contains("unknown key `bogus`"));
        let err = ShardManifest::parse("rows\n").unwrap_err();
        assert!(err.to_string().contains("is not `key = value`"));
        let err = ShardManifest::parse("rows = many\n").unwrap_err();
        assert!(err.to_string().contains("not a valid rows"));
    }

    fn fake_shards(count: usize, total: usize) -> Vec<(ShardManifest, Vec<String>)> {
        (1..=count)
            .map(|index| {
                let shard = ShardSpec::new(index, count).unwrap();
                let rows: Vec<String> = shard
                    .owned_indices(total)
                    .map(|p| format!("row{p}"))
                    .collect();
                (
                    ShardManifest {
                        campaign_seed: 7,
                        grid_fingerprint: 42,
                        points: total,
                        shard,
                        rows: rows.len(),
                    },
                    rows,
                )
            })
            .collect()
    }

    #[test]
    fn merge_interleaves_back_to_canonical_order() {
        for (count, total) in [(1usize, 5usize), (2, 5), (3, 10), (8, 9), (3, 3)] {
            let mut shards = fake_shards(count, total);
            shards.reverse(); // input order must not matter
            let merged = merge_shard_rows(&shards).unwrap();
            let expected: Vec<String> = (0..total).map(|p| format!("row{p}")).collect();
            assert_eq!(merged, expected, "{count} shards over {total} points");
        }
    }

    #[test]
    fn merge_rejects_inconsistent_covers() {
        assert!(merge_shard_rows(&[])
            .unwrap_err()
            .to_string()
            .contains("no shards"));

        let mut shards = fake_shards(3, 10);
        shards[1].0.campaign_seed = 8;
        assert!(merge_shard_rows(&shards)
            .unwrap_err()
            .to_string()
            .contains("campaign seeds differ"));

        let mut shards = fake_shards(3, 10);
        shards[2].0.grid_fingerprint = 43;
        assert!(merge_shard_rows(&shards)
            .unwrap_err()
            .to_string()
            .contains("grid fingerprints differ"));

        let mut shards = fake_shards(3, 10);
        shards[0].0.shard = ShardSpec::new(1, 4).unwrap();
        assert!(merge_shard_rows(&shards)
            .unwrap_err()
            .to_string()
            .contains("shard counts differ"));

        let mut shards = fake_shards(3, 10);
        shards[2] = shards[1].clone();
        assert!(merge_shard_rows(&shards)
            .unwrap_err()
            .to_string()
            .contains("duplicate shard 2/3"));

        let shards = fake_shards(3, 10);
        assert!(merge_shard_rows(&shards[..2])
            .unwrap_err()
            .to_string()
            .contains("missing shard 3/3"));

        let mut shards = fake_shards(3, 10);
        shards[0].1.pop();
        assert!(merge_shard_rows(&shards)
            .unwrap_err()
            .to_string()
            .contains("declares 4 rows but its CSV carries 3"));

        // A consistent-looking but short shard (manifest and CSV agree,
        // but not with the grid size) is caught by the cover check.
        let mut shards = fake_shards(3, 10);
        shards[0].1.pop();
        shards[0].0.rows -= 1;
        assert!(merge_shard_rows(&shards)
            .unwrap_err()
            .to_string()
            .contains("round-robin cover"));

        let mut shards = fake_shards(3, 10);
        shards[1].0.points = 9;
        assert!(merge_shard_rows(&shards)
            .unwrap_err()
            .to_string()
            .contains("grid sizes differ"));
    }
}
