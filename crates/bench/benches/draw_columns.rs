//! The lane-oriented draw layer in isolation: wide-lane stream seeding and
//! column transforms (`rand_distr::column`) versus the per-frame scalar
//! path the pipelines used before (one `StdRng::seed_from_u64` + scalar
//! sampler call per frame).
//!
//! Both paths produce bit-identical draws — asserted here before any
//! timing — so the measured ratio is pure draw-layer overhead. Measured
//! numbers are recorded in `BENCH_draw_columns.json` at the repository
//! root.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rand_distr::{column, Distribution, Normal};
use xr_types::lanes::LaneStreams;
use xr_types::seed;

/// Frames per measured pass — one campaign-sized stretch of a session.
const FRAMES: usize = 4096;
/// Lanes per bank — the engine's default batch width.
const WIDTH: usize = 256;
const STAGE_BASE: u64 = 0x9E37_79B9_7F4A_7C15;

fn frame_rng(frame: usize) -> StdRng {
    StdRng::seed_from_u64(seed::mix(STAGE_BASE, frame as u64))
}

fn draw_columns(c: &mut Criterion) {
    let normal = Normal::new(0.0, 0.04).expect("valid sigma");

    // Bit-identity gate: the lane path must replay the per-frame streams
    // word for word before its throughput means anything.
    {
        let mut lanes = LaneStreams::new();
        lanes.reseed(STAGE_BASE, 0, FRAMES);
        let mut raw_a = vec![0u64; FRAMES];
        let mut raw_b = vec![0u64; FRAMES];
        let mut normals = vec![0.0; FRAMES];
        let mut uniforms = vec![0.0; FRAMES];
        lanes.fill_next(&mut raw_a);
        lanes.fill_next(&mut raw_b);
        column::fill_normal(&normal, &raw_a, &raw_b, &mut normals);
        lanes.fill_next(&mut raw_a);
        column::fill_uniform_range(-0.05, 0.05, &raw_a, &mut uniforms);
        for frame in 0..FRAMES {
            let mut rng = frame_rng(frame);
            assert_eq!(normals[frame], normal.sample(&mut rng), "normal diverged");
            assert_eq!(
                uniforms[frame],
                rng.gen_range(-0.05..0.05),
                "uniform diverged"
            );
        }
    }

    let mut group = c.benchmark_group("draw_columns");
    group.sample_size(50);

    // Stream seeding alone: one derived generator per frame, one raw word
    // drawn from each.
    group.bench_with_input(
        BenchmarkId::new("seed", "per_frame"),
        &FRAMES,
        |b, &frames| {
            b.iter(|| {
                let mut acc = 0u64;
                for frame in 0..frames {
                    acc ^= frame_rng(frame).next_u64();
                }
                black_box(acc)
            })
        },
    );
    group.bench_with_input(BenchmarkId::new("seed", "lanes"), &FRAMES, |b, &frames| {
        let mut lanes = LaneStreams::new();
        let mut raw = vec![0u64; WIDTH];
        b.iter(|| {
            let mut acc = 0u64;
            for first in (0..frames).step_by(WIDTH) {
                lanes.reseed(STAGE_BASE, first as u64, WIDTH);
                lanes.fill_next(&mut raw);
                acc ^= raw[WIDTH - 1];
            }
            black_box(acc)
        })
    });

    // The generate-stage shape: two normal draws per frame stream (two
    // words + Box–Muller each).
    group.bench_with_input(
        BenchmarkId::new("normal", "per_frame"),
        &FRAMES,
        |b, &frames| {
            b.iter(|| {
                let mut acc = 0.0;
                for frame in 0..frames {
                    let mut rng = frame_rng(frame);
                    acc += normal.sample(&mut rng);
                    acc += normal.sample(&mut rng);
                }
                black_box(acc)
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("normal", "lanes"),
        &FRAMES,
        |b, &frames| {
            let mut lanes = LaneStreams::new();
            let mut raw_a = vec![0u64; WIDTH];
            let mut raw_b = vec![0u64; WIDTH];
            let mut out = vec![0.0; WIDTH];
            b.iter(|| {
                let mut acc = 0.0;
                for first in (0..frames).step_by(WIDTH) {
                    lanes.reseed(STAGE_BASE, first as u64, WIDTH);
                    for _ in 0..2 {
                        lanes.fill_next(&mut raw_a);
                        lanes.fill_next(&mut raw_b);
                        column::fill_normal(&normal, &raw_a, &raw_b, &mut out);
                        acc += out[WIDTH - 1];
                    }
                }
                black_box(acc)
            })
        },
    );

    // The sense-stage shape: 18 uniform jitter draws per frame stream
    // (updates_per_frame × sensors in the default scenario; one word +
    // affine map each — the column path takes the AVX2 pass on hosts that
    // support it).
    group.bench_with_input(
        BenchmarkId::new("uniform", "per_frame"),
        &FRAMES,
        |b, &frames| {
            b.iter(|| {
                let mut acc = 0.0;
                for frame in 0..frames {
                    let mut rng = frame_rng(frame);
                    for _ in 0..18 {
                        acc += rng.gen_range(-0.05..0.05);
                    }
                }
                black_box(acc)
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("uniform", "lanes"),
        &FRAMES,
        |b, &frames| {
            let mut lanes = LaneStreams::new();
            let mut raw = vec![0u64; WIDTH];
            let mut out = vec![0.0; WIDTH];
            b.iter(|| {
                let mut acc = 0.0;
                for first in (0..frames).step_by(WIDTH) {
                    lanes.reseed(STAGE_BASE, first as u64, WIDTH);
                    for _ in 0..18 {
                        lanes.fill_next(&mut raw);
                        column::fill_uniform_range(-0.05, 0.05, &raw, &mut out);
                        acc += out[WIDTH - 1];
                    }
                }
                black_box(acc)
            })
        },
    );
    group.finish();
}

criterion_group!(benches, draw_columns);
criterion_main!(benches);
