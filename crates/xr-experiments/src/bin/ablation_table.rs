//! Ablation study over the latency model's design choices (see
//! [`xr_experiments::ablation`]).

use xr_experiments::ablation::AblationStudy;
use xr_experiments::{output, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::from_args();
    let study = AblationStudy::run(&ctx).expect("ablation study failed");
    output::print_experiment(
        "Ablation study — remote latency sweep at 2 GHz",
        &["variant", "mean_error_%", "normalized_accuracy_%"],
        &study.table_rows(),
        "ablation_table.csv",
    );
    println!(
        "full model error {:.2}% — each removed ingredient increases it",
        study.full_model().mean_error_percent
    );
}
