//! Offline stand-in for the real `serde` crate.
//!
//! The workspace builds in an air-gapped container with no registry access,
//! so `Serialize`/`Deserialize` are defined here as empty marker traits and
//! the `#[derive(Serialize, Deserialize)]` attributes resolve to shim macros
//! that emit empty impls. No code in this workspace performs actual
//! serialization yet; when a future PR needs it (and the build environment
//! has registry access), point the root manifest's `serde` entry back at
//! crates.io and everything downstream keeps compiling unchanged.

/// Marker trait mirroring `serde::Serialize`. Carries no behavior in the
/// offline shim; real serialization would replace this crate wholesale.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`. Carries no behavior in the
/// offline shim; real deserialization would replace this crate wholesale.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
