//! Integration-level reproduction of the Fig. 5 comparison: the proposed
//! framework must out-predict FACT and LEAF on the simulated testbed.

use xr_baselines::{BaselineModel, FactModel, LeafModel};
use xr_experiments::comparison::{comparison_sweep, Metric};
use xr_experiments::ExperimentContext;
use xr_integration::evaluation_scenario;
use xr_types::ExecutionTarget;

#[test]
fn proposed_model_wins_on_both_metrics() {
    let ctx = ExperimentContext::quick(201).unwrap();
    for metric in [Metric::Latency, Metric::Energy] {
        let sweep = comparison_sweep(&ctx, metric).unwrap();
        let proposed = sweep.proposed_accuracy();
        let fact = sweep.fact_accuracy();
        let leaf = sweep.leaf_accuracy();
        assert!(
            proposed > fact && proposed > leaf,
            "{metric:?}: proposed {proposed:.2}% vs FACT {fact:.2}% vs LEAF {leaf:.2}%"
        );
        // The proposed model stays strong in absolute terms too.
        assert!(
            proposed > 80.0,
            "{metric:?}: proposed accuracy {proposed:.2}%"
        );
    }
}

#[test]
fn leaf_is_closer_than_fact_mirroring_the_paper() {
    // LEAF's per-segment structure should place it between FACT and the
    // proposed framework, as in Fig. 5.
    let ctx = ExperimentContext::quick(202).unwrap();
    let sweep = comparison_sweep(&ctx, Metric::Latency).unwrap();
    assert!(
        sweep.leaf_accuracy() >= sweep.fact_accuracy(),
        "LEAF {:.2}% should not trail FACT {:.2}%",
        sweep.leaf_accuracy(),
        sweep.fact_accuracy()
    );
}

#[test]
fn baselines_expose_a_uniform_interface() {
    let scenario = evaluation_scenario(500.0, 2.0, ExecutionTarget::Remote);
    let models: Vec<Box<dyn BaselineModel>> =
        vec![Box::new(FactModel::new()), Box::new(LeafModel::new())];
    for model in models {
        let latency = model.predict_latency(&scenario).unwrap();
        let energy = model.predict_energy(&scenario).unwrap();
        assert!(latency.as_f64() > 0.0, "{}", model.name());
        assert!(energy.as_f64() > 0.0, "{}", model.name());
    }
}

#[test]
fn calibration_improves_baseline_accuracy_at_the_reference_point() {
    let ctx = ExperimentContext::quick(203).unwrap();
    let scenario = evaluation_scenario(500.0, 2.0, ExecutionTarget::Remote);
    let session = ctx.testbed().simulate_session(&scenario, 20).unwrap();
    let observed_latency = session.mean_latency();
    let observed_energy = session.mean_energy();

    let uncalibrated_error = {
        let fact = FactModel::new();
        (fact.predict_latency(&scenario).unwrap().as_f64() - observed_latency.as_f64()).abs()
    };
    let calibrated_error = {
        let mut fact = FactModel::new();
        fact.calibrate(&scenario, observed_latency, observed_energy)
            .unwrap();
        (fact.predict_latency(&scenario).unwrap().as_f64() - observed_latency.as_f64()).abs()
    };
    assert!(calibrated_error <= uncalibrated_error);
    assert!(calibrated_error < 1e-9);
}
