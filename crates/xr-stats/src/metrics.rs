//! Error metrics used in the paper's evaluation.
//!
//! Section VIII reports the proposed model's *mean error* relative to the
//! ground truth (2.74 % / 3.23 % for latency, 3.52 % / 5.38 % for energy) and
//! compares models by *normalized accuracy* (Fig. 5), where the ground truth
//! scores 100 % and a model's accuracy is `100 − MAPE` clamped at zero.

/// Mean absolute error `mean(|y − ŷ|)`.
///
/// # Panics
///
/// Panics if the slices are empty or of different lengths.
#[must_use]
pub fn mean_absolute_error(truth: &[f64], predicted: &[f64]) -> f64 {
    check_pair(truth, predicted);
    truth
        .iter()
        .zip(predicted)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / truth.len() as f64
}

/// Root-mean-square error `sqrt(mean((y − ŷ)²))`.
///
/// # Panics
///
/// Panics if the slices are empty or of different lengths.
#[must_use]
pub fn root_mean_square_error(truth: &[f64], predicted: &[f64]) -> f64 {
    check_pair(truth, predicted);
    (truth
        .iter()
        .zip(predicted)
        .map(|(t, p)| (t - p).powi(2))
        .sum::<f64>()
        / truth.len() as f64)
        .sqrt()
}

/// Mean absolute percentage error, in percent. Ground-truth zeros are
/// skipped (they carry no relative-error information).
///
/// # Panics
///
/// Panics if the slices are empty or of different lengths.
#[must_use]
pub fn mean_absolute_percentage_error(truth: &[f64], predicted: &[f64]) -> f64 {
    check_pair(truth, predicted);
    let mut total = 0.0;
    let mut count = 0usize;
    for (t, p) in truth.iter().zip(predicted) {
        if t.abs() > f64::EPSILON {
            total += ((t - p) / t).abs() * 100.0;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// The paper's "mean error" statistic: mean absolute percentage error of the
/// model against the ground truth, in percent (Section VIII-A/B).
#[must_use]
pub fn mean_error_percent(truth: &[f64], predicted: &[f64]) -> f64 {
    mean_absolute_percentage_error(truth, predicted)
}

/// Normalized accuracy in percent, as plotted in Fig. 5: the ground truth is
/// 100 % and a model scores `100 − MAPE`, clamped to `[0, 100]`.
#[must_use]
pub fn normalized_accuracy(truth: &[f64], predicted: &[f64]) -> f64 {
    (100.0 - mean_absolute_percentage_error(truth, predicted)).clamp(0.0, 100.0)
}

/// Per-point normalized accuracy series (one value per ground-truth sample),
/// used to draw the Fig. 5 curves point by point.
///
/// # Panics
///
/// Panics if the slices are empty or of different lengths.
#[must_use]
pub fn normalized_accuracy_series(truth: &[f64], predicted: &[f64]) -> Vec<f64> {
    check_pair(truth, predicted);
    truth
        .iter()
        .zip(predicted)
        .map(|(t, p)| {
            if t.abs() <= f64::EPSILON {
                100.0
            } else {
                (100.0 - ((t - p) / t).abs() * 100.0).clamp(0.0, 100.0)
            }
        })
        .collect()
}

/// Coefficient of determination R² of predictions against truth.
///
/// # Panics
///
/// Panics if the slices are empty or of different lengths.
#[must_use]
pub fn r_squared(truth: &[f64], predicted: &[f64]) -> f64 {
    check_pair(truth, predicted);
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean).powi(2)).sum();
    let ss_res: f64 = truth
        .iter()
        .zip(predicted)
        .map(|(t, p)| (t - p).powi(2))
        .sum();
    if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else if ss_res < 1e-12 {
        1.0
    } else {
        f64::NEG_INFINITY
    }
}

/// Maximum absolute error, useful for worst-case reporting in EXPERIMENTS.md.
///
/// # Panics
///
/// Panics if the slices are empty or of different lengths.
#[must_use]
pub fn max_absolute_error(truth: &[f64], predicted: &[f64]) -> f64 {
    check_pair(truth, predicted);
    truth
        .iter()
        .zip(predicted)
        .map(|(t, p)| (t - p).abs())
        .fold(0.0, f64::max)
}

fn check_pair(truth: &[f64], predicted: &[f64]) {
    assert!(!truth.is_empty(), "metric inputs must be non-empty");
    assert_eq!(
        truth.len(),
        predicted.len(),
        "truth and prediction lengths differ"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_perfectly() {
        let y = vec![1.0, 2.0, 3.0];
        assert_eq!(mean_absolute_error(&y, &y), 0.0);
        assert_eq!(root_mean_square_error(&y, &y), 0.0);
        assert_eq!(mean_absolute_percentage_error(&y, &y), 0.0);
        assert_eq!(normalized_accuracy(&y, &y), 100.0);
        assert_eq!(r_squared(&y, &y), 1.0);
        assert_eq!(max_absolute_error(&y, &y), 0.0);
    }

    #[test]
    fn known_errors() {
        let truth = vec![100.0, 200.0];
        let pred = vec![110.0, 180.0];
        assert!((mean_absolute_error(&truth, &pred) - 15.0).abs() < 1e-12);
        assert!((root_mean_square_error(&truth, &pred) - (250.0_f64).sqrt()).abs() < 1e-12);
        // MAPE = (10% + 10%) / 2 = 10%
        assert!((mean_absolute_percentage_error(&truth, &pred) - 10.0).abs() < 1e-12);
        assert!((normalized_accuracy(&truth, &pred) - 90.0).abs() < 1e-12);
        assert!((max_absolute_error(&truth, &pred) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn mean_error_percent_is_mape() {
        let truth = vec![100.0, 100.0];
        let pred = vec![97.26, 102.74];
        assert!((mean_error_percent(&truth, &pred) - 2.74).abs() < 1e-9);
    }

    #[test]
    fn zero_truth_entries_are_skipped_in_mape() {
        let truth = vec![0.0, 100.0];
        let pred = vec![5.0, 110.0];
        assert!((mean_absolute_percentage_error(&truth, &pred) - 10.0).abs() < 1e-12);
        let all_zero = vec![0.0, 0.0];
        assert_eq!(mean_absolute_percentage_error(&all_zero, &pred), 0.0);
    }

    #[test]
    fn accuracy_clamped_to_zero_for_terrible_models() {
        let truth = vec![1.0];
        let pred = vec![10.0];
        assert_eq!(normalized_accuracy(&truth, &pred), 0.0);
    }

    #[test]
    fn accuracy_series_is_per_point() {
        let truth = vec![100.0, 200.0, 0.0];
        let pred = vec![90.0, 210.0, 3.0];
        let series = normalized_accuracy_series(&truth, &pred);
        assert_eq!(series.len(), 3);
        assert!((series[0] - 90.0).abs() < 1e-12);
        assert!((series[1] - 95.0).abs() < 1e-12);
        assert_eq!(series[2], 100.0);
    }

    #[test]
    fn r_squared_penalises_bias() {
        let truth = vec![1.0, 2.0, 3.0, 4.0];
        let biased: Vec<f64> = truth.iter().map(|t| t + 1.0).collect();
        assert!(r_squared(&truth, &biased) < 1.0);
    }

    #[test]
    fn constant_truth_handled() {
        let truth = vec![5.0, 5.0];
        assert_eq!(r_squared(&truth, &truth), 1.0);
        assert_eq!(r_squared(&truth, &[1.0, 9.0]), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        let _ = mean_absolute_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "must be non-empty")]
    fn empty_inputs_panic() {
        let _ = mean_absolute_error(&[], &[]);
    }
}
