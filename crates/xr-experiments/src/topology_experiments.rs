//! The topology figure: edge-to-edge migration cost against the edge-site
//! density.
//!
//! The mobility figure keeps the paper's single serving zone — a handoff
//! teleports the device into a statistically fresh cell. This experiment
//! places the session on a real [`xr_core::TopologyConfig`] edge map
//! instead: a square tiling whose site density is swept from sparse
//! metro-cell spacing to dense street-furniture deployments. Each coverage
//! crossing that lands inside another site's cell becomes an edge-to-edge
//! handoff that pays state-migration latency on top of the radio handoff,
//! under either re-offload policy — *eager* (the full inference state moves
//! with the session) or *lazy* (only a session stub moves; state faults in
//! on demand). Denser tilings mean shorter cell residence, more migrations
//! per second, and a higher per-frame migration bill: the figure traces
//! that density → latency curve, with the eager policy paying a strictly
//! higher price than the lazy one at every density.

use crate::campaign::{run_campaign_with, CampaignRow};
use crate::context::ExperimentContext;
use xr_sweep::{CampaignRunner, MobilityCondition, SweepGrid};
use xr_types::{ExecutionTarget, MigrationPolicy, Result, TopologyLayout};

/// Column header of the topology-figure CSV.
pub const FIG_TOPOLOGY_HEADER: [&str; 11] = [
    "topology",
    "site_density",
    "migration_policy",
    "replications",
    "gt_latency_ms_mean",
    "gt_latency_ms_ci95_lo",
    "gt_latency_ms_ci95_hi",
    "gt_handoff_rate",
    "gt_migration_ms_mean",
    "sites_visited",
    "proposed_latency_ms",
];

/// Edge-site densities swept by the topology figure, in sites/km². Square
/// tiling puts sites `1000/√density` metres apart: 100 m spacing down to
/// 20 m.
pub const TOPOLOGY_SITE_DENSITIES: [f64; 5] = [100.0, 400.0, 900.0, 1600.0, 2500.0];
/// Device speed (m/s) of every session in the sweep — vehicular, so even
/// the sparsest tiling sees migrations inside a session.
pub const TOPOLOGY_SPEED_MPS: f64 = 25.0;
/// Per-session frame rate (Hz); low, so each frame window covers several
/// metres of travel.
pub const TOPOLOGY_FRAME_RATE_HZ: f64 = 5.0;
/// Frames per session: 200 frames × 0.2 s windows = 40 s of driving
/// (1 km), enough cell crossings for stable migration statistics.
pub const TOPOLOGY_FRAMES_PER_SESSION: u64 = 200;
/// Replications per operating point.
pub const TOPOLOGY_REPLICATIONS: usize = 5;

/// The density × policy grid behind the topology figure: remote inference
/// on a vehicular session roaming a square tiling, sweeping
/// [`TOPOLOGY_SITE_DENSITIES`] under both migration policies with
/// [`TOPOLOGY_REPLICATIONS`] independently seeded sessions per point.
#[must_use]
pub fn topology_grid() -> SweepGrid {
    SweepGrid::paper_panel(ExecutionTarget::Remote)
        .with_frame_sizes([300.0])
        .with_cpu_clocks([2.0])
        .with_frame_rates([TOPOLOGY_FRAME_RATE_HZ])
        .with_frames_per_session([TOPOLOGY_FRAMES_PER_SESSION])
        .with_mobility(vec![MobilityCondition::new(
            "vehicle",
            TOPOLOGY_SPEED_MPS,
            8.0,
        )])
        .with_topologies([TopologyLayout::Square])
        .with_site_densities(TOPOLOGY_SITE_DENSITIES)
        .with_migration_policies([MigrationPolicy::Eager, MigrationPolicy::Lazy])
        .with_replications(TOPOLOGY_REPLICATIONS)
}

/// One row of the topology figure.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyPoint {
    /// Edge-site tiling of the map.
    pub layout: TopologyLayout,
    /// Edge sites per km².
    pub site_density: f64,
    /// State re-offload policy priced on each migration.
    pub migration_policy: MigrationPolicy,
    /// The aggregated campaign measurement at this point.
    pub row: CampaignRow,
}

impl TopologyPoint {
    /// CSV/console cells for the output layer.
    #[must_use]
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.layout.to_string(),
            format!("{:.0}", self.site_density),
            self.migration_policy.to_string(),
            self.row.replications.to_string(),
            format!("{:.3}", self.row.gt_latency_ms.mean),
            format!("{:.3}", self.row.gt_latency_ms.ci95_lo),
            format!("{:.3}", self.row.gt_latency_ms.ci95_hi),
            format!("{:.4}", self.row.gt_handoff_rate),
            format!("{:.4}", self.row.gt_migration_ms_mean),
            self.row.sites_visited.to_string(),
            format!("{:.3}", self.row.proposed_latency_ms),
        ]
    }
}

/// Runs the topology sweep and returns one point per density × policy in
/// grid order (density outer, policy inner).
///
/// # Errors
///
/// Propagates grid, scenario and model errors.
pub fn topology_sweep(ctx: &ExperimentContext) -> Result<Vec<TopologyPoint>> {
    topology_sweep_with(ctx, &ctx.runner())
}

/// [`topology_sweep`] with an explicit runner (determinism tests pin the
/// worker count).
///
/// # Errors
///
/// Propagates grid, scenario and model errors.
pub fn topology_sweep_with(
    ctx: &ExperimentContext,
    runner: &CampaignRunner,
) -> Result<Vec<TopologyPoint>> {
    let rows = run_campaign_with(ctx, &topology_grid(), runner)?;
    Ok(rows
        .into_iter()
        .map(|row| TopologyPoint {
            layout: row.point.topology.unwrap_or(TopologyLayout::Square),
            site_density: row.point.site_density.unwrap_or(400.0),
            migration_policy: row.point.migration_policy.unwrap_or(MigrationPolicy::Eager),
            row,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_sweep_traces_the_density_curve() {
        let ctx = ExperimentContext::quick(29).unwrap();
        let points = topology_sweep(&ctx).unwrap();
        assert_eq!(
            points.len(),
            TOPOLOGY_SITE_DENSITIES.len() * 2,
            "density × policy grid"
        );
        for point in &points {
            assert_eq!(point.layout, TopologyLayout::Square);
            assert_eq!(point.row.replications, TOPOLOGY_REPLICATIONS);
            assert_eq!(point.row.frames_per_session, TOPOLOGY_FRAMES_PER_SESSION);
            assert_eq!(point.cells().len(), FIG_TOPOLOGY_HEADER.len());
            assert!(point.row.gt_handoff_rate > 0.0, "vehicle never crossed");
            assert!(point.row.gt_migration_ms_mean > 0.0, "no migration priced");
            assert!(point.row.sites_visited > 1, "session never left its site");
        }
        let eager: Vec<&TopologyPoint> = points
            .iter()
            .filter(|p| p.migration_policy == MigrationPolicy::Eager)
            .collect();
        let lazy: Vec<&TopologyPoint> = points
            .iter()
            .filter(|p| p.migration_policy == MigrationPolicy::Lazy)
            .collect();
        assert_eq!(eager.len(), TOPOLOGY_SITE_DENSITIES.len());
        // Denser tilings mean shorter residence and a strictly higher
        // per-frame migration bill under the eager policy.
        for pair in eager.windows(2) {
            assert!(
                pair[1].row.gt_migration_ms_mean > pair[0].row.gt_migration_ms_mean,
                "migration cost must grow with density: {} sites/km² {} ms vs {} sites/km² {} ms",
                pair[1].site_density,
                pair[1].row.gt_migration_ms_mean,
                pair[0].site_density,
                pair[0].row.gt_migration_ms_mean
            );
        }
        // Eager pays more than lazy at every density (same walk, same
        // migration count, larger per-migration base).
        for (e, l) in eager.iter().zip(&lazy) {
            assert_eq!(e.site_density, l.site_density);
            assert!(
                e.row.gt_migration_ms_mean > l.row.gt_migration_ms_mean,
                "eager {} ms ≤ lazy {} ms at {} sites/km²",
                e.row.gt_migration_ms_mean,
                l.row.gt_migration_ms_mean,
                e.site_density
            );
        }
        // More sites get visited as the tiling densifies (endpoints).
        assert!(
            eager.last().unwrap().row.sites_visited > eager[0].row.sites_visited,
            "densest tiling should visit more sites"
        );
    }
}
