//! Property-based tests (proptest) over the framework's core invariants.

use proptest::prelude::*;
use xr_core::{LatencyModel, Scenario, XrPerformanceModel};
use xr_queueing::{MM1Queue, MM1Simulator};
use xr_stats::{metrics, LinearRegression};
use xr_types::{ExecutionTarget, GigaHertz, Hertz, Ratio, Segment};

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        300.0..700.0_f64,                      // frame size
        1.0..3.2_f64,                          // CPU clock
        0.0..1.0_f64,                          // CPU share
        15.0..60.0_f64,                        // fps
        prop::sample::select(vec![0u8, 1, 2]), // execution target
        1u32..8,                               // updates per frame
    )
        .prop_map(|(size, clock, share, fps, target, updates)| {
            let execution = match target {
                0 => ExecutionTarget::Local,
                1 => ExecutionTarget::Remote,
                _ => ExecutionTarget::Split { client_share: 0.5 },
            };
            Scenario::builder()
                .frame_side(size)
                .cpu_clock(GigaHertz::new(clock))
                .cpu_share(Ratio::new(share))
                .frame_rate(Hertz::new(fps))
                .updates_per_frame(updates)
                .execution(execution)
                .build()
                .expect("generated scenario is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn latency_and_energy_are_finite_and_positive(scenario in scenario_strategy()) {
        let model = XrPerformanceModel::published();
        let report = model.analyze(&scenario).unwrap();
        prop_assert!(report.latency.total().as_f64().is_finite());
        prop_assert!(report.latency.total().as_f64() > 0.0);
        prop_assert!(report.energy.total().as_f64().is_finite());
        prop_assert!(report.energy.total().as_f64() > 0.0);
        for (_, l) in report.latency.iter() {
            prop_assert!(l.as_f64() >= 0.0);
        }
        for (_, e) in report.energy.iter() {
            prop_assert!(e.as_f64() >= 0.0);
        }
    }

    #[test]
    fn gated_total_never_exceeds_sum_of_segments(scenario in scenario_strategy()) {
        let model = LatencyModel::published();
        let breakdown = model.analyze(&scenario).unwrap();
        prop_assert!(breakdown.total() <= breakdown.sum_of_segments() + xr_types::Seconds::new(1e-12));
    }

    #[test]
    fn local_and_remote_segments_are_mutually_exclusive(scenario in scenario_strategy()) {
        let model = LatencyModel::published();
        let breakdown = model.analyze(&scenario).unwrap();
        match scenario.execution {
            ExecutionTarget::Local => {
                prop_assert_eq!(breakdown.segment(Segment::RemoteInference).as_f64(), 0.0);
                prop_assert_eq!(breakdown.segment(Segment::Transmission).as_f64(), 0.0);
            }
            ExecutionTarget::Remote => {
                prop_assert_eq!(breakdown.segment(Segment::LocalInference).as_f64(), 0.0);
                prop_assert_eq!(breakdown.segment(Segment::FrameConversion).as_f64(), 0.0);
            }
            ExecutionTarget::Split { .. } => {
                prop_assert!(breakdown.segment(Segment::LocalInference).as_f64() > 0.0);
                prop_assert!(breakdown.segment(Segment::RemoteInference).as_f64() > 0.0);
            }
        }
    }

    #[test]
    fn latency_is_monotone_in_frame_size(
        clock in 1.5..3.0_f64,
        small in 300.0..480.0_f64,
        delta in 50.0..200.0_f64,
    ) {
        let model = LatencyModel::published();
        let build = |size: f64| {
            Scenario::builder()
                .frame_side(size)
                .cpu_clock(GigaHertz::new(clock))
                .execution(ExecutionTarget::Remote)
                .build()
                .unwrap()
        };
        let a = model.analyze(&build(small)).unwrap().total();
        let b = model.analyze(&build(small + delta)).unwrap().total();
        prop_assert!(b >= a);
    }

    #[test]
    fn mm1_littles_law_and_stability(lambda in 0.1..500.0_f64, gap in 0.1..500.0_f64) {
        let mu = lambda + gap;
        let queue = MM1Queue::new(lambda, mu).unwrap();
        prop_assert!(queue.utilization() < 1.0);
        prop_assert!(queue.littles_law_residual().abs() < 1e-6);
        prop_assert!(queue.mean_time_in_system().as_f64() >= 1.0 / mu - 1e-12);
    }

    #[test]
    fn mm1_simulation_tracks_analytics_across_the_stable_region(
        rho in 0.05..0.9_f64,
        mu in 200.0..2_000.0_f64,
        seed in 0u64..1_000,
    ) {
        // After the warm-up accounting fixes, the simulated sojourn time,
        // utilization and queue length all share one measurement window and
        // must track the closed forms across the stable-ρ grid.
        let lambda = rho * mu;
        let analytic = MM1Queue::new(lambda, mu).unwrap();
        let report = MM1Simulator::new(lambda, mu, seed)
            .unwrap()
            .with_warmup(2_000)
            .run(30_000)
            .unwrap();
        prop_assert_eq!(report.completed, 30_000);
        let sojourn_rel_err = (report.mean_time_in_system.as_f64()
            - analytic.mean_time_in_system().as_f64())
            .abs()
            / analytic.mean_time_in_system().as_f64();
        prop_assert!(sojourn_rel_err < 0.25, "sojourn rel err {} at rho {}", sojourn_rel_err, rho);
        prop_assert!(
            (report.utilization - analytic.utilization()).abs() < 0.05,
            "utilization {} vs {}",
            report.utilization,
            analytic.utilization()
        );
        let length_rel_err = (report.mean_number_in_system - analytic.mean_number_in_system())
            .abs()
            / analytic.mean_number_in_system();
        prop_assert!(length_rel_err < 0.3, "queue length rel err {} at rho {}", length_rel_err, rho);
    }

    #[test]
    fn ols_recovers_linear_relations(
        intercept in -50.0..50.0_f64,
        slope in -10.0..10.0_f64,
        n in 10usize..60,
    ) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * 0.5]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| intercept + slope * x[0]).collect();
        let fit = LinearRegression::new().fit(&xs, &ys).unwrap();
        prop_assert!((fit.intercept() - intercept).abs() < 1e-6);
        prop_assert!((fit.coefficients()[0] - slope).abs() < 1e-6);
    }

    #[test]
    fn normalized_accuracy_is_bounded(
        truth in prop::collection::vec(1.0..1_000.0_f64, 1..20),
        noise in prop::collection::vec(-0.5..0.5_f64, 20),
    ) {
        let predicted: Vec<f64> = truth
            .iter()
            .zip(&noise)
            .map(|(t, n)| t * (1.0 + n))
            .collect();
        let accuracy = metrics::normalized_accuracy(&truth, &predicted);
        prop_assert!((0.0..=100.0).contains(&accuracy));
        let perfect = metrics::normalized_accuracy(&truth, &truth);
        prop_assert!((perfect - 100.0).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_with_latency_for_fixed_power_profile(
        size in 300.0..700.0_f64,
        clock in 1.8..3.0_f64,
    ) {
        // For a fixed scenario, scaling every latency up cannot reduce energy.
        let scenario = Scenario::builder()
            .frame_side(size)
            .cpu_clock(GigaHertz::new(clock))
            .execution(ExecutionTarget::Local)
            .build()
            .unwrap();
        let model = XrPerformanceModel::published();
        let report = model.analyze(&scenario).unwrap();
        let bigger = Scenario::builder()
            .frame_side(size + 50.0)
            .cpu_clock(GigaHertz::new(clock))
            .execution(ExecutionTarget::Local)
            .build()
            .unwrap();
        let bigger_report = model.analyze(&bigger).unwrap();
        prop_assert!(bigger_report.energy.total() >= report.energy.total());
    }
}
