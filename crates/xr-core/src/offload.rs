//! Offload planning on top of the analytical framework.
//!
//! The paper positions its framework as a replacement for trial-and-error
//! measurement when configuring an XR deployment ("enables researchers to
//! analyze the performance for both local and remote execution … irrespective
//! of the number or type of sensors or devices"). [`OffloadPlanner`] is the
//! programmatic version of that promise: sweep candidate execution targets
//! (local, remote, and a grid of task splits) and pick the one that optimises
//! a latency/energy objective, optionally under a latency budget.

use crate::report::XrPerformanceModel;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use xr_types::{ExecutionTarget, Joules, Result, Seconds};

/// What the planner optimises.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimise end-to-end latency (Eq. 1).
    MinimizeLatency,
    /// Minimise per-frame device energy (Eq. 19).
    MinimizeEnergy,
    /// Minimise energy subject to a latency budget; infeasible candidates are
    /// discarded.
    MinimizeEnergyUnderLatencyBudget(
        /// The latency budget.
        Seconds,
    ),
}

/// One evaluated candidate execution plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OffloadCandidate {
    /// The execution target evaluated.
    pub execution: ExecutionTarget,
    /// Predicted end-to-end latency.
    pub latency: Seconds,
    /// Predicted per-frame energy.
    pub energy: Joules,
    /// Whether the candidate satisfies the objective's constraint (always
    /// `true` for unconstrained objectives).
    pub feasible: bool,
}

/// The planner's decision: the winning candidate plus every candidate it
/// considered (for reporting).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OffloadPlan {
    /// The selected candidate, if any candidate was feasible.
    pub best: Option<OffloadCandidate>,
    /// All evaluated candidates, in evaluation order.
    pub candidates: Vec<OffloadCandidate>,
}

impl OffloadPlan {
    /// Convenience accessor: the chosen execution target, if any.
    #[must_use]
    pub fn chosen_execution(&self) -> Option<ExecutionTarget> {
        self.best.as_ref().map(|c| c.execution)
    }
}

/// Sweeps execution targets through the analytical framework and picks the
/// best one for an objective.
#[derive(Debug, Clone)]
pub struct OffloadPlanner {
    model: XrPerformanceModel,
    split_steps: u32,
}

impl OffloadPlanner {
    /// Creates a planner over a performance model. `split_steps` controls how
    /// many intermediate task-split candidates (between fully local and fully
    /// remote) are evaluated; 0 restricts the search to {local, remote}.
    #[must_use]
    pub fn new(model: XrPerformanceModel, split_steps: u32) -> Self {
        Self { model, split_steps }
    }

    /// A planner over the published model with a 25 %-granularity split grid.
    #[must_use]
    pub fn published() -> Self {
        Self::new(XrPerformanceModel::published(), 3)
    }

    /// The candidate execution targets the planner evaluates for a scenario.
    /// Remote and split candidates are only generated when the scenario has
    /// at least one edge server.
    #[must_use]
    pub fn candidate_targets(&self, scenario: &Scenario) -> Vec<ExecutionTarget> {
        let mut targets = vec![ExecutionTarget::Local];
        if !scenario.edge_servers.is_empty() {
            targets.push(ExecutionTarget::Remote);
            for step in 1..=self.split_steps {
                let share = f64::from(step) / f64::from(self.split_steps + 1);
                targets.push(ExecutionTarget::Split {
                    client_share: share,
                });
            }
        }
        targets
    }

    /// Evaluates every candidate and returns the plan for the objective.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors from the underlying models.
    pub fn plan(&self, scenario: &Scenario, objective: Objective) -> Result<OffloadPlan> {
        let mut candidates = Vec::new();
        for execution in self.candidate_targets(scenario) {
            let mut candidate_scenario = scenario.clone();
            candidate_scenario.execution = execution;
            let report = self.model.analyze(&candidate_scenario)?;
            let latency = report.latency.total();
            let energy = report.energy.total();
            let feasible = match objective {
                Objective::MinimizeLatency | Objective::MinimizeEnergy => true,
                Objective::MinimizeEnergyUnderLatencyBudget(budget) => latency <= budget,
            };
            candidates.push(OffloadCandidate {
                execution,
                latency,
                energy,
                feasible,
            });
        }

        let best = candidates
            .iter()
            .filter(|c| c.feasible)
            .min_by(|a, b| {
                let key = |c: &OffloadCandidate| match objective {
                    Objective::MinimizeLatency => c.latency.as_f64(),
                    Objective::MinimizeEnergy | Objective::MinimizeEnergyUnderLatencyBudget(_) => {
                        c.energy.as_f64()
                    }
                };
                key(a)
                    .partial_cmp(&key(b))
                    .expect("latency/energy are never NaN")
            })
            .cloned();

        Ok(OffloadPlan { best, candidates })
    }
}

impl Default for OffloadPlanner {
    fn default() -> Self {
        Self::published()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr_types::GigaHertz;

    fn scenario(clock: f64) -> Scenario {
        Scenario::builder()
            .cpu_clock(GigaHertz::new(clock))
            .build()
            .unwrap()
    }

    #[test]
    fn planner_evaluates_local_remote_and_splits() {
        let planner = OffloadPlanner::published();
        let scenario = scenario(2.0);
        let targets = planner.candidate_targets(&scenario);
        assert_eq!(targets.len(), 5);
        let plan = planner.plan(&scenario, Objective::MinimizeLatency).unwrap();
        assert_eq!(plan.candidates.len(), 5);
        assert!(plan.best.is_some());
        // The chosen candidate has the minimum latency of all candidates.
        let best = plan.best.as_ref().unwrap();
        for c in &plan.candidates {
            assert!(best.latency <= c.latency);
        }
    }

    #[test]
    fn no_edge_servers_restricts_the_search_to_local() {
        let planner = OffloadPlanner::published();
        let scenario = Scenario::builder()
            .edge_servers(Vec::new())
            .build()
            .unwrap();
        let targets = planner.candidate_targets(&scenario);
        assert_eq!(targets, vec![ExecutionTarget::Local]);
        let plan = planner.plan(&scenario, Objective::MinimizeEnergy).unwrap();
        assert_eq!(plan.chosen_execution(), Some(ExecutionTarget::Local));
    }

    #[test]
    fn tight_budget_can_make_every_candidate_infeasible() {
        let planner = OffloadPlanner::published();
        let scenario = scenario(2.0);
        let impossible = Objective::MinimizeEnergyUnderLatencyBudget(Seconds::from_millis(1.0));
        let plan = planner.plan(&scenario, impossible).unwrap();
        assert!(plan.best.is_none());
        assert!(plan.candidates.iter().all(|c| !c.feasible));
        assert!(plan.chosen_execution().is_none());
    }

    #[test]
    fn generous_budget_recovers_the_unconstrained_energy_optimum() {
        let planner = OffloadPlanner::published();
        let scenario = scenario(2.0);
        let unconstrained = planner.plan(&scenario, Objective::MinimizeEnergy).unwrap();
        let generous = planner
            .plan(
                &scenario,
                Objective::MinimizeEnergyUnderLatencyBudget(Seconds::new(1e3)),
            )
            .unwrap();
        assert_eq!(
            unconstrained.chosen_execution(),
            generous.chosen_execution()
        );
    }

    #[test]
    fn zero_split_steps_limits_to_binary_decision() {
        let planner = OffloadPlanner::new(XrPerformanceModel::published(), 0);
        let targets = planner.candidate_targets(&scenario(2.0));
        assert_eq!(targets.len(), 2);
    }
}
