//! Vehicular AR: an autonomous-driving-style XR workload where the device is
//! mobile (vertical handoffs), external roadside sensors stream pedestrian
//! and traffic-signal updates, and the application must decide at what speed
//! the offloaded pipeline stops meeting a latency budget.
//!
//! ```text
//! cargo run -p xr-examples --bin vehicular_ar
//! ```

use xr_core::{MobilityConfig, Scenario, SensorConfig, XrPerformanceModel};
use xr_types::{Error, ExecutionTarget, Hertz, Meters, MetersPerSecond, Segment};
use xr_wireless::HandoffKind;

fn main() -> Result<(), Error> {
    let model = XrPerformanceModel::published();
    let latency_budget_ms = 900.0;

    println!("=== Vehicular AR: latency vs vehicle speed (remote inference, vertical handoff) ===");
    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "speed (m/s)", "latency (ms)", "handoff (ms)", "budget"
    );

    for speed in [0.0, 5.0, 10.0, 15.0, 20.0, 30.0] {
        let scenario = vehicular_scenario(speed)?;
        let report = model.analyze(&scenario)?;
        let total = report.latency_ms().as_f64();
        let handoff = report.latency.segment(Segment::Handoff).as_f64() * 1e3;
        println!(
            "{speed:>12.1} {total:>14.2} {handoff:>14.2} {:>10}",
            if total <= latency_budget_ms {
                "OK"
            } else {
                "MISSED"
            }
        );
    }

    // Which roadside sensors are fresh enough at highway speed?
    let scenario = vehicular_scenario(20.0)?;
    let report = model.analyze(&scenario)?;
    println!("\nSensor freshness at 20 m/s (RoI ≥ 1 means fresh):");
    for sensor in &report.aoi.sensors {
        println!(
            "  {:<22} {:>7.1} Hz  mean AoI {:>7.2} ms  RoI {:>5.2} {}",
            sensor.name,
            sensor.generation_frequency.as_f64(),
            sensor.average.as_f64() * 1e3,
            sensor.roi,
            if sensor.is_fresh() {
                ""
            } else {
                "<- increase generation rate"
            }
        );
    }
    Ok(())
}

fn vehicular_scenario(speed_mps: f64) -> Result<Scenario, Error> {
    Scenario::builder()
        .client_from_catalog("XR1")?
        .frame_side(640.0)
        .frame_rate(Hertz::new(30.0))
        .execution(ExecutionTarget::Remote)
        .remote_cnn("YoloV7")?
        .sensors(vec![
            SensorConfig::new("roadside-lidar", Hertz::new(200.0), Meters::new(80.0)),
            SensorConfig::new("traffic-signal", Hertz::new(10.0), Meters::new(120.0)),
            SensorConfig::new("pedestrian-beacon", Hertz::new(50.0), Meters::new(40.0)),
            SensorConfig::new("hd-map-delta", Hertz::new(2.0), Meters::new(1_000.0)),
        ])
        .updates_per_frame(4)
        .mobility(MobilityConfig {
            speed: MetersPerSecond::new(speed_mps),
            coverage_radius: Meters::new(120.0),
            handoff_kind: HandoffKind::Vertical,
        })
        .build()
}
