//! # xr-experiments
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation (Section VIII) against the simulated testbed:
//!
//! | Artifact | Module | Binary |
//! |---|---|---|
//! | Table I (devices) | [`tables`] | `table1` |
//! | Table II (CNNs) | [`tables`] | `table2` |
//! | Fig. 4(a)/(b) end-to-end latency, local/remote | [`figures`] | `fig4a`, `fig4b` |
//! | Fig. 4(c)/(d) end-to-end energy, local/remote | [`figures`] | `fig4c`, `fig4d` |
//! | Fig. 4(e)/(f) AoI and RoI | [`aoi_experiments`] | `fig4e`, `fig4f` |
//! | Fig. 5(a)/(b) comparison with FACT and LEAF | [`comparison`] | `fig5a`, `fig5b` |
//! | §VIII-A/B mean-error summary | [`errors`] | `error_summary` |
//! | Eqs. 3/10/12/21 regression fits | [`regression_report`] | `regression_report` |
//! | Consolidated twelve-axis replicated sweep | [`campaign`] | `campaign` |
//! | Mobility: latency/handoffs vs speed × radius | [`mobility_experiments`] | `fig_mobility` |
//! | Training scaling: CI width vs campaign size | [`scaling_experiments`] | `fig_training_scaling` |
//! | Contention: latency knee vs edge population | [`contention_experiments`] | `fig_contention` |
//! | Topology: migration cost vs edge-site density | [`topology_experiments`] | `fig_topology` |
//!
//! Each binary prints the rows/series the paper reports and writes a CSV
//! artifact under `target/experiments/`. `run_all` chains everything in
//! one invocation.
//!
//! Every sweep is executed by the shared campaign engine in `xr-sweep`: the
//! grids run in parallel over scoped worker threads (`XR_SWEEP_WORKERS`
//! overrides the count) and produce bit-identical rows for any worker count.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod aoi_experiments;
pub mod campaign;
pub mod comparison;
pub mod contention_experiments;
pub mod context;
pub mod errors;
pub mod figures;
pub mod mobility_experiments;
pub mod output;
pub mod regression_report;
pub mod scaling_experiments;
pub mod shard_campaign;
pub mod tables;
pub mod topology_experiments;

pub use ablation::{AblationRow, AblationStudy};
pub use aoi_experiments::{AoiPoint, AoiSweep, RoiPoint};
pub use campaign::{CampaignRow, ReplicateStats};
pub use comparison::{ComparisonPoint, ComparisonSweep, Metric};
pub use contention_experiments::ContentionPoint;
pub use context::{parse_reorder_cap, ExperimentContext};
pub use errors::ErrorSummary;
pub use figures::{SweepPoint, SweepResult};
pub use mobility_experiments::MobilityPoint;
pub use regression_report::RegressionReport;
pub use scaling_experiments::ScalingPoint;
pub use shard_campaign::{
    merge_campaign_csvs, run_campaign_shard_with, run_campaign_shard_with_progress, ShardRunReport,
};
pub use topology_experiments::TopologyPoint;
