//! The device catalog of Table I.
//!
//! The table lists seven XR devices (smartphones, smart glasses, a VR
//! headset, and a Jetson TX2 doubling as XR 7) and two Nvidia Jetson edge
//! servers. The analytical models only consume a handful of parameters per
//! device — peak CPU/GPU clock, memory bandwidth, RAM — but the catalog keeps
//! the descriptive fields too so `table1` can regenerate the table.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use xr_types::{Error, GigaBytesPerSecond, GigaHertz, Result};

/// Broad device roles in the testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Hand-held or head-mounted XR client device.
    XrClient,
    /// Edge server hosting remote inference.
    EdgeServer,
    /// External sensor platform (the Jetson TX2 also plays this role).
    ExternalSensor,
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Catalog key ("XR1" … "XR7", "EDGE-TX2", "EDGE-XAVIER").
    pub name: String,
    /// Marketing model name.
    pub model: String,
    /// System-on-chip name.
    pub soc: String,
    /// Device role.
    pub class: DeviceClass,
    /// Number of CPU cores.
    pub cpu_cores: u32,
    /// Peak CPU clock.
    pub cpu_clock: GigaHertz,
    /// GPU name.
    pub gpu: String,
    /// Effective GPU clock used by the compute-resource model.
    pub gpu_clock: GigaHertz,
    /// RAM size in GB.
    pub ram_gb: f64,
    /// Peak memory bandwidth (GB/s); this is `m_client` / `m_ε` in the
    /// latency model. Table I lists the RAM technology (LPDDR4/LPDDR5/…);
    /// the bandwidth values here are the corresponding vendor figures.
    pub memory_bandwidth: GigaBytesPerSecond,
    /// Operating system string.
    pub os: String,
    /// Wi-Fi capability string.
    pub wifi: String,
    /// Release date string.
    pub release: String,
}

impl DeviceSpec {
    /// Returns `true` when the device can host remote inference.
    #[must_use]
    pub fn is_edge_server(&self) -> bool {
        self.class == DeviceClass::EdgeServer
    }
}

/// The catalog of devices used in the experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceCatalog {
    devices: BTreeMap<String, DeviceSpec>,
}

impl DeviceCatalog {
    /// Builds the catalog of Table I.
    #[must_use]
    pub fn table1() -> Self {
        let mut devices = BTreeMap::new();
        let mut add = |spec: DeviceSpec| {
            devices.insert(spec.name.clone(), spec);
        };

        add(DeviceSpec {
            name: "XR1".into(),
            model: "Huawei Mate 40 Pro".into(),
            soc: "Kirin 9000 (5 nm)".into(),
            class: DeviceClass::XrClient,
            cpu_cores: 8,
            cpu_clock: GigaHertz::new(3.13),
            gpu: "Mali G78".into(),
            gpu_clock: GigaHertz::new(0.76),
            ram_gb: 8.0,
            memory_bandwidth: GigaBytesPerSecond::new(44.0),
            os: "Android 10".into(),
            wifi: "802.11 a/b/g/n/ac/ax".into(),
            release: "October 2020".into(),
        });
        add(DeviceSpec {
            name: "XR2".into(),
            model: "OnePlus 8 Pro".into(),
            soc: "Snapdragon 865 (7 nm)".into(),
            class: DeviceClass::XrClient,
            cpu_cores: 8,
            cpu_clock: GigaHertz::new(2.84),
            gpu: "Adreno 650".into(),
            gpu_clock: GigaHertz::new(0.587),
            ram_gb: 8.0,
            memory_bandwidth: GigaBytesPerSecond::new(44.0),
            os: "Android 10".into(),
            wifi: "802.11 a/b/g/n/ac/ax".into(),
            release: "April 2020".into(),
        });
        add(DeviceSpec {
            name: "XR3".into(),
            model: "Motorola One Macro".into(),
            soc: "Helio P70 (12 nm)".into(),
            class: DeviceClass::XrClient,
            cpu_cores: 8,
            cpu_clock: GigaHertz::new(2.0),
            gpu: "Mali G72".into(),
            gpu_clock: GigaHertz::new(0.9),
            ram_gb: 4.0,
            memory_bandwidth: GigaBytesPerSecond::new(14.9),
            os: "Android 9".into(),
            wifi: "802.11 b/g/n".into(),
            release: "October 2019".into(),
        });
        add(DeviceSpec {
            name: "XR4".into(),
            model: "Xiaomi Redmi Note 8".into(),
            soc: "Snapdragon 665 (11 nm)".into(),
            class: DeviceClass::XrClient,
            cpu_cores: 8,
            cpu_clock: GigaHertz::new(2.0),
            gpu: "Adreno 610".into(),
            gpu_clock: GigaHertz::new(0.6),
            ram_gb: 4.0,
            memory_bandwidth: GigaBytesPerSecond::new(14.9),
            os: "Android 10".into(),
            wifi: "802.11 a/b/g/n/ac".into(),
            release: "August 2020".into(),
        });
        add(DeviceSpec {
            name: "XR5".into(),
            model: "Google Glass Enterprise Edition 2".into(),
            soc: "Snapdragon XR1".into(),
            class: DeviceClass::XrClient,
            cpu_cores: 8,
            cpu_clock: GigaHertz::new(2.52),
            gpu: "Adreno 615".into(),
            gpu_clock: GigaHertz::new(0.43),
            ram_gb: 3.0,
            memory_bandwidth: GigaBytesPerSecond::new(14.9),
            os: "Android 8.1".into(),
            wifi: "802.11 a/g/b/n/ac".into(),
            release: "May 2019".into(),
        });
        add(DeviceSpec {
            name: "XR6".into(),
            model: "Meta Quest 2".into(),
            soc: "Snapdragon XR2".into(),
            class: DeviceClass::XrClient,
            cpu_cores: 8,
            cpu_clock: GigaHertz::new(2.84),
            gpu: "Adreno 650".into(),
            gpu_clock: GigaHertz::new(0.587),
            ram_gb: 6.0,
            memory_bandwidth: GigaBytesPerSecond::new(44.0),
            os: "Oculus OS".into(),
            wifi: "802.11 a/g/b/n/ac/ax".into(),
            release: "October 2020".into(),
        });
        add(DeviceSpec {
            name: "XR7".into(),
            model: "Nvidia Jetson TX2".into(),
            soc: "Nvidia Tegra (Denver2 + A57)".into(),
            class: DeviceClass::ExternalSensor,
            cpu_cores: 6,
            cpu_clock: GigaHertz::new(2.0),
            gpu: "256-core Pascal".into(),
            gpu_clock: GigaHertz::new(1.3),
            ram_gb: 8.0,
            memory_bandwidth: GigaBytesPerSecond::new(59.7),
            os: "Ubuntu 18.04".into(),
            wifi: "—".into(),
            release: "March 2017".into(),
        });
        add(DeviceSpec {
            name: "EDGE-XAVIER".into(),
            model: "Nvidia Jetson AGX Xavier".into(),
            soc: "Nvidia Tegra Xavier".into(),
            class: DeviceClass::EdgeServer,
            cpu_cores: 8,
            cpu_clock: GigaHertz::new(2.26),
            gpu: "512-core Volta with Tensor Cores".into(),
            gpu_clock: GigaHertz::new(1.377),
            ram_gb: 32.0,
            memory_bandwidth: GigaBytesPerSecond::new(136.5),
            os: "Ubuntu 18.04 LTS aarch64".into(),
            wifi: "—".into(),
            release: "October 2018".into(),
        });
        add(DeviceSpec {
            name: "EDGE-TX2".into(),
            model: "Nvidia Jetson TX2 (edge role)".into(),
            soc: "Nvidia Tegra (Denver2 + A57)".into(),
            class: DeviceClass::EdgeServer,
            cpu_cores: 6,
            cpu_clock: GigaHertz::new(2.0),
            gpu: "256-core Pascal".into(),
            gpu_clock: GigaHertz::new(1.3),
            ram_gb: 8.0,
            memory_bandwidth: GigaBytesPerSecond::new(59.7),
            os: "Ubuntu 18.04".into(),
            wifi: "—".into(),
            release: "March 2017".into(),
        });

        Self { devices }
    }

    /// Looks up a device by catalog key.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] when the key is unknown.
    pub fn device(&self, name: &str) -> Result<&DeviceSpec> {
        self.devices
            .get(name)
            .ok_or_else(|| Error::not_found("device", name))
    }

    /// All devices, in catalog-key order.
    pub fn iter(&self) -> impl Iterator<Item = &DeviceSpec> {
        self.devices.values()
    }

    /// Only XR client devices (the smartphones, glasses, and headset).
    pub fn xr_clients(&self) -> impl Iterator<Item = &DeviceSpec> {
        self.iter().filter(|d| d.class == DeviceClass::XrClient)
    }

    /// Only edge servers.
    pub fn edge_servers(&self) -> impl Iterator<Item = &DeviceSpec> {
        self.iter().filter(|d| d.class == DeviceClass::EdgeServer)
    }

    /// The devices the paper trains its regressions on (XR1, XR3, XR5, XR6).
    #[must_use]
    pub fn training_devices() -> Vec<&'static str> {
        vec!["XR1", "XR3", "XR5", "XR6"]
    }

    /// The held-out devices used for validation (XR2, XR4, XR7).
    #[must_use]
    pub fn validation_devices() -> Vec<&'static str> {
        vec!["XR2", "XR4", "XR7"]
    }

    /// Number of catalog entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Returns `true` if the catalog has no entries (never the case for
    /// [`DeviceCatalog::table1`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_devices() {
        let catalog = DeviceCatalog::table1();
        assert_eq!(catalog.len(), 9);
        assert!(!catalog.is_empty());
        for key in ["XR1", "XR2", "XR3", "XR4", "XR5", "XR6", "XR7"] {
            assert!(catalog.device(key).is_ok(), "missing {key}");
        }
        assert_eq!(catalog.xr_clients().count(), 6);
        assert_eq!(catalog.edge_servers().count(), 2);
    }

    #[test]
    fn unknown_device_reports_not_found() {
        let catalog = DeviceCatalog::table1();
        assert!(matches!(
            catalog.device("XR99"),
            Err(Error::NotFound { .. })
        ));
    }

    #[test]
    fn training_and_validation_sets_partition_clients() {
        let train = DeviceCatalog::training_devices();
        let valid = DeviceCatalog::validation_devices();
        assert_eq!(train.len(), 4);
        assert_eq!(valid.len(), 3);
        for d in &valid {
            assert!(!train.contains(d));
        }
    }

    #[test]
    fn edge_servers_have_more_memory_bandwidth_than_phones() {
        let catalog = DeviceCatalog::table1();
        let xavier = catalog.device("EDGE-XAVIER").unwrap();
        for client in catalog.xr_clients() {
            assert!(xavier.memory_bandwidth > client.memory_bandwidth);
        }
        assert!(xavier.is_edge_server());
        assert!(!catalog.device("XR1").unwrap().is_edge_server());
    }

    #[test]
    fn specs_match_table1_headline_numbers() {
        let catalog = DeviceCatalog::table1();
        let xr1 = catalog.device("XR1").unwrap();
        assert!((xr1.cpu_clock.as_f64() - 3.13).abs() < 1e-9);
        assert_eq!(xr1.ram_gb, 8.0);
        let xr5 = catalog.device("XR5").unwrap();
        assert_eq!(xr5.ram_gb, 3.0);
        let xavier = catalog.device("EDGE-XAVIER").unwrap();
        assert_eq!(xavier.ram_gb, 32.0);
        assert_eq!(xavier.cpu_cores, 8);
    }

    #[test]
    fn iteration_is_deterministic() {
        let a: Vec<String> = DeviceCatalog::table1()
            .iter()
            .map(|d| d.name.clone())
            .collect();
        let b: Vec<String> = DeviceCatalog::table1()
            .iter()
            .map(|d| d.name.clone())
            .collect();
        assert_eq!(a, b);
    }
}
