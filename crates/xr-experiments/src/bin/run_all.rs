//! Runs every experiment in sequence and prints a consolidated report — the
//! source of the numbers recorded in `EXPERIMENTS.md`.

use xr_experiments::aoi_experiments::{aoi_over_time, roi_staircase};
use xr_experiments::comparison::{comparison_sweep, Metric};
use xr_experiments::figures::{energy_sweep, latency_sweep};
use xr_experiments::{output, tables, ErrorSummary, ExperimentContext, RegressionReport};
use xr_types::ExecutionTarget;

fn main() {
    let ctx = ExperimentContext::from_args();

    output::print_experiment(
        "Table I — devices",
        &tables::table1_header(),
        &tables::table1_rows(),
        "table1.csv",
    );
    output::print_experiment(
        "Table II — CNNs",
        &tables::table2_header(),
        &tables::table2_rows(),
        "table2.csv",
    );

    let figures = [
        (
            "Fig. 4(a) latency/local (ms)",
            ExecutionTarget::Local,
            true,
            "fig4a.csv",
            2.74,
        ),
        (
            "Fig. 4(b) latency/remote (ms)",
            ExecutionTarget::Remote,
            true,
            "fig4b.csv",
            3.23,
        ),
        (
            "Fig. 4(c) energy/local (mJ)",
            ExecutionTarget::Local,
            false,
            "fig4c.csv",
            3.52,
        ),
        (
            "Fig. 4(d) energy/remote (mJ)",
            ExecutionTarget::Remote,
            false,
            "fig4d.csv",
            5.38,
        ),
    ];
    for (title, execution, is_latency, csv, paper_error) in figures {
        let sweep = if is_latency {
            latency_sweep(&ctx, execution)
        } else {
            energy_sweep(&ctx, execution)
        }
        .expect("sweep failed");
        output::print_experiment(
            title,
            &[
                "frame_size",
                "cpu_ghz",
                "ground_truth",
                "proposed",
                "error_%",
            ],
            &sweep.rows(),
            csv,
        );
        println!(
            "{title}: mean error {:.2}% (paper {paper_error:.2}%)\n",
            sweep.mean_error_percent()
        );
    }

    let aoi = aoi_over_time(&ctx).expect("AoI experiment failed");
    output::print_experiment(
        "Fig. 4(e) AoI over time (ms)",
        &["freq_hz", "time_ms", "gt_aoi_ms", "proposed_aoi_ms"],
        &aoi.rows(),
        "fig4e.csv",
    );
    println!("Fig. 4(e): MAE {:.2} ms\n", aoi.mean_absolute_error_ms());

    let staircase = roi_staircase(&ctx).expect("RoI experiment failed");
    let rows: Vec<Vec<String>> = staircase
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.time_ms),
                format!("{:.2}", p.aoi_ms),
                format!("{:.3}", p.roi),
            ]
        })
        .collect();
    output::print_experiment(
        "Fig. 4(f) AoI/RoI staircase (100 Hz sensor)",
        &["time_ms", "aoi_ms", "roi"],
        &rows,
        "fig4f.csv",
    );

    for (metric, csv, paper_fact, paper_leaf) in [
        (Metric::Latency, "fig5a.csv", 17.59, 7.49),
        (Metric::Energy, "fig5b.csv", 15.30, 8.71),
    ] {
        let sweep = comparison_sweep(&ctx, metric).expect("comparison failed");
        output::print_experiment(
            &format!("{} normalized accuracy (%)", metric.figure()),
            &["frame_size", "GT", "Proposed", "FACT", "LEAF"],
            &sweep.rows(),
            csv,
        );
        let (vs_fact, vs_leaf) = sweep.improvement_over_baselines();
        println!(
            "{}: proposed {:.2}%, FACT {:.2}%, LEAF {:.2}% | improvement {:.2} pp vs FACT (paper {paper_fact}), {:.2} pp vs LEAF (paper {paper_leaf})\n",
            metric.figure(),
            sweep.proposed_accuracy(),
            sweep.fact_accuracy(),
            sweep.leaf_accuracy(),
            vs_fact,
            vs_leaf
        );
    }

    let summary = ErrorSummary::compute(&ctx).expect("error summary failed");
    output::print_experiment(
        "Mean-error summary (%)",
        &["experiment", "measured_%", "paper_%"],
        &summary.rows(),
        "error_summary.csv",
    );

    let records = if std::env::args().any(|a| a == "--paper-scale") {
        119_465
    } else {
        20_000
    };
    let regression = RegressionReport::compute(&ctx, records).expect("regression report failed");
    output::print_experiment(
        "Regression fits (R²)",
        &["model", "train_R2", "held_out_R2", "paper_R2"],
        &regression.rows(),
        "regression_report.csv",
    );
    println!(
        "regression records: {} train / {} held-out",
        regression.train_records, regression.test_records
    );
}
