//! Scenario configuration: everything the analytical models need to know
//! about one XR application deployment.
//!
//! A [`Scenario`] bundles the client device, the edge server(s), the CNNs,
//! the per-frame workload, the encoder settings, the external sensors, the
//! input-buffer queueing parameters, the wireless links, device mobility, and
//! the execution decision (`ω_loc` / task split). Both the analytical models
//! (`xr-core`) and the ground-truth simulator (`xr-testbed`) consume the same
//! `Scenario`, which is what makes the validation experiments of Section VIII
//! an apples-to-apples comparison.

use crate::encoding::EncodingConfig;
use serde::{Deserialize, Serialize};
use xr_devices::{CnnCatalog, CnnModel, DeviceCatalog};
use xr_types::{
    Error, ExecutionTarget, Frame, FrameId, GigaBytesPerSecond, GigaHertz, Hertz,
    MegaBitsPerSecond, MegaBytes, Meters, MetersPerSecond, MigrationPolicy, Ratio, Result,
    SegmentSet, TopologyLayout,
};
use xr_wireless::{AccessTechnology, HandoffKind};

/// The XR client device's compute-relevant parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientConfig {
    /// Catalog name (informational).
    pub name: String,
    /// CPU clock `f_c`.
    pub cpu_clock: GigaHertz,
    /// GPU clock `f_g`.
    pub gpu_clock: GigaHertz,
    /// CPU share of the task `ω_c` (GPU share is the complement).
    pub cpu_share: Ratio,
    /// Memory bandwidth `m_client`.
    pub memory_bandwidth: GigaBytesPerSecond,
}

impl ClientConfig {
    /// Builds a client configuration from a Table I catalog entry, using the
    /// evaluation's default utilisation split (`ω_c = 0.6`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for unknown device names.
    pub fn from_catalog(name: &str) -> Result<Self> {
        let catalog = DeviceCatalog::table1();
        let spec = catalog.device(name)?;
        Ok(Self {
            name: spec.name.clone(),
            cpu_clock: spec.cpu_clock,
            gpu_clock: spec.gpu_clock,
            cpu_share: Ratio::new(0.6),
            memory_bandwidth: spec.memory_bandwidth,
        })
    }
}

/// One edge server able to host (part of) the remote inference task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeServerConfig {
    /// Catalog name (informational).
    pub name: String,
    /// Explicit compute resource `c_ε` in the same unit as `c_client`
    /// (pixel²/ms). `None` means "derive from the client through the paper's
    /// coupling `c_ε = 11.76 · c_client`".
    pub compute_resource: Option<f64>,
    /// Memory bandwidth `m_ε`.
    pub memory_bandwidth: GigaBytesPerSecond,
    /// Share of the inference task assigned to this server (`ω_edge^e`);
    /// shares are normalised against the client share at analysis time.
    pub task_share: f64,
    /// Distance to the XR device `d_ε`.
    pub distance: Meters,
    /// Access technology of the link to this server.
    pub technology: AccessTechnology,
    /// Available throughput `r_w` of the link; `None` uses the technology's
    /// nominal throughput.
    pub throughput: Option<MegaBitsPerSecond>,
}

impl EdgeServerConfig {
    /// The Jetson AGX Xavier edge server of the testbed on the 5 GHz Wi-Fi
    /// link, 15 m from the XR device, taking the whole offloaded task.
    ///
    /// # Panics
    ///
    /// Never panics: the catalog entry exists.
    #[must_use]
    pub fn jetson_xavier() -> Self {
        let catalog = DeviceCatalog::table1();
        let spec = catalog.device("EDGE-XAVIER").expect("catalog entry exists");
        Self {
            name: spec.name.clone(),
            compute_resource: None,
            memory_bandwidth: spec.memory_bandwidth,
            task_share: 1.0,
            distance: Meters::new(15.0),
            technology: AccessTechnology::WiFi5GHz,
            throughput: None,
        }
    }
}

/// An external sensor or device that streams control/environment information
/// to the XR device (Section III, "external sensor information generation").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorConfig {
    /// Human-readable label.
    pub name: String,
    /// Information-generation frequency `f_t^m`.
    pub generation_frequency: Hertz,
    /// Distance to the XR device `d_m`.
    pub distance: Meters,
    /// Packet arrival rate `λ_m` into the XR input buffer (packets/s); by
    /// default equal to the generation frequency.
    pub arrival_rate: f64,
}

impl SensorConfig {
    /// Creates a sensor whose buffer arrival rate equals its generation
    /// frequency.
    #[must_use]
    pub fn new(name: impl Into<String>, generation_frequency: Hertz, distance: Meters) -> Self {
        let rate = generation_frequency.as_f64();
        Self {
            name: name.into(),
            generation_frequency,
            distance,
            arrival_rate: rate,
        }
    }
}

/// Input-buffer queueing parameters (Eq. 7 / Eq. 22): the buffer is modelled
/// as a set of stable M/M/1 flows sharing a service rate `µ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BufferConfig {
    /// Service rate `µ` of the input buffer in items/s.
    pub service_rate: f64,
    /// Arrival rate of captured frames (defaults to the frame rate).
    pub frame_arrival_rate: Option<f64>,
    /// Arrival rate of volumetric-data items (defaults to the frame rate).
    pub volumetric_arrival_rate: Option<f64>,
}

impl Default for BufferConfig {
    fn default() -> Self {
        Self {
            service_rate: 2_000.0,
            frame_arrival_rate: None,
            volumetric_arrival_rate: None,
        }
    }
}

/// Multi-tenant edge contention: how many concurrent XR sessions share each
/// edge inference server.
///
/// When present on a [`Scenario`], the testbed's uplink/edge-inference stage
/// stops treating the edge as a private accelerator and instead draws the
/// tagged session's per-frame sojourn from a stable M/M/1 queue whose arrival
/// rate is `users_per_edge × frame rate` and whose service rate is the
/// reciprocal of the deterministic per-frame edge service time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContentionConfig {
    /// Number of sessions sharing each edge server, including this one.
    pub users_per_edge: u32,
}

/// A multi-edge service-area topology for the session to roam across.
///
/// When present on a [`Scenario`], the testbed replaces the paper's single
/// coverage zone with an `xr-wireless` `EdgeTopology`: a map of edge sites
/// whose per-site coverage radius follows from `site_density`, whose tenant
/// populations cycle around [`ContentionConfig::users_per_edge`] (when
/// contention is configured), and between which boundary crossings become
/// inter-site **state migrations** priced by `migration_policy`. `None`
/// keeps the legacy single-zone mobility model byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// The site-layout family of the map.
    pub layout: TopologyLayout,
    /// Edge-site density in sites per square kilometre; fixes the lattice
    /// spacing and with it every site's coverage radius (tiled layouts
    /// ignore [`MobilityConfig::coverage_radius`]). Ignored by
    /// [`TopologyLayout::Single`], which reuses the mobility radius.
    pub site_density: f64,
    /// How session state follows the device across an inter-site handoff.
    pub migration_policy: MigrationPolicy,
}

/// Device mobility and handoff parameters (Eq. 17).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobilityConfig {
    /// Device speed; zero disables handoffs entirely.
    pub speed: MetersPerSecond,
    /// Coverage radius of the serving zone.
    pub coverage_radius: Meters,
    /// The kind of handoff performed on leaving the zone.
    pub handoff_kind: HandoffKind,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        Self {
            speed: MetersPerSecond::new(0.0),
            coverage_radius: Meters::new(30.0),
            handoff_kind: HandoffKind::Vertical,
        }
    }
}

/// XR-cooperation parameters (Eq. 18).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CooperationConfig {
    /// Payload shared with the cooperative device `δ_f4`.
    pub payload: MegaBytes,
    /// Distance to the cooperative device `d_coop`.
    pub distance: Meters,
    /// Link throughput towards the cooperative device.
    pub throughput: MegaBitsPerSecond,
    /// Whether cooperation latency/energy is included in the end-to-end
    /// totals (the paper's default is *not*, because cooperation runs in
    /// parallel with rendering).
    pub include_in_totals: bool,
}

impl Default for CooperationConfig {
    fn default() -> Self {
        Self {
            payload: MegaBytes::new(0.05),
            distance: Meters::new(20.0),
            throughput: AccessTechnology::WiFi5GHz.nominal_throughput(),
            include_in_totals: false,
        }
    }
}

/// A complete XR application scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The XR client device.
    pub client: ClientConfig,
    /// Edge servers available for remote inference (may be empty for a
    /// purely local scenario).
    pub edge_servers: Vec<EdgeServerConfig>,
    /// Where the inference task executes.
    pub execution: ExecutionTarget,
    /// The per-frame workload.
    pub frame: Frame,
    /// H.264 encoder settings (only relevant to the remote path).
    pub encoding: EncodingConfig,
    /// The lightweight on-device CNN.
    pub local_cnn: CnnModel,
    /// The edge-side CNN.
    pub remote_cnn: CnnModel,
    /// External sensors streaming control information.
    pub sensors: Vec<SensorConfig>,
    /// Number of information updates `N` the application requires per frame.
    pub updates_per_frame: u32,
    /// Input-buffer queueing parameters.
    pub buffer: BufferConfig,
    /// Mobility and handoff parameters.
    pub mobility: MobilityConfig,
    /// XR-cooperation parameters.
    pub cooperation: CooperationConfig,
    /// Multi-tenant edge contention; `None` keeps the paper's private-edge
    /// assumption.
    pub contention: Option<ContentionConfig>,
    /// Multi-edge service-area topology; `None` keeps the paper's
    /// single-coverage-zone mobility model.
    pub topology: Option<TopologyConfig>,
    /// Which segments are included in the end-to-end totals.
    pub segments: SegmentSet,
}

impl Scenario {
    /// Starts building a scenario from defaults matching the paper's
    /// evaluation setup.
    #[must_use]
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// The per-frame processing window used for mobility/AoI computations:
    /// one frame interval `1/n_fps`.
    #[must_use]
    pub fn frame_window(&self) -> xr_types::Seconds {
        self.frame.frame_rate.period()
    }

    /// Total external-information arrival rate into the input buffer.
    #[must_use]
    pub fn external_arrival_rate(&self) -> f64 {
        self.sensors.iter().map(|s| s.arrival_rate).sum()
    }

    /// Validates structural consistency: remote execution requires at least
    /// one edge server, buffer stability, and positive workload parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfiguration`] or [`Error::UnstableQueue`]
    /// when the scenario cannot be analysed.
    pub fn validate(&self) -> Result<()> {
        if self.execution.uses_edge() && self.edge_servers.is_empty() {
            return Err(Error::invalid_configuration(
                "remote or split execution requires at least one edge server",
            ));
        }
        if !self.frame.frame_rate.is_positive() {
            return Err(Error::invalid_parameter("frame_rate", "must be positive"));
        }
        if !self.client.memory_bandwidth.is_positive() {
            return Err(Error::invalid_parameter(
                "memory_bandwidth",
                "must be positive",
            ));
        }
        if self.execution.uses_edge() {
            let total_share: f64 = self.edge_servers.iter().map(|e| e.task_share).sum();
            if total_share <= 0.0 {
                return Err(Error::invalid_configuration(
                    "edge task shares must sum to a positive value",
                ));
            }
        }
        // Buffer stability for every flow (the paper requires a *stable*
        // M/M/1 system).
        let mu = self.buffer.service_rate;
        let frame_rate = self.frame.frame_rate.as_f64();
        let flows = [
            self.buffer.frame_arrival_rate.unwrap_or(frame_rate),
            self.buffer.volumetric_arrival_rate.unwrap_or(frame_rate),
            self.external_arrival_rate().max(f64::MIN_POSITIVE),
        ];
        for lambda in flows {
            if lambda >= mu {
                return Err(Error::UnstableQueue {
                    arrival_rate: lambda,
                    service_rate: mu,
                });
            }
        }
        if self.updates_per_frame == 0 {
            return Err(Error::invalid_parameter(
                "updates_per_frame",
                "must be at least 1",
            ));
        }
        if let Some(contention) = self.contention {
            if contention.users_per_edge == 0 {
                return Err(Error::invalid_parameter(
                    "users_per_edge",
                    "must be at least 1",
                ));
            }
        }
        if let Some(topology) = self.topology {
            if topology.layout != TopologyLayout::Single
                && !(topology.site_density.is_finite() && topology.site_density > 0.0)
            {
                return Err(Error::invalid_parameter(
                    "site_density",
                    "must be a positive number of sites per km²",
                ));
            }
        }
        Ok(())
    }
}

/// Builder for [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    client: ClientConfig,
    edge_servers: Vec<EdgeServerConfig>,
    execution: ExecutionTarget,
    frame_side: f64,
    frame_rate: Hertz,
    encoding: EncodingConfig,
    local_cnn: CnnModel,
    remote_cnn: CnnModel,
    sensors: Vec<SensorConfig>,
    updates_per_frame: u32,
    buffer: BufferConfig,
    mobility: MobilityConfig,
    cooperation: CooperationConfig,
    contention: Option<ContentionConfig>,
    topology: Option<TopologyConfig>,
    segments: SegmentSet,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioBuilder {
    /// Creates a builder pre-loaded with the paper's evaluation defaults:
    /// the OnePlus 8 Pro client (XR2), a Jetson AGX Xavier edge server,
    /// MobileNetV2-300 locally, YOLOv3 remotely, 30 fps, a 500 px² frame,
    /// three vehicular-style external sensors, and a static device.
    #[must_use]
    pub fn new() -> Self {
        let cnn_catalog = CnnCatalog::table2();
        Self {
            client: ClientConfig::from_catalog("XR2").expect("XR2 exists in Table I"),
            edge_servers: vec![EdgeServerConfig::jetson_xavier()],
            execution: ExecutionTarget::Local,
            frame_side: 500.0,
            frame_rate: Hertz::new(30.0),
            encoding: EncodingConfig::default(),
            local_cnn: cnn_catalog.default_local().clone(),
            remote_cnn: cnn_catalog.default_remote().clone(),
            sensors: vec![
                SensorConfig::new("roadside-unit", Hertz::new(200.0), Meters::new(50.0)),
                SensorConfig::new("neighbor-xr", Hertz::new(100.0), Meters::new(20.0)),
                SensorConfig::new("iot-beacon", Hertz::new(66.67), Meters::new(35.0)),
            ],
            updates_per_frame: 6,
            buffer: BufferConfig::default(),
            mobility: MobilityConfig::default(),
            cooperation: CooperationConfig::default(),
            contention: None,
            topology: None,
            segments: SegmentSet::standard(),
        }
    }

    /// Sets the client from a Table I catalog entry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for unknown device names.
    pub fn client_from_catalog(mut self, name: &str) -> Result<Self> {
        self.client = ClientConfig::from_catalog(name)?;
        Ok(self)
    }

    /// Sets the client configuration explicitly.
    #[must_use]
    pub fn client(mut self, client: ClientConfig) -> Self {
        self.client = client;
        self
    }

    /// Overrides the client CPU clock (the 1/2/3 GHz sweep of Fig. 4).
    #[must_use]
    pub fn cpu_clock(mut self, clock: GigaHertz) -> Self {
        self.client.cpu_clock = clock;
        self
    }

    /// Overrides the CPU/GPU utilisation split `ω_c`.
    #[must_use]
    pub fn cpu_share(mut self, share: Ratio) -> Self {
        self.client.cpu_share = share;
        self
    }

    /// Replaces the edge-server list.
    #[must_use]
    pub fn edge_servers(mut self, servers: Vec<EdgeServerConfig>) -> Self {
        self.edge_servers = servers;
        self
    }

    /// Adds an edge server.
    #[must_use]
    pub fn add_edge_server(mut self, server: EdgeServerConfig) -> Self {
        self.edge_servers.push(server);
        self
    }

    /// Sets the execution target (`ω_loc` / task split).
    #[must_use]
    pub fn execution(mut self, execution: ExecutionTarget) -> Self {
        self.execution = execution;
        self
    }

    /// Sets the frame side (the paper's "frame size (pixel²)" sweep variable,
    /// 300–700).
    #[must_use]
    pub fn frame_side(mut self, side: f64) -> Self {
        self.frame_side = side;
        self
    }

    /// Sets the capture frame rate `n_fps`.
    #[must_use]
    pub fn frame_rate(mut self, rate: Hertz) -> Self {
        self.frame_rate = rate;
        self
    }

    /// Sets the H.264 encoder configuration.
    #[must_use]
    pub fn encoding(mut self, encoding: EncodingConfig) -> Self {
        self.encoding = encoding;
        self
    }

    /// Sets the on-device CNN by Table II name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for unknown CNN names.
    pub fn local_cnn(mut self, name: &str) -> Result<Self> {
        self.local_cnn = CnnCatalog::table2().model(name)?.clone();
        Ok(self)
    }

    /// Sets the edge-side CNN by Table II name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] for unknown CNN names.
    pub fn remote_cnn(mut self, name: &str) -> Result<Self> {
        self.remote_cnn = CnnCatalog::table2().model(name)?.clone();
        Ok(self)
    }

    /// Replaces the external sensor list.
    #[must_use]
    pub fn sensors(mut self, sensors: Vec<SensorConfig>) -> Self {
        self.sensors = sensors;
        self
    }

    /// Sets the number of information updates the application requires per
    /// frame (`N`).
    #[must_use]
    pub fn updates_per_frame(mut self, updates: u32) -> Self {
        self.updates_per_frame = updates;
        self
    }

    /// Sets the input-buffer queueing parameters.
    #[must_use]
    pub fn buffer(mut self, buffer: BufferConfig) -> Self {
        self.buffer = buffer;
        self
    }

    /// Sets device mobility.
    #[must_use]
    pub fn mobility(mut self, mobility: MobilityConfig) -> Self {
        self.mobility = mobility;
        self
    }

    /// Sets XR-cooperation parameters.
    #[must_use]
    pub fn cooperation(mut self, cooperation: CooperationConfig) -> Self {
        self.cooperation = cooperation;
        self
    }

    /// Shares each edge server between `users` concurrent sessions (multi-
    /// tenant contention); one user means an aggregate queue carrying only
    /// the tagged session.
    #[must_use]
    pub fn contention(mut self, users: u32) -> Self {
        self.contention = Some(ContentionConfig {
            users_per_edge: users,
        });
        self
    }

    /// Spreads the session over a multi-edge topology; boundary crossings
    /// then migrate the session between edge sites instead of re-entering
    /// one zone.
    #[must_use]
    pub fn topology(mut self, topology: TopologyConfig) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Overrides the segment set included in the totals.
    #[must_use]
    pub fn segments(mut self, segments: SegmentSet) -> Self {
        self.segments = segments;
        self
    }

    /// Builds and validates the scenario.
    ///
    /// # Errors
    ///
    /// Returns the validation errors of [`Scenario::validate`].
    pub fn build(self) -> Result<Scenario> {
        let frame = Frame::from_resolution(FrameId::new(1), self.frame_side, self.frame_rate);
        let scenario = Scenario {
            client: self.client,
            edge_servers: self.edge_servers,
            execution: self.execution,
            frame,
            encoding: self.encoding,
            local_cnn: self.local_cnn,
            remote_cnn: self.remote_cnn,
            sensors: self.sensors,
            updates_per_frame: self.updates_per_frame,
            buffer: self.buffer,
            mobility: self.mobility,
            cooperation: self.cooperation,
            contention: self.contention,
            topology: self.topology,
            segments: self.segments,
        };
        scenario.validate()?;
        Ok(scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr_types::Segment;

    #[test]
    fn default_builder_produces_valid_local_scenario() {
        let s = Scenario::builder().build().unwrap();
        assert_eq!(s.execution, ExecutionTarget::Local);
        assert_eq!(s.sensors.len(), 3);
        assert!(s.segments.contains(Segment::FrameGeneration));
        assert!(!s.segments.contains(Segment::XrCooperation));
        assert!((s.frame_window().as_f64() - 1.0 / 30.0).abs() < 1e-12);
        assert!(s.external_arrival_rate() > 0.0);
    }

    #[test]
    fn remote_scenario_requires_edge_server() {
        let err = Scenario::builder()
            .execution(ExecutionTarget::Remote)
            .edge_servers(Vec::new())
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfiguration(_)));

        let ok = Scenario::builder()
            .execution(ExecutionTarget::Remote)
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn unstable_buffer_rejected() {
        let err = Scenario::builder()
            .buffer(BufferConfig {
                service_rate: 10.0,
                ..BufferConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::UnstableQueue { .. }));
    }

    #[test]
    fn zero_updates_rejected() {
        let err = Scenario::builder()
            .updates_per_frame(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidParameter { .. }));
    }

    #[test]
    fn builder_setters_apply() {
        let s = Scenario::builder()
            .client_from_catalog("XR1")
            .unwrap()
            .cpu_clock(GigaHertz::new(2.0))
            .cpu_share(Ratio::new(0.8))
            .frame_side(640.0)
            .frame_rate(Hertz::new(60.0))
            .updates_per_frame(4)
            .local_cnn("EfficientNet_Float")
            .unwrap()
            .remote_cnn("YoloV7")
            .unwrap()
            .execution(ExecutionTarget::Split { client_share: 0.4 })
            .build()
            .unwrap();
        assert_eq!(s.client.name, "XR1");
        assert!((s.client.cpu_clock.as_f64() - 2.0).abs() < 1e-12);
        assert!((s.client.cpu_share.as_f64() - 0.8).abs() < 1e-12);
        assert!((s.frame.raw_side() - 640.0).abs() < 1e-9);
        assert_eq!(s.local_cnn.name, "EfficientNet_Float");
        assert_eq!(s.remote_cnn.name, "YoloV7");
        assert_eq!(s.updates_per_frame, 4);
        assert!(s.execution.uses_edge() && s.execution.uses_client());
    }

    #[test]
    fn unknown_names_are_reported() {
        assert!(Scenario::builder().client_from_catalog("XR42").is_err());
        assert!(Scenario::builder().local_cnn("ImaginaryNet").is_err());
        assert!(Scenario::builder().remote_cnn("ImaginaryNet").is_err());
    }

    #[test]
    fn edge_share_must_be_positive_for_remote() {
        let mut server = EdgeServerConfig::jetson_xavier();
        server.task_share = 0.0;
        let err = Scenario::builder()
            .execution(ExecutionTarget::Remote)
            .edge_servers(vec![server])
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfiguration(_)));
    }

    #[test]
    fn contention_defaults_off_and_rejects_zero_users() {
        let s = Scenario::builder().build().unwrap();
        assert_eq!(s.contention, None);

        let shared = Scenario::builder()
            .execution(ExecutionTarget::Remote)
            .contention(4)
            .build()
            .unwrap();
        assert_eq!(
            shared.contention,
            Some(ContentionConfig { users_per_edge: 4 })
        );

        let err = Scenario::builder().contention(0).build().unwrap_err();
        assert!(matches!(err, Error::InvalidParameter { .. }));
        assert!(err.to_string().contains("users_per_edge"));
    }

    #[test]
    fn topology_defaults_off_and_rejects_bad_density() {
        let s = Scenario::builder().build().unwrap();
        assert_eq!(s.topology, None);

        let tiled = Scenario::builder()
            .execution(ExecutionTarget::Remote)
            .topology(TopologyConfig {
                layout: TopologyLayout::Hex,
                site_density: 400.0,
                migration_policy: MigrationPolicy::Eager,
            })
            .build()
            .unwrap();
        assert_eq!(tiled.topology.unwrap().layout, TopologyLayout::Hex);

        for density in [0.0, -25.0, f64::NAN] {
            let err = Scenario::builder()
                .topology(TopologyConfig {
                    layout: TopologyLayout::Square,
                    site_density: density,
                    migration_policy: MigrationPolicy::Lazy,
                })
                .build()
                .unwrap_err();
            assert!(err.to_string().contains("site_density"), "{density}");
        }

        // The single layout reuses the mobility radius; density is ignored.
        let single = Scenario::builder()
            .topology(TopologyConfig {
                layout: TopologyLayout::Single,
                site_density: 0.0,
                migration_policy: MigrationPolicy::Eager,
            })
            .build();
        assert!(single.is_ok());
    }

    #[test]
    fn sensor_defaults_tie_arrival_to_generation() {
        let s = SensorConfig::new("lidar", Hertz::new(100.0), Meters::new(5.0));
        assert!((s.arrival_rate - 100.0).abs() < 1e-12);
    }

    #[test]
    fn scenario_debug_output_is_informative() {
        let s = Scenario::builder().build().unwrap();
        let text = format!("{s:?}");
        assert!(text.contains("XR2"));
        assert!(text.contains("YoloV3"));
    }
}
