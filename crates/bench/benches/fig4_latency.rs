//! Benchmarks regenerating Fig. 4(a)/(b): the latency sweep (ground-truth
//! simulation + analytic evaluation) and the per-frame analytic latency
//! model on its own.

use bench::{bench_context, bench_scenario, FRAME_SIZES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xr_core::LatencyModel;
use xr_experiments::figures::latency_sweep;
use xr_types::ExecutionTarget;

fn analytic_latency(c: &mut Criterion) {
    let model = LatencyModel::published();
    let mut group = c.benchmark_group("fig4_latency/analytic_per_frame");
    for &size in &FRAME_SIZES {
        for (label, target) in [
            ("local", ExecutionTarget::Local),
            ("remote", ExecutionTarget::Remote),
        ] {
            let scenario = bench_scenario(size, target);
            group.bench_with_input(BenchmarkId::new(label, size as u64), &scenario, |b, s| {
                b.iter(|| black_box(model.analyze(s).unwrap().total()))
            });
        }
    }
    group.finish();
}

fn full_figure(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("fig4_latency/full_sweep");
    group.sample_size(10);
    group.bench_function("fig4a_local", |b| {
        b.iter(|| black_box(latency_sweep(&ctx, ExecutionTarget::Local).unwrap()))
    });
    group.bench_function("fig4b_remote", |b| {
        b.iter(|| black_box(latency_sweep(&ctx, ExecutionTarget::Remote).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, analytic_latency, full_figure);
criterion_main!(benches);
