//! A small dense row-major matrix with just enough linear algebra for
//! ordinary least squares: multiplication, transpose, and solving linear
//! systems by Gaussian elimination with partial pivoting.
//!
//! The design matrices in this workspace are tall and thin (hundreds of
//! thousands of rows, fewer than ten columns), so the normal-equations
//! approach `(XᵀX)β = Xᵀy` with an O(k³) dense solve is entirely adequate.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut, Mul};
use xr_types::{Error, Result};

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `rows` is empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(Error::invalid_parameter("rows", "must be non-empty"));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(Error::invalid_parameter(
                "rows",
                "all rows must have the same length",
            ));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a single-column matrix from a slice.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `values` is empty.
    pub fn column(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(Error::invalid_parameter("values", "must be non-empty"));
        }
        Ok(Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Returns one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row {row} out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Flattens a single-column matrix into a `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has more than one column.
    #[must_use]
    pub fn into_column_vec(self) -> Vec<f64> {
        assert_eq!(self.cols, 1, "into_column_vec requires a single column");
        self.data
    }

    /// Solves `A · x = b` for `x` using Gaussian elimination with partial
    /// pivoting, where `A` is this (square) matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularDesignMatrix`] when the matrix is singular
    /// (a pivot smaller than `1e-12` is encountered) or not square, or when
    /// `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.rows;
        if self.rows != self.cols {
            return Err(Error::SingularDesignMatrix {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if b.len() != n {
            return Err(Error::invalid_parameter(
                "b",
                format!("expected length {n}, got {}", b.len()),
            ));
        }

        // Augmented working copies.
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivoting: find the row with the largest magnitude in
            // this column at or below the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for row in (col + 1)..n {
                let v = a[row * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = row;
                }
            }
            if pivot_val < 1e-12 {
                return Err(Error::SingularDesignMatrix {
                    rows: self.rows,
                    cols: self.cols,
                });
            }
            if pivot_row != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot_row * n + k);
                }
                x.swap(col, pivot_row);
            }

            // Eliminate below the pivot.
            for row in (col + 1)..n {
                let factor = a[row * n + col] / a[col * n + col];
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                x[row] -= factor * x[col];
            }
        }

        // Back substitution.
        let mut solution = vec![0.0; n];
        for row in (0..n).rev() {
            let mut acc = x[row];
            for k in (row + 1)..n {
                acc -= a[row * n + k] * solution[k];
            }
            solution[row] = acc / a[row * n + row];
        }
        Ok(solution)
    }

    /// Computes the matrix inverse via repeated solves against the identity.
    ///
    /// Only used for the small `k × k` matrices arising in regression
    /// standard-error computations.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularDesignMatrix`] when the matrix is singular or
    /// not square.
    pub fn inverse(&self) -> Result<Self> {
        let n = self.rows;
        if self.rows != self.cols {
            return Err(Error::SingularDesignMatrix {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let mut out = Self::zeros(n, n);
        for col in 0..n {
            let mut e = vec![0.0; n];
            e[col] = 1.0;
            let x = self.solve(&e)?;
            for row in 0..n {
                out[(row, col)] = x[row];
            }
        }
        Ok(out)
    }

    /// Multiplies this matrix by a vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector length does not match the column count.
    #[must_use]
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        let mut out = vec![0.0; self.rows];
        for (r, slot) in out.iter_mut().enumerate() {
            let row = self.row(r);
            *slot = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Computes `XᵀX` without materialising the transpose — the hot path of
    /// the OLS fit over hundreds of thousands of simulated samples.
    #[must_use]
    pub fn gram(&self) -> Self {
        let k = self.cols;
        let mut out = Self::zeros(k, k);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..k {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..k {
                    out[(i, j)] += ri * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..k {
            for j in 0..i {
                out[(i, j)] = out[(j, i)];
            }
        }
        out
    }

    /// Computes `Xᵀy` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` differs from the number of rows.
    #[must_use]
    pub fn t_mul_vec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "dimension mismatch in t_mul_vec");
        let mut out = vec![0.0; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            let row = self.row(r);
            for (o, x) in out.iter_mut().zip(row) {
                *o += x * yr;
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>12.5} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let id = Matrix::identity(3);
        let x = id.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10  ->  x = 1, y = 3
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[7.0, 9.0]).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(Error::SingularDesignMatrix { .. })
        ));
    }

    #[test]
    fn non_square_solve_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert!(a.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let a = Matrix::identity(3);
        assert!(a.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![0.0, 1.0, -1.0],
            vec![3.0, 1.0, 2.0],
            vec![1.0, 1.0, 1.0],
        ])
        .unwrap();
        let explicit = &x.transpose() * &x;
        let gram = x.gram();
        for i in 0..3 {
            for j in 0..3 {
                assert!((explicit[(i, j)] - gram[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn t_mul_vec_matches_explicit() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let y = [1.0, 1.0, 1.0];
        let explicit = x.transpose().mul_vec(&y);
        assert_eq!(x.t_mul_vec(&y), explicit);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[vec![4.0, 7.0], vec![2.0, 6.0]]).unwrap();
        let inv = a.inverse().unwrap();
        let prod = &a * &inv;
        for i in 0..2 {
            for j in 0..2 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expected).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::column(&[]).is_err());
    }

    #[test]
    fn column_and_into_column_vec() {
        let c = Matrix::column(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 1);
        assert_eq!(c.into_column_vec(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::identity(2);
        assert!(format!("{a}").contains("1.00000"));
    }
}
