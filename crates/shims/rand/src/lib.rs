//! Offline stand-in for the `rand` 0.8 crate.
//!
//! Implements exactly the API subset the workspace uses — `StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`] — on top of a
//! xoshiro256++ generator seeded through SplitMix64 (the same seeding
//! scheme the real `rand` uses for small-state seeds). All simulations in
//! this repository are seeded explicitly, so determinism is preserved:
//! the same seed always yields the same stream, though the stream differs
//! from the real `rand`'s ChaCha-based `StdRng`.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Converts raw random words into typed samples for [`Rng::gen`].
pub trait FromRng: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The `u64 → [0, 1)` mapping behind `FromRng for f64`: the word's top 53
/// bits scaled into the unit interval. Exposed so column transforms (the
/// `rand_distr` shim's lane-oriented `fill_*` passes) can apply *literally
/// the same expression* to pre-filled word columns and stay bit-identical
/// with the scalar samplers.
#[inline]
#[must_use]
pub fn unit_f64_from_word(word: u64) -> f64 {
    // 53 random mantissa bits scaled into [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64_from_word(rng.next_u64())
    }
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types [`Rng::gen_range`] can sample uniformly. Mirroring the real
/// crate's `SampleUniform` keeps integer-literal inference identical: the
/// range impls below stay generic in `T`, so `0..4` adopts whatever integer
/// type the surrounding expression demands instead of defaulting to `i32`.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draws from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + Self::from_rng(rng) * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + Self::from_rng(rng) * (hi - lo)
    }
}

// Each type pairs with its unsigned counterpart so the span is computed
// without signed overflow (`i32::MIN..i32::MAX` has a span of 2^32 - 1):
// `hi.wrapping_sub(lo)` reinterpreted as unsigned is the true span, and
// adding the offset back with `wrapping_add` is exact in two's complement.
// The modulo reduction carries the usual slight bias for huge spans, which
// the shim accepts for simplicity.
macro_rules! int_sample_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = hi.wrapping_sub(lo) as $u as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_sample_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of type `T`.
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or NaN, mirroring the real crate.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`SliceRandom`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let x = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&x));
            let n = rng.gen_range(0..10usize);
            assert!(n < 10);
            let m = rng.gen_range(2..=4u32);
            assert!((2..=4).contains(&m));
        }
    }

    #[test]
    fn mean_of_uniform_is_near_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / f64::from(n) - 0.5).abs() < 5e-3);
    }

    #[test]
    fn extreme_signed_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = rng.gen_range(i32::MIN..i32::MAX);
            assert!(x < i32::MAX);
            let y = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = y; // full range: any value is in bounds
            let z = rng.gen_range(-5i8..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    #[should_panic(expected = "outside range")]
    fn gen_bool_rejects_out_of_range_probability() {
        let mut rng = StdRng::seed_from_u64(0);
        rng.gen_bool(1.5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
