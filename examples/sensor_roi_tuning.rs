//! Sensor RoI tuning: the §VIII-C insight in practice. Given an XR
//! application's end-to-end latency and update requirement, find the minimum
//! information-generation frequency each external sensor needs so that its
//! Relevance-of-Information stays at or above 1 (i.e. its data is never
//! stale).
//!
//! ```text
//! cargo run -p xr-examples --bin sensor_roi_tuning
//! ```

use xr_core::{AoiModel, LatencyModel, Scenario, SensorConfig};
use xr_types::{Error, ExecutionTarget, Hertz, Meters};

fn main() -> Result<(), Error> {
    let latency_model = LatencyModel::published();
    let aoi_model = AoiModel::published();

    let scenario = Scenario::builder()
        .client_from_catalog("XR2")?
        .frame_side(500.0)
        .execution(ExecutionTarget::Remote)
        .updates_per_frame(6)
        .build()?;
    let total = latency_model.analyze(&scenario)?.total();
    let required_hz = f64::from(scenario.updates_per_frame) / total.as_f64();

    println!("=== Sensor RoI tuning ===");
    println!(
        "end-to-end latency {:.2} ms, {} updates per frame -> required frequency {:.1} Hz",
        total.as_f64() * 1e3,
        scenario.updates_per_frame,
        required_hz
    );
    println!(
        "\n{:>14} {:>12} {:>10} {:>8}",
        "sensor rate", "mean AoI", "RoI", "fresh?"
    );

    // Sweep candidate generation frequencies for a 30 m away sensor and
    // report the first one that keeps RoI >= 1.
    let mut minimum_fresh: Option<f64> = None;
    for freq in [5.0, 10.0, 20.0, 40.0, 60.0, 100.0, 150.0, 200.0, 400.0] {
        let sensor = SensorConfig::new("candidate", Hertz::new(freq), Meters::new(30.0));
        let result = aoi_model.analyze_sensor(
            &sensor,
            scenario.buffer.service_rate,
            total,
            scenario.updates_per_frame,
        )?;
        println!(
            "{:>11.1} Hz {:>9.2} ms {:>10.3} {:>8}",
            freq,
            result.average.as_f64() * 1e3,
            result.roi,
            if result.is_fresh() { "yes" } else { "no" }
        );
        if result.is_fresh() && minimum_fresh.is_none() {
            minimum_fresh = Some(freq);
        }
    }

    match minimum_fresh {
        Some(freq) => println!(
            "\n-> the sensor must generate information at ≥ {freq:.0} Hz to keep RoI ≥ 1 \
             (the paper's insight: sensors should follow the RoI)"
        ),
        None => println!("\n-> none of the candidate frequencies keeps the information fresh"),
    }
    Ok(())
}
