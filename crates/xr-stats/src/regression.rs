//! Multiple linear regression by ordinary least squares.
//!
//! The paper trains its regression sub-models with a 95 % confidence boundary
//! on datasets collected from a subset of devices (XR1, XR3, XR5, XR6) and
//! validates on held-out devices (XR2, XR4, XR7). [`LinearRegression`]
//! reproduces that workflow: fit on a training design matrix, report R² /
//! adjusted R², and predict (with optional 95 % confidence intervals) on test
//! covariates.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};
use xr_types::{Error, Result};

/// Critical value of the standard normal distribution for a two-sided 95 %
/// interval. With the dataset sizes used in this workspace (≥ 10⁴ rows) the
/// Student-t value is indistinguishable from the normal one.
const Z_95: f64 = 1.959_963_984_540_054;

/// Ordinary-least-squares fitter (configuration half of the builder pair).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearRegression {
    fit_intercept: bool,
    /// Ridge term added to the diagonal of `XᵀX`; zero by default, used only
    /// to stabilise nearly-collinear synthetic designs.
    ridge: f64,
}

impl Default for LinearRegression {
    fn default() -> Self {
        Self::new()
    }
}

impl LinearRegression {
    /// Creates a fitter with an intercept and no regularisation — the paper's
    /// setting.
    #[must_use]
    pub fn new() -> Self {
        Self {
            fit_intercept: true,
            ridge: 0.0,
        }
    }

    /// Disables the intercept column.
    #[must_use]
    pub fn without_intercept(mut self) -> Self {
        self.fit_intercept = false;
        self
    }

    /// Adds a ridge penalty `λ` to the normal equations (`(XᵀX + λI)β = Xᵀy`).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or not finite.
    #[must_use]
    pub fn with_ridge(mut self, lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "ridge penalty must be non-negative"
        );
        self.ridge = lambda;
        self
    }

    /// Fits the model to feature rows `xs` and targets `ys`.
    ///
    /// # Errors
    ///
    /// Returns an error if the inputs are empty, ragged, of mismatched
    /// lengths, or if the design matrix is singular / under-determined.
    pub fn fit(&self, xs: &[Vec<f64>], ys: &[f64]) -> Result<FittedLinearModel> {
        if xs.is_empty() || ys.is_empty() {
            return Err(Error::invalid_parameter("xs/ys", "must be non-empty"));
        }
        if xs.len() != ys.len() {
            return Err(Error::invalid_parameter(
                "ys",
                format!("expected {} targets, got {}", xs.len(), ys.len()),
            ));
        }
        let n_features = xs[0].len();
        if n_features == 0 {
            return Err(Error::invalid_parameter("xs", "rows must be non-empty"));
        }
        if xs.iter().any(|r| r.len() != n_features) {
            return Err(Error::invalid_parameter("xs", "rows must be rectangular"));
        }
        let k = n_features + usize::from(self.fit_intercept);
        if xs.len() < k {
            return Err(Error::SingularDesignMatrix {
                rows: xs.len(),
                cols: k,
            });
        }

        // Build the design matrix (with leading intercept column if enabled).
        let design_rows: Vec<Vec<f64>> = xs
            .iter()
            .map(|row| {
                if self.fit_intercept {
                    let mut r = Vec::with_capacity(k);
                    r.push(1.0);
                    r.extend_from_slice(row);
                    r
                } else {
                    row.clone()
                }
            })
            .collect();
        let design = Matrix::from_rows(&design_rows)?;

        // Normal equations.
        let mut gram = design.gram();
        if self.ridge > 0.0 {
            for i in 0..k {
                gram[(i, i)] += self.ridge;
            }
        }
        let xty = design.t_mul_vec(ys);
        let beta = gram.solve(&xty)?;

        // Goodness of fit.
        let predictions: Vec<f64> = design_rows
            .iter()
            .map(|r| r.iter().zip(&beta).map(|(x, b)| x * b).sum())
            .collect();
        let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
        let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
        let ss_res: f64 = ys
            .iter()
            .zip(&predictions)
            .map(|(y, p)| (y - p).powi(2))
            .sum();
        let r_squared = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };
        let n = ys.len() as f64;
        let dof = (ys.len().saturating_sub(k)).max(1) as f64;
        let adjusted = 1.0 - (1.0 - r_squared) * (n - 1.0) / dof;
        let sigma2 = ss_res / dof;

        // (XᵀX)⁻¹ for prediction standard errors; tolerate failure (e.g. a
        // ridge-free nearly-singular design) by omitting intervals.
        let gram_inverse = gram.inverse().ok();

        let (intercept, coefficients) = if self.fit_intercept {
            (beta[0], beta[1..].to_vec())
        } else {
            (0.0, beta.clone())
        };

        Ok(FittedLinearModel {
            intercept,
            coefficients,
            fit_intercept: self.fit_intercept,
            r_squared,
            adjusted_r_squared: adjusted,
            residual_variance: sigma2,
            n_observations: ys.len(),
            gram_inverse,
        })
    }
}

/// The result of an OLS fit: coefficients plus goodness-of-fit diagnostics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FittedLinearModel {
    intercept: f64,
    coefficients: Vec<f64>,
    fit_intercept: bool,
    r_squared: f64,
    adjusted_r_squared: f64,
    residual_variance: f64,
    n_observations: usize,
    gram_inverse: Option<Matrix>,
}

impl FittedLinearModel {
    /// Constructs a fitted model directly from known coefficients.
    ///
    /// The paper publishes the fitted coefficients of Eqs. 3, 10, 12 and 21;
    /// this constructor lets `xr-devices` instantiate those exact published
    /// models without refitting.
    #[must_use]
    pub fn from_coefficients(intercept: f64, coefficients: Vec<f64>, r_squared: f64) -> Self {
        Self {
            intercept,
            coefficients,
            fit_intercept: true,
            r_squared,
            adjusted_r_squared: r_squared,
            residual_variance: 0.0,
            n_observations: 0,
            gram_inverse: None,
        }
    }

    /// Intercept term (zero when fitted without an intercept).
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Slope coefficients, in feature order.
    #[must_use]
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Coefficient of determination R².
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Adjusted R², penalising the number of regressors.
    #[must_use]
    pub fn adjusted_r_squared(&self) -> f64 {
        self.adjusted_r_squared
    }

    /// Residual variance `σ̂² = SSR / (n − k)`.
    #[must_use]
    pub fn residual_variance(&self) -> f64 {
        self.residual_variance
    }

    /// Number of observations used in the fit (zero for models built with
    /// [`FittedLinearModel::from_coefficients`]).
    #[must_use]
    pub fn n_observations(&self) -> usize {
        self.n_observations
    }

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the number of coefficients.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.coefficients.len(),
            "expected {} features, got {}",
            self.coefficients.len(),
            features.len()
        );
        self.intercept
            + features
                .iter()
                .zip(&self.coefficients)
                .map(|(x, b)| x * b)
                .sum::<f64>()
    }

    /// Predicts the targets for many feature rows.
    #[must_use]
    pub fn predict_many(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|row| self.predict(row)).collect()
    }

    /// Predicts with a symmetric 95 % confidence half-width for the *mean
    /// response* at `features`, mirroring the paper's "95 % confidence
    /// boundary" training procedure.
    ///
    /// Returns `(prediction, half_width)`. The half-width is zero when the
    /// model was constructed from published coefficients (no residual
    /// information available).
    #[must_use]
    pub fn predict_with_interval(&self, features: &[f64]) -> (f64, f64) {
        let prediction = self.predict(features);
        let Some(gram_inv) = &self.gram_inverse else {
            return (prediction, 0.0);
        };
        // x vector in design space (intercept first when present).
        let x: Vec<f64> = if self.fit_intercept {
            std::iter::once(1.0)
                .chain(features.iter().copied())
                .collect()
        } else {
            features.to_vec()
        };
        // var(ŷ) = σ² · xᵀ (XᵀX)⁻¹ x
        let tmp = gram_inv.mul_vec(&x);
        let quad: f64 = x.iter().zip(&tmp).map(|(a, b)| a * b).sum();
        let half_width = Z_95 * (self.residual_variance * quad.max(0.0)).sqrt();
        (prediction, half_width)
    }

    /// Residuals `y − ŷ` on a labelled dataset.
    #[must_use]
    pub fn residuals(&self, xs: &[Vec<f64>], ys: &[f64]) -> Vec<f64> {
        xs.iter()
            .zip(ys)
            .map(|(row, y)| y - self.predict(row))
            .collect()
    }

    /// R² evaluated on an *out-of-sample* dataset (the held-out devices in
    /// the paper's methodology).
    #[must_use]
    pub fn score(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        if ys.is_empty() {
            return f64::NAN;
        }
        let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
        let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
        let ss_res: f64 = self.residuals(xs, ys).iter().map(|r| r * r).sum();
        if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else if ss_res < 1e-12 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noiseless_dataset() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 1.5 + 2·x1 − 0.5·x2
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let x1 = i as f64 * 0.25;
            let x2 = (i % 7) as f64;
            xs.push(vec![x1, x2]);
            ys.push(1.5 + 2.0 * x1 - 0.5 * x2);
        }
        (xs, ys)
    }

    #[test]
    fn recovers_exact_coefficients_on_noiseless_data() {
        let (xs, ys) = noiseless_dataset();
        let fit = LinearRegression::new().fit(&xs, &ys).unwrap();
        assert!((fit.intercept() - 1.5).abs() < 1e-9);
        assert!((fit.coefficients()[0] - 2.0).abs() < 1e-9);
        assert!((fit.coefficients()[1] + 0.5).abs() < 1e-9);
        assert!(fit.r_squared() > 0.999_999);
        assert!(fit.adjusted_r_squared() > 0.999_99);
        assert_eq!(fit.n_observations(), 40);
    }

    #[test]
    fn without_intercept_forces_origin() {
        let xs: Vec<Vec<f64>> = (1..=20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (1..=20).map(|i| 4.0 * i as f64).collect();
        let fit = LinearRegression::new()
            .without_intercept()
            .fit(&xs, &ys)
            .unwrap();
        assert_eq!(fit.intercept(), 0.0);
        assert!((fit.coefficients()[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_fit_has_reasonable_r_squared_and_intervals() {
        // Deterministic pseudo-noise so the test stays reproducible.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..500 {
            let x = i as f64 * 0.01;
            let noise = ((i * 2_654_435_761_u64 % 1000) as f64 / 1000.0 - 0.5) * 0.2;
            xs.push(vec![x]);
            ys.push(3.0 + 0.7 * x + noise);
        }
        let fit = LinearRegression::new().fit(&xs, &ys).unwrap();
        assert!(fit.r_squared() > 0.95, "R² = {}", fit.r_squared());
        let (pred, half) = fit.predict_with_interval(&[2.5]);
        assert!((pred - (3.0 + 0.7 * 2.5)).abs() < 0.1);
        assert!(half > 0.0 && half < 0.1);
    }

    #[test]
    fn score_on_held_out_data() {
        let (xs, ys) = noiseless_dataset();
        let fit = LinearRegression::new().fit(&xs, &ys).unwrap();
        let held_x = vec![vec![100.0, 3.0], vec![200.0, 1.0]];
        let held_y: Vec<f64> = held_x
            .iter()
            .map(|r| 1.5 + 2.0 * r[0] - 0.5 * r[1])
            .collect();
        assert!(fit.score(&held_x, &held_y) > 0.999_999);
    }

    #[test]
    fn residuals_are_zero_on_noiseless_fit() {
        let (xs, ys) = noiseless_dataset();
        let fit = LinearRegression::new().fit(&xs, &ys).unwrap();
        assert!(fit.residuals(&xs, &ys).iter().all(|r| r.abs() < 1e-9));
    }

    #[test]
    fn from_coefficients_predicts_directly() {
        // Eq. 12 of the paper: C_CNN = 2.45 + 0.0025·d + 0.03·s + 0.0029·scale
        let model = FittedLinearModel::from_coefficients(2.45, vec![0.0025, 0.03, 0.0029], 0.844);
        let c = model.predict(&[106.0, 210.0, 0.0]);
        assert!((c - (2.45 + 0.0025 * 106.0 + 0.03 * 210.0)).abs() < 1e-9);
        assert!((model.r_squared() - 0.844).abs() < 1e-12);
        let (p, h) = model.predict_with_interval(&[106.0, 210.0, 0.0]);
        assert_eq!(p, c);
        assert_eq!(h, 0.0);
    }

    #[test]
    fn under_determined_fit_rejected() {
        let xs = vec![vec![1.0, 2.0, 3.0]];
        let ys = vec![1.0];
        assert!(matches!(
            LinearRegression::new().fit(&xs, &ys),
            Err(Error::SingularDesignMatrix { .. })
        ));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let xs = vec![vec![1.0], vec![2.0]];
        let ys = vec![1.0];
        assert!(LinearRegression::new().fit(&xs, &ys).is_err());
        assert!(LinearRegression::new().fit(&[], &[]).is_err());
        assert!(LinearRegression::new()
            .fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0])
            .is_err());
    }

    #[test]
    fn collinear_design_rejected_without_ridge_but_ok_with() {
        // Second column is an exact copy of the first.
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..30).map(|i| 2.0 * i as f64).collect();
        assert!(LinearRegression::new().fit(&xs, &ys).is_err());
        let fit = LinearRegression::new()
            .with_ridge(1e-6)
            .fit(&xs, &ys)
            .unwrap();
        // Ridge splits the weight across the duplicated columns.
        let total: f64 = fit.coefficients().iter().sum();
        assert!((total - 2.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "expected 2 features")]
    fn predict_wrong_arity_panics() {
        let (xs, ys) = noiseless_dataset();
        let fit = LinearRegression::new().fit(&xs, &ys).unwrap();
        let _ = fit.predict(&[1.0]);
    }
}
