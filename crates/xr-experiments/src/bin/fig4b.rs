//! Fig. 4(b): end-to-end latency for remote inference, GT vs proposed model.

use xr_experiments::figures::latency_sweep;
use xr_experiments::{output, ExperimentContext};
use xr_types::ExecutionTarget;

fn main() {
    let ctx = ExperimentContext::from_args();
    let sweep = latency_sweep(&ctx, ExecutionTarget::Remote).expect("sweep failed");
    output::print_experiment(
        "Fig. 4(b) — end-to-end latency, remote inference (ms)",
        &["frame_size", "cpu_ghz", "gt_ms", "proposed_ms", "error_%"],
        &sweep.rows(),
        "fig4b.csv",
    );
    println!(
        "mean error: {:.2}% (paper: 3.23%)",
        sweep.mean_error_percent()
    );
}
