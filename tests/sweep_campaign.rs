//! End-to-end determinism of the campaign engine: the same grid evaluated
//! with different worker counts must produce byte-identical artifacts.

use xr_experiments::campaign::{
    quick_grid, run_campaign_streaming_with, run_campaign_with, CAMPAIGN_HEADER,
};
use xr_experiments::figures::latency_sweep;
use xr_experiments::ExperimentContext;
use xr_sweep::{CampaignRunner, SweepGrid};
use xr_types::ExecutionTarget;

/// Renders campaign rows exactly as the CSV layer writes them.
fn csv_lines(rows: &[xr_experiments::CampaignRow]) -> Vec<String> {
    let mut lines = vec![CAMPAIGN_HEADER.join(",")];
    lines.extend(rows.iter().map(|r| r.cells().join(",")));
    lines
}

#[test]
fn campaign_csv_rows_are_byte_identical_across_worker_counts() {
    let ctx = ExperimentContext::quick(2024).unwrap();
    let grid = quick_grid();
    let reference = csv_lines(&run_campaign_with(&ctx, &grid, &CampaignRunner::new(1)).unwrap());
    assert_eq!(reference.len(), grid.len() + 1);
    for workers in [2, 4, 9] {
        let rows = run_campaign_with(&ctx, &grid, &CampaignRunner::new(workers)).unwrap();
        assert_eq!(
            csv_lines(&rows),
            reference,
            "{workers} workers diverged from the sequential reference"
        );
    }
}

#[test]
fn streaming_campaign_emits_the_same_rows_in_order() {
    let ctx = ExperimentContext::quick(5).unwrap();
    let grid = SweepGrid::paper_panel(ExecutionTarget::Remote)
        .with_frame_sizes([300.0, 700.0])
        .with_cpu_clocks([2.0]);
    let collected = run_campaign_with(&ctx, &grid, &CampaignRunner::new(3)).unwrap();
    let mut streamed = Vec::new();
    run_campaign_streaming_with(&ctx, &grid, &CampaignRunner::new(3), |index, row| {
        assert_eq!(index, streamed.len(), "rows must stream in point order");
        streamed.push(row);
    })
    .unwrap();
    assert_eq!(streamed, collected);
}

#[test]
fn figure_sweep_matches_a_hand_rolled_sequential_loop() {
    // The engine-driven Fig. 4 panel must reproduce, number for number, what
    // the pre-engine nested loop computed: clock outer, frame size inner,
    // one testbed session and one model analysis per point.
    let ctx = ExperimentContext::quick(2024).unwrap();
    let sweep = latency_sweep(&ctx, ExecutionTarget::Local).unwrap();
    let mut expected = Vec::new();
    for &clock in &ExperimentContext::CPU_CLOCKS {
        for &size in &ExperimentContext::FRAME_SIZES {
            let scenario = ctx.scenario(size, clock, ExecutionTarget::Local).unwrap();
            let session = ctx
                .testbed()
                .simulate_session(&scenario, ctx.frames_per_point())
                .unwrap();
            let report = ctx.proposed().analyze(&scenario).unwrap();
            expected.push((
                size,
                clock,
                session.mean_latency().as_f64() * 1e3,
                report.latency_ms().as_f64(),
            ));
        }
    }
    assert_eq!(sweep.points.len(), expected.len());
    for (point, (size, clock, ground_truth, proposed)) in sweep.points.iter().zip(expected) {
        assert_eq!(point.frame_size, size);
        assert_eq!(point.cpu_clock_ghz, clock);
        assert_eq!(
            point.ground_truth, ground_truth,
            "GT diverged at {size}/{clock}"
        );
        assert_eq!(point.proposed, proposed, "model diverged at {size}/{clock}");
    }
}
