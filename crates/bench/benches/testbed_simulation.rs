//! Benchmarks the ground-truth substrate: per-frame pipeline simulation, the
//! Monsoon-style power sampling, and the M/M/1 discrete-event simulator.

use bench::bench_scenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xr_queueing::MM1Simulator;
use xr_testbed::{PowerMonitor, TestbedSimulator};
use xr_types::{ExecutionTarget, Seconds, Watts};

fn frame_simulation(c: &mut Criterion) {
    let testbed = TestbedSimulator::new(3);
    let mut group = c.benchmark_group("testbed/simulate_frame");
    for (label, target) in [
        ("local", ExecutionTarget::Local),
        ("remote", ExecutionTarget::Remote),
    ] {
        let scenario = bench_scenario(500.0, target);
        group.bench_with_input(BenchmarkId::from_parameter(label), &scenario, |b, s| {
            b.iter(|| black_box(testbed.simulate_frame(s, 1).unwrap()))
        });
    }
    group.finish();
}

fn power_sampling(c: &mut Criterion) {
    let monitor = PowerMonitor::monsoon();
    let phases = [
        (Watts::new(2.5), Seconds::new(0.2)),
        (Watts::new(1.2), Seconds::new(0.1)),
        (Watts::new(0.4), Seconds::new(0.15)),
    ];
    c.bench_function("testbed/power_monitor_450ms_frame", |b| {
        b.iter(|| black_box(monitor.record(&phases, Watts::new(0.85), 9).energy()))
    });
}

fn queue_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("testbed/mm1_des");
    group.sample_size(20);
    for customers in [1_000usize, 10_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(customers),
            &customers,
            |b, &n| {
                let sim = MM1Simulator::new(300.0, 1_000.0, 5)
                    .unwrap()
                    .with_warmup(100);
                b.iter(|| black_box(sim.run(n).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, frame_simulation, power_sampling, queue_simulation);
criterion_main!(benches);
