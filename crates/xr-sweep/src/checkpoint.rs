//! Append-only per-shard checkpoints: crash-resumable campaign progress.
//!
//! A sharded campaign emits rows in canonical point order (the hold-back
//! collector guarantees it), so "progress" is exactly a prefix of the
//! shard's owned points. The checkpoint file records that prefix as one
//! `done <point>` line per completed point, appended after the row is in
//! the artifact and fsync'd every [`ShardCheckpoint::sync_every`] records —
//! a SIGKILL'd shard resumes at the last durable unit instead of
//! restarting.
//!
//! The file opens with a header carrying the campaign seed, the grid
//! fingerprint ([`crate::SweepGrid::fingerprint`]), the grid size, and the
//! shard spec; reopening against a different campaign is *stale* and
//! refused loudly. Loading is torn-write tolerant: the longest valid prefix
//! of records wins, and anything after it (a partial last line from a crash
//! mid-write, or trailing corruption) is truncated before appending
//! resumes.

use crate::shard::ShardSpec;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use xr_types::{Error, Result};

/// First line of every checkpoint file; bump the version to invalidate old
/// layouts instead of misreading them.
const MAGIC: &str = "# xr-sweep shard checkpoint v1";

/// Default fsync cadence: records per `fdatasync`. 1 is the safest (every
/// completed point is durable) and row evaluation dwarfs the sync cost at
/// campaign scale; raise it for very fast grids.
pub const DEFAULT_SYNC_EVERY: usize = 1;

fn io_error(path: &Path, op: &str, error: &std::io::Error) -> Error {
    Error::InvalidConfiguration(format!(
        "checkpoint {}: {op} failed: {error}",
        path.display()
    ))
}

fn stale_error(
    path: &Path,
    field: &str,
    found: impl std::fmt::Display,
    expected: impl std::fmt::Display,
) -> Error {
    Error::invalid_parameter(
        "checkpoint",
        format!(
            "stale checkpoint {}: its {field} is {found} but this campaign's is {expected} — delete the file or rerun the original campaign",
            path.display()
        ),
    )
}

/// The campaign identity a checkpoint belongs to. Two runs may share a
/// checkpoint iff every field matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// The campaign seed every replication seed derives from.
    pub campaign_seed: u64,
    /// [`crate::SweepGrid::fingerprint`] of the swept grid.
    pub grid_fingerprint: u64,
    /// Number of operating points in the full grid.
    pub points: usize,
    /// Which shard of how many this checkpoint tracks.
    pub shard: ShardSpec,
}

impl CheckpointHeader {
    fn render(&self) -> String {
        format!(
            "{MAGIC}\n\
             campaign_seed = {}\n\
             grid_fingerprint = {}\n\
             points = {}\n\
             shard = {}\n",
            self.campaign_seed, self.grid_fingerprint, self.points, self.shard
        )
    }
}

/// An open, appendable shard checkpoint. See the module docs for the file
/// format and durability contract.
#[derive(Debug)]
pub struct ShardCheckpoint {
    path: PathBuf,
    file: File,
    completed: Vec<usize>,
    /// Byte offset of the end of each valid record, so truncation lands on
    /// record boundaries exactly.
    record_ends: Vec<u64>,
    header_len: u64,
    unsynced: usize,
    sync_every: usize,
}

impl ShardCheckpoint {
    /// Opens (or creates) the checkpoint at `path` for the campaign
    /// identified by `header`, fsync'ing every `sync_every` records
    /// (clamped to at least 1).
    ///
    /// An existing file is validated against `header` — any mismatch is a
    /// stale checkpoint and refused — then loaded tolerantly: the longest
    /// valid prefix of `done <point>` records becomes
    /// [`ShardCheckpoint::completed`], and the file is truncated to that
    /// prefix so a torn tail cannot corrupt subsequent appends.
    ///
    /// # Errors
    ///
    /// I/O failures, a corrupt or foreign header, and stale checkpoints.
    pub fn open(
        path: impl Into<PathBuf>,
        header: CheckpointHeader,
        sync_every: usize,
    ) -> Result<Self> {
        let path = path.into();
        let sync_every = sync_every.max(1);
        let exists = path.exists();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_error(&path, "open", &e))?;
        let rendered = header.render();
        let header_len = rendered.len() as u64;
        if !exists {
            file.write_all(rendered.as_bytes())
                .map_err(|e| io_error(&path, "write header", &e))?;
            file.sync_data().map_err(|e| io_error(&path, "sync", &e))?;
            return Ok(Self {
                path,
                file,
                completed: Vec::new(),
                record_ends: Vec::new(),
                header_len,
                unsynced: 0,
                sync_every,
            });
        }
        let mut text = String::new();
        file.read_to_string(&mut text)
            .map_err(|e| io_error(&path, "read", &e))?;
        let (completed, record_ends, header_len) = Self::validate(&path, &text, &header)?;
        // Drop the torn/corrupt tail (if any) so appends start at a record
        // boundary.
        let valid_end = record_ends.last().copied().unwrap_or(header_len);
        file.set_len(valid_end)
            .map_err(|e| io_error(&path, "truncate", &e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_error(&path, "seek", &e))?;
        Ok(Self {
            path,
            file,
            completed,
            record_ends,
            header_len,
            unsynced: 0,
            sync_every,
        })
    }

    /// Validates the header of an existing file against the campaign and
    /// returns the valid record prefix with each record's end offset, plus
    /// the byte offset where the header ends.
    fn validate(
        path: &Path,
        text: &str,
        expected: &CheckpointHeader,
    ) -> Result<(Vec<usize>, Vec<u64>, u64)> {
        let corrupt = |what: &str| {
            Error::invalid_parameter(
                "checkpoint",
                format!(
                    "corrupt checkpoint {}: {what} — delete the file to restart the shard",
                    path.display()
                ),
            )
        };
        let mut offset = 0u64;
        let mut lines = Vec::new(); // (line, end_offset, complete)
        for line in text.split_inclusive('\n') {
            offset += line.len() as u64;
            let complete = line.ends_with('\n');
            lines.push((line.trim_end_matches('\n'), offset, complete));
        }
        let mut it = lines.into_iter();
        let (magic, _, magic_complete) = it.next().ok_or_else(|| corrupt("empty file"))?;
        if magic != MAGIC || !magic_complete {
            return Err(corrupt("unrecognized first line"));
        }
        let mut fields: [(&str, Option<String>); 4] = [
            ("campaign_seed", None),
            ("grid_fingerprint", None),
            ("points", None),
            ("shard", None),
        ];
        let mut header_end = 0u64;
        for field in &mut fields {
            let (line, end, complete) = it.next().ok_or_else(|| corrupt("incomplete header"))?;
            if !complete {
                return Err(corrupt("incomplete header"));
            }
            let value = line
                .strip_prefix(field.0)
                .and_then(|rest| rest.trim_start().strip_prefix('='))
                .map(str::trim)
                .ok_or_else(|| corrupt("incomplete header"))?;
            field.1 = Some(value.to_string());
            header_end = end;
        }
        let parse_u64 = |value: &str| {
            value
                .parse::<u64>()
                .map_err(|_| corrupt("unreadable header value"))
        };
        let found = CheckpointHeader {
            campaign_seed: parse_u64(fields[0].1.as_deref().expect("filled"))?,
            grid_fingerprint: parse_u64(fields[1].1.as_deref().expect("filled"))?,
            points: parse_u64(fields[2].1.as_deref().expect("filled"))? as usize,
            shard: ShardSpec::parse(fields[3].1.as_deref().expect("filled"))
                .map_err(|_| corrupt("unreadable shard spec"))?,
        };
        if found.grid_fingerprint != expected.grid_fingerprint {
            return Err(stale_error(
                path,
                "grid fingerprint",
                found.grid_fingerprint,
                expected.grid_fingerprint,
            ));
        }
        if found.campaign_seed != expected.campaign_seed {
            return Err(stale_error(
                path,
                "campaign seed",
                found.campaign_seed,
                expected.campaign_seed,
            ));
        }
        if found.points != expected.points {
            return Err(stale_error(
                path,
                "grid size",
                found.points,
                expected.points,
            ));
        }
        if found.shard != expected.shard {
            return Err(stale_error(path, "shard spec", found.shard, expected.shard));
        }
        // Longest valid record prefix; a torn or malformed tail is simply
        // not-yet-done work.
        let mut completed = Vec::new();
        let mut record_ends = Vec::new();
        for (line, end, complete) in it {
            let Some(point) = complete
                .then(|| line.strip_prefix("done "))
                .flatten()
                .and_then(|n| n.parse::<usize>().ok())
            else {
                break;
            };
            completed.push(point);
            record_ends.push(end);
        }
        Ok((completed, record_ends, header_end))
    }

    /// The points recorded as completed, in completion (= canonical) order.
    #[must_use]
    pub fn completed(&self) -> &[usize] {
        &self.completed
    }

    /// The checkpoint file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured fsync cadence (records per sync).
    #[must_use]
    pub fn sync_every(&self) -> usize {
        self.sync_every
    }

    /// Drops all but the first `keep` records — used when the artifact the
    /// checkpoint describes turns out to be shorter (e.g. a crash lost
    /// buffered CSV rows the checkpoint had already made durable).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn truncate_to(&mut self, keep: usize) -> Result<()> {
        if keep >= self.completed.len() {
            return Ok(());
        }
        self.completed.truncate(keep);
        self.record_ends.truncate(keep);
        let end = self.record_ends.last().copied().unwrap_or(self.header_len);
        self.file
            .set_len(end)
            .map_err(|e| io_error(&self.path, "truncate", &e))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_error(&self.path, "seek", &e))?;
        self.file
            .sync_data()
            .map_err(|e| io_error(&self.path, "sync", &e))?;
        Ok(())
    }

    /// Appends a completed point, fsync'ing when the cadence comes due.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn record(&mut self, point: usize) -> Result<()> {
        let line = format!("done {point}\n");
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| io_error(&self.path, "append", &e))?;
        let end = self.record_ends.last().copied().unwrap_or(self.header_len) + line.len() as u64;
        self.completed.push(point);
        self.record_ends.push(end);
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces pending records to stable storage.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn sync(&mut self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| io_error(&self.path, "sync", &e))?;
        self.unsynced = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xr-sweep-checkpoint-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn header() -> CheckpointHeader {
        CheckpointHeader {
            campaign_seed: 2024,
            grid_fingerprint: 0xFEED_F00D,
            points: 96,
            shard: ShardSpec::parse("2/3").unwrap(),
        }
    }

    #[test]
    fn records_survive_reopen() {
        let path = scratch("reopen.ckpt");
        let mut ckpt = ShardCheckpoint::open(&path, header(), 2).unwrap();
        assert!(ckpt.completed().is_empty());
        for p in [1usize, 4, 7] {
            ckpt.record(p).unwrap();
        }
        ckpt.sync().unwrap();
        drop(ckpt);
        let ckpt = ShardCheckpoint::open(&path, header(), 2).unwrap();
        assert_eq!(ckpt.completed(), &[1, 4, 7]);
    }

    #[test]
    fn stale_checkpoints_are_refused() {
        let path = scratch("stale.ckpt");
        let mut ckpt = ShardCheckpoint::open(&path, header(), 1).unwrap();
        ckpt.record(1).unwrap();
        drop(ckpt);
        let mut other = header();
        other.grid_fingerprint ^= 1;
        let err = ShardCheckpoint::open(&path, other, 1)
            .unwrap_err()
            .to_string();
        assert!(err.contains("stale checkpoint"), "{err}");
        assert!(err.contains("grid fingerprint"), "{err}");
        let mut other = header();
        other.campaign_seed = 7;
        let err = ShardCheckpoint::open(&path, other, 1)
            .unwrap_err()
            .to_string();
        assert!(err.contains("campaign seed"), "{err}");
        let mut other = header();
        other.shard = ShardSpec::parse("1/3").unwrap();
        let err = ShardCheckpoint::open(&path, other, 1)
            .unwrap_err()
            .to_string();
        assert!(err.contains("shard spec"), "{err}");
        // The original campaign still resumes.
        let ckpt = ShardCheckpoint::open(&path, header(), 1).unwrap();
        assert_eq!(ckpt.completed(), &[1]);
    }

    #[test]
    fn torn_tails_resume_at_the_valid_prefix() {
        let path = scratch("torn.ckpt");
        let mut ckpt = ShardCheckpoint::open(&path, header(), 1).unwrap();
        for p in [1usize, 4, 7, 10] {
            ckpt.record(p).unwrap();
        }
        drop(ckpt);
        let full = std::fs::read(&path).unwrap();

        // Torn mid-record: cut the file anywhere inside the last record.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let ckpt = ShardCheckpoint::open(&path, header(), 1).unwrap();
        assert_eq!(ckpt.completed(), &[1, 4, 7]);
        drop(ckpt);
        // …and the truncated file now ends on the record boundary, so a
        // fresh append produces a clean record stream.
        let mut ckpt = ShardCheckpoint::open(&path, header(), 1).unwrap();
        ckpt.record(10).unwrap();
        drop(ckpt);
        assert_eq!(std::fs::read(&path).unwrap(), full);

        // Garbage interior line: the prefix before it wins.
        let mut garbled = full.clone();
        let done7 = b"done 7\n";
        let at = full.windows(done7.len()).position(|w| w == done7).unwrap();
        garbled[at] = b'x';
        std::fs::write(&path, &garbled).unwrap();
        let ckpt = ShardCheckpoint::open(&path, header(), 1).unwrap();
        assert_eq!(ckpt.completed(), &[1, 4]);
    }

    #[test]
    fn truncate_to_rewinds_records() {
        let path = scratch("rewind.ckpt");
        let mut ckpt = ShardCheckpoint::open(&path, header(), 1).unwrap();
        for p in [1usize, 4, 7] {
            ckpt.record(p).unwrap();
        }
        ckpt.truncate_to(1).unwrap();
        assert_eq!(ckpt.completed(), &[1]);
        ckpt.record(4).unwrap();
        drop(ckpt);
        let ckpt = ShardCheckpoint::open(&path, header(), 1).unwrap();
        assert_eq!(ckpt.completed(), &[1, 4]);
    }

    #[test]
    fn corrupt_headers_are_named() {
        let path = scratch("corrupt.ckpt");
        std::fs::write(&path, "not a checkpoint\n").unwrap();
        let err = ShardCheckpoint::open(&path, header(), 1)
            .unwrap_err()
            .to_string();
        assert!(err.contains("corrupt checkpoint"), "{err}");
        std::fs::write(&path, format!("{MAGIC}\ncampaign_seed = 2024\n")).unwrap();
        let err = ShardCheckpoint::open(&path, header(), 1)
            .unwrap_err()
            .to_string();
        assert!(err.contains("incomplete header"), "{err}");
    }

    #[test]
    fn sync_cadence_clamps_and_reports() {
        let path = scratch("cadence.ckpt");
        let ckpt = ShardCheckpoint::open(&path, header(), 0).unwrap();
        assert_eq!(ckpt.sync_every(), 1);
        assert_eq!(DEFAULT_SYNC_EVERY, 1);
    }
}
