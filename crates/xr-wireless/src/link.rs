//! Access technologies and point-to-point wireless links.

use serde::{Deserialize, Serialize};
use std::fmt;
use xr_types::{MegaBitsPerSecond, MegaBytes, Meters, Seconds, SPEED_OF_LIGHT};

/// Wireless access technologies appearing in the paper's testbed (Table I
/// lists 802.11 a/b/g/n/ac/ax radios; the handoff model also considers
/// cellular for vertical handoffs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessTechnology {
    /// 802.11n on the 2.4 GHz band (the LinkSys router's slower band).
    WiFi2_4GHz,
    /// 802.11ac/ax on the 5 GHz band (the testbed's primary link).
    WiFi5GHz,
    /// 802.11ad 60 GHz (used in the related-work discussion of \[37\]).
    WiGig60GHz,
    /// LTE cellular, the vertical-handoff target in Section IV.
    Lte,
    /// 5G NR sub-6 GHz.
    FiveGSub6,
}

impl AccessTechnology {
    /// Nominal application-layer throughput for the technology, used as the
    /// default `r_w` when a link does not override it.
    #[must_use]
    pub fn nominal_throughput(self) -> MegaBitsPerSecond {
        match self {
            AccessTechnology::WiFi2_4GHz => MegaBitsPerSecond::new(40.0),
            AccessTechnology::WiFi5GHz => MegaBitsPerSecond::new(200.0),
            AccessTechnology::WiGig60GHz => MegaBitsPerSecond::new(1_500.0),
            AccessTechnology::Lte => MegaBitsPerSecond::new(30.0),
            AccessTechnology::FiveGSub6 => MegaBitsPerSecond::new(300.0),
        }
    }

    /// Typical one-way coverage radius, used by the mobility model to derive
    /// handoff probabilities.
    #[must_use]
    pub fn coverage_radius(self) -> Meters {
        match self {
            AccessTechnology::WiFi2_4GHz => Meters::new(45.0),
            AccessTechnology::WiFi5GHz => Meters::new(30.0),
            AccessTechnology::WiGig60GHz => Meters::new(10.0),
            AccessTechnology::Lte => Meters::new(1_500.0),
            AccessTechnology::FiveGSub6 => Meters::new(500.0),
        }
    }

    /// Whether two technologies belong to the same family (used to decide
    /// between horizontal and vertical handoff).
    #[must_use]
    pub fn same_family(self, other: AccessTechnology) -> bool {
        self.is_wifi() == other.is_wifi()
    }

    /// Returns `true` for 802.11 technologies.
    #[must_use]
    pub fn is_wifi(self) -> bool {
        matches!(
            self,
            AccessTechnology::WiFi2_4GHz
                | AccessTechnology::WiFi5GHz
                | AccessTechnology::WiGig60GHz
        )
    }
}

impl fmt::Display for AccessTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AccessTechnology::WiFi2_4GHz => "Wi-Fi 2.4 GHz",
            AccessTechnology::WiFi5GHz => "Wi-Fi 5 GHz",
            AccessTechnology::WiGig60GHz => "WiGig 60 GHz",
            AccessTechnology::Lte => "LTE",
            AccessTechnology::FiveGSub6 => "5G sub-6 GHz",
        };
        f.write_str(name)
    }
}

/// A point-to-point wireless link between the XR device and a peer (edge
/// server, external sensor, or cooperative XR device).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WirelessLink {
    technology: AccessTechnology,
    distance: Meters,
    throughput: MegaBitsPerSecond,
}

impl WirelessLink {
    /// Creates a link with the technology's nominal throughput.
    #[must_use]
    pub fn new(technology: AccessTechnology, distance: Meters) -> Self {
        Self {
            technology,
            distance,
            throughput: technology.nominal_throughput(),
        }
    }

    /// Overrides the available throughput `r_w` (e.g. after contention or
    /// rate adaptation).
    ///
    /// # Panics
    ///
    /// Panics if the throughput is not strictly positive.
    #[must_use]
    pub fn with_throughput(mut self, throughput: MegaBitsPerSecond) -> Self {
        assert!(throughput.is_positive(), "link throughput must be positive");
        self.throughput = throughput;
        self
    }

    /// Moves the link endpoint to a new distance (device mobility).
    #[must_use]
    pub fn with_distance(mut self, distance: Meters) -> Self {
        self.distance = distance;
        self
    }

    /// The access technology of this link.
    #[must_use]
    pub fn technology(&self) -> AccessTechnology {
        self.technology
    }

    /// Distance between the endpoints.
    #[must_use]
    pub fn distance(&self) -> Meters {
        self.distance
    }

    /// Available application-layer throughput `r_w`.
    #[must_use]
    pub fn throughput(&self) -> MegaBitsPerSecond {
        self.throughput
    }

    /// One-way propagation delay `d/c`.
    #[must_use]
    pub fn propagation_delay(&self) -> Seconds {
        self.distance / SPEED_OF_LIGHT
    }

    /// Transmission latency of Eq. 16: `δ/r_w + d/c`.
    #[must_use]
    pub fn transmission_latency(&self, payload: MegaBytes) -> Seconds {
        payload / self.throughput + self.propagation_delay()
    }

    /// Round-trip latency for a request/response exchange with asymmetric
    /// payloads (uplink frame, downlink inference result).
    #[must_use]
    pub fn round_trip_latency(&self, uplink: MegaBytes, downlink: MegaBytes) -> Seconds {
        self.transmission_latency(uplink) + self.transmission_latency(downlink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_latency_decomposes() {
        let link = WirelessLink::new(AccessTechnology::WiFi5GHz, Meters::new(30.0))
            .with_throughput(MegaBitsPerSecond::new(100.0));
        let payload = MegaBytes::new(1.25); // 10 Mb
        let expected_serialisation = 10.0 / 100.0;
        let expected_propagation = 30.0 / SPEED_OF_LIGHT.as_f64();
        let total = link.transmission_latency(payload).as_f64();
        assert!((total - expected_serialisation - expected_propagation).abs() < 1e-12);
    }

    #[test]
    fn higher_throughput_is_faster() {
        let slow = WirelessLink::new(AccessTechnology::WiFi2_4GHz, Meters::new(10.0));
        let fast = WirelessLink::new(AccessTechnology::WiFi5GHz, Meters::new(10.0));
        let payload = MegaBytes::new(2.0);
        assert!(fast.transmission_latency(payload) < slow.transmission_latency(payload));
    }

    #[test]
    fn round_trip_is_sum_of_directions() {
        let link = WirelessLink::new(AccessTechnology::WiFi5GHz, Meters::new(15.0));
        let up = MegaBytes::new(0.4);
        let down = MegaBytes::new(0.01);
        let rt = link.round_trip_latency(up, down);
        let manual = link.transmission_latency(up) + link.transmission_latency(down);
        assert!((rt.as_f64() - manual.as_f64()).abs() < 1e-15);
    }

    #[test]
    fn propagation_delay_scales_with_distance() {
        let near = WirelessLink::new(AccessTechnology::Lte, Meters::new(100.0));
        let far = near.with_distance(Meters::new(1000.0));
        assert!(
            (far.propagation_delay().as_f64() / near.propagation_delay().as_f64() - 10.0).abs()
                < 1e-9
        );
        assert_eq!(far.technology(), AccessTechnology::Lte);
    }

    #[test]
    fn technology_catalog_is_sensible() {
        assert!(
            AccessTechnology::WiFi5GHz.nominal_throughput()
                > AccessTechnology::WiFi2_4GHz.nominal_throughput()
        );
        assert!(
            AccessTechnology::Lte.coverage_radius() > AccessTechnology::WiFi5GHz.coverage_radius()
        );
        assert!(AccessTechnology::WiFi5GHz.is_wifi());
        assert!(!AccessTechnology::Lte.is_wifi());
        assert!(AccessTechnology::WiFi5GHz.same_family(AccessTechnology::WiFi2_4GHz));
        assert!(!AccessTechnology::WiFi5GHz.same_family(AccessTechnology::Lte));
        assert!(format!("{}", AccessTechnology::FiveGSub6).contains("5G"));
    }

    #[test]
    #[should_panic(expected = "throughput must be positive")]
    fn zero_throughput_rejected() {
        let _ = WirelessLink::new(AccessTechnology::WiFi5GHz, Meters::new(1.0))
            .with_throughput(MegaBitsPerSecond::new(0.0));
    }
}
