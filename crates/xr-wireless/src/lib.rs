//! # xr-wireless
//!
//! Wireless-network substrate for the xr-perf workspace.
//!
//! The paper's latency model needs, from the wireless side:
//!
//! * propagation delay `d/c` between sensors / edge servers / cooperative
//!   devices and the XR device (Eqs. 6, 16, 18, 23),
//! * the available throughput `r_w` of the access link (Eq. 16),
//! * the handoff probability `P(HO)` of a mobile XR device under a random
//!   walk mobility model and the handoff latency `l_HO` for horizontal and
//!   vertical handoffs (Eq. 17, following refs. \[49\]–\[51\]),
//! * optionally, path-loss models, which the paper explicitly leaves out of
//!   its defaults ("We assume that there are no path loss, shadowing, or
//!   fading effects … which can be incorporated into the model according to
//!   system requirements"). They are provided here so the extension is
//!   available.
//!
//! ```
//! use xr_wireless::{AccessTechnology, WirelessLink};
//! use xr_types::{MegaBytes, Meters};
//!
//! let link = WirelessLink::new(AccessTechnology::WiFi5GHz, Meters::new(10.0));
//! let latency = link.transmission_latency(MegaBytes::new(0.5));
//! assert!(latency.as_f64() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod handoff;
pub mod link;
pub mod mobility;
pub mod pathloss;
pub mod topology;

pub use handoff::{HandoffKind, HandoffModel};
pub use link::{AccessTechnology, WirelessLink};
pub use mobility::{CoverageZone, RandomWalkMobility, RandomWalker};
pub use pathloss::{FreeSpacePathLoss, LogDistancePathLoss, PathLoss};
pub use topology::{EdgeSite, EdgeTopology, SiteEvents, TopologyWalker};
