//! H.264 encoder configuration and the encoding-latency regression (Eq. 10),
//! plus the decode-discount relation (Eq. 14).
//!
//! The encoding latency depends on too many codec parameters for a
//! first-principles model, so the paper regresses it on the I-frame interval,
//! B-frame interval, bitrate, frame size, frame rate and quantisation value:
//!
//! ```text
//! L_en = (−574.36 − 7.71·n_i + 142.61·n_b + 53.38·n_bitrate + 1.43·s_f1
//!         + 163.65·n_fps + 3.62·n_quant) / c_client + δ_f1 / m_client   (R² = 0.79)
//! ```
//!
//! Decoding the same frame on the edge server is cheaper; the paper measures
//! the decode cost at roughly one third of the encode cost on the same device
//! and calls that fraction the *discount rate* `γ`, giving
//! `L_dec = L_en · c_client · γ / c_ε` (Eq. 14).

use serde::{Deserialize, Serialize};
use xr_stats::{FittedLinearModel, LinearRegression};
use xr_types::{Frame, GigaBytesPerSecond, Result, Seconds};

/// The decode/encode discount rate `γ` measured in the paper (≈ 1/3).
pub const DECODE_DISCOUNT: f64 = 1.0 / 3.0;

/// H.264 encoder settings (the covariates of Eq. 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncodingConfig {
    /// I-frame interval `n_i` in frames.
    pub i_frame_interval: f64,
    /// B-frame interval `n_b` in frames.
    pub b_frame_interval: f64,
    /// Target bitrate `n_bitrate` in Mbps.
    pub bitrate_mbps: f64,
    /// Quantisation parameter `n_quant`.
    pub quantization: f64,
    /// Decode/encode discount rate `γ`.
    pub decode_discount: f64,
}

impl Default for EncodingConfig {
    /// Defaults matching the testbed's encoder profile: an I-frame every
    /// 30 frames, no B-frames, 5 Mbps, QP 28, and the measured `γ = 1/3`.
    fn default() -> Self {
        Self {
            i_frame_interval: 30.0,
            b_frame_interval: 1.0,
            bitrate_mbps: 5.0,
            quantization: 28.0,
            decode_discount: DECODE_DISCOUNT,
        }
    }
}

impl EncodingConfig {
    /// A low-latency profile (frequent I-frames, higher bitrate) used by the
    /// ablation benches.
    #[must_use]
    pub fn low_latency() -> Self {
        Self {
            i_frame_interval: 10.0,
            b_frame_interval: 0.0,
            bitrate_mbps: 10.0,
            quantization: 23.0,
            ..Self::default()
        }
    }
}

/// The encoding-latency regression of Eq. 10.
///
/// The regression predicts the *numerator* of Eq. 10 (a compute-work figure
/// in pixel²-equivalents); dividing by `c_client` and adding the buffer-read
/// term `δ_f1/m_client` yields the latency in milliseconds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncodingLatencyModel {
    model: FittedLinearModel,
}

impl EncodingLatencyModel {
    /// The published coefficients of Eq. 10 (R² = 0.79).
    #[must_use]
    pub fn published() -> Self {
        Self {
            model: FittedLinearModel::from_coefficients(
                -574.36,
                vec![-7.71, 142.61, 53.38, 1.43, 163.65, 3.62],
                0.79,
            ),
        }
    }

    /// Refits the Eq.-10 functional form on observations
    /// `(n_i, n_b, n_bitrate, s_f1, n_fps, n_quant) → work (pixel²-equivalents)`.
    ///
    /// # Errors
    ///
    /// Propagates regression errors.
    pub fn fit(covariates: &[[f64; 6]], work: &[f64]) -> Result<Self> {
        let xs: Vec<Vec<f64>> = covariates.iter().map(|c| c.to_vec()).collect();
        let model = LinearRegression::new().fit(&xs, work)?;
        Ok(Self { model })
    }

    /// The regression's feature vector for a frame under an encoder config.
    #[must_use]
    pub fn features(config: &EncodingConfig, frame: &Frame) -> [f64; 6] {
        [
            config.i_frame_interval,
            config.b_frame_interval,
            config.bitrate_mbps,
            frame.raw_size.as_f64(),
            frame.frame_rate.as_f64(),
            config.quantization,
        ]
    }

    /// The encoding *work* (numerator of Eq. 10) for a frame, clamped below
    /// at zero.
    #[must_use]
    pub fn encoding_work(&self, config: &EncodingConfig, frame: &Frame) -> f64 {
        self.model.predict(&Self::features(config, frame)).max(0.0)
    }

    /// The encoding latency of Eq. 10.
    ///
    /// `client_resource` is `c_client` in pixel²/ms, so the work/resource
    /// quotient is in milliseconds and is converted to seconds here;
    /// `memory_bandwidth` contributes the buffer-read term `δ_f1/m_client`.
    #[must_use]
    pub fn encoding_latency(
        &self,
        config: &EncodingConfig,
        frame: &Frame,
        client_resource: f64,
        memory_bandwidth: GigaBytesPerSecond,
    ) -> Seconds {
        let work = self.encoding_work(config, frame);
        let compute_ms = work / client_resource.max(f64::MIN_POSITIVE);
        Seconds::from_millis(compute_ms) + (frame.raw_data / memory_bandwidth)
    }

    /// The decoding latency of Eq. 14: `L_dec = L_en · c_client · γ / c_ε`.
    ///
    /// The memory-read term is excluded from the scaling (it is a property of
    /// the encoder device), matching the paper's derivation which relates the
    /// *compute* portions of encode and decode.
    #[must_use]
    pub fn decoding_latency(
        &self,
        config: &EncodingConfig,
        frame: &Frame,
        client_resource: f64,
        edge_resource: f64,
    ) -> Seconds {
        let work = self.encoding_work(config, frame);
        let encode_compute_ms = work / client_resource.max(f64::MIN_POSITIVE);
        let decode_ms = encode_compute_ms * client_resource * config.decode_discount
            / edge_resource.max(f64::MIN_POSITIVE);
        Seconds::from_millis(decode_ms)
    }

    /// R² of the underlying regression.
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        self.model.r_squared()
    }

    /// Access to the fitted regression.
    #[must_use]
    pub fn regression(&self) -> &FittedLinearModel {
        &self.model
    }
}

impl Default for EncodingLatencyModel {
    fn default() -> Self {
        Self::published()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr_types::{FrameId, Hertz};

    fn frame(side: f64) -> Frame {
        Frame::from_resolution(FrameId::new(1), side, Hertz::new(30.0))
    }

    #[test]
    fn published_work_matches_eq10_numerator() {
        let model = EncodingLatencyModel::published();
        let config = EncodingConfig::default();
        let f = frame(500.0);
        let expected = -574.36 - 7.71 * 30.0
            + 142.61 * 1.0
            + 53.38 * 5.0
            + 1.43 * 500.0
            + 163.65 * 30.0
            + 3.62 * 28.0;
        assert!((model.encoding_work(&config, &f) - expected).abs() < 1e-6);
        assert!((model.r_squared() - 0.79).abs() < 1e-12);
    }

    #[test]
    fn encoding_latency_includes_memory_term() {
        let model = EncodingLatencyModel::published();
        let config = EncodingConfig::default();
        let f = frame(500.0);
        let c = 15.0;
        let bw = GigaBytesPerSecond::new(44.0);
        let latency = model.encoding_latency(&config, &f, c, bw);
        let compute_only = Seconds::from_millis(model.encoding_work(&config, &f) / c);
        assert!(latency > compute_only);
        let memory = f.raw_data / bw;
        assert!((latency.as_f64() - compute_only.as_f64() - memory.as_f64()).abs() < 1e-12);
    }

    #[test]
    fn larger_frames_cost_more_to_encode() {
        let model = EncodingLatencyModel::published();
        let config = EncodingConfig::default();
        let bw = GigaBytesPerSecond::new(44.0);
        let small = model.encoding_latency(&config, &frame(300.0), 15.0, bw);
        let large = model.encoding_latency(&config, &frame(700.0), 15.0, bw);
        assert!(large > small);
    }

    #[test]
    fn faster_clients_encode_faster() {
        let model = EncodingLatencyModel::published();
        let config = EncodingConfig::default();
        let bw = GigaBytesPerSecond::new(44.0);
        let slow = model.encoding_latency(&config, &frame(500.0), 10.0, bw);
        let fast = model.encoding_latency(&config, &frame(500.0), 20.0, bw);
        assert!(fast < slow);
    }

    #[test]
    fn decode_is_cheaper_than_encode_on_a_stronger_server() {
        let model = EncodingLatencyModel::published();
        let config = EncodingConfig::default();
        let f = frame(500.0);
        let c_client = 15.0;
        let c_edge = 11.76 * c_client;
        let bw = GigaBytesPerSecond::new(44.0);
        let encode = model.encoding_latency(&config, &f, c_client, bw);
        let decode = model.decoding_latency(&config, &f, c_client, c_edge);
        assert!(decode < encode);
        // With γ = 1/3 and c_ε = 11.76·c_client, decode compute should be
        // encode compute divided by ~35.3.
        let encode_compute = encode.as_f64() - (f.raw_data / bw).as_f64();
        assert!((decode.as_f64() - encode_compute / (3.0 * 11.76)).abs() < 1e-9);
    }

    #[test]
    fn same_device_decode_is_one_third_of_encode_compute() {
        // γ is defined as the decode/encode ratio on the same device.
        let model = EncodingLatencyModel::published();
        let config = EncodingConfig::default();
        let f = frame(400.0);
        let c = 12.0;
        let decode = model.decoding_latency(&config, &f, c, c);
        let encode_compute = Seconds::from_millis(model.encoding_work(&config, &f) / c);
        assert!((decode.as_f64() - encode_compute.as_f64() / 3.0).abs() < 1e-12);
    }

    #[test]
    fn refit_recovers_published_coefficients() {
        let published = EncodingLatencyModel::published();
        // Sample a grid of covariates, compute the published work, refit.
        let mut covariates = Vec::new();
        let mut work = Vec::new();
        for i in [10.0, 30.0, 60.0] {
            for b in [0.0, 1.0, 2.0] {
                for r in [2.0, 5.0, 10.0] {
                    for s in [300.0, 500.0, 700.0] {
                        for fps in [15.0, 30.0] {
                            for q in [23.0, 28.0] {
                                let c = [i, b, r, s, fps, q];
                                covariates.push(c);
                                work.push(published.model.predict(&c));
                            }
                        }
                    }
                }
            }
        }
        let refit = EncodingLatencyModel::fit(&covariates, &work).unwrap();
        let config = EncodingConfig::default();
        let f = frame(600.0);
        assert!(
            (refit.encoding_work(&config, &f) - published.encoding_work(&config, &f)).abs() < 1e-3
        );
        assert!(refit.regression().r_squared() > 0.999);
    }

    #[test]
    fn work_clamped_at_zero_for_degenerate_settings() {
        let model = EncodingLatencyModel::published();
        let config = EncodingConfig {
            i_frame_interval: 1_000.0,
            b_frame_interval: 0.0,
            bitrate_mbps: 0.1,
            quantization: 0.0,
            decode_discount: DECODE_DISCOUNT,
        };
        // A tiny frame with extreme settings drives the raw regression
        // negative; the clamp keeps latency non-negative.
        let f = Frame::from_resolution(FrameId::new(1), 40.0, Hertz::new(1.0));
        assert!(model.encoding_work(&config, &f) >= 0.0);
        let l = model.encoding_latency(&config, &f, 15.0, GigaBytesPerSecond::new(44.0));
        assert!(l.as_f64() >= 0.0);
    }

    #[test]
    fn low_latency_profile_differs_from_default() {
        let default = EncodingConfig::default();
        let low = EncodingConfig::low_latency();
        assert!(low.i_frame_interval < default.i_frame_interval);
        assert!(low.bitrate_mbps > default.bitrate_mbps);
        assert_eq!(low.decode_discount, DECODE_DISCOUNT);
    }
}
