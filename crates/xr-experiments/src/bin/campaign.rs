//! The consolidated campaign binary: sweeps the full twelve-axis quick grid
//! (frame size × CPU clock × execution target × device × wireless condition
//! × mobility condition × campaign size × edge population × frame rate ×
//! topology layout × site density × migration policy,
//! with per-point replications)
//! through the parallel campaign engine and writes one mean-±-CI row per
//! operating point to `campaign.csv`.
//!
//! `--grid <file>` swaps the built-in quick grid for a data-defined one
//! parsed by `xr_sweep::parse_grid_spec` (see that module's docs for the
//! `key = value` format), so campaigns can change without recompiling.
//!
//! `--shard i/N` runs only the points `p % N == i - 1` (seeded by original
//! grid index) into `campaign_shard_<i>of<N>.csv` plus a `.manifest`, with
//! an fsync'd `.checkpoint` (`--checkpoint-every <rows>` sets the cadence)
//! so a killed shard resumes at the last durable row; `campaign_merge`
//! interleaves the shard CSVs back into the unsharded artifact byte for
//! byte.
//!
//! The CSV is bit-identical for every worker count (`XR_SWEEP_WORKERS`),
//! for all three session engines (`--scalar-sessions` forces the scalar
//! reference, `--fused-points` / `XR_FUSED_POINTS=1` fuses all
//! replications of a point into one wide SoA pass), and for any
//! within-session split (`--session-chunks`, `XR_SESSION_CHUNKS`); CI runs
//! this binary under all of these axes and diffs the artifacts.
//!
//! `--progress` emits `shard i/N: completed/total points` lines to stderr
//! at checkpoint boundaries (`1/1` and every completed point on an
//! unsharded run); stdout and the CSV are byte-identical either way.
//! `--reorder-cap <n>` / `XR_REORDER_CAP` bound the streaming hold-back
//! window (how far fast workers may run ahead of one slow point).

use xr_experiments::campaign::{quick_grid, run_campaign_streaming, CampaignRow, CAMPAIGN_HEADER};
use xr_experiments::shard_campaign::{run_campaign_shard_with_progress, shard_csv_name};
use xr_experiments::{output, ExperimentContext};
use xr_sweep::{parse_grid_spec, ShardSpec, SweepGrid, DEFAULT_SYNC_EVERY};

/// Resolves the campaign grid: `--grid <file>` when given, the built-in
/// quick grid otherwise.
fn grid_from_args() -> SweepGrid {
    let args: Vec<String> = std::env::args().collect();
    let Some(position) = args.iter().position(|a| a == "--grid") else {
        return quick_grid();
    };
    let Some(path) = args.get(position + 1) else {
        eprintln!("--grid requires a file path");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("cannot read grid spec {path}: {error}");
            std::process::exit(2);
        }
    };
    match parse_grid_spec(&text) {
        Ok(grid) => grid,
        Err(error) => {
            eprintln!("invalid grid spec {path}: {error}");
            std::process::exit(2);
        }
    }
}

/// Resolves `--shard i/N`: `None` without the flag, exit 2 on a malformed
/// or out-of-range spec.
fn shard_from_args() -> Option<ShardSpec> {
    let args: Vec<String> = std::env::args().collect();
    let position = args.iter().position(|a| a == "--shard")?;
    let Some(token) = args.get(position + 1) else {
        eprintln!("--shard requires a spec like `2/4`");
        std::process::exit(2);
    };
    match ShardSpec::parse(token) {
        Ok(shard) => Some(shard),
        Err(error) => {
            eprintln!("invalid --shard: {error}");
            std::process::exit(2);
        }
    }
}

/// Resolves `--checkpoint-every <rows>`: the fsync cadence of the shard
/// checkpoint, defaulting to every row; exit 2 on a malformed count.
fn checkpoint_every_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let Some(position) = args.iter().position(|a| a == "--checkpoint-every") else {
        return DEFAULT_SYNC_EVERY;
    };
    let Some(token) = args.get(position + 1) else {
        eprintln!("--checkpoint-every requires a row count");
        std::process::exit(2);
    };
    match token.parse::<usize>() {
        Ok(rows) if rows >= 1 => rows,
        _ => {
            eprintln!("invalid --checkpoint-every: `{token}` is not a row count of at least 1");
            std::process::exit(2);
        }
    }
}

fn main() {
    let grid = grid_from_args();
    let checkpoint_every = checkpoint_every_from_args();
    let progress = std::env::args().any(|a| a == "--progress");
    let ctx = ExperimentContext::from_args();
    if let Some(shard) = shard_from_args() {
        let dir = output::artifact_dir();
        std::fs::create_dir_all(&dir).expect("cannot create the artifact directory");
        let csv_path = dir.join(shard_csv_name(shard));
        let report = run_campaign_shard_with_progress(
            &ctx,
            &grid,
            &ctx.runner(),
            shard,
            &csv_path,
            checkpoint_every,
            progress,
        )
        .unwrap_or_else(|error| {
            eprintln!("shard campaign failed: {error}");
            std::process::exit(1);
        });
        println!(
            "shard {shard}: {} row(s) resumed from checkpoint, {} evaluated ({} worker(s)); csv written to {}",
            report.resumed_rows,
            report.evaluated_rows,
            ctx.runner().workers(),
            report.csv_path.display()
        );
        return;
    }
    if std::env::args().any(|a| a == "--checkpoint-every") {
        eprintln!("--checkpoint-every only applies to a sharded run (--shard i/N)");
        std::process::exit(2);
    }
    // An unsharded run is the whole campaign in one piece — report it as
    // shard 1/1, one "checkpoint" per completed point (the sharded
    // default cadence).
    let total = grid.len();
    let mut rows: Vec<CampaignRow> = Vec::with_capacity(total);
    run_campaign_streaming(&ctx, &grid, |_, row| {
        rows.push(row);
        if progress {
            eprintln!("shard 1/1: {}/{total} points", rows.len());
        }
    })
    .expect("campaign failed");
    let cells: Vec<Vec<String>> = rows.iter().map(|r| r.cells()).collect();
    output::print_experiment(
        "Consolidated campaign — twelve-axis replicated sweep",
        &CAMPAIGN_HEADER,
        &cells,
        "campaign.csv",
    );
    println!(
        "{} operating points × {} replication(s) evaluated with {} worker(s)",
        rows.len(),
        grid.replications(),
        ctx.runner().workers()
    );
}
