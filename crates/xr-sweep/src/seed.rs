//! Deterministic per-point seed derivation.
//!
//! The SplitMix64 chaining primitive lives in [`xr_types::seed`] so that
//! every crate (the campaign engine here, the testbed's per-stage frame
//! streams) derives seeds through one audited scheme; this module re-exports
//! the campaign-level derivations under their historical names.

/// Derives the random seed for one operating point of a campaign from the
/// campaign's seed and the point's index in the grid.
///
/// Delegates to [`xr_types::seed::point_seed`]: a SplitMix64 finalizer over
/// the pair, so neighbouring point indices receive statistically independent
/// seeds while the mapping stays a pure function of
/// `(campaign_seed, point_index)` — the property that makes campaign output
/// independent of worker count and scheduling order.
#[must_use]
pub fn point_seed(campaign_seed: u64, point_index: usize) -> u64 {
    xr_types::seed::point_seed(campaign_seed, point_index)
}

/// Derives the random seed for one replication of one operating point.
///
/// Delegates to [`xr_types::seed::replication_seed`], which chains the
/// SplitMix64 finalizer twice — once over `(campaign_seed, point_index)` and
/// once over the result and `rep_index` — so every `(point, replication)`
/// pair receives a statistically independent seed while the mapping stays a
/// pure function of the triple. Replicated campaigns therefore remain
/// bit-identical for any worker count.
#[must_use]
pub fn replication_seed(campaign_seed: u64, point_index: usize, rep_index: usize) -> u64 {
    xr_types::seed::replication_seed(campaign_seed, point_index, rep_index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(point_seed(7, 0), point_seed(7, 0));
        let seeds: Vec<u64> = (0..64).map(|i| point_seed(2024, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "collisions in {seeds:?}");
    }

    #[test]
    fn different_campaigns_decorrelate() {
        assert_ne!(point_seed(1, 5), point_seed(2, 5));
        assert_ne!(point_seed(1, 5), point_seed(1, 6));
    }

    #[test]
    fn replication_seeds_are_pure_and_collision_free() {
        assert_eq!(replication_seed(9, 3, 2), replication_seed(9, 3, 2));
        let mut seeds: Vec<u64> = (0..16)
            .flat_map(|p| (0..8).map(move |r| replication_seed(2024, p, r)))
            .collect();
        let total = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), total, "replication seed collision");
        // Replication 0 is still decorrelated from the bare point seed, so
        // replicated and unreplicated campaigns never share streams.
        assert_ne!(replication_seed(7, 4, 0), point_seed(7, 4));
    }

    #[test]
    fn delegation_matches_the_shared_module() {
        assert_eq!(point_seed(2024, 17), xr_types::seed::point_seed(2024, 17));
        assert_eq!(
            replication_seed(2024, 17, 3),
            xr_types::seed::replication_seed(2024, 17, 3)
        );
    }
}
