//! The lane-oriented draw layer's contract: a wide-lane column fill is
//! **bit-identical** to the per-frame stage streams the scalar pipeline
//! draws from, for every lane count and frame offset — the invariant that
//! lets the batched engine pre-fill draw columns without changing a single
//! draw (`lane j owns frame base + j`, so output is lane-count invariant
//! by construction).
//!
//! The raw-word layer is pinned directly against `StdRng` here; the
//! engine-level consequence (batched sessions bit-identical to scalar,
//! including noiseless gating and tail batches) is pinned in
//! `tests/frame_batch_equivalence.rs` and the edge cases below.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rand_distr::{column, Distribution, Exp, Normal};
use xr_types::lanes::LaneStreams;
use xr_types::seed;

/// The widths the batched engine actually uses (1 = scalar-shaped batches,
/// 64/100 = wide batches and non-power-of-two lane counts).
const WIDTHS: [usize; 6] = [1, 2, 3, 8, 64, 100];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wide_lane_fills_match_per_frame_stage_streams(
        session_seed in 0u64..u64::MAX,
        stage in 0u64..11,
        first_frame in 0u64..1_000_000_000,
        depth in 1usize..8,
    ) {
        let stage_base = seed::mix(session_seed, stage);
        let mut lanes = LaneStreams::new();
        for width in WIDTHS {
            lanes.reseed(stage_base, first_frame, width);
            let mut column = vec![0u64; width];
            // Per-frame reference: each frame's own StdRng, seeded exactly
            // like TestbedSimulator::stage_rng.
            let mut frame_rngs: Vec<StdRng> = (0..width as u64)
                .map(|j| {
                    StdRng::seed_from_u64(seed::mix(stage_base, first_frame + j))
                })
                .collect();
            for d in 0..depth {
                lanes.fill_next(&mut column);
                for (j, rng) in frame_rngs.iter_mut().enumerate() {
                    let expected = rng.next_u64();
                    prop_assert!(
                        column[j] == expected,
                        "draw {d} of lane {j} diverged at width {width}"
                    );
                }
            }
        }
    }

    #[test]
    fn column_transforms_match_scalar_samplers_over_lane_words(
        session_seed in 0u64..u64::MAX,
        first_frame in 0u64..1_000_000,
        sigma in 0.001f64..2.0,
        rate in 0.1f64..100.0,
        lo in -10.0f64..10.0,
        span in 0.001f64..20.0,
    ) {
        let hi = lo + span;
        // One lane bank, three transform draws per frame (normal consumes
        // two words, uniform and exponential one each) — against a scalar
        // walk of each frame's own stream in the same word order.
        let stage_base = seed::mix(session_seed, 5);
        let width = 37;
        let mut lanes = LaneStreams::new();
        lanes.reseed(stage_base, first_frame, width);
        let mut raw_a = vec![0u64; width];
        let mut raw_b = vec![0u64; width];
        let mut normals = vec![0.0; width];
        let mut uniforms = vec![0.0; width];
        let mut exps = vec![0.0; width];

        let normal = Normal::new(0.0, sigma).expect("valid sigma");
        let exp = Exp::new(rate).expect("valid rate");

        lanes.fill_next(&mut raw_a);
        lanes.fill_next(&mut raw_b);
        column::fill_normal(&normal, &raw_a, &raw_b, &mut normals);
        lanes.fill_next(&mut raw_a);
        column::fill_uniform_range(lo, hi, &raw_a, &mut uniforms);
        lanes.fill_next(&mut raw_a);
        column::fill_exp(&exp, &raw_a, &mut exps);
        // The kept-pair transform: one word-pair column yields both noise
        // factors (cosine and sine halves).
        let mut fac_cos = vec![0.0; width];
        let mut fac_sin = vec![0.0; width];
        lanes.fill_next(&mut raw_a);
        lanes.fill_next(&mut raw_b);
        column::fill_lognormal_pair(&normal, &raw_a, &raw_b, &mut fac_cos, &mut fac_sin);

        for j in 0..width {
            let mut rng = StdRng::seed_from_u64(seed::mix(stage_base, first_frame + j as u64));
            let scalar_normal = normal.sample(&mut rng);
            prop_assert!(normals[j] == scalar_normal, "normal lane {j}");
            let scalar_uniform: f64 = rng.gen_range(lo..hi);
            prop_assert!(uniforms[j] == scalar_uniform, "uniform lane {j}");
            let scalar_exp = exp.sample(&mut rng);
            prop_assert!(exps[j] == scalar_exp, "exp lane {j}");
            // The scalar pipeline's noise: exp(N(0, σ)) through the cached
            // pair sampler — two variates from one word pair.
            let mut pairs = rand_distr::StandardNormalPairs::new();
            let scalar_cos = rand_distr::math::exp(normal.from_standard(pairs.next(&mut rng)));
            let scalar_sin = rand_distr::math::exp(normal.from_standard(pairs.next(&mut rng)));
            prop_assert!(fac_cos[j] == scalar_cos, "pair cosine lane {j}");
            prop_assert!(fac_sin[j] == scalar_sin, "pair sine lane {j}");
        }
    }
}

#[test]
fn sigma_zero_columns_are_exactly_the_mean() {
    // σ = 0 must collapse every column transform (and both engines' noise)
    // to the deterministic mean — no ulp drift from the kernels — on the
    // SIMD and portable passes alike.
    let normal = Normal::new(0.25, 0.0).expect("σ = 0 is a valid Normal");
    let words: Vec<u64> = (0..101u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let mut out = vec![f64::NAN; 101];
    let mut out_sin = vec![f64::NAN; 101];
    column::fill_normal(&normal, &words, &words, &mut out);
    assert!(out.iter().all(|&v| v == 0.25), "fill_normal ignored σ = 0");
    column::fill_lognormal_pair(&normal, &words, &words, &mut out, &mut out_sin);
    let expected = rand_distr::math::exp(0.25);
    assert!(out.iter().all(|&v| v == expected));
    assert!(out_sin.iter().all(|&v| v == expected));
}

#[test]
fn tail_batches_shorter_than_the_lane_width_replay_the_same_streams() {
    // A session whose last batch is narrower than the engine width must
    // hand the tail frames the very same streams a full-width batch would.
    let stage_base = seed::mix(99, 2);
    let mut wide = LaneStreams::new();
    wide.reseed(stage_base, 1, 100);
    let mut wide_col = vec![0u64; 100];
    wide.fill_next(&mut wide_col);

    let mut tail = LaneStreams::new();
    tail.reseed(stage_base, 65, 36); // frames 65..=100: the tail of width-64 batching
    let mut tail_col = vec![0u64; 36];
    tail.fill_next(&mut tail_col);
    assert_eq!(&wide_col[64..], &tail_col[..], "tail lanes diverged");
}

#[test]
fn noiseless_sessions_draw_nothing_from_gated_noise_columns() {
    // sigma = 0 gates the measurement-noise draw entirely (the scalar
    // pipeline multiplies by a constant 1.0 without touching the RNG); the
    // batched engine must do the same, so the noiseless engines stay
    // bit-identical — including across a tail batch shorter than the lane
    // width.
    let scenario = xr_core::Scenario::builder()
        .frame_side(480.0)
        .execution(xr_types::ExecutionTarget::Split { client_share: 0.4 })
        .build()
        .unwrap();
    let testbed = xr_testbed::TestbedSimulator::new(31).with_noise(0.0);
    let scalar = testbed.simulate_session_scalar(&scenario, 70).unwrap();
    for width in [1, 64, 256] {
        let batched = testbed
            .simulate_session_batched(&scenario, 70, width)
            .unwrap();
        assert_eq!(
            batched, scalar,
            "noiseless engines diverged at width {width}"
        );
    }
}
