//! Descriptive statistics for simulated traces (latency samples, power
//! samples, AoI series).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: usize,
    mean: f64,
    std_dev: f64,
    min: f64,
    max: f64,
    median: f64,
    p95: f64,
    p99: f64,
}

impl Summary {
    /// Computes the summary of a sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarise an empty sample");
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "sample contains NaN values"
        );
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after assertion"));
        Self {
            count,
            mean,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile_of_sorted(&sorted, 50.0),
            p95: percentile_of_sorted(&sorted, 95.0),
            p99: percentile_of_sorted(&sorted, 99.0),
        }
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Smallest sample.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Median (50th percentile, linearly interpolated).
    #[must_use]
    pub fn median(&self) -> f64 {
        self.median
    }

    /// 95th percentile.
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.p95
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.p99
    }

    /// Coefficient of variation `σ/µ`; NaN when the mean is zero.
    #[must_use]
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            f64::NAN
        } else {
            self.std_dev / self.mean
        }
    }

    /// Two-sided Student-t confidence interval for the population mean at
    /// the given confidence `level` (e.g. `0.95`), using `count − 1` degrees
    /// of freedom. With fewer than two samples there is no dispersion
    /// information and the degenerate `(mean, mean)` interval is returned.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `(0, 1)`.
    #[must_use]
    pub fn confidence_interval(&self, level: f64) -> (f64, f64) {
        assert!(level > 0.0 && level < 1.0, "level must be in (0, 1)");
        if self.count < 2 {
            return (self.mean, self.mean);
        }
        let n = self.count as f64;
        // `std_dev` is the population form; rescale to the sample (n − 1)
        // estimator the t interval is built on.
        let sample_std = self.std_dev * (n / (n - 1.0)).sqrt();
        let t = crate::inference::students_t_quantile(0.5 + level / 2.0, n - 1.0);
        let half_width = t * sample_std / n.sqrt();
        (self.mean - half_width, self.mean + half_width)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} p50={:.4} p95={:.4} p99={:.4} max={:.4}",
            self.count,
            self.mean,
            self.std_dev,
            self.min,
            self.median,
            self.p95,
            self.p99,
            self.max
        )
    }
}

/// Linearly-interpolated percentile of an *already sorted* sample.
///
/// # Panics
///
/// Panics if `sorted` is empty or `pct` is outside `[0, 100]`.
#[must_use]
pub fn percentile_of_sorted(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample");
    assert!((0.0..=100.0).contains(&pct), "percentile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Arithmetic mean of a sample (0.0 for an empty slice).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population variance of a sample (0.0 for fewer than two values).
#[must_use]
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.median() - 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert!((s.std_dev() - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!(s.p95() >= s.median());
        assert!(s.p99() >= s.p95());
        assert!((s.coefficient_of_variation() - 2.0_f64.sqrt() / 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert!((percentile_of_sorted(&sorted, 0.0) - 10.0).abs() < 1e-12);
        assert!((percentile_of_sorted(&sorted, 100.0) - 40.0).abs() < 1e-12);
        assert!((percentile_of_sorted(&sorted, 50.0) - 25.0).abs() < 1e-12);
        assert_eq!(percentile_of_sorted(&[7.0], 95.0), 7.0);
    }

    #[test]
    fn confidence_interval_matches_the_direct_computation() {
        let sample = [9.8, 10.1, 10.3, 9.9, 10.4];
        let summary = Summary::of(&sample);
        let (lo, hi) = summary.confidence_interval(0.95);
        let (direct_lo, direct_hi) = crate::inference::mean_confidence_interval(&sample, 0.95);
        assert!((lo - direct_lo).abs() < 1e-12);
        assert!((hi - direct_hi).abs() < 1e-12);
        assert!(lo < summary.mean() && summary.mean() < hi);
        // One sample: degenerate interval.
        assert_eq!(Summary::of(&[7.0]).confidence_interval(0.95), (7.0, 7.0));
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.median(), 42.0);
    }

    #[test]
    fn display_mentions_percentiles() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        let text = format!("{s}");
        assert!(text.contains("p95"));
        assert!(text.contains("n=3"));
    }

    #[test]
    fn helper_mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert!((mean(&[2.0, 4.0]) - 3.0).abs() < 1e-12);
        assert!((variance(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_summary_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "contains NaN")]
    fn nan_sample_panics() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_range_checked() {
        let _ = percentile_of_sorted(&[1.0], 101.0);
    }
}
