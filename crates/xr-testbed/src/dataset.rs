//! Measurement-campaign generation and regression refitting.
//!
//! The paper collects 119 465 training samples from devices XR1/XR3/XR5/XR6
//! and 36 083 test samples from the held-out devices XR2/XR4/XR7, then trains
//! its regression sub-models (Eqs. 3, 10, 12, 21) on the training portion.
//! [`MeasurementCampaign`] reproduces that campaign against the simulated
//! testbed's true laws, and [`CalibratedModels`] refits the analytical
//! framework's sub-models on the result — yielding the *calibrated* proposed
//! model that the evaluation experiments compare against the ground truth.

use crate::laws::{DeviceBias, TrueLaws};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use xr_core::{
    AoiModel, EncodingConfig, EncodingLatencyModel, EnergyModel, LatencyModel, XrPerformanceModel,
};
use xr_devices::{
    CnnCatalog, CnnComplexityModel, ComputeResourceModel, DeviceCatalog, MeanPowerModel,
};
use xr_types::{Frame, FrameId, GigaHertz, Hertz, Ratio, Result};

/// A labelled dataset of simulated measurements for the four regression
/// sub-models.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MeasurementDataset {
    /// Covariates of the compute-resource model: `(f_c, f_g, ω_c)`.
    pub resource_x: Vec<(GigaHertz, GigaHertz, Ratio)>,
    /// Observed compute resources (pixel²/ms).
    pub resource_y: Vec<f64>,
    /// Covariates of the mean-power model: `(f_c, f_g, ω_c)`.
    pub power_x: Vec<(GigaHertz, GigaHertz, Ratio)>,
    /// Observed mean power (W).
    pub power_y: Vec<f64>,
    /// Covariates of the encoding model:
    /// `[n_i, n_b, n_bitrate, s_f1, n_fps, n_quant]`.
    pub encoding_x: Vec<[f64; 6]>,
    /// Observed encoder work (pixel²-equivalents).
    pub encoding_y: Vec<f64>,
    /// Covariates of the CNN-complexity model: `(depth, size, scale)`.
    pub complexity_x: Vec<(f64, f64, f64)>,
    /// Observed complexity multipliers.
    pub complexity_y: Vec<f64>,
}

impl MeasurementDataset {
    /// Total number of records across the four sub-datasets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.resource_y.len() + self.power_y.len() + self.encoding_y.len() + self.complexity_y.len()
    }

    /// Returns `true` when no records were collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Configuration of a simulated measurement campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasurementCampaign {
    seed: u64,
    /// Relative standard deviation of measurement noise on every observation.
    noise_sigma: f64,
    /// Target number of records to collect.
    target_records: usize,
}

impl MeasurementCampaign {
    /// The paper-scale campaign: 119 465 records, 3 % measurement noise.
    #[must_use]
    pub fn paper_scale(seed: u64) -> Self {
        Self {
            seed,
            noise_sigma: 0.03,
            target_records: 119_465,
        }
    }

    /// The paper-scale *test* campaign on the held-out devices:
    /// 36 083 records.
    #[must_use]
    pub fn paper_scale_test(seed: u64) -> Self {
        Self {
            seed,
            noise_sigma: 0.03,
            target_records: 36_083,
        }
    }

    /// A small campaign for unit tests and quick experiments.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            noise_sigma: 0.03,
            target_records: 4_000,
        }
    }

    /// Overrides the number of records collected.
    #[must_use]
    pub fn with_target_records(mut self, records: usize) -> Self {
        self.target_records = records.max(100);
        self
    }

    /// Overrides the measurement noise.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    #[must_use]
    pub fn with_noise(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "noise must be non-negative");
        self.noise_sigma = sigma;
        self
    }

    /// Number of records this campaign will collect.
    #[must_use]
    pub fn target_records(&self) -> usize {
        self.target_records
    }

    /// Runs the campaign against the given devices (catalog names) and
    /// returns the collected dataset. The record budget is split roughly
    /// 40 % / 35 % / 20 % / 5 % across the resource, power, encoding and
    /// complexity sub-datasets.
    #[must_use]
    pub fn collect(&self, laws: &TrueLaws, devices: &[&str]) -> MeasurementDataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let noise =
            Normal::new(0.0, self.noise_sigma.max(f64::MIN_POSITIVE)).expect("valid noise sigma");
        let sample_noise = |rng: &mut StdRng| -> f64 {
            if self.noise_sigma > 0.0 {
                noise.sample(rng).exp()
            } else {
                1.0
            }
        };

        let catalog = DeviceCatalog::table1();
        let cnn_catalog = CnnCatalog::table2();
        let specs: Vec<_> = devices
            .iter()
            .filter_map(|name| catalog.device(name).ok().cloned())
            .collect();
        let mut dataset = MeasurementDataset::default();
        if specs.is_empty() {
            return dataset;
        }

        let n_resource = self.target_records * 40 / 100;
        let n_power = self.target_records * 35 / 100;
        let n_encoding = self.target_records * 20 / 100;
        let n_complexity = self
            .target_records
            .saturating_sub(n_resource + n_power + n_encoding);

        // Compute-resource and power observations over random operating
        // points of the campaign devices.
        for i in 0..(n_resource + n_power) {
            let spec = &specs[rng.gen_range(0..specs.len())];
            let bias = DeviceBias::for_device(&spec.name);
            let fc = GigaHertz::new(rng.gen_range(0.8..=spec.cpu_clock.as_f64()));
            let fg = GigaHertz::new(rng.gen_range(0.3..=spec.gpu_clock.as_f64().max(0.35)));
            let wc = Ratio::new(rng.gen_range(0.0..=1.0));
            if i < n_resource {
                let observed = laws.compute_resource(fc, fg, wc, bias) * sample_noise(&mut rng);
                dataset.resource_x.push((fc, fg, wc));
                dataset.resource_y.push(observed);
            } else {
                let observed = laws.mean_power(fc, fg, wc, bias).as_f64() * sample_noise(&mut rng);
                dataset.power_x.push((fc, fg, wc));
                dataset.power_y.push(observed);
            }
        }

        // Encoding observations over random codec settings and frame sizes.
        for _ in 0..n_encoding {
            let spec = &specs[rng.gen_range(0..specs.len())];
            let bias = DeviceBias::for_device(&spec.name);
            let config = EncodingConfig {
                i_frame_interval: rng.gen_range(5.0..=60.0),
                b_frame_interval: rng.gen_range(0.0..=3.0),
                bitrate_mbps: rng.gen_range(1.0..=20.0),
                quantization: rng.gen_range(18.0..=40.0),
                decode_discount: 1.0 / 3.0,
            };
            let side = rng.gen_range(240.0..=720.0);
            let fps = *[15.0, 24.0, 30.0, 60.0]
                .get(rng.gen_range(0..4))
                .expect("index in range");
            let frame = Frame::from_resolution(FrameId::new(1), side, Hertz::new(fps));
            let observed = laws.encoding_work(&config, &frame, bias) * sample_noise(&mut rng);
            dataset
                .encoding_x
                .push(EncodingLatencyModel::features(&config, &frame));
            dataset.encoding_y.push(observed);
        }

        // CNN-complexity observations: repeated noisy measurements of the
        // Table II models.
        let cnns: Vec<_> = cnn_catalog.iter().cloned().collect();
        for _ in 0..n_complexity {
            let cnn = &cnns[rng.gen_range(0..cnns.len())];
            let observed = laws.cnn_complexity(cnn) * sample_noise(&mut rng);
            dataset
                .complexity_x
                .push((f64::from(cnn.depth), cnn.size.as_f64(), cnn.depth_scale));
            dataset.complexity_y.push(observed);
        }

        dataset
    }
}

/// The four regression sub-models refit on a simulated measurement dataset,
/// plus the calibrated end-to-end framework built from them.
#[derive(Debug, Clone)]
pub struct CalibratedModels {
    /// Refit compute-resource model (Eq. 3 form).
    pub compute: ComputeResourceModel,
    /// Refit mean-power model (Eq. 21 form).
    pub power: MeanPowerModel,
    /// Refit encoding-latency model (Eq. 10 form).
    pub encoding: EncodingLatencyModel,
    /// Refit CNN-complexity model (Eq. 12 form).
    pub complexity: CnnComplexityModel,
}

/// Held-out goodness of fit of the calibrated sub-models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Out-of-sample R² of the compute-resource model.
    pub resource_r_squared: f64,
    /// Out-of-sample R² of the mean-power model.
    pub power_r_squared: f64,
    /// Out-of-sample R² of the encoding model.
    pub encoding_r_squared: f64,
    /// Out-of-sample R² of the CNN-complexity model.
    pub complexity_r_squared: f64,
}

impl CalibratedModels {
    /// Fits the four sub-models on a training dataset.
    ///
    /// # Errors
    ///
    /// Propagates regression errors (e.g. an empty dataset).
    pub fn fit(train: &MeasurementDataset) -> Result<Self> {
        let compute = ComputeResourceModel::fit(&train.resource_x, &train.resource_y)?;
        let power = MeanPowerModel::fit(&train.power_x, &train.power_y)?;
        let encoding = EncodingLatencyModel::fit(&train.encoding_x, &train.encoding_y)?;
        let complexity = CnnComplexityModel::fit(&train.complexity_x, &train.complexity_y)?;
        Ok(Self {
            compute,
            power,
            encoding,
            complexity,
        })
    }

    /// Builds the calibrated analytical framework (latency + energy + AoI)
    /// from the refit sub-models.
    #[must_use]
    pub fn performance_model(&self) -> XrPerformanceModel {
        let latency = LatencyModel::published()
            .with_compute_model(self.compute.clone())
            .with_cnn_complexity(self.complexity.clone())
            .with_encoding_model(self.encoding.clone());
        let energy = EnergyModel::published().with_power_model(self.power.clone());
        XrPerformanceModel::new(latency, energy, AoiModel::published())
    }

    /// In-sample R² of the four fits (the numbers the paper reports as 0.87,
    /// 0.863, 0.79 and 0.844).
    #[must_use]
    pub fn training_r_squared(&self) -> CalibrationReport {
        CalibrationReport {
            resource_r_squared: self.compute.r_squared(),
            power_r_squared: self.power.r_squared(),
            encoding_r_squared: self.encoding.r_squared(),
            complexity_r_squared: self.complexity.r_squared(),
        }
    }

    /// Out-of-sample R² on a held-out dataset (the validation-device split).
    #[must_use]
    pub fn evaluate(&self, test: &MeasurementDataset) -> CalibrationReport {
        let resource_feats: Vec<Vec<f64>> = test
            .resource_x
            .iter()
            .map(|(fc, fg, wc)| ComputeResourceModel::features(*fc, *fg, *wc))
            .collect();
        let power_feats: Vec<Vec<f64>> = test
            .power_x
            .iter()
            .map(|(fc, fg, wc)| MeanPowerModel::features(*fc, *fg, *wc))
            .collect();
        let encoding_feats: Vec<Vec<f64>> = test.encoding_x.iter().map(|c| c.to_vec()).collect();
        let complexity_feats: Vec<Vec<f64>> = test
            .complexity_x
            .iter()
            .map(|(d, s, c)| vec![*d, *s, *c])
            .collect();
        CalibrationReport {
            resource_r_squared: self
                .compute
                .regression()
                .score(&resource_feats, &test.resource_y),
            power_r_squared: self.power.regression().score(&power_feats, &test.power_y),
            encoding_r_squared: self
                .encoding
                .regression()
                .score(&encoding_feats, &test.encoding_y),
            complexity_r_squared: self
                .complexity
                .regression()
                .score(&complexity_feats, &test.complexity_y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_test() -> (MeasurementDataset, MeasurementDataset) {
        let laws = TrueLaws::standard();
        let train =
            MeasurementCampaign::small(1).collect(&laws, &DeviceCatalog::training_devices());
        let test = MeasurementCampaign::small(2)
            .with_target_records(1_500)
            .collect(&laws, &DeviceCatalog::validation_devices());
        (train, test)
    }

    #[test]
    fn campaign_collects_the_requested_volume() {
        let (train, test) = train_test();
        assert!(
            train.len() >= 3_800 && train.len() <= 4_000,
            "{}",
            train.len()
        );
        assert!(test.len() >= 1_400 && test.len() <= 1_500);
        assert!(!train.is_empty());
        assert!(!train.resource_y.is_empty());
        assert!(!train.power_y.is_empty());
        assert!(!train.encoding_y.is_empty());
        assert!(!train.complexity_y.is_empty());
    }

    #[test]
    fn paper_scale_matches_reported_counts() {
        let c = MeasurementCampaign::paper_scale(0);
        assert_eq!(c.target_records(), 119_465);
        assert_eq!(
            MeasurementCampaign::paper_scale_test(0).target_records(),
            36_083
        );
    }

    #[test]
    fn calibrated_fits_have_strong_in_sample_r_squared() {
        let (train, _) = train_test();
        let models = CalibratedModels::fit(&train).unwrap();
        let report = models.training_r_squared();
        assert!(report.resource_r_squared > 0.8, "{report:?}");
        assert!(report.power_r_squared > 0.8, "{report:?}");
        assert!(report.encoding_r_squared > 0.8, "{report:?}");
        assert!(report.complexity_r_squared > 0.8, "{report:?}");
    }

    #[test]
    fn calibrated_fits_generalise_to_held_out_devices() {
        let (train, test) = train_test();
        let models = CalibratedModels::fit(&train).unwrap();
        let report = models.evaluate(&test);
        assert!(report.resource_r_squared > 0.7, "{report:?}");
        assert!(report.power_r_squared > 0.7, "{report:?}");
        assert!(report.encoding_r_squared > 0.7, "{report:?}");
        assert!(report.complexity_r_squared > 0.7, "{report:?}");
    }

    #[test]
    fn calibrated_framework_analyses_scenarios() {
        let (train, _) = train_test();
        let models = CalibratedModels::fit(&train).unwrap();
        let framework = models.performance_model();
        let scenario = xr_core::Scenario::builder().build().unwrap();
        let report = framework.analyze(&scenario).unwrap();
        assert!(report.latency.total().as_f64() > 0.0);
        assert!(report.energy.total().as_f64() > 0.0);
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let laws = TrueLaws::standard();
        let a = MeasurementCampaign::small(9).collect(&laws, &["XR1", "XR3"]);
        let b = MeasurementCampaign::small(9).collect(&laws, &["XR1", "XR3"]);
        let c = MeasurementCampaign::small(10).collect(&laws, &["XR1", "XR3"]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unknown_devices_yield_empty_dataset() {
        let laws = TrueLaws::standard();
        let d = MeasurementCampaign::small(1).collect(&laws, &["nonexistent"]);
        assert!(d.is_empty());
        assert!(CalibratedModels::fit(&d).is_err());
    }
}
