//! Optional path-loss models.
//!
//! The paper's default latency/AoI models assume no path loss, shadowing or
//! fading, but explicitly note that these effects "can be incorporated into
//! the model according to system requirements". This module supplies the two
//! standard models needed for that extension: free-space path loss and the
//! log-distance model with an optional shadowing margin, plus a helper to
//! derate link throughput as the received power drops.

use serde::{Deserialize, Serialize};
use xr_types::{MegaBitsPerSecond, Meters};

/// A propagation path-loss model: given a distance, return attenuation in dB.
pub trait PathLoss {
    /// Path loss in dB at `distance`.
    fn loss_db(&self, distance: Meters) -> f64;

    /// Derates a nominal throughput by the fraction of link margin consumed.
    ///
    /// A simple, monotone throughput model: full throughput while the loss is
    /// below `floor_db`, zero at `ceiling_db`, linear in between. This is not
    /// a Shannon-capacity argument — it is the kind of coarse rate-adaptation
    /// behaviour the testbed router exhibits, which is all the analytic model
    /// consumes.
    fn derated_throughput(
        &self,
        nominal: MegaBitsPerSecond,
        distance: Meters,
        floor_db: f64,
        ceiling_db: f64,
    ) -> MegaBitsPerSecond {
        assert!(ceiling_db > floor_db, "ceiling must exceed floor");
        let loss = self.loss_db(distance);
        let fraction = if loss <= floor_db {
            1.0
        } else if loss >= ceiling_db {
            0.0
        } else {
            1.0 - (loss - floor_db) / (ceiling_db - floor_db)
        };
        MegaBitsPerSecond::new(nominal.as_f64() * fraction)
    }
}

/// Free-space path loss: `20·log10(d) + 20·log10(f) − 147.55` dB with `d` in
/// meters and `f` in Hz.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreeSpacePathLoss {
    /// Carrier frequency in Hz.
    pub frequency_hz: f64,
}

impl FreeSpacePathLoss {
    /// Creates a free-space model at the given carrier frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not strictly positive.
    #[must_use]
    pub fn new(frequency_hz: f64) -> Self {
        assert!(frequency_hz > 0.0, "carrier frequency must be positive");
        Self { frequency_hz }
    }

    /// The 2.4 GHz Wi-Fi band.
    #[must_use]
    pub fn wifi_2_4ghz() -> Self {
        Self::new(2.4e9)
    }

    /// The 5 GHz Wi-Fi band.
    #[must_use]
    pub fn wifi_5ghz() -> Self {
        Self::new(5.0e9)
    }
}

impl PathLoss for FreeSpacePathLoss {
    fn loss_db(&self, distance: Meters) -> f64 {
        let d = distance.as_f64().max(1.0);
        20.0 * d.log10() + 20.0 * self.frequency_hz.log10() - 147.55
    }
}

/// Log-distance path loss with exponent `n` and an optional fixed shadowing
/// margin: `PL(d) = PL(d0) + 10·n·log10(d/d0) + σ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogDistancePathLoss {
    reference: FreeSpacePathLoss,
    reference_distance: Meters,
    exponent: f64,
    shadowing_margin_db: f64,
}

impl LogDistancePathLoss {
    /// Creates a log-distance model anchored at `reference_distance` with the
    /// given path-loss exponent (2.0 = free space, ~3.0 = indoor office,
    /// ~4.0 = dense obstruction).
    ///
    /// # Panics
    ///
    /// Panics if the exponent is below 1 or the reference distance is not
    /// positive.
    #[must_use]
    pub fn new(reference: FreeSpacePathLoss, reference_distance: Meters, exponent: f64) -> Self {
        assert!(exponent >= 1.0, "path-loss exponent must be at least 1");
        assert!(
            reference_distance.is_positive(),
            "reference distance must be positive"
        );
        Self {
            reference,
            reference_distance,
            exponent,
            shadowing_margin_db: 0.0,
        }
    }

    /// Adds a fixed shadowing margin in dB.
    #[must_use]
    pub fn with_shadowing_margin(mut self, margin_db: f64) -> Self {
        self.shadowing_margin_db = margin_db.max(0.0);
        self
    }
}

impl PathLoss for LogDistancePathLoss {
    fn loss_db(&self, distance: Meters) -> f64 {
        let d = distance.as_f64().max(self.reference_distance.as_f64());
        self.reference.loss_db(self.reference_distance)
            + 10.0 * self.exponent * (d / self.reference_distance.as_f64()).log10()
            + self.shadowing_margin_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_space_loss_increases_with_distance_and_frequency() {
        let m = FreeSpacePathLoss::wifi_2_4ghz();
        assert!(m.loss_db(Meters::new(100.0)) > m.loss_db(Meters::new(10.0)));
        let hi = FreeSpacePathLoss::wifi_5ghz();
        assert!(hi.loss_db(Meters::new(10.0)) > m.loss_db(Meters::new(10.0)));
    }

    #[test]
    fn free_space_reference_value() {
        // Classic check: 2.4 GHz at 1 m ≈ 40.05 dB.
        let m = FreeSpacePathLoss::wifi_2_4ghz();
        let loss = m.loss_db(Meters::new(1.0));
        assert!((loss - 40.05).abs() < 0.2, "loss {loss}");
    }

    #[test]
    fn log_distance_exceeds_free_space_indoors() {
        let fs = FreeSpacePathLoss::wifi_5ghz();
        let indoor = LogDistancePathLoss::new(fs, Meters::new(1.0), 3.0);
        assert!(indoor.loss_db(Meters::new(20.0)) > fs.loss_db(Meters::new(20.0)));
        let shadowed = indoor.with_shadowing_margin(8.0);
        assert!(
            (shadowed.loss_db(Meters::new(20.0)) - indoor.loss_db(Meters::new(20.0)) - 8.0).abs()
                < 1e-9
        );
    }

    #[test]
    fn derated_throughput_is_monotone_in_distance() {
        let model = LogDistancePathLoss::new(FreeSpacePathLoss::wifi_5ghz(), Meters::new(1.0), 3.0);
        let nominal = MegaBitsPerSecond::new(200.0);
        let near = model.derated_throughput(nominal, Meters::new(2.0), 60.0, 110.0);
        let mid = model.derated_throughput(nominal, Meters::new(20.0), 60.0, 110.0);
        let far = model.derated_throughput(nominal, Meters::new(500.0), 60.0, 110.0);
        assert!(near >= mid);
        assert!(mid >= far);
        assert_eq!(far.as_f64(), 0.0);
        assert!(near.as_f64() <= 200.0);
    }

    #[test]
    fn short_distances_clamp_to_reference() {
        let m = FreeSpacePathLoss::wifi_2_4ghz();
        assert_eq!(m.loss_db(Meters::new(0.1)), m.loss_db(Meters::new(1.0)));
        let ld = LogDistancePathLoss::new(m, Meters::new(1.0), 2.5);
        assert_eq!(ld.loss_db(Meters::new(0.5)), ld.loss_db(Meters::new(1.0)));
    }

    #[test]
    #[should_panic(expected = "carrier frequency must be positive")]
    fn zero_frequency_rejected() {
        let _ = FreeSpacePathLoss::new(0.0);
    }

    #[test]
    #[should_panic(expected = "ceiling must exceed floor")]
    fn bad_derating_bounds_rejected() {
        let m = FreeSpacePathLoss::wifi_5ghz();
        let _ = m.derated_throughput(MegaBitsPerSecond::new(10.0), Meters::new(5.0), 100.0, 90.0);
    }
}
