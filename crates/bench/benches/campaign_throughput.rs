//! Campaign-engine throughput: the same five-axis quick campaign executed
//! with 1 worker vs N workers. The engine's determinism contract means the
//! two configurations must produce bit-identical rows — asserted here before
//! any timing — so the bench measures pure scheduling gain. On multi-core
//! hosts the N-worker run should approach N× throughput; on a single core
//! the two configurations time alike (the sequential fast path avoids
//! thread overhead entirely).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xr_experiments::campaign::{quick_grid, run_campaign_with};
use xr_experiments::ExperimentContext;
use xr_sweep::CampaignRunner;

const PARALLEL_WORKERS: usize = 4;

fn campaign_throughput(c: &mut Criterion) {
    let ctx = ExperimentContext::quick(2024).expect("context");
    let grid = quick_grid();

    // Determinism gate: the parallel campaign must be bit-identical to the
    // sequential reference before its speed means anything.
    let sequential = run_campaign_with(&ctx, &grid, &CampaignRunner::new(1)).expect("campaign");
    let parallel =
        run_campaign_with(&ctx, &grid, &CampaignRunner::new(PARALLEL_WORKERS)).expect("campaign");
    assert_eq!(
        sequential, parallel,
        "parallel campaign diverged from the sequential reference"
    );

    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    group.bench_function("workers/1", |b| {
        let runner = CampaignRunner::new(1);
        b.iter(|| black_box(run_campaign_with(&ctx, &grid, &runner).expect("campaign")))
    });
    group.bench_function(format!("workers/{PARALLEL_WORKERS}"), |b| {
        let runner = CampaignRunner::new(PARALLEL_WORKERS);
        b.iter(|| black_box(run_campaign_with(&ctx, &grid, &runner).expect("campaign")))
    });
    group.finish();
}

criterion_group!(benches, campaign_throughput);
criterion_main!(benches);
