//! Sharded, checkpointed campaign execution.
//!
//! A campaign is embarrassingly partitionable (every replication seed is a
//! pure function of `(campaign_seed, point_index, rep_index)`), so `campaign
//! --shard i/N` evaluates only the points `p % N == i - 1` — with seeds
//! derived from the **original** grid indices — and streams its rows into
//! `campaign_shard_<i>of<N>.csv`. Each shard artifact travels with:
//!
//! - a *manifest* (`<csv>.manifest`): the campaign seed, the grid
//!   fingerprint, the grid size, the shard spec and the row count, so
//!   [`merge_campaign_csvs`] can refuse shards of different campaigns or an
//!   incomplete cover before interleaving the rows back into the canonical
//!   order — byte-identical to an unsharded `campaign.csv`;
//! - a *checkpoint* (`<csv>.checkpoint`): an append-only, fsync'd record of
//!   completed points, so a SIGKILL'd shard resumes at the last durable unit
//!   instead of restarting. Resume trusts only what both files agree on
//!   (`min(checkpoint records, complete CSV rows)`) and truncates each to
//!   that prefix, so torn tails on either side are re-evaluated, never
//!   merged.

use crate::campaign::{run_campaign_subset_streaming_with, CAMPAIGN_HEADER};
use crate::context::ExperimentContext;
use std::fs::OpenOptions;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use xr_sweep::{
    merge_shard_rows, CampaignRunner, CheckpointHeader, OperatingPoint, ShardCheckpoint,
    ShardManifest, ShardSpec, SweepGrid,
};
use xr_types::{Error, Result};

fn io_error(path: &Path, op: &str, error: &std::io::Error) -> Error {
    Error::InvalidConfiguration(format!(
        "shard artifact {}: {op} failed: {error}",
        path.display()
    ))
}

/// Canonical file name of one shard's CSV artifact.
#[must_use]
pub fn shard_csv_name(shard: ShardSpec) -> String {
    format!("campaign_shard_{}of{}.csv", shard.index(), shard.count())
}

/// The manifest path a shard CSV travels with (`<csv>.manifest`).
#[must_use]
pub fn manifest_path(csv_path: &Path) -> PathBuf {
    let mut name = csv_path.as_os_str().to_os_string();
    name.push(".manifest");
    PathBuf::from(name)
}

/// The checkpoint path a shard CSV resumes from (`<csv>.checkpoint`).
#[must_use]
pub fn checkpoint_path(csv_path: &Path) -> PathBuf {
    let mut name = csv_path.as_os_str().to_os_string();
    name.push(".checkpoint");
    PathBuf::from(name)
}

/// What one shard run did: the manifest it wrote plus how much work the
/// checkpoint let it skip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRunReport {
    /// The manifest written next to the CSV.
    pub manifest: ShardManifest,
    /// Rows already durable from a previous (interrupted) run.
    pub resumed_rows: usize,
    /// Rows evaluated by this run.
    pub evaluated_rows: usize,
    /// Where the shard CSV was written.
    pub csv_path: PathBuf,
}

/// Runs (or resumes) one shard of a campaign, streaming rows into
/// `csv_path` with a checkpoint fsync'd every `checkpoint_every` completed
/// points, and writes the manifest when the shard completes.
///
/// # Errors
///
/// Propagates grid, scenario, model and I/O errors; refuses stale
/// checkpoints and CSVs whose header does not match the campaign layout.
pub fn run_campaign_shard_with(
    ctx: &ExperimentContext,
    grid: &SweepGrid,
    runner: &CampaignRunner,
    shard: ShardSpec,
    csv_path: &Path,
    checkpoint_every: usize,
) -> Result<ShardRunReport> {
    run_campaign_shard_with_progress(ctx, grid, runner, shard, csv_path, checkpoint_every, false)
}

/// [`run_campaign_shard_with`] with optional progress reporting: when
/// `progress` is set, a `shard i/N: completed/total points` line goes to
/// **stderr** at every checkpoint boundary (the fsync cadence) and once when
/// the shard completes. Counts are shard-local; stdout and the CSV bytes
/// are untouched, so progress can be left on in scripted runs.
///
/// # Errors
///
/// Propagates grid, scenario, model and I/O errors; refuses stale
/// checkpoints and CSVs whose header does not match the campaign layout.
pub fn run_campaign_shard_with_progress(
    ctx: &ExperimentContext,
    grid: &SweepGrid,
    runner: &CampaignRunner,
    shard: ShardSpec,
    csv_path: &Path,
    checkpoint_every: usize,
    progress: bool,
) -> Result<ShardRunReport> {
    let points = grid.points()?;
    let total = points.len();
    let owned: Vec<(usize, OperatingPoint)> = shard
        .owned_indices(total)
        .map(|p| (p, points[p].clone()))
        .collect();
    let mut checkpoint = ShardCheckpoint::open(
        checkpoint_path(csv_path),
        CheckpointHeader {
            campaign_seed: ctx.seed(),
            grid_fingerprint: grid.fingerprint(),
            points: total,
            shard,
        },
        checkpoint_every,
    )?;

    let header_line = CAMPAIGN_HEADER.join(",");
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(csv_path)
        .map_err(|e| io_error(csv_path, "open", &e))?;
    let mut text = String::new();
    file.read_to_string(&mut text)
        .map_err(|e| io_error(csv_path, "read", &e))?;
    // A fresh CSV gets the header; an existing one must carry it verbatim
    // (anything else is a foreign artifact, not a resumable shard). Progress
    // is the complete-line prefix after the header — a torn last line from a
    // crash mid-write is not progress.
    let (complete_rows, mut row_ends) = if text.is_empty() {
        file.write_all(format!("{header_line}\n").as_bytes())
            .map_err(|e| io_error(csv_path, "write header", &e))?;
        (0usize, Vec::new())
    } else {
        let mut lines = text.split_inclusive('\n');
        let first = lines.next().unwrap_or("");
        if first.trim_end_matches('\n') != header_line || !first.ends_with('\n') {
            return Err(Error::invalid_parameter(
                "shard csv",
                format!(
                    "{} does not start with the campaign header — refusing to resume into a foreign file",
                    csv_path.display()
                ),
            ));
        }
        let mut offset = first.len() as u64;
        let mut ends = Vec::new();
        for line in lines {
            offset += line.len() as u64;
            if !line.ends_with('\n') {
                break;
            }
            ends.push(offset);
        }
        (ends.len(), ends)
    };

    // Trust only what checkpoint and CSV agree on; rewind both to it. The
    // checkpoint's records must be exactly the shard's owned prefix —
    // anything else means the file belongs to some other partition.
    let durable = checkpoint.completed().len().min(complete_rows);
    for (slot, &recorded) in checkpoint.completed()[..durable].iter().enumerate() {
        let expected = owned[slot].0;
        if recorded != expected {
            return Err(Error::invalid_parameter(
                "checkpoint",
                format!(
                    "stale checkpoint {}: record {slot} completed point {recorded} but shard {shard} owns point {expected} there — delete the file or rerun the original campaign",
                    checkpoint.path().display()
                ),
            ));
        }
    }
    checkpoint.truncate_to(durable)?;
    row_ends.truncate(durable);
    let keep_end = row_ends
        .last()
        .copied()
        .unwrap_or(header_line.len() as u64 + 1);
    file.set_len(keep_end)
        .map_err(|e| io_error(csv_path, "truncate", &e))?;
    file.seek(SeekFrom::End(0))
        .map_err(|e| io_error(csv_path, "seek", &e))?;

    // Stream the remaining owned points. The sink cannot return an error, so
    // the first I/O failure is parked and everything after it is dropped.
    let shard_total = owned.len();
    let mut reported = None;
    let mut report_progress = |completed: usize| {
        if progress && reported != Some(completed) {
            reported = Some(completed);
            eprintln!(
                "shard {}/{}: {completed}/{shard_total} points",
                shard.index(),
                shard.count()
            );
        }
    };
    let mut write_failure: Option<Error> = None;
    let mut line = String::new();
    run_campaign_subset_streaming_with(ctx, grid, runner, &owned[durable..], |index, row| {
        if write_failure.is_some() {
            return;
        }
        row.render_csv_into(&mut line);
        line.push('\n');
        // The row must be durable before the checkpoint says so — sharing
        // the checkpoint's fsync cadence keeps one knob, and gives progress
        // reporting its boundary.
        let at_boundary = (checkpoint.completed().len() + 1) % checkpoint.sync_every() == 0;
        let outcome = file
            .write_all(line.as_bytes())
            .map_err(|e| io_error(csv_path, "append", &e))
            .and_then(|()| {
                if at_boundary {
                    file.sync_data()
                        .map_err(|e| io_error(csv_path, "sync", &e))?;
                }
                checkpoint.record(index)
            });
        match outcome {
            Err(error) => write_failure = Some(error),
            Ok(()) if at_boundary => report_progress(checkpoint.completed().len()),
            Ok(()) => {}
        }
    })?;
    if let Some(error) = write_failure {
        return Err(error);
    }
    file.sync_data()
        .map_err(|e| io_error(csv_path, "sync", &e))?;
    checkpoint.sync()?;
    report_progress(checkpoint.completed().len());

    let manifest = ShardManifest::for_grid(grid, ctx.seed(), shard);
    let manifest_file = manifest_path(csv_path);
    std::fs::write(&manifest_file, manifest.render())
        .map_err(|e| io_error(&manifest_file, "write", &e))?;
    Ok(ShardRunReport {
        manifest,
        resumed_rows: durable,
        evaluated_rows: owned.len() - durable,
        csv_path: csv_path.to_path_buf(),
    })
}

/// Merges shard CSVs (each with its `<csv>.manifest` beside it) back into
/// the full campaign CSV **text**, byte-identical to an unsharded run:
/// header line plus the interleaved rows, one trailing newline each.
///
/// # Errors
///
/// Propagates I/O and manifest-parse errors, rejects CSVs whose header or
/// row count disagrees with their manifest, and applies every
/// [`merge_shard_rows`] cover check.
pub fn merge_campaign_csvs(csv_paths: &[PathBuf]) -> Result<String> {
    let header_line = CAMPAIGN_HEADER.join(",");
    let mut shards = Vec::with_capacity(csv_paths.len());
    for csv_path in csv_paths {
        let manifest_file = manifest_path(csv_path);
        let manifest_text = std::fs::read_to_string(&manifest_file)
            .map_err(|e| io_error(&manifest_file, "read", &e))?;
        let manifest = ShardManifest::parse(&manifest_text)?;
        let csv_text =
            std::fs::read_to_string(csv_path).map_err(|e| io_error(csv_path, "read", &e))?;
        let mut lines = csv_text.split_inclusive('\n');
        if lines.next().map(|l| l.trim_end_matches('\n')) != Some(header_line.as_str()) {
            return Err(Error::invalid_parameter(
                "shard merge",
                format!(
                    "{} does not start with the campaign header",
                    csv_path.display()
                ),
            ));
        }
        let mut rows = Vec::new();
        for line in lines {
            if !line.ends_with('\n') {
                return Err(Error::invalid_parameter(
                    "shard merge",
                    format!(
                        "{} ends with a torn row — the shard did not complete",
                        csv_path.display()
                    ),
                ));
            }
            rows.push(line.trim_end_matches('\n').to_string());
        }
        shards.push((manifest, rows));
    }
    let merged = merge_shard_rows(&shards)?;
    let mut out = String::with_capacity(
        header_line.len() + 1 + merged.iter().map(|r| r.len() + 1).sum::<usize>(),
    );
    out.push_str(&header_line);
    out.push('\n');
    for row in &merged {
        out.push_str(row);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign_with;
    use xr_sweep::parse_grid_spec;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xr-experiments-shard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn small_grid() -> SweepGrid {
        parse_grid_spec(
            "frame_sizes  = 300, 500\n\
             cpu_clocks   = 2.0\n\
             executions   = local, remote\n\
             mobility     = static, vehicle:25:10\n\
             replications = 2\n",
        )
        .unwrap()
    }

    fn unsharded_csv(ctx: &ExperimentContext, grid: &SweepGrid) -> String {
        let runner = CampaignRunner::new(2).with_campaign_seed(ctx.seed());
        let rows = run_campaign_with(ctx, grid, &runner).unwrap();
        let mut out = CAMPAIGN_HEADER.join(",");
        out.push('\n');
        for row in &rows {
            out.push_str(&row.cells().join(","));
            out.push('\n');
        }
        out
    }

    #[test]
    fn sharded_runs_merge_byte_identically() {
        let ctx = ExperimentContext::quick(23).unwrap();
        let grid = small_grid();
        let reference = unsharded_csv(&ctx, &grid);
        for count in [1usize, 3] {
            let paths: Vec<PathBuf> = (1..=count)
                .map(|i| {
                    let shard = ShardSpec::new(i, count).unwrap();
                    let path = scratch(&format!("merge-{}", shard_csv_name(shard)));
                    let _ = std::fs::remove_file(&path);
                    let _ = std::fs::remove_file(checkpoint_path(&path));
                    let runner = CampaignRunner::new(2).with_campaign_seed(ctx.seed());
                    let report =
                        run_campaign_shard_with(&ctx, &grid, &runner, shard, &path, 1).unwrap();
                    assert_eq!(report.resumed_rows, 0);
                    assert_eq!(report.evaluated_rows, shard.owned_len(grid.len()));
                    path
                })
                .collect();
            assert_eq!(
                merge_campaign_csvs(&paths).unwrap(),
                reference,
                "{count} shards"
            );
        }
    }

    #[test]
    fn interrupted_shards_resume_to_identical_bytes() {
        let ctx = ExperimentContext::quick(29).unwrap();
        let grid = small_grid();
        let shard = ShardSpec::new(1, 2).unwrap();
        let runner = CampaignRunner::new(2).with_campaign_seed(ctx.seed());
        let path = scratch("resume.csv");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(checkpoint_path(&path));
        run_campaign_shard_with(&ctx, &grid, &runner, shard, &path, 1).unwrap();
        let full_csv = std::fs::read(&path).unwrap();
        let full_ckpt = std::fs::read(checkpoint_path(&path)).unwrap();

        // Simulate a SIGKILL after two rows: rewind both artifacts to a
        // two-row prefix, plus a torn third row in the CSV.
        let row_end = |data: &[u8], n: usize| {
            let mut seen = 0;
            data.iter()
                .position(|&b| {
                    if b == b'\n' {
                        seen += 1;
                    }
                    seen == n + 1
                })
                .unwrap()
                + 1
        };
        let cut = row_end(&full_csv, 2);
        std::fs::write(&path, &full_csv[..cut + 9]).unwrap(); // torn 3rd row
        let ckpt_cut = full_ckpt
            .windows(5)
            .position(|w| w == b"done ")
            .map(|start| {
                let mut seen = 0;
                full_ckpt[start..]
                    .iter()
                    .position(|&b| {
                        if b == b'\n' {
                            seen += 1;
                        }
                        seen == 2
                    })
                    .unwrap()
                    + start
                    + 1
            })
            .unwrap();
        std::fs::write(checkpoint_path(&path), &full_ckpt[..ckpt_cut]).unwrap();

        let report = run_campaign_shard_with(&ctx, &grid, &runner, shard, &path, 1).unwrap();
        assert_eq!(report.resumed_rows, 2);
        assert_eq!(report.evaluated_rows, shard.owned_len(grid.len()) - 2);
        assert_eq!(std::fs::read(&path).unwrap(), full_csv);
        assert_eq!(std::fs::read(checkpoint_path(&path)).unwrap(), full_ckpt);
    }

    #[test]
    fn progress_and_fusion_leave_the_artifact_bytes_alone() {
        let ctx = ExperimentContext::quick(37).unwrap();
        let grid = small_grid();
        let runner = CampaignRunner::new(2).with_campaign_seed(ctx.seed());
        let shard = ShardSpec::new(2, 3).unwrap();
        let plain = scratch("progress_plain.csv");
        let noisy = scratch("progress_noisy.csv");
        let fused = scratch("progress_fused.csv");
        for path in [&plain, &noisy, &fused] {
            let _ = std::fs::remove_file(path);
            let _ = std::fs::remove_file(checkpoint_path(path));
            let _ = std::fs::remove_file(manifest_path(path));
        }
        run_campaign_shard_with(&ctx, &grid, &runner, shard, &plain, 1).unwrap();
        // Progress lines go to stderr only; a different checkpoint cadence
        // moves the report boundaries but never the artifact.
        run_campaign_shard_with_progress(&ctx, &grid, &runner, shard, &noisy, 2, true).unwrap();
        // The fused point engine must produce the same shard bytes as the
        // per-rep path.
        let fused_ctx = ctx.clone().with_fused_points();
        run_campaign_shard_with_progress(&fused_ctx, &grid, &runner, shard, &fused, 1, true)
            .unwrap();
        let reference = std::fs::read(&plain).unwrap();
        assert_eq!(std::fs::read(&noisy).unwrap(), reference);
        assert_eq!(std::fs::read(&fused).unwrap(), reference);
    }

    #[test]
    fn foreign_artifacts_are_refused() {
        let ctx = ExperimentContext::quick(31).unwrap();
        let grid = small_grid();
        let runner = CampaignRunner::new(1).with_campaign_seed(ctx.seed());
        let shard = ShardSpec::new(1, 2).unwrap();
        let path = scratch("foreign.csv");
        let _ = std::fs::remove_file(checkpoint_path(&path));
        std::fs::write(&path, "not,a,campaign\n1,2,3\n").unwrap();
        let err = run_campaign_shard_with(&ctx, &grid, &runner, shard, &path, 1)
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("does not start with the campaign header"),
            "{err}"
        );
    }

    #[test]
    fn artifact_paths_derive_from_the_csv() {
        let shard = ShardSpec::new(2, 4).unwrap();
        assert_eq!(shard_csv_name(shard), "campaign_shard_2of4.csv");
        let csv = Path::new("target/experiments/campaign_shard_2of4.csv");
        assert_eq!(
            manifest_path(csv),
            Path::new("target/experiments/campaign_shard_2of4.csv.manifest")
        );
        assert_eq!(
            checkpoint_path(csv),
            Path::new("target/experiments/campaign_shard_2of4.csv.checkpoint")
        );
    }
}
