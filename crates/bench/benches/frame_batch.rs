//! Frame-simulation throughput: the scalar frame-by-frame reference
//! pipeline versus the batched structure-of-arrays engine, over the three
//! scenario shapes campaigns sweep most (local compute-bound, remote
//! edge-assisted, remote with a mobile device).
//!
//! The two engines are bit-identical by contract — asserted here before any
//! timing, so the speedup measures pure engine overhead, not divergent
//! work. Measured numbers are recorded in `BENCH_frame_batch.json` at the
//! repository root; the acceptance bar for the batched engine is ≥ 1.5×
//! scalar throughput on every scenario shape.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use xr_core::{MobilityConfig, Scenario};
use xr_testbed::TestbedSimulator;
use xr_types::{ExecutionTarget, GigaHertz, Meters, MetersPerSecond};
use xr_wireless::HandoffKind;

const FRAMES: u64 = 512;

fn scenarios() -> Vec<(&'static str, Scenario)> {
    let base = |execution| {
        Scenario::builder()
            .frame_side(500.0)
            .cpu_clock(GigaHertz::new(2.0))
            .execution(execution)
    };
    vec![
        ("local", base(ExecutionTarget::Local).build().unwrap()),
        ("remote", base(ExecutionTarget::Remote).build().unwrap()),
        (
            "mobile",
            base(ExecutionTarget::Remote)
                .mobility(MobilityConfig {
                    speed: MetersPerSecond::new(25.0),
                    coverage_radius: Meters::new(10.0),
                    handoff_kind: HandoffKind::Vertical,
                })
                .build()
                .unwrap(),
        ),
    ]
}

fn frame_batch_throughput(c: &mut Criterion) {
    let testbed = TestbedSimulator::new(2024);

    // Bit-identity gate: a faster engine that drifts is not a speedup.
    // CI smoke-runs this bench with XR_BENCH_SAMPLE_SIZE=2 precisely for
    // this block — the lane-oriented draw layer must replay the scalar
    // streams bit for bit on the CI host before any timing happens.
    for (label, scenario) in &scenarios() {
        let scalar = testbed.simulate_session_scalar(scenario, FRAMES).unwrap();
        for width in [1, 7, 64, 256, 512] {
            let batched = testbed
                .simulate_session_batched(scenario, FRAMES, width)
                .unwrap();
            assert_eq!(
                batched, scalar,
                "{label}: batched(width {width}) diverged from the scalar reference"
            );
        }
    }

    let mut group = c.benchmark_group("frame_batch");
    group.sample_size(20);
    for (label, scenario) in &scenarios() {
        group.bench_with_input(
            BenchmarkId::new("scalar", label),
            scenario,
            |b, scenario| {
                b.iter(|| black_box(testbed.simulate_session_scalar(scenario, FRAMES).unwrap()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched", label),
            scenario,
            |b, scenario| b.iter(|| black_box(testbed.simulate_session(scenario, FRAMES).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, frame_batch_throughput);
criterion_main!(benches);
