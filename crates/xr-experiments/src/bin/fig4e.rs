//! Fig. 4(e): AoI over time for sensors at 200/100/66.67 Hz, GT vs model.

use xr_experiments::aoi_experiments::aoi_over_time;
use xr_experiments::{output, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::from_args();
    let sweep = aoi_over_time(&ctx).expect("AoI experiment failed");
    output::print_experiment(
        "Fig. 4(e) — AoI over time at different information-generation frequencies (ms)",
        &["freq_hz", "time_ms", "gt_aoi_ms", "proposed_aoi_ms"],
        &sweep.rows(),
        "fig4e.csv",
    );
    println!(
        "mean absolute error across all series: {:.2} ms",
        sweep.mean_absolute_error_ms()
    );
}
