//! Seeded train/test dataset splitting.
//!
//! The paper trains its regression models on data from devices XR1, XR3, XR5
//! and XR6 (119 465 samples) and evaluates on XR2, XR4 and XR7 (36 083
//! samples). The testbed simulator follows the same device-held-out protocol;
//! [`TrainTestSplit`] additionally offers a plain random split for ablation
//! studies.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use xr_types::{Error, Result};

/// The result of splitting a labelled dataset into train and test portions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainTestSplit {
    /// Training feature rows.
    pub train_x: Vec<Vec<f64>>,
    /// Training targets.
    pub train_y: Vec<f64>,
    /// Test feature rows.
    pub test_x: Vec<Vec<f64>>,
    /// Test targets.
    pub test_y: Vec<f64>,
}

impl TrainTestSplit {
    /// Splits `(xs, ys)` randomly with the given training fraction and seed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the inputs are empty, have
    /// mismatched lengths, if `train_fraction` is outside `(0, 1)`, or if the
    /// split would leave either side empty.
    pub fn random(xs: &[Vec<f64>], ys: &[f64], train_fraction: f64, seed: u64) -> Result<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(Error::invalid_parameter(
                "xs/ys",
                "must be non-empty and of equal length",
            ));
        }
        if !(0.0..1.0).contains(&train_fraction) || train_fraction == 0.0 {
            return Err(Error::invalid_parameter(
                "train_fraction",
                "must lie strictly between 0 and 1",
            ));
        }
        let mut indices: Vec<usize> = (0..xs.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        let n_train = ((xs.len() as f64) * train_fraction).round() as usize;
        if n_train == 0 || n_train == xs.len() {
            return Err(Error::invalid_parameter(
                "train_fraction",
                "split leaves one side empty",
            ));
        }
        let (train_idx, test_idx) = indices.split_at(n_train);
        Ok(Self {
            train_x: train_idx.iter().map(|&i| xs[i].clone()).collect(),
            train_y: train_idx.iter().map(|&i| ys[i]).collect(),
            test_x: test_idx.iter().map(|&i| xs[i].clone()).collect(),
            test_y: test_idx.iter().map(|&i| ys[i]).collect(),
        })
    }

    /// Splits by group label: rows whose label is in `train_groups` become
    /// training data, everything else becomes test data. This mirrors the
    /// paper's device-held-out protocol (train on XR1/XR3/XR5/XR6, test on
    /// XR2/XR4/XR7).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if lengths mismatch or either side
    /// of the split ends up empty.
    pub fn by_group(
        xs: &[Vec<f64>],
        ys: &[f64],
        groups: &[u64],
        train_groups: &[u64],
    ) -> Result<Self> {
        if xs.len() != ys.len() || xs.len() != groups.len() || xs.is_empty() {
            return Err(Error::invalid_parameter(
                "xs/ys/groups",
                "must be non-empty and of equal length",
            ));
        }
        let mut split = Self {
            train_x: Vec::new(),
            train_y: Vec::new(),
            test_x: Vec::new(),
            test_y: Vec::new(),
        };
        for ((x, y), g) in xs.iter().zip(ys).zip(groups) {
            if train_groups.contains(g) {
                split.train_x.push(x.clone());
                split.train_y.push(*y);
            } else {
                split.test_x.push(x.clone());
                split.test_y.push(*y);
            }
        }
        if split.train_x.is_empty() || split.test_x.is_empty() {
            return Err(Error::invalid_parameter(
                "train_groups",
                "split leaves one side empty",
            ));
        }
        Ok(split)
    }

    /// Number of training rows.
    #[must_use]
    pub fn train_len(&self) -> usize {
        self.train_x.len()
    }

    /// Number of test rows.
    #[must_use]
    pub fn test_len(&self) -> usize {
        self.test_x.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..n).map(|i| i as f64 * 2.0).collect();
        (xs, ys)
    }

    #[test]
    fn random_split_partitions_all_rows() {
        let (xs, ys) = dataset(100);
        let split = TrainTestSplit::random(&xs, &ys, 0.8, 42).unwrap();
        assert_eq!(split.train_len(), 80);
        assert_eq!(split.test_len(), 20);
        assert_eq!(split.train_len() + split.test_len(), 100);
        // No row lost: the union of targets matches the original multiset.
        let mut all: Vec<f64> = split.train_y.iter().chain(&split.test_y).copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut orig = ys.clone();
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, orig);
    }

    #[test]
    fn random_split_is_deterministic_per_seed() {
        let (xs, ys) = dataset(50);
        let a = TrainTestSplit::random(&xs, &ys, 0.7, 7).unwrap();
        let b = TrainTestSplit::random(&xs, &ys, 0.7, 7).unwrap();
        let c = TrainTestSplit::random(&xs, &ys, 0.7, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn group_split_mirrors_device_protocol() {
        let (xs, ys) = dataset(10);
        // Devices 1..=7 cycling; train on {1, 3, 5, 6} like the paper.
        let groups: Vec<u64> = (0..10).map(|i| (i % 7) + 1).collect();
        let split = TrainTestSplit::by_group(&xs, &ys, &groups, &[1, 3, 5, 6]).unwrap();
        assert_eq!(split.train_len() + split.test_len(), 10);
        assert!(split.train_len() > 0 && split.test_len() > 0);
    }

    #[test]
    fn invalid_fractions_rejected() {
        let (xs, ys) = dataset(10);
        assert!(TrainTestSplit::random(&xs, &ys, 0.0, 1).is_err());
        assert!(TrainTestSplit::random(&xs, &ys, 1.0, 1).is_err());
        assert!(TrainTestSplit::random(&xs, &ys, 0.01, 1).is_err());
        assert!(TrainTestSplit::random(&[], &[], 0.5, 1).is_err());
    }

    #[test]
    fn degenerate_group_split_rejected() {
        let (xs, ys) = dataset(4);
        let groups = vec![1, 1, 1, 1];
        assert!(TrainTestSplit::by_group(&xs, &ys, &groups, &[1]).is_err());
        assert!(TrainTestSplit::by_group(&xs, &ys, &groups, &[2]).is_err());
        assert!(TrainTestSplit::by_group(&xs, &ys, &[1, 2], &[1]).is_err());
    }
}
