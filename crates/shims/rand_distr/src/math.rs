//! Vectorizable polynomial transcendental kernels for the draw layer.
//!
//! `std`'s `ln`/`exp`/`cos` call the platform libm: accurate, but scalar,
//! opaque, and host-dependent. The batched frame engine needs columns of
//! Box–Muller and inversion transforms whose results are **reproducible bit
//! for bit** on every host and engine, which rules the libm out of the hot
//! path. This module provides fdlibm-derived polynomial kernels with two
//! interchangeable implementations:
//!
//! * portable scalar kernels ([`ln`], [`exp`], [`sincos`]) built only from
//!   IEEE-754 single-rounding primitives (`+ - * / sqrt`) and exact
//!   integer bit manipulation, and
//! * 4-wide AVX2 passes (in the crate's `column` module) that execute the
//!   **same operation DAG per lane** with the vector forms of those same
//!   primitives.
//!
//! Because every floating-point operation used is exactly rounded and
//! identical on both sides — there is deliberately **no FMA** anywhere, no
//! approximate reciprocal/rsqrt instructions, and every selection
//! (quadrant, exponent) is integer-exact — the AVX2 and portable paths
//! produce identical bits, not approximately-equal values. Proptests and a
//! CI run with `XR_FORCE_PORTABLE=1` pin that equivalence.
//!
//! # Domains and accuracy
//!
//! The kernels cover exactly the ranges the samplers feed them and are
//! unspecified outside (no NaN/inf/subnormal handling — callers clamp):
//!
//! * [`ln`]: positive normal finite `x` (the Box–Muller `u1` is clamped to
//!   `f64::MIN_POSITIVE`, and `1 - u ∈ (0, 1]` for inversion sampling).
//!   General-path fdlibm `e_log`, observed ≤ 1 ulp from `std::f64::ln`.
//! * [`exp`]: `|x| ≤ 700` (noise factors are `exp(σ·z)` with tiny σ; the
//!   widest test distributions stay within ±25). fdlibm `e_exp` with a
//!   round-to-even argument reduction, observed ≤ 1 ulp from `std`.
//! * [`sincos`]: `θ ∈ [0, 2π]` (the Box–Muller angle is `TAU · u2`).
//!   Three-term Cody–Waite reduction by `π/2` plus the fdlibm `k_sin` /
//!   `k_cos` polynomials. Near the quadrant boundaries the truncated
//!   reduction leaves an absolute error up to ~`1.2e-16`, so the
//!   documented bound is `≤ 2 ulp` **or** `≤ 2.5e-16` absolute, whichever
//!   is looser — far below the measurement noise the draws model.
//!
//! `XR_FORCE_PORTABLE=1` (any value but `0`) disables every AVX2 dispatch
//! in this crate so CI can exercise the portable kernels on AVX2 hosts;
//! because the two paths are bit-identical, the knob never changes results.

/// `true` when `XR_FORCE_PORTABLE` is set (to anything but `0`): every
/// runtime AVX2 dispatch in this crate then takes the portable path. The
/// variable is read once per process.
#[must_use]
pub fn force_portable() -> bool {
    static FORCE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCE.get_or_init(|| std::env::var_os("XR_FORCE_PORTABLE").is_some_and(|v| v != *"0"))
}

// ---------------------------------------------------------------------------
// Shared constants (given as exact bit patterns; the decimal comments are
// the fdlibm names). LN2_HI and PIO2_1..3 are truncated so that small
// integer multiples are exact products.
// ---------------------------------------------------------------------------

/// ln2_hi = 6.93147180369123816490e-01, 20 trailing zero bits.
const LN2_HI: f64 = f64::from_bits(0x3FE6_2E42_FEE0_0000);
/// ln2_lo = 1.90821492927058770002e-10.
const LN2_LO: f64 = f64::from_bits(0x3DEA_39EF_3579_3C76);
/// 1/ln2 = 1.44269504088896338700e+00.
const INV_LN2: f64 = f64::from_bits(0x3FF7_1547_652B_82FE);
/// 2/π = 6.36619772367581382433e-01.
const INV_PIO2: f64 = f64::from_bits(0x3FE4_5F30_6DC9_C883);
/// First 33 bits of π/2: 1.57079632673412561417e+00.
const PIO2_1: f64 = f64::from_bits(0x3FF9_21FB_5440_0000);
/// Next 33 bits of π/2: 6.07710050630396597660e-11.
const PIO2_2: f64 = f64::from_bits(0x3DD0_B461_1A60_0000);
/// Next 33 bits of π/2: 2.02226624871116645580e-21.
const PIO2_3: f64 = f64::from_bits(0x3BA3_198A_2E00_0000);
/// 1.5·2^52: adding this to a double of magnitude < 2^51 leaves the
/// nearest integer (ties to even) in the mantissa — the branch-free
/// round-to-even both kernel paths share.
const MAGIC: f64 = f64::from_bits(0x4338_0000_0000_0000);

/// fdlibm `e_log` polynomial coefficients Lg1..Lg7.
const LG: [f64; 7] = [
    f64::from_bits(0x3FE5_5555_5555_5593), // 6.666666666666735130e-01
    f64::from_bits(0x3FD9_9999_9997_FA04), // 3.999999999940941908e-01
    f64::from_bits(0x3FD2_4924_9422_9359), // 2.857142874366239149e-01
    f64::from_bits(0x3FCC_71C5_1D8E_78AF), // 2.222219843214978396e-01
    f64::from_bits(0x3FC7_4664_96CB_03DE), // 1.818357216161805012e-01
    f64::from_bits(0x3FC3_9A09_D078_C69F), // 1.531383769920937332e-01
    f64::from_bits(0x3FC2_F112_DF3E_5244), // 1.479819860511658591e-01
];

/// fdlibm `e_exp` polynomial coefficients P1..P5.
const P: [f64; 5] = [
    f64::from_bits(0x3FC5_5555_5555_553E), // 1.66666666666666019037e-01
    f64::from_bits(0xBF66_C16C_16BE_BD93), // -2.77777777770155933842e-03
    f64::from_bits(0x3F11_566A_AF25_DE2C), // 6.61375632143793436117e-05
    f64::from_bits(0xBEBB_BD41_C5D2_6BF1), // -1.65339022054652515390e-06
    f64::from_bits(0x3E66_3769_72BE_A4D0), // 4.13813679705723846039e-08
];

/// fdlibm `k_sin` polynomial coefficients S1..S6.
const S: [f64; 6] = [
    f64::from_bits(0xBFC5_5555_5555_5549), // -1.66666666666666324348e-01
    f64::from_bits(0x3F81_1111_1110_F8A6), // 8.33333333332248946124e-03
    f64::from_bits(0xBF2A_01A0_19C1_61D5), // -1.98412698298579493134e-04
    f64::from_bits(0x3EC7_1DE3_57B1_FE7D), // 2.75573137070700676789e-06
    f64::from_bits(0xBE5A_E5E6_8A2B_9CEB), // -2.50507602534068634195e-08
    f64::from_bits(0x3DE5_D93A_5ACF_D57C), // 1.58969099521155010221e-10
];

/// fdlibm `k_cos` polynomial coefficients C1..C6.
const C: [f64; 6] = [
    f64::from_bits(0x3FA5_5555_5555_554C), // 4.16666666666666019037e-02
    f64::from_bits(0xBF56_C16C_16C1_5177), // -1.38888888888741095749e-03
    f64::from_bits(0x3EFA_01A0_19CB_1590), // 2.48015872894767294178e-05
    f64::from_bits(0xBE92_7E4F_809C_52AD), // -2.75573143513906633035e-07
    f64::from_bits(0x3E21_EE9E_BDB4_B1C4), // 2.08757232129817482790e-09
    f64::from_bits(0xBDA8_FAE9_BE88_38D4), // -1.13596475577881948265e-11
];

/// The fdlibm mantissa re-centering offset: adding `0x95F62 << 32` to the
/// raw bits shifts the implicit binade split point from 1.0 to √2/2, so
/// the extracted mantissa lands in `[√2/2, √2)` where the log polynomial
/// converges fastest.
const LOG_RECENTER: u64 = 0x0009_5F62_0000_0000;
/// Exponent/mantissa split of an IEEE-754 double.
const MANT_MASK: u64 = 0x000F_FFFF_FFFF_FFFF;
/// High bits of √2/2, added (not OR-ed — the mantissa carry is the trick)
/// to re-center the extracted mantissa.
const SQRT2_OVER_2_HI: u64 = 0x3FE6_A09E_0000_0000;

// ---------------------------------------------------------------------------
// Portable scalar kernels. Each is written as the exact op DAG the AVX2
// lanes replay; keep any edit mirrored in `column::avx2`.
// ---------------------------------------------------------------------------

/// Natural log of a positive normal finite `x` (fdlibm `e_log`, general
/// path). See the module docs for domain and accuracy.
#[must_use]
#[inline]
pub fn ln(x: f64) -> f64 {
    let bits = x.to_bits().wrapping_add(LOG_RECENTER);
    let k = ((bits >> 52) as i64) - 1023;
    let m = f64::from_bits((bits & MANT_MASK).wrapping_add(SQRT2_OVER_2_HI));
    let f = m - 1.0;
    let hfsq = 0.5 * f * f;
    let s = f / (2.0 + f);
    let z = s * s;
    let w = z * z;
    let t1 = w * (LG[1] + w * (LG[3] + w * LG[5]));
    let t2 = z * (LG[0] + w * (LG[2] + w * (LG[4] + w * LG[6])));
    let r = t2 + t1;
    let dk = k as f64;
    dk * LN2_HI - ((hfsq - (s * (hfsq + r) + dk * LN2_LO)) - f)
}

/// `e^x` for `|x| ≤ 700` (fdlibm `e_exp` with round-to-even reduction).
/// See the module docs for domain and accuracy.
#[must_use]
#[inline]
pub fn exp(x: f64) -> f64 {
    let t = x * INV_LN2 + MAGIC;
    let k = (t.to_bits() as i64).wrapping_sub(MAGIC.to_bits() as i64);
    let kf = t - MAGIC;
    let hi = x - kf * LN2_HI;
    let lo = kf * LN2_LO;
    let r = hi - lo;
    let rr = r * r;
    let c = r - rr * (P[0] + rr * (P[1] + rr * (P[2] + rr * (P[3] + rr * P[4]))));
    let y = 1.0 - ((lo - (r * c) / (2.0 - c)) - hi);
    // Exact 2^k scaling: k ∈ [-1010, 1010] on the documented domain and
    // y ∈ [~0.69, ~1.42], so the exponent-field add cannot over/underflow.
    f64::from_bits(y.to_bits().wrapping_add((k as u64) << 52))
}

/// `(sin θ, cos θ)` for `θ ∈ [0, 2π]` — one reduction and two polynomials,
/// so the Box–Muller pair costs barely more than its first variate. See
/// the module docs for domain and accuracy.
#[must_use]
#[inline]
pub fn sincos(theta: f64) -> (f64, f64) {
    let t = theta * INV_PIO2 + MAGIC;
    let n = (t.to_bits() as i64).wrapping_sub(MAGIC.to_bits() as i64);
    let nf = t - MAGIC;
    // Cody–Waite: the first subtraction is Sterbenz-exact on this domain,
    // the next two round once each.
    let r = ((theta - nf * PIO2_1) - nf * PIO2_2) - nf * PIO2_3;
    let z = r * r;
    let v = z * r;
    let sp = S[1] + z * (S[2] + z * (S[3] + z * (S[4] + z * S[5])));
    let sin_r = r + v * (S[0] + z * sp);
    let cp = z * (C[0] + z * (C[1] + z * (C[2] + z * (C[3] + z * (C[4] + z * C[5])))));
    let hz = 0.5 * z;
    let w = 1.0 - hz;
    let cos_r = w + ((1.0 - w - hz) + z * cp);
    // Quadrant rotation: an exact selection/sign flip, so branching here
    // is safe for bit-identity (the AVX2 lanes blend with the same masks).
    match n & 3 {
        0 => (sin_r, cos_r),
        1 => (cos_r, -sin_r),
        2 => (-sin_r, -cos_r),
        _ => (-cos_r, sin_r),
    }
}

/// The 4-wide AVX2 forms of the scalar kernels. Each function replays its
/// scalar counterpart's operation DAG with the vector forms of the same
/// single-rounding primitives, so lanes are bit-identical to scalar calls;
/// integer work (exponent extraction, round-to-even bit subtract, quadrant
/// selection) uses exact 64-bit SIMD integer ops.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub(crate) mod avx2 {
    use super::{
        C, INV_LN2, INV_PIO2, LG, LN2_HI, LN2_LO, LOG_RECENTER, MAGIC, MANT_MASK, P, PIO2_1,
        PIO2_2, PIO2_3, S, SQRT2_OVER_2_HI,
    };
    use core::arch::x86_64::{
        __m256d, _mm256_add_epi64, _mm256_add_pd, _mm256_and_pd, _mm256_and_si256,
        _mm256_blendv_pd, _mm256_castpd_si256, _mm256_castsi256_pd, _mm256_cmpeq_epi64,
        _mm256_div_pd, _mm256_mul_pd, _mm256_or_si256, _mm256_set1_epi64x, _mm256_set1_pd,
        _mm256_slli_epi64, _mm256_srli_epi64, _mm256_sub_epi64, _mm256_sub_pd, _mm256_xor_pd,
    };

    /// `2^52 + 1075`, exactly representable; subtracting it undoes the
    /// exponent-bias trick in [`small_i64_to_f64`].
    const I64_BIAS: f64 = ((1u64 << 52) + 1075) as f64;

    /// Exact conversion of per-lane small integers (here `k + 1075`, always
    /// in `[53, 2100)`) to doubles: OR the value into the mantissa of
    /// `2^52`, reinterpret, subtract the bias. Every step is exact, so this
    /// equals the scalar `k as f64`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn small_i64_to_f64(k_plus_1075: core::arch::x86_64::__m256i) -> __m256d {
        let biased = _mm256_or_si256(k_plus_1075, _mm256_set1_epi64x(0x4330_0000_0000_0000));
        _mm256_sub_pd(_mm256_castsi256_pd(biased), _mm256_set1_pd(I64_BIAS))
    }

    /// Vector form of [`super::ln`]: same recentered exponent split, same
    /// polynomial, same summation order per lane.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub(crate) fn ln4(x: __m256d) -> __m256d {
        let bits = _mm256_add_epi64(
            _mm256_castpd_si256(x),
            _mm256_set1_epi64x(LOG_RECENTER as i64),
        );
        // Positive normal inputs keep the (biased-exponent) field below
        // 0x7FF after recentering, so a logical shift extracts it exactly.
        let k_plus_1075 = _mm256_add_epi64(_mm256_srli_epi64::<52>(bits), _mm256_set1_epi64x(52));
        let dk = small_i64_to_f64(k_plus_1075);
        let m = _mm256_castsi256_pd(_mm256_add_epi64(
            _mm256_and_si256(bits, _mm256_set1_epi64x(MANT_MASK as i64)),
            _mm256_set1_epi64x(SQRT2_OVER_2_HI as i64),
        ));
        let f = _mm256_sub_pd(m, _mm256_set1_pd(1.0));
        let hfsq = _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(0.5), f), f);
        let s = _mm256_div_pd(f, _mm256_add_pd(_mm256_set1_pd(2.0), f));
        let z = _mm256_mul_pd(s, s);
        let w = _mm256_mul_pd(z, z);
        let lg = |i: usize| _mm256_set1_pd(LG[i]);
        let t1 = _mm256_mul_pd(
            w,
            _mm256_add_pd(
                lg(1),
                _mm256_mul_pd(w, _mm256_add_pd(lg(3), _mm256_mul_pd(w, lg(5)))),
            ),
        );
        let t2 = _mm256_mul_pd(
            z,
            _mm256_add_pd(
                lg(0),
                _mm256_mul_pd(
                    w,
                    _mm256_add_pd(
                        lg(2),
                        _mm256_mul_pd(w, _mm256_add_pd(lg(4), _mm256_mul_pd(w, lg(6)))),
                    ),
                ),
            ),
        );
        let r = _mm256_add_pd(t2, t1);
        // dk*LN2_HI - ((hfsq - (s*(hfsq+r) + dk*LN2_LO)) - f)
        let inner = _mm256_sub_pd(
            _mm256_sub_pd(
                hfsq,
                _mm256_add_pd(
                    _mm256_mul_pd(s, _mm256_add_pd(hfsq, r)),
                    _mm256_mul_pd(dk, _mm256_set1_pd(LN2_LO)),
                ),
            ),
            f,
        );
        _mm256_sub_pd(_mm256_mul_pd(dk, _mm256_set1_pd(LN2_HI)), inner)
    }

    /// Vector form of [`super::exp`]: same round-to-even bit subtract, same
    /// Cody–Waite reduction and polynomial, same exact `2^k` exponent add.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub(crate) fn exp4(x: __m256d) -> __m256d {
        let magic = _mm256_set1_pd(MAGIC);
        let t = _mm256_add_pd(_mm256_mul_pd(x, _mm256_set1_pd(INV_LN2)), magic);
        let k = _mm256_sub_epi64(
            _mm256_castpd_si256(t),
            _mm256_set1_epi64x(MAGIC.to_bits() as i64),
        );
        let kf = _mm256_sub_pd(t, magic);
        let hi = _mm256_sub_pd(x, _mm256_mul_pd(kf, _mm256_set1_pd(LN2_HI)));
        let lo = _mm256_mul_pd(kf, _mm256_set1_pd(LN2_LO));
        let r = _mm256_sub_pd(hi, lo);
        let rr = _mm256_mul_pd(r, r);
        let p = |i: usize| _mm256_set1_pd(P[i]);
        let poly = _mm256_add_pd(
            p(0),
            _mm256_mul_pd(
                rr,
                _mm256_add_pd(
                    p(1),
                    _mm256_mul_pd(
                        rr,
                        _mm256_add_pd(
                            p(2),
                            _mm256_mul_pd(rr, _mm256_add_pd(p(3), _mm256_mul_pd(rr, p(4)))),
                        ),
                    ),
                ),
            ),
        );
        let c = _mm256_sub_pd(r, _mm256_mul_pd(rr, poly));
        let one = _mm256_set1_pd(1.0);
        let y = _mm256_sub_pd(
            one,
            _mm256_sub_pd(
                _mm256_sub_pd(
                    lo,
                    _mm256_div_pd(_mm256_mul_pd(r, c), _mm256_sub_pd(_mm256_set1_pd(2.0), c)),
                ),
                hi,
            ),
        );
        _mm256_castsi256_pd(_mm256_add_epi64(
            _mm256_castpd_si256(y),
            _mm256_slli_epi64::<52>(k),
        ))
    }

    /// Vector form of [`super::sincos`]: same reduction and polynomials;
    /// the quadrant `match` becomes an exact blend plus sign-bit XORs
    /// (negation is a sign flip in both paths, so lanes stay identical).
    #[inline]
    #[target_feature(enable = "avx2")]
    pub(crate) fn sincos4(theta: __m256d) -> (__m256d, __m256d) {
        let magic = _mm256_set1_pd(MAGIC);
        let t = _mm256_add_pd(_mm256_mul_pd(theta, _mm256_set1_pd(INV_PIO2)), magic);
        let n = _mm256_sub_epi64(
            _mm256_castpd_si256(t),
            _mm256_set1_epi64x(MAGIC.to_bits() as i64),
        );
        let nf = _mm256_sub_pd(t, magic);
        let r = _mm256_sub_pd(
            _mm256_sub_pd(
                _mm256_sub_pd(theta, _mm256_mul_pd(nf, _mm256_set1_pd(PIO2_1))),
                _mm256_mul_pd(nf, _mm256_set1_pd(PIO2_2)),
            ),
            _mm256_mul_pd(nf, _mm256_set1_pd(PIO2_3)),
        );
        let z = _mm256_mul_pd(r, r);
        let v = _mm256_mul_pd(z, r);
        let s = |i: usize| _mm256_set1_pd(S[i]);
        let sp = _mm256_add_pd(
            s(1),
            _mm256_mul_pd(
                z,
                _mm256_add_pd(
                    s(2),
                    _mm256_mul_pd(
                        z,
                        _mm256_add_pd(
                            s(3),
                            _mm256_mul_pd(z, _mm256_add_pd(s(4), _mm256_mul_pd(z, s(5)))),
                        ),
                    ),
                ),
            ),
        );
        let sin_r = _mm256_add_pd(
            r,
            _mm256_mul_pd(v, _mm256_add_pd(s(0), _mm256_mul_pd(z, sp))),
        );
        let c = |i: usize| _mm256_set1_pd(C[i]);
        let cp = _mm256_mul_pd(
            z,
            _mm256_add_pd(
                c(0),
                _mm256_mul_pd(
                    z,
                    _mm256_add_pd(
                        c(1),
                        _mm256_mul_pd(
                            z,
                            _mm256_add_pd(
                                c(2),
                                _mm256_mul_pd(
                                    z,
                                    _mm256_add_pd(
                                        c(3),
                                        _mm256_mul_pd(
                                            z,
                                            _mm256_add_pd(c(4), _mm256_mul_pd(z, c(5))),
                                        ),
                                    ),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        );
        let one = _mm256_set1_pd(1.0);
        let hz = _mm256_mul_pd(_mm256_set1_pd(0.5), z);
        let w = _mm256_sub_pd(one, hz);
        let cos_r = _mm256_add_pd(
            w,
            _mm256_add_pd(
                _mm256_sub_pd(_mm256_sub_pd(one, w), hz),
                _mm256_mul_pd(z, cp),
            ),
        );
        // Quadrant n & 3: odd quadrants swap sin/cos; sin flips sign when
        // n & 2, cos flips sign when (n + 1) & 2 — exactly the scalar match
        // arms 0:(s,c) 1:(c,-s) 2:(-s,-c) 3:(-c,s).
        let one_i = _mm256_set1_epi64x(1);
        let two_i = _mm256_set1_epi64x(2);
        let swap = _mm256_castsi256_pd(_mm256_cmpeq_epi64(_mm256_and_si256(n, one_i), one_i));
        let neg_zero = _mm256_set1_pd(-0.0);
        let sin_flip = _mm256_and_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(_mm256_and_si256(n, two_i), two_i)),
            neg_zero,
        );
        let n1 = _mm256_add_epi64(n, one_i);
        let cos_flip = _mm256_and_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(_mm256_and_si256(n1, two_i), two_i)),
            neg_zero,
        );
        let sin_out = _mm256_xor_pd(_mm256_blendv_pd(sin_r, cos_r, swap), sin_flip);
        let cos_out = _mm256_xor_pd(_mm256_blendv_pd(cos_r, sin_r, swap), cos_flip);
        (sin_out, cos_out)
    }
}

#[cfg(test)]
mod tests {
    /// Distance in units in the last place between two finite doubles of
    /// the same sign (saturating; NaN-free domains only).
    fn ulp_diff(a: f64, b: f64) -> u64 {
        let ia = a.to_bits() as i64;
        let ib = b.to_bits() as i64;
        ia.abs_diff(ib)
    }

    #[test]
    fn ln_matches_std_within_one_ulp_over_the_unit_domain() {
        let mut worst = 0;
        for i in 1..=20_000u64 {
            let x = i as f64 / 20_000.0;
            worst = worst.max(ulp_diff(super::ln(x), x.ln()));
        }
        // Including the clamp edge and the smallest normal.
        worst = worst.max(ulp_diff(
            super::ln(f64::MIN_POSITIVE),
            f64::MIN_POSITIVE.ln(),
        ));
        assert!(worst <= 1, "ln drifted {worst} ulp from std");
        assert_eq!(super::ln(1.0), 0.0);
    }

    #[test]
    fn exp_matches_std_within_one_ulp_over_the_noise_domain() {
        let mut worst = 0;
        for i in -20_000i64..=20_000 {
            let x = i as f64 / 800.0; // ±25, beyond any noise factor
            worst = worst.max(ulp_diff(super::exp(x), x.exp()));
        }
        assert!(worst <= 1, "exp drifted {worst} ulp from std");
        assert_eq!(super::exp(0.0), 1.0);
    }

    #[test]
    fn sincos_matches_std_within_the_documented_bound() {
        for i in 0..=40_000u64 {
            let theta = core::f64::consts::TAU * (i as f64 / 40_000.0);
            let (s, c) = super::sincos(theta);
            for (got, want) in [(s, theta.sin()), (c, theta.cos())] {
                let ok = ulp_diff(got, want) <= 2 || (got - want).abs() <= 2.5e-16;
                assert!(ok, "sincos({theta}) drifted: got {got}, std {want}");
            }
        }
    }

    mod properties {
        use super::ulp_diff;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(2048))]

            // `ln` over exactly the words the Box–Muller sampler feeds it:
            // `unit_f64_from_word` clamped away from zero. Word 0 exercises
            // the `MIN_POSITIVE` clamp edge, `u64::MAX` the u → 1 edge.
            #[test]
            fn ln_stays_within_one_ulp_over_sampler_words(word in 0u64..u64::MAX) {
                for w in [word, 0, u64::MAX] {
                    let u = rand::unit_f64_from_word(w).max(f64::MIN_POSITIVE);
                    prop_assert!(
                        ulp_diff(super::super::ln(u), u.ln()) <= 1,
                        "ln({u}) off by more than 1 ulp"
                    );
                    // The exponential sampler's domain: ln(1 − u), u < 1.
                    let v = 1.0 - rand::unit_f64_from_word(w);
                    if v > 0.0 {
                        prop_assert!(
                            ulp_diff(super::super::ln(v), v.ln()) <= 1,
                            "ln({v}) off by more than 1 ulp"
                        );
                    }
                }
            }

            // `ln` over the full positive-normal range it documents, far
            // beyond what any sampler produces.
            #[test]
            fn ln_stays_within_one_ulp_over_wide_magnitudes(
                mantissa in 1u64..(1u64 << 52),
                exponent in 1u64..2046,
            ) {
                let x = f64::from_bits((exponent << 52) | mantissa);
                prop_assert!(
                    ulp_diff(super::super::ln(x), x.ln()) <= 1,
                    "ln({x:e}) off by more than 1 ulp"
                );
            }

            // `exp` over its documented |x| ≤ 700 domain (the noise factor
            // only ever sees |x| of a few sigma).
            #[test]
            fn exp_stays_within_one_ulp_over_its_domain(x in -700.0f64..700.0) {
                prop_assert!(
                    ulp_diff(super::super::exp(x), x.exp()) <= 1,
                    "exp({x}) off by more than 1 ulp"
                );
            }

            // `sincos` over the Box–Muller angle domain τ·u2, u2 ∈ [0, 1).
            #[test]
            fn sincos_stays_within_bound_over_the_angle_domain(word in 0u64..u64::MAX) {
                for w in [word, 0, u64::MAX] {
                    let theta = core::f64::consts::TAU * rand::unit_f64_from_word(w);
                    let (s, c) = super::super::sincos(theta);
                    for (got, want) in [(s, theta.sin()), (c, theta.cos())] {
                        prop_assert!(
                            ulp_diff(got, want) <= 2 || (got - want).abs() <= 2.5e-16,
                            "sincos({theta}) drifted: got {got}, std {want}"
                        );
                    }
                }
            }
        }
    }
}
