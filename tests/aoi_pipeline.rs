//! Integration tests for the AoI/RoI pipeline: analytical model, event-driven
//! ground truth, and the Fig. 4(e)/(f) experiments.

use xr_core::{AoiModel, Scenario, SensorConfig, XrPerformanceModel};
use xr_experiments::aoi_experiments::{aoi_over_time, roi_staircase, REQUEST_PERIOD_MS};
use xr_experiments::ExperimentContext;
use xr_testbed::AoiGroundTruth;
use xr_types::{ExecutionTarget, Hertz, Meters, Seconds};

#[test]
fn fig4e_series_reproduce_the_paper_ordering() {
    let ctx = ExperimentContext::quick(301).unwrap();
    let sweep = aoi_over_time(&ctx).unwrap();
    // The 200 Hz sensor stays flat; 100 Hz and 66.67 Hz grow, the slower one
    // faster — exactly the ordering of Fig. 4(e).
    let final_aoi: Vec<f64> = sweep
        .series
        .iter()
        .map(|s| s.last().unwrap().proposed_ms)
        .collect();
    assert!(final_aoi[0] < final_aoi[1]);
    assert!(final_aoi[1] < final_aoi[2]);
    let first_aoi_200 = sweep.series[0].first().unwrap().proposed_ms;
    let last_aoi_200 = sweep.series[0].last().unwrap().proposed_ms;
    assert!(
        (last_aoi_200 - first_aoi_200).abs() < 1.0,
        "200 Hz series must stay flat"
    );
    // Ground truth follows the same ordering.
    let final_gt: Vec<f64> = sweep
        .series
        .iter()
        .map(|s| s.last().unwrap().ground_truth_ms)
        .collect();
    assert!(final_gt[0] < final_gt[1] && final_gt[1] < final_gt[2]);
}

#[test]
fn fig4f_staircase_steps_by_the_rate_mismatch() {
    let ctx = ExperimentContext::quick(302).unwrap();
    let staircase = roi_staircase(&ctx).unwrap();
    // 100 Hz sensor vs 5 ms requests: the mismatch is 5 ms per update.
    for window in staircase.windows(2) {
        let step = window[1].aoi_ms - window[0].aoi_ms;
        assert!((step - REQUEST_PERIOD_MS).abs() < 1.0, "step {step}");
        assert!(window[1].roi < window[0].roi);
    }
}

#[test]
fn model_and_ground_truth_agree_for_a_vehicular_sensor_set() {
    let model = AoiModel::published();
    let request_period = Seconds::from_millis(10.0);
    for (freq, distance) in [(200.0, 80.0), (50.0, 40.0), (20.0, 150.0)] {
        let sensor = SensorConfig::new("s", Hertz::new(freq), Meters::new(distance));
        let analytic = model
            .sensor_series(&sensor, 2_000.0, request_period, 12)
            .unwrap();
        let measured =
            AoiGroundTruth::simulate(&sensor, 2_000.0, request_period, 12, 0.02, 303).unwrap();
        let analytic_mean =
            analytic.iter().map(|a| a.as_f64()).sum::<f64>() / analytic.len() as f64;
        let measured_mean = measured.mean().as_f64();
        let denominator = analytic_mean.max(2e-3);
        assert!(
            (analytic_mean - measured_mean).abs() / denominator < 0.4,
            "freq {freq}: analytic {analytic_mean} vs measured {measured_mean}"
        );
    }
}

#[test]
fn full_framework_reports_roi_consistent_with_required_frequency() {
    let model = XrPerformanceModel::published();
    let scenario = Scenario::builder()
        .execution(ExecutionTarget::Remote)
        .updates_per_frame(6)
        .build()
        .unwrap();
    let report = model.analyze(&scenario).unwrap();
    let required = report.aoi.required_frequency.as_f64();
    assert!(required > 0.0);
    for sensor in &report.aoi.sensors {
        // RoI is by definition processed frequency over required frequency.
        let expected = sensor.processed_frequency.as_f64() / required;
        assert!((sensor.roi - expected).abs() < 1e-9);
    }
    // The request period exposed by the report matches L_tot / N.
    let expected_period = report.latency.total().as_f64() / 6.0;
    assert!((report.aoi.request_period.as_f64() - expected_period).abs() < 1e-12);
}

#[test]
fn saturating_the_buffer_is_reported_not_hidden() {
    let model = AoiModel::published();
    let sensor = SensorConfig::new("flood", Hertz::new(3_000.0), Meters::new(5.0));
    let result = model.analyze_sensor(&sensor, 2_000.0, Seconds::from_millis(30.0), 6);
    assert!(result.is_err(), "overload must surface as an error");
}
