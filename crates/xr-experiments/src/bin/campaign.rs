//! The consolidated campaign binary: sweeps the full twelve-axis quick grid
//! (frame size × CPU clock × execution target × device × wireless condition
//! × mobility condition × campaign size × edge population × frame rate ×
//! topology layout × site density × migration policy,
//! with per-point replications)
//! through the parallel campaign engine and writes one mean-±-CI row per
//! operating point to `campaign.csv`.
//!
//! `--grid <file>` swaps the built-in quick grid for a data-defined one
//! parsed by `xr_sweep::parse_grid_spec` (see that module's docs for the
//! `key = value` format), so campaigns can change without recompiling.
//!
//! The CSV is bit-identical for every worker count (`XR_SWEEP_WORKERS`) and
//! for both session engines (`--scalar-sessions` forces the scalar
//! reference); CI runs this binary under both axes and diffs the artifacts.

use xr_experiments::campaign::{quick_grid, run_campaign, CAMPAIGN_HEADER};
use xr_experiments::{output, ExperimentContext};
use xr_sweep::{parse_grid_spec, SweepGrid};

/// Resolves the campaign grid: `--grid <file>` when given, the built-in
/// quick grid otherwise.
fn grid_from_args() -> SweepGrid {
    let args: Vec<String> = std::env::args().collect();
    let Some(position) = args.iter().position(|a| a == "--grid") else {
        return quick_grid();
    };
    let Some(path) = args.get(position + 1) else {
        eprintln!("--grid requires a file path");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("cannot read grid spec {path}: {error}");
            std::process::exit(2);
        }
    };
    match parse_grid_spec(&text) {
        Ok(grid) => grid,
        Err(error) => {
            eprintln!("invalid grid spec {path}: {error}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let grid = grid_from_args();
    let ctx = ExperimentContext::from_args();
    let rows = run_campaign(&ctx, &grid).expect("campaign failed");
    let cells: Vec<Vec<String>> = rows.iter().map(|r| r.cells()).collect();
    output::print_experiment(
        "Consolidated campaign — twelve-axis replicated sweep",
        &CAMPAIGN_HEADER,
        &cells,
        "campaign.csv",
    );
    println!(
        "{} operating points × {} replication(s) evaluated with {} worker(s)",
        rows.len(),
        grid.replications(),
        ctx.runner().workers()
    );
}
