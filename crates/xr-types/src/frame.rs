//! Frame descriptors and frame streams.
//!
//! The paper models every performance metric *per generated frame* `q`. A
//! [`Frame`] carries the per-frame workload parameters the analytical model
//! consumes: raw frame size `s_f1` (pixel²), converted size `s_f2`, encoded
//! size `s_f3`, the corresponding data sizes `δ_f1..δ_f4`, the virtual scene
//! size `s_vol`, and the frame rate `n_fps`.

use crate::ids::FrameId;
use crate::units::{Hertz, MegaBytes, PixelsSquared};
use serde::{Deserialize, Serialize};

/// Workload description of a single generated frame `q`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Frame index `q ∈ {1, …, Q_n}`.
    pub id: FrameId,
    /// Capture frame rate `n_fps` (frames per second).
    pub frame_rate: Hertz,
    /// Raw captured frame size `s_f1` in pixel².
    pub raw_size: PixelsSquared,
    /// Converted (RGB, scaled/cropped) frame size `s_f2` in pixel².
    pub converted_size: PixelsSquared,
    /// Encoded frame size `s_f3` in pixel² (resolution fed to the encoder).
    pub encoded_size: PixelsSquared,
    /// Virtual scene size `s_vol` in pixel² used for volumetric data.
    pub scene_size: PixelsSquared,
    /// Raw frame data size `δ_f1` in MB.
    pub raw_data: MegaBytes,
    /// Converted frame data size `δ_f2` in MB.
    pub converted_data: MegaBytes,
    /// Encoded frame data size `δ_f3` in MB (what crosses the wireless link).
    pub encoded_data: MegaBytes,
    /// Cooperation payload size `δ_f4` in MB (scene fragments shared with
    /// cooperative XR devices).
    pub cooperation_data: MegaBytes,
    /// Volumetric data size `δ_vol` in MB.
    pub volumetric_data: MegaBytes,
}

impl Frame {
    /// Bytes per pixel of an uncompressed RGBA frame, used by
    /// [`Frame::from_resolution`] to derive `δ_f1` from `s_f1`.
    pub const BYTES_PER_PIXEL: f64 = 4.0;
    /// Default H.264 compression factor used to derive `δ_f3` from `δ_f1`.
    pub const DEFAULT_COMPRESSION: f64 = 18.0;

    /// Builds a frame from the paper's frame-size parameter and a frame rate.
    ///
    /// The paper's evaluation sweeps the "frame size (pixel²)" `s_f1` over
    /// 300–700 — the side of the square input tensor, reported in the
    /// figures' pixel² unit. The workload sizes (`s_f1`, `s_f2`, `s_f3`,
    /// `s_vol`) use that parameter directly, matching the magnitudes of
    /// Eqs. 2–13 (e.g. the `1.43·s_f1` term of Eq. 10). The *data* sizes
    /// (`δ_f1` …) are derived from the true pixel count (`side²`) at four
    /// RGBA bytes per pixel, with H.264 compression for `δ_f3`.
    #[must_use]
    pub fn from_resolution(id: FrameId, side: f64, frame_rate: Hertz) -> Self {
        assert!(side > 0.0, "frame side must be positive");
        let pixels = side * side;
        let raw_mb = pixels * Self::BYTES_PER_PIXEL / 1e6;
        let converted_side = side.min(640.0);
        let converted_pixels = converted_side * converted_side;
        Self {
            id,
            frame_rate,
            raw_size: PixelsSquared::new(side),
            converted_size: PixelsSquared::new(converted_side),
            encoded_size: PixelsSquared::new(side),
            scene_size: PixelsSquared::new(side * 1.5),
            raw_data: MegaBytes::new(raw_mb),
            converted_data: MegaBytes::new(converted_pixels * Self::BYTES_PER_PIXEL / 1e6),
            encoded_data: MegaBytes::new(raw_mb / Self::DEFAULT_COMPRESSION),
            cooperation_data: MegaBytes::new(raw_mb / (Self::DEFAULT_COMPRESSION * 2.0)),
            volumetric_data: MegaBytes::new(raw_mb * 0.25),
        }
    }

    /// The frame-size parameter (the paper's `s_f1`, i.e. the side of the
    /// square input tensor).
    #[must_use]
    pub fn raw_side(&self) -> f64 {
        self.raw_size.as_f64()
    }

    /// Replaces the encoded data size, e.g. after running an encoder model
    /// with a non-default quantisation value.
    #[must_use]
    pub fn with_encoded_data(mut self, encoded_data: MegaBytes) -> Self {
        self.encoded_data = encoded_data;
        self
    }

    /// Replaces the cooperation payload size.
    #[must_use]
    pub fn with_cooperation_data(mut self, cooperation_data: MegaBytes) -> Self {
        self.cooperation_data = cooperation_data;
        self
    }
}

/// An iterator over the frames of an XR session.
///
/// `FrameStream` produces `Q_n` frames with identical workload parameters —
/// matching the paper's per-frame formulation where the sweep variable (frame
/// size, clock frequency) is constant within one experiment run.
#[derive(Debug, Clone)]
pub struct FrameStream {
    template: Frame,
    next_index: u64,
    total: u64,
}

impl FrameStream {
    /// Creates a stream of `total` frames cloned from `template` with
    /// consecutive [`FrameId`]s starting at 1.
    #[must_use]
    pub fn new(template: Frame, total: u64) -> Self {
        Self {
            template,
            next_index: 1,
            total,
        }
    }

    /// Number of frames remaining.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.total.saturating_sub(self.next_index - 1)
    }

    /// Total number of frames `Q_n` in the session.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }
}

impl Iterator for FrameStream {
    type Item = Frame;

    fn next(&mut self) -> Option<Frame> {
        if self.next_index > self.total {
            return None;
        }
        let mut frame = self.template;
        frame.id = FrameId::new(self.next_index);
        self.next_index += 1;
        Some(frame)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.remaining() as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for FrameStream {}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> Frame {
        Frame::from_resolution(FrameId::new(0), 500.0, Hertz::new(30.0))
    }

    #[test]
    fn from_resolution_derives_consistent_sizes() {
        let f = template();
        assert!((f.raw_size.as_f64() - 500.0).abs() < 1e-9);
        assert!((f.raw_side() - 500.0).abs() < 1e-9);
        // 500² pixels × 4 B = 1 MB raw data.
        assert!((f.raw_data.as_f64() - 1.0).abs() < 1e-9);
        // Encoded data is compressed.
        assert!(f.encoded_data < f.raw_data);
        // Converted frame never exceeds the raw frame.
        assert!(f.converted_size <= f.raw_size);
        assert!(f.volumetric_data < f.raw_data);
        assert!((f.scene_size.as_f64() - 750.0).abs() < 1e-9);
    }

    #[test]
    fn converted_size_caps_at_cnn_input() {
        let f = Frame::from_resolution(FrameId::new(0), 700.0, Hertz::new(30.0));
        assert!((f.converted_size.as_f64() - 640.0).abs() < 1e-9);
        assert!((f.encoded_size.as_f64() - 700.0).abs() < 1e-9);
    }

    #[test]
    fn with_encoded_data_overrides() {
        let f = template().with_encoded_data(MegaBytes::new(0.01));
        assert!((f.encoded_data.as_f64() - 0.01).abs() < 1e-12);
        let f = f.with_cooperation_data(MegaBytes::new(0.002));
        assert!((f.cooperation_data.as_f64() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn stream_yields_sequential_ids() {
        let stream = FrameStream::new(template(), 5);
        assert_eq!(stream.len(), 5);
        let ids: Vec<u64> = stream.map(|f| f.id.index()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn stream_remaining_counts_down() {
        let mut stream = FrameStream::new(template(), 3);
        assert_eq!(stream.remaining(), 3);
        assert_eq!(stream.total(), 3);
        stream.next();
        assert_eq!(stream.remaining(), 2);
        stream.next();
        stream.next();
        assert_eq!(stream.remaining(), 0);
        assert!(stream.next().is_none());
    }

    #[test]
    #[should_panic(expected = "frame side must be positive")]
    fn zero_side_rejected() {
        let _ = Frame::from_resolution(FrameId::new(0), 0.0, Hertz::new(30.0));
    }
}
