//! Benchmarks regenerating Fig. 5(a)/(b): the proposed-vs-FACT-vs-LEAF
//! comparison, plus the per-frame cost of each analytical model.

use bench::{bench_context, bench_scenario};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xr_baselines::{BaselineModel, FactModel, LeafModel};
use xr_core::XrPerformanceModel;
use xr_experiments::comparison::{comparison_sweep, Metric};
use xr_types::ExecutionTarget;

fn per_model_cost(c: &mut Criterion) {
    let scenario = bench_scenario(500.0, ExecutionTarget::Remote);
    let proposed = XrPerformanceModel::published();
    let fact = FactModel::new();
    let leaf = LeafModel::new();
    let mut group = c.benchmark_group("fig5/per_frame_model_cost");
    group.bench_function("proposed", |b| {
        b.iter(|| black_box(proposed.analyze(&scenario).unwrap().latency.total()))
    });
    group.bench_function("fact", |b| {
        b.iter(|| black_box(fact.predict_latency(&scenario).unwrap()))
    });
    group.bench_function("leaf", |b| {
        b.iter(|| black_box(leaf.predict_latency(&scenario).unwrap()))
    });
    group.finish();
}

fn full_figures(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("fig5/full_sweep");
    group.sample_size(10);
    group.bench_function("fig5a_latency", |b| {
        b.iter(|| black_box(comparison_sweep(&ctx, Metric::Latency).unwrap()))
    });
    group.bench_function("fig5b_energy", |b| {
        b.iter(|| black_box(comparison_sweep(&ctx, Metric::Energy).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, per_model_cost, full_figures);
criterion_main!(benches);
