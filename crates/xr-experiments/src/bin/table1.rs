//! Regenerates Table I (device specifications).

use xr_experiments::output;
use xr_experiments::tables;

fn main() {
    output::print_experiment(
        "Table I — XR and edge devices used in the experiments",
        &tables::table1_header(),
        &tables::table1_rows(),
        "table1.csv",
    );
}
