//! Fig. 4(d): end-to-end energy for remote inference, GT vs proposed model.

use xr_experiments::figures::energy_sweep;
use xr_experiments::{output, ExperimentContext};
use xr_types::ExecutionTarget;

fn main() {
    let ctx = ExperimentContext::from_args();
    let sweep = energy_sweep(&ctx, ExecutionTarget::Remote).expect("sweep failed");
    output::print_experiment(
        "Fig. 4(d) — end-to-end energy, remote inference (mJ)",
        &["frame_size", "cpu_ghz", "gt_mj", "proposed_mj", "error_%"],
        &sweep.rows(),
        "fig4d.csv",
    );
    println!(
        "mean error: {:.2}% (paper: 5.38%)",
        sweep.mean_error_percent()
    );
}
