//! # xr-testbed
//!
//! The ground-truth substitute for the paper's physical testbed.
//!
//! The paper validates its analytical framework against measurements taken on
//! seven XR devices, two Jetson edge servers, and a Monsoon power monitor.
//! None of that hardware is available here, so this crate provides a
//! discrete-event simulator with the same observable surface:
//!
//! * [`laws`] — the *hidden true laws* of the simulated hardware: monotone
//!   compute-resource and power curves, an encoder cost law with interaction
//!   terms, a CNN complexity law, and per-device bias factors. These are
//!   deliberately **not** the same functional forms as the paper's regression
//!   sub-models; the analytical framework only ever sees them through noisy
//!   measurements, exactly as in the real methodology.
//! * [`power`] — a Monsoon-style power monitor sampling a noisy power trace
//!   every 0.2 ms and integrating it to energy.
//! * [`simulator`] — the per-frame / per-session pipeline simulator that
//!   produces ground-truth latency and energy breakdowns (with queueing,
//!   handoff, and measurement noise). Every stage draws from its own named
//!   RNG stream keyed by `(session_seed, stage_id, frame_index)`.
//! * [`batch`] — the batched structure-of-arrays session engine: stages run
//!   as column loops over many frames, bit-identical to the scalar
//!   reference; [`TestbedSimulator::simulate_session`] uses it by default.
//! * [`aoi`] — event-driven ground truth for the AoI experiments.
//! * [`dataset`] — measurement-campaign generation (the 119 465-sample
//!   training set and 36 083-sample test set) and regression refitting, which
//!   yields the *calibrated* analytical framework used in the evaluation.
//!
//! ```
//! use xr_core::Scenario;
//! use xr_testbed::TestbedSimulator;
//!
//! let scenario = Scenario::builder().build()?;
//! let testbed = TestbedSimulator::new(42);
//! let session = testbed.simulate_session(&scenario, 20)?;
//! assert!(session.mean_latency().as_f64() > 0.0);
//! # Ok::<(), xr_types::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aoi;
pub mod batch;
pub mod dataset;
pub mod laws;
pub mod power;
pub mod simulator;

pub use aoi::AoiGroundTruth;
pub use batch::{SimulationEngine, DEFAULT_BATCH_WIDTH};
pub use dataset::{CalibratedModels, MeasurementCampaign, MeasurementDataset};
pub use laws::{DeviceBias, TrueLaws};
pub use power::{PowerMonitor, PowerTrace};
pub use simulator::{
    ContentionSnapshot, GroundTruthFrame, GroundTruthSession, SessionState, TestbedSimulator,
};
