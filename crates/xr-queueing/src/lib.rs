//! # xr-queueing
//!
//! Queueing-theory substrate for the xr-perf workspace.
//!
//! The paper models the XR device's input buffer — where captured frames,
//! volumetric data and external sensor information are queued before
//! rendering — as a stable **M/M/1** system (Section IV-B, Eq. 7, and the AoI
//! model of Section VI, Eq. 22). This crate provides:
//!
//! * [`MM1Queue`] — closed-form steady-state results (mean time in system
//!   `1/(µ−λ)`, waiting time, queue lengths, utilisation, Little's-law
//!   helpers).
//! * [`MM1Simulator`] — a discrete-event simulation of the same system, used
//!   by the testbed simulator to produce ground-truth buffering delays and by
//!   the test-suite to validate the closed forms.
//! * [`EdgeContention`] — the multi-tenant coupling: `N` sessions sharing one
//!   edge inference server as a stable M/M/1 queue over the aggregate frame
//!   stream, driving the testbed's contended uplink/edge stage.
//! * [`des`] — a small generic discrete-event engine (event queue keyed by
//!   simulated time) reused by `xr-testbed`.
//!
//! ```
//! use xr_queueing::MM1Queue;
//!
//! // 300 packets/s arriving at a buffer served at 1000 packets/s.
//! let q = MM1Queue::new(300.0, 1000.0)?;
//! assert!((q.mean_time_in_system().as_f64() - 1.0 / 700.0).abs() < 1e-12);
//! assert!(q.utilization() < 1.0);
//! # Ok::<(), xr_types::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod contention;
pub mod des;
pub mod mm1;
pub mod simulator;

pub use contention::EdgeContention;
pub use des::{Event, EventQueue};
pub use mm1::MM1Queue;
pub use simulator::{MM1Simulator, SimulationReport};
