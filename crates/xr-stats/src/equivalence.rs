//! Statistical-equivalence checks between two replicated campaign CSVs.
//!
//! A *sanctioned re-key* of the simulator's draw scheme (PR-4's per-stage
//! stream split, PR-8's cached Box–Muller variate) changes which random
//! numbers each stage consumes without changing any modeled distribution.
//! The acceptance procedure is statistical: the re-keyed campaign must look
//! like *a different seed of the same model* — mean shifts and
//! outside-confidence-interval rates no worse than the null rate obtained by
//! re-seeding the old scheme. This module makes that procedure a reusable
//! artifact instead of a hand-derived analysis, so the next re-key diffs two
//! CSVs with [`compare_campaigns`] and asserts against a
//! [`compare_campaigns`]-measured null.
//!
//! The comparison understands the replicated-campaign CSV convention used
//! by `xr-experiments`: a header row, identity columns (the sweep point
//! configuration) before the first measured column, and measured metrics as
//! `<name>_mean` / `<name>_ci95_lo` / `<name>_ci95_hi` triples. Measured
//! columns without a CI triple (sparse-event means, deterministic model
//! outputs) are ignored — they are either noise-free or not statistically
//! summarized, so a CI containment test is undefined for them.

use xr_types::{Error, Result};

/// The aggregate outcome of diffing two campaign CSVs: how often each
/// file's replicated means fall outside the other's 95 % confidence
/// interval, and how far the means moved relative to each other.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquivalenceReport {
    /// CI-containment checks performed (2 per row per metric triple — each
    /// file's mean is tested against the other file's interval).
    pub comparisons: usize,
    /// Checks where a mean fell outside the other file's interval.
    pub outside_ci: usize,
    /// Mean of `|Δmean| / max(|mean|)` over all (row, triple) pairs.
    pub mean_rel_shift: f64,
    /// Largest single relative mean shift observed.
    pub max_rel_shift: f64,
}

impl EquivalenceReport {
    /// Fraction of CI-containment checks that failed. With 95 % intervals,
    /// two *independent same-scheme* runs land around 5–40 % depending on
    /// replication count (the interval covers the true mean, not another
    /// run's estimate); what matters is comparing a re-key's rate against
    /// the same-scheme reseed null, not against an absolute threshold.
    #[must_use]
    pub fn outside_ci_rate(&self) -> f64 {
        if self.comparisons == 0 {
            return 0.0;
        }
        self.outside_ci as f64 / self.comparisons as f64
    }

    /// Pools this report with another (e.g. the same diff on a different
    /// campaign grid), weighting by comparison count.
    #[must_use]
    pub fn pooled(&self, other: &EquivalenceReport) -> EquivalenceReport {
        let n = self.comparisons + other.comparisons;
        let weighted = |a: &EquivalenceReport, b: &EquivalenceReport| {
            if n == 0 {
                return 0.0;
            }
            (a.mean_rel_shift * a.comparisons as f64 + b.mean_rel_shift * b.comparisons as f64)
                / n as f64
        };
        EquivalenceReport {
            comparisons: n,
            outside_ci: self.outside_ci + other.outside_ci,
            mean_rel_shift: weighted(self, other),
            max_rel_shift: self.max_rel_shift.max(other.max_rel_shift),
        }
    }
}

/// One `<name>_mean` / `<name>_ci95_lo` / `<name>_ci95_hi` column triple.
struct Triple {
    mean: usize,
    lo: usize,
    hi: usize,
}

/// Finds the measured metric triples in a campaign header.
fn triples(header: &[&str]) -> Vec<Triple> {
    header
        .iter()
        .enumerate()
        .filter_map(|(mean, name)| {
            let stem = name.strip_suffix("_mean")?;
            let lo = header
                .iter()
                .position(|c| *c == format!("{stem}_ci95_lo"))?;
            let hi = header
                .iter()
                .position(|c| *c == format!("{stem}_ci95_hi"))?;
            Some(Triple { mean, lo, hi })
        })
        .collect()
}

fn parse_field(row_number: usize, name: &str, value: &str) -> Result<f64> {
    value.trim().parse::<f64>().map_err(|_| {
        Error::invalid_parameter(
            "campaign CSV",
            format!("row {row_number}: column {name} is not numeric: {value:?}"),
        )
    })
}

/// Diffs two replicated-campaign CSVs (full file contents, header included)
/// and reports outside-CI rates and relative mean shifts over every
/// measured metric triple.
///
/// The two files must describe the *same campaign*: identical headers,
/// identical row counts, and identical identity columns (every column
/// before the first metric triple) row by row — anything else means the
/// comparison would pair unrelated sweep points, which is an error, not a
/// statistical difference.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when the CSVs are empty, have
/// mismatched headers, row counts, or identity columns, contain no metric
/// triples, or hold non-numeric metric fields.
pub fn compare_campaigns(a: &str, b: &str) -> Result<EquivalenceReport> {
    let mut rows_a = a.lines().filter(|l| !l.trim().is_empty());
    let mut rows_b = b.lines().filter(|l| !l.trim().is_empty());
    let header_a = rows_a
        .next()
        .ok_or_else(|| Error::invalid_parameter("campaign CSV", "first file is empty"))?;
    let header_b = rows_b
        .next()
        .ok_or_else(|| Error::invalid_parameter("campaign CSV", "second file is empty"))?;
    if header_a != header_b {
        return Err(Error::invalid_parameter(
            "campaign CSV",
            "headers differ — not the same campaign format",
        ));
    }
    let header: Vec<&str> = header_a.split(',').collect();
    let triples = triples(&header);
    if triples.is_empty() {
        return Err(Error::invalid_parameter(
            "campaign CSV",
            "no <metric>_mean/_ci95_lo/_ci95_hi triples in header",
        ));
    }
    let identity_end = triples
        .iter()
        .flat_map(|t| [t.mean, t.lo, t.hi])
        .min()
        .unwrap_or(header.len());

    let mut report = EquivalenceReport {
        comparisons: 0,
        outside_ci: 0,
        mean_rel_shift: 0.0,
        max_rel_shift: 0.0,
    };
    let mut shift_sum = 0.0;
    let mut shift_count = 0usize;
    let mut row_number = 1usize;
    loop {
        let (line_a, line_b) = match (rows_a.next(), rows_b.next()) {
            (Some(a), Some(b)) => (a, b),
            (None, None) => break,
            _ => {
                return Err(Error::invalid_parameter(
                    "campaign CSV",
                    "row counts differ — not the same campaign grid",
                ));
            }
        };
        row_number += 1;
        let fields_a: Vec<&str> = line_a.split(',').collect();
        let fields_b: Vec<&str> = line_b.split(',').collect();
        if fields_a.len() != header.len() || fields_b.len() != header.len() {
            return Err(Error::invalid_parameter(
                "campaign CSV",
                format!("row {row_number}: field count does not match the header"),
            ));
        }
        if fields_a[..identity_end] != fields_b[..identity_end] {
            return Err(Error::invalid_parameter(
                "campaign CSV",
                format!("row {row_number}: identity columns differ — rows are not paired"),
            ));
        }
        for t in &triples {
            let name = header[t.mean];
            let mean_a = parse_field(row_number, name, fields_a[t.mean])?;
            let mean_b = parse_field(row_number, name, fields_b[t.mean])?;
            let (lo_a, hi_a) = (
                parse_field(row_number, name, fields_a[t.lo])?,
                parse_field(row_number, name, fields_a[t.hi])?,
            );
            let (lo_b, hi_b) = (
                parse_field(row_number, name, fields_b[t.lo])?,
                parse_field(row_number, name, fields_b[t.hi])?,
            );
            report.comparisons += 2;
            if mean_b < lo_a || mean_b > hi_a {
                report.outside_ci += 1;
            }
            if mean_a < lo_b || mean_a > hi_b {
                report.outside_ci += 1;
            }
            let scale = mean_a.abs().max(mean_b.abs()).max(1e-12);
            let shift = (mean_a - mean_b).abs() / scale;
            shift_sum += shift;
            shift_count += 1;
            report.max_rel_shift = report.max_rel_shift.max(shift);
        }
    }
    if shift_count > 0 {
        report.mean_rel_shift = shift_sum / shift_count as f64;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::compare_campaigns;

    const HEADER: &str = "point,device,x_mean,x_ci95_lo,x_ci95_hi,extra";

    #[test]
    fn identical_files_report_zero_shift() {
        let csv = format!("{HEADER}\n0,a,10.0,9.0,11.0,1\n1,b,20.0,19.0,21.0,2\n");
        let report = compare_campaigns(&csv, &csv).unwrap();
        assert_eq!(report.comparisons, 4);
        assert_eq!(report.outside_ci, 0);
        assert_eq!(report.mean_rel_shift, 0.0);
        assert_eq!(report.max_rel_shift, 0.0);
        assert_eq!(report.outside_ci_rate(), 0.0);
    }

    #[test]
    fn outside_ci_and_shifts_are_counted_per_direction() {
        let a = format!("{HEADER}\n0,a,10.0,9.0,11.0,1\n");
        // Mean 12 is outside a's [9, 11]; a's mean 10 is inside b's [8, 13].
        let b = format!("{HEADER}\n0,a,12.0,8.0,13.0,1\n");
        let report = compare_campaigns(&a, &b).unwrap();
        assert_eq!(report.comparisons, 2);
        assert_eq!(report.outside_ci, 1);
        assert!((report.outside_ci_rate() - 0.5).abs() < 1e-12);
        assert!((report.max_rel_shift - 2.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_campaigns_are_rejected() {
        let a = format!("{HEADER}\n0,a,10.0,9.0,11.0,1\n");
        let other_header = "point,device,y_mean,y_ci95_lo,y_ci95_hi,extra";
        let b = format!("{other_header}\n0,a,10.0,9.0,11.0,1\n");
        assert!(compare_campaigns(&a, &b).is_err(), "headers differ");
        let b = format!("{HEADER}\n0,a,10.0,9.0,11.0,1\n1,b,1.0,0.5,1.5,2\n");
        assert!(compare_campaigns(&a, &b).is_err(), "row counts differ");
        let b = format!("{HEADER}\n0,OTHER,10.0,9.0,11.0,1\n");
        assert!(compare_campaigns(&a, &b).is_err(), "identity differs");
        let b = format!("{HEADER}\n0,a,not-a-number,9.0,11.0,1\n");
        assert!(compare_campaigns(&a, &b).is_err(), "non-numeric metric");
        assert!(compare_campaigns("", "").is_err(), "empty files");
        let no_triples = "point,device,value\n0,a,1.0\n";
        assert!(compare_campaigns(no_triples, no_triples).is_err());
    }

    #[test]
    fn pooled_reports_weight_by_comparison_count() {
        let a1 = format!("{HEADER}\n0,a,10.0,9.0,11.0,1\n");
        let b1 = format!("{HEADER}\n0,a,12.0,8.0,13.0,1\n");
        let r1 = compare_campaigns(&a1, &b1).unwrap();
        let r2 = compare_campaigns(&a1, &a1).unwrap();
        let pooled = r1.pooled(&r2);
        assert_eq!(pooled.comparisons, 4);
        assert_eq!(pooled.outside_ci, 1);
        assert!((pooled.mean_rel_shift - r1.mean_rel_shift / 2.0).abs() < 1e-12);
        assert_eq!(pooled.max_rel_shift, r1.max_rel_shift);
    }
}
