//! A minimal discrete-event-simulation engine.
//!
//! The testbed simulator (`xr-testbed`) and the M/M/1 simulator in this crate
//! both need the same primitive: a priority queue of timestamped events
//! processed in non-decreasing time order, with deterministic tie-breaking so
//! that seeded runs are reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use xr_types::Seconds;

/// A scheduled event carrying a payload of type `T`.
#[derive(Debug, Clone, PartialEq)]
pub struct Event<T> {
    /// Simulated time at which the event fires.
    pub time: Seconds,
    /// Monotonic sequence number used to break ties deterministically
    /// (first-scheduled fires first).
    pub sequence: u64,
    /// The event payload.
    pub payload: T,
}

/// Internal wrapper giving `BinaryHeap` min-heap semantics by time then
/// sequence number.
#[derive(Debug)]
struct HeapEntry<T>(Event<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.sequence == other.0.sequence
    }
}

impl<T> Eq for HeapEntry<T> {}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering so that the earliest event is popped first;
        // `schedule_at` rejects non-finite times, so partial_cmp cannot fail.
        other
            .0
            .time
            .partial_cmp(&self.0.time)
            .expect("event times are always finite")
            .then_with(|| other.0.sequence.cmp(&self.0.sequence))
    }
}

/// A deterministic future-event list ordered by simulated time.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    next_sequence: u64,
    now: Seconds,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue starting at simulated time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_sequence: 0,
            now: Seconds::ZERO,
        }
    }

    /// Current simulated time (the time of the last popped event).
    #[must_use]
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute simulated time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not finite (NaN or ±∞ would corrupt the heap
    /// ordering) or precedes the current simulated time (events cannot be
    /// scheduled in the past).
    pub fn schedule_at(&mut self, time: Seconds, payload: T) {
        assert!(
            time.as_f64().is_finite(),
            "event time must be finite (got {time})"
        );
        assert!(
            time >= self.now,
            "cannot schedule an event in the past ({} < {})",
            time,
            self.now
        );
        let event = Event {
            time,
            sequence: self.next_sequence,
            payload,
        };
        self.next_sequence += 1;
        self.heap.push(HeapEntry(event));
    }

    /// Schedules `payload` after a delay relative to the current time.
    pub fn schedule_after(&mut self, delay: Seconds, payload: T) {
        let delay = delay.max(Seconds::ZERO);
        self.schedule_at(self.now + delay, payload);
    }

    /// Pops the next event, advancing the simulated clock to its timestamp.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let entry = self.heap.pop()?;
        self.now = entry.0.time;
        Some(entry.0)
    }

    /// Peeks at the next event's time without popping.
    #[must_use]
    pub fn peek_time(&self) -> Option<Seconds> {
        self.heap.peek().map(|e| e.0.time)
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(3.0), "c");
        q.schedule_at(Seconds::new(1.0), "a");
        q.schedule_at(Seconds::new(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(1.0), 1);
        q.schedule_at(Seconds::new(1.0), 2);
        q.schedule_at(Seconds::new(1.0), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Seconds::ZERO);
        q.schedule_after(Seconds::new(0.5), ());
        q.pop();
        assert!((q.now().as_f64() - 0.5).abs() < 1e-12);
        q.schedule_after(Seconds::new(0.25), ());
        q.pop();
        assert!((q.now().as_f64() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn negative_relative_delay_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(1.0), "x");
        q.pop();
        q.schedule_after(Seconds::new(-3.0), "y");
        let e = q.pop().unwrap();
        assert_eq!(e.payload, "y");
        assert!((e.time.as_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot schedule an event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(2.0), ());
        q.pop();
        q.schedule_at(Seconds::new(1.0), ());
    }

    #[test]
    #[should_panic(expected = "event time must be finite")]
    fn scheduling_nan_time_panics_with_accurate_message() {
        // `Seconds::new` rejects NaN outright, but arithmetic on infinite
        // quantities still produces one (∞ − ∞); the queue must name the real
        // problem instead of claiming the event lies "in the past".
        let nan = Seconds::new(f64::INFINITY) - Seconds::new(f64::INFINITY);
        assert!(nan.as_f64().is_nan());
        let mut q = EventQueue::new();
        q.schedule_at(nan, ());
    }

    #[test]
    #[should_panic(expected = "event time must be finite")]
    fn scheduling_infinite_time_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(Seconds::new(f64::INFINITY), ());
    }

    #[test]
    fn len_and_peek() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
        q.schedule_at(Seconds::new(4.0), ());
        q.schedule_at(Seconds::new(2.0), ());
        assert_eq!(q.len(), 2);
        assert!((q.peek_time().unwrap().as_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.now(), Seconds::ZERO);
    }
}
