//! Multi-edge topologies: tiled and Voronoi-seeded maps of edge sites.
//!
//! The paper's mobility model lives inside *one* circular
//! [`CoverageZone`]; every boundary crossing is a handoff back into the same
//! (statistically identical) zone. Flexible edge-assisted XR deployments
//! instead move a session across a *map* of heterogeneous edge sites, and
//! the cost that dominates tail latency is the inter-site **state
//! migration**, not the crossing count alone. This module provides that map:
//!
//! * [`EdgeSite`] — one edge attachment point: coverage geometry (a
//!   [`CoverageZone`] around a planar centre), a link budget
//!   ([`AccessTechnology`]), and a resident tenant population driving the
//!   site's M/M/1 contention queue.
//! * [`EdgeTopology`] — the site map, built from a square lattice, a
//!   triangular (hexagonal-cell) lattice, or a Voronoi-seeded jittered
//!   lattice at a given site density; or degenerately from a single zone.
//! * [`TopologyWalker`] — the generalisation of [`RandomWalker`](crate::RandomWalker) to the map:
//!   the same step/carry mechanics, plus a site lookup on every boundary
//!   crossing that either **migrates** the session to the covering
//!   neighbour site or (no neighbour covers — a coverage hole or the map
//!   edge) re-enters the current site uniformly, exactly like the
//!   single-zone walker.
//!
//! ## The single-site equivalence pin
//!
//! A [`TopologyWalker`] over [`EdgeTopology::single`] consumes its RNG
//! stream *word for word* like a [`RandomWalker`](crate::RandomWalker) over the same zone: one
//! uniform per step, two uniforms per re-entry, in the same order, starting
//! from the same centre. Positions, crossing counts, and the RNG stream
//! position stay bit-identical, which is what lets the testbed route every
//! session through the topology path without re-keying a single legacy
//! artifact (pinned by `tests/topology_properties.rs`).

use crate::link::AccessTechnology;
use crate::mobility::CoverageZone;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use xr_types::{Error, Meters, MetersPerSecond, Result, Seconds, TopologyLayout};

/// Sites per row/column of the tiled layouts: every tiled topology is a
/// fixed 4×4 map (16 sites), so the `site_density` axis changes the site
/// *spacing* (and with it the per-site coverage radius and the migration
/// rate) rather than the map's site count.
const GRID_DIM: usize = 4;

/// Seed of the deterministic jitter that turns the square lattice into the
/// Voronoi-seeded layout. A fixed constant: topology geometry is a pure
/// function of `(layout, site_density)`, independent of any session seed,
/// so every replication of a campaign point walks the same map.
const VORONOI_JITTER_SEED: u64 = 0x0070_606F_6C6F_6779;

/// One edge site of a topology: a planar attachment point with circular
/// coverage, an access-link budget, and a resident tenant population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeSite {
    x: f64,
    y: f64,
    zone: CoverageZone,
    technology: AccessTechnology,
    tenants: u32,
}

impl EdgeSite {
    /// Creates a site at planar position `(x, y)` metres.
    ///
    /// The tenant population is clamped to at least 1 (a site always hosts
    /// the tagged session itself).
    #[must_use]
    pub fn new(
        x: f64,
        y: f64,
        zone: CoverageZone,
        technology: AccessTechnology,
        tenants: u32,
    ) -> Self {
        Self {
            x,
            y,
            zone,
            technology,
            tenants: tenants.max(1),
        }
    }

    /// Planar centre of the site, in metres.
    #[must_use]
    pub fn center(&self) -> (f64, f64) {
        (self.x, self.y)
    }

    /// Coverage geometry of the site.
    #[must_use]
    pub fn zone(&self) -> CoverageZone {
        self.zone
    }

    /// Access technology (link budget) of the site.
    #[must_use]
    pub fn technology(&self) -> AccessTechnology {
        self.technology
    }

    /// Number of sessions resident at this site (including the tagged one):
    /// the arrival population of the site's shared M/M/1 edge queue.
    #[must_use]
    pub fn tenants(&self) -> u32 {
        self.tenants
    }

    /// Euclidean distance from the site centre to `(x, y)`.
    #[must_use]
    pub fn distance_to(&self, x: f64, y: f64) -> Meters {
        let dx = x - self.x;
        let dy = y - self.y;
        Meters::new((dx * dx + dy * dy).sqrt())
    }

    /// Whether `(x, y)` lies inside the site's coverage disk.
    #[must_use]
    pub fn covers(&self, x: f64, y: f64) -> bool {
        self.zone.covers(self.distance_to(x, y))
    }
}

/// A map of [`EdgeSite`]s a session can migrate across.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeTopology {
    sites: Vec<EdgeSite>,
}

impl EdgeTopology {
    /// The degenerate one-site topology: a single site at the origin with
    /// the given zone — the exact geometry of the paper's single coverage
    /// zone, used by the equivalence pin against [`RandomWalker`](crate::RandomWalker).
    #[must_use]
    pub fn single(zone: CoverageZone, technology: AccessTechnology, tenants: u32) -> Self {
        Self {
            sites: vec![EdgeSite::new(0.0, 0.0, zone, technology, tenants)],
        }
    }

    /// A tiled (or Voronoi-seeded) 4×4 map at `site_density` sites per
    /// square kilometre. The density fixes the lattice spacing
    /// (`1000/√density` metres for the square layout) and thus the per-site
    /// coverage radius; denser maps mean smaller cells and more frequent
    /// inter-site migrations at a given walking speed.
    ///
    /// Per-site tenant populations cycle deterministically around
    /// `base_tenants` (`base`, `base+1`, `max(1, base−1)`, …) so the tagged
    /// session's contention load genuinely changes as it migrates.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `site_density` is not a
    /// strictly positive finite number, or when `layout` is
    /// [`TopologyLayout::Single`] (use [`EdgeTopology::single`], which needs
    /// an explicit zone rather than a density).
    pub fn tiled(
        layout: TopologyLayout,
        site_density: f64,
        technology: AccessTechnology,
        base_tenants: u32,
    ) -> Result<Self> {
        if !(site_density.is_finite() && site_density > 0.0) {
            return Err(Error::invalid_parameter(
                "site_density",
                "must be a positive number of sites per km²",
            ));
        }
        // Area per site in m², from the density in sites/km².
        let area = 1e6 / site_density;
        let sites = match layout {
            TopologyLayout::Single => {
                return Err(Error::invalid_parameter(
                    "topology",
                    "the single layout takes an explicit zone, not a density",
                ));
            }
            TopologyLayout::Square => {
                // Square lattice: spacing √A; coverage = the cell's
                // circumcircle so neighbouring disks overlap.
                let spacing = area.sqrt();
                let radius = spacing / std::f64::consts::SQRT_2;
                Self::lattice(spacing, spacing, false)
                    .map(|(x, y, i)| Self::site(x, y, radius, technology, base_tenants, i))
                    .collect()
            }
            TopologyLayout::Hex => {
                // Triangular lattice with hexagonal cells: area per site
                // (√3/2)·s² → s = √(2A/√3); rows s·√3/2 apart, odd rows
                // offset by s/2; coverage = the hex cell's circumcircle s/√3.
                let spacing = (2.0 * area / 3f64.sqrt()).sqrt();
                let row_height = spacing * 3f64.sqrt() / 2.0;
                let radius = spacing / 3f64.sqrt();
                Self::lattice(spacing, row_height, true)
                    .map(|(x, y, i)| Self::site(x, y, radius, technology, base_tenants, i))
                    .collect()
            }
            TopologyLayout::Voronoi => {
                // Voronoi seeds: the square lattice jittered by a fixed
                // deterministic stream, radii from the realised
                // nearest-neighbour distances (gaps model coverage holes).
                let spacing = area.sqrt();
                let mut rng = StdRng::seed_from_u64(VORONOI_JITTER_SEED);
                let centers: Vec<(f64, f64)> = Self::lattice(spacing, spacing, false)
                    .map(|(x, y, _)| {
                        let jx = rng.gen_range(-0.35 * spacing..0.35 * spacing);
                        let jy = rng.gen_range(-0.35 * spacing..0.35 * spacing);
                        (x + jx, y + jy)
                    })
                    .collect();
                centers
                    .iter()
                    .enumerate()
                    .map(|(i, &(x, y))| {
                        let nearest = centers
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| j != i)
                            .map(|(_, &(ox, oy))| ((ox - x).powi(2) + (oy - y).powi(2)).sqrt())
                            .fold(f64::INFINITY, f64::min);
                        Self::site(x, y, 0.9 * nearest, technology, base_tenants, i)
                    })
                    .collect()
            }
        };
        Ok(Self { sites })
    }

    /// Centred `GRID_DIM × GRID_DIM` lattice positions (and the site index),
    /// optionally offsetting odd rows by half a column (the triangular
    /// lattice of the hex layout).
    fn lattice(
        col_spacing: f64,
        row_spacing: f64,
        offset_odd_rows: bool,
    ) -> impl Iterator<Item = (f64, f64, usize)> {
        let half = (GRID_DIM - 1) as f64 / 2.0;
        (0..GRID_DIM * GRID_DIM).map(move |i| {
            let row = i / GRID_DIM;
            let col = i % GRID_DIM;
            let offset = if offset_odd_rows && row % 2 == 1 {
                col_spacing / 2.0
            } else {
                0.0
            };
            (
                (col as f64 - half) * col_spacing + offset,
                (row as f64 - half) * row_spacing,
                i,
            )
        })
    }

    fn site(
        x: f64,
        y: f64,
        radius: f64,
        technology: AccessTechnology,
        base_tenants: u32,
        index: usize,
    ) -> EdgeSite {
        EdgeSite::new(
            x,
            y,
            CoverageZone::new(Meters::new(radius)),
            technology,
            Self::tenant_population(base_tenants, index),
        )
    }

    /// The deterministic per-site tenant rule of the tiled layouts: cycle
    /// `base`, `base+1`, `max(1, base−1)` by site index, so neighbouring
    /// sites offer genuinely different contention levels while the map-wide
    /// mean stays at `base`.
    #[must_use]
    pub fn tenant_population(base: u32, site_index: usize) -> u32 {
        match site_index % 3 {
            0 => base.max(1),
            1 => base.saturating_add(1),
            _ => base.saturating_sub(1).max(1),
        }
    }

    /// The sites of the map.
    #[must_use]
    pub fn sites(&self) -> &[EdgeSite] {
        &self.sites
    }

    /// Number of sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the map has no sites (never true for the provided
    /// constructors).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Index of the site a session attaches to at the map centre: the site
    /// whose centre is nearest the origin (lowest index on ties).
    ///
    /// # Panics
    ///
    /// Panics if the topology has no sites.
    #[must_use]
    pub fn start_site(&self) -> usize {
        self.nearest_to(0.0, 0.0)
    }

    /// Index of the site whose centre is nearest `(x, y)` (lowest index on
    /// ties).
    ///
    /// # Panics
    ///
    /// Panics if the topology has no sites.
    #[must_use]
    pub fn nearest_to(&self, x: f64, y: f64) -> usize {
        assert!(!self.sites.is_empty(), "topology has no sites");
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, site) in self.sites.iter().enumerate() {
            let d = site.distance_to(x, y).as_f64();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// The site a position should attach to: the nearest site whose
    /// coverage disk contains `(x, y)`, or `None` when the position falls in
    /// a coverage hole or off the map.
    #[must_use]
    pub fn site_covering(&self, x: f64, y: f64) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, site) in self.sites.iter().enumerate() {
            if !site.covers(x, y) {
                continue;
            }
            let d = site.distance_to(x, y).as_f64();
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Starts a stateful walk across this map: speed and step interval as in
    /// [`crate::RandomWalkMobility`], RNG stream derived from `seed`.
    #[must_use]
    pub fn walker(
        &self,
        speed: MetersPerSecond,
        step_interval: Seconds,
        seed: u64,
    ) -> TopologyWalker {
        TopologyWalker::new(self, speed, step_interval, seed)
    }
}

/// What happened to the session while advancing one observation window:
/// the site it was attached to when the window opened, and the boundary
/// crossings / inter-site migrations inside the window. `crossings` counts
/// every coverage-boundary exit (the legacy handoff count); `migrations ≤
/// crossings` counts the exits that re-attached to a *different* site and
/// therefore pay the state-migration cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteEvents {
    /// Site index at the start of the window (the site serving the frame's
    /// uplink, which runs before the mobility advance).
    pub site: usize,
    /// Coverage-boundary crossings inside the window.
    pub crossings: usize,
    /// Crossings that migrated the session to a neighbouring site.
    pub migrations: usize,
}

/// A stateful two-dimensional random walk across an [`EdgeTopology`] —
/// [`RandomWalker`](crate::RandomWalker) generalised from one zone to a site map.
///
/// The step mechanics are identical to the single-zone walker (one uniform
/// direction draw per step, fractional-window carry across
/// [`TopologyWalker::advance`] calls). The difference is what happens on a
/// boundary crossing: the walker looks up the nearest site covering its new
/// position and **migrates** there if one exists; only when no site covers
/// (a coverage hole, or the map edge) does it re-enter the current site
/// uniformly — the two extra draws of the legacy walker. Over
/// [`EdgeTopology::single`] no neighbour ever covers, so the walk replays
/// [`RandomWalker`](crate::RandomWalker) on the same stream bit for bit.
///
/// [`RandomWalker`](crate::RandomWalker): crate::RandomWalker
#[derive(Debug, Clone)]
pub struct TopologyWalker {
    x: f64,
    y: f64,
    site: usize,
    step_len: f64,
    step_interval: Seconds,
    sites: Vec<EdgeSite>,
    rng: StdRng,
    carry: f64,
    visited: Vec<bool>,
    visited_count: usize,
}

impl TopologyWalker {
    /// A walker starting at the centre of the map's start site, with its own
    /// deterministic RNG stream derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no sites, the speed is negative, or the
    /// step interval is not positive.
    #[must_use]
    pub fn new(
        topology: &EdgeTopology,
        speed: MetersPerSecond,
        step_interval: Seconds,
        seed: u64,
    ) -> Self {
        assert!(speed.as_f64() >= 0.0, "speed must be non-negative");
        assert!(
            step_interval.is_positive(),
            "step interval must be positive"
        );
        let site = topology.start_site();
        let (x, y) = topology.sites[site].center();
        let mut visited = vec![false; topology.sites.len()];
        visited[site] = true;
        Self {
            x,
            y,
            site,
            step_len: speed.as_f64() * step_interval.as_f64(),
            step_interval,
            sites: topology.sites.clone(),
            rng: StdRng::seed_from_u64(seed),
            carry: 0.0,
            visited,
            visited_count: 1,
        }
    }

    /// Index of the site the session is currently attached to.
    #[must_use]
    pub fn site_index(&self) -> usize {
        self.site
    }

    /// The site the session is currently attached to.
    #[must_use]
    pub fn current_site(&self) -> &EdgeSite {
        &self.sites[self.site]
    }

    /// Number of distinct sites visited so far (including the start site).
    #[must_use]
    pub fn sites_visited(&self) -> usize {
        self.visited_count
    }

    /// Current planar position, in metres.
    #[must_use]
    pub fn position(&self) -> (f64, f64) {
        (self.x, self.y)
    }

    /// Radial distance from the current site's centre — the generalisation
    /// of [`crate::RandomWalker::radius`].
    #[must_use]
    pub fn radius(&self) -> Meters {
        self.current_site().distance_to(self.x, self.y)
    }

    /// `true` when the position lies outside the current site's coverage.
    #[must_use]
    pub fn is_outside(&self) -> bool {
        !self.current_site().covers(self.x, self.y)
    }

    /// Repositions the session uniformly at random inside the current
    /// site's disk — the same rejection-free sqrt sampling (and the same two
    /// RNG draws) as [`crate::RandomWalker::reset_uniform`].
    pub fn reset_uniform(&mut self) {
        let r0 = self.current_site().zone().radius().as_f64() * self.rng.gen::<f64>().sqrt();
        let a0 = self.rng.gen_range(0.0..std::f64::consts::TAU);
        let (cx, cy) = self.current_site().center();
        self.x = cx + r0 * a0.cos();
        self.y = cy + r0 * a0.sin();
    }

    /// Takes one walk step in a uniformly random direction (one RNG draw,
    /// like [`crate::RandomWalker::step`]) and returns the new radial
    /// distance from the current site's centre.
    pub fn step(&mut self) -> Meters {
        let theta = self.rng.gen_range(0.0..std::f64::consts::TAU);
        self.x += self.step_len * theta.cos();
        self.y += self.step_len * theta.sin();
        self.radius()
    }

    /// Advances the walk by `window` of wall-clock time, stepping once per
    /// elapsed step interval with the same fractional carry as
    /// [`crate::RandomWalker::advance`]. Every exit from the current site's
    /// coverage counts as one crossing; each crossing either migrates to the
    /// nearest covering site (no extra draws) or, when nothing covers the
    /// position, re-enters the current site uniformly (two draws, the
    /// single-zone behaviour). Returns the window's [`SiteEvents`].
    pub fn advance(&mut self, window: Seconds) -> SiteEvents {
        let mut events = SiteEvents {
            site: self.site,
            crossings: 0,
            migrations: 0,
        };
        self.carry += window.as_f64().max(0.0);
        let interval = self.step_interval.as_f64();
        while self.carry >= interval {
            self.carry -= interval;
            self.step();
            if self.is_outside() {
                events.crossings += 1;
                match self.lookup_other_site() {
                    Some(next) => {
                        events.migrations += 1;
                        self.enter(next);
                    }
                    None => self.reset_uniform(),
                }
            }
        }
        events
    }

    /// [`TopologyWalker::advance`] over a whole batch of consecutive
    /// observation windows into a caller-provided buffer (cleared first) —
    /// the carry-preserving batched scan the structure-of-arrays frame
    /// engine runs once per batch, mirroring
    /// [`crate::RandomWalker::advance_many_into`]. Afterwards `events[i]`
    /// holds the [`SiteEvents`] of `windows[i]`, including the site serving
    /// that window's uplink.
    pub fn advance_many_into(&mut self, windows: &[Seconds], events: &mut Vec<SiteEvents>) {
        events.clear();
        events.extend(windows.iter().map(|&window| self.advance(window)));
    }

    /// The nearest site covering the current position. The current site
    /// never covers it here (callers check [`TopologyWalker::is_outside`]
    /// first), so any hit is a genuine migration target.
    fn lookup_other_site(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, site) in self.sites.iter().enumerate() {
            if !site.covers(self.x, self.y) {
                continue;
            }
            let d = site.distance_to(self.x, self.y).as_f64();
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best.map(|(i, _)| i)
    }

    fn enter(&mut self, site: usize) {
        self.site = site;
        if !self.visited[site] {
            self.visited[site] = true;
            self.visited_count += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::{RandomWalkMobility, RandomWalker};

    fn zone(radius: f64) -> CoverageZone {
        CoverageZone::new(Meters::new(radius))
    }

    fn single_walkers(speed: f64, radius: f64, seed: u64) -> (RandomWalker, TopologyWalker) {
        let mobility =
            RandomWalkMobility::new(MetersPerSecond::new(speed), Seconds::new(0.1), zone(radius));
        let topology = EdgeTopology::single(zone(radius), AccessTechnology::WiFi5GHz, 1);
        (
            mobility.walker(seed),
            topology.walker(MetersPerSecond::new(speed), Seconds::new(0.1), seed),
        )
    }

    #[test]
    fn single_site_walker_replays_the_legacy_walker_bit_for_bit() {
        let (mut legacy, mut topo) = single_walkers(25.0, 6.0, 17);
        legacy.reset_uniform();
        topo.reset_uniform();
        for i in 0..400 {
            let window = Seconds::new(match i % 3 {
                0 => 1.0 / 30.0,
                1 => 0.25,
                _ => 0.01,
            });
            let crossings = legacy.advance(window);
            let events = topo.advance(window);
            assert_eq!(events.crossings, crossings, "window {i}");
            assert_eq!(events.migrations, 0, "one site can never migrate");
            assert_eq!(topo.radius(), legacy.radius(), "window {i}");
        }
        assert_eq!(topo.sites_visited(), 1);
        // The streams are still in lockstep: the next draws agree too.
        assert_eq!(legacy.step(), topo.step());
    }

    #[test]
    fn tiled_layouts_have_sixteen_sites_at_the_requested_density() {
        for layout in [
            TopologyLayout::Square,
            TopologyLayout::Hex,
            TopologyLayout::Voronoi,
        ] {
            let topology =
                EdgeTopology::tiled(layout, 400.0, AccessTechnology::WiFi5GHz, 4).unwrap();
            assert_eq!(topology.len(), GRID_DIM * GRID_DIM);
            assert!(!topology.is_empty());
            for site in topology.sites() {
                assert!(site.zone().radius().as_f64() > 0.0);
                assert!(site.tenants() >= 1);
                assert_eq!(site.technology(), AccessTechnology::WiFi5GHz);
            }
            // 400 sites/km² → 50 m square spacing; every layout's sites sit
            // within the ~200 m map footprint.
            for site in topology.sites() {
                let (x, y) = site.center();
                assert!(x.abs() < 200.0 && y.abs() < 200.0, "{layout}: ({x}, {y})");
            }
        }
    }

    #[test]
    fn denser_maps_have_smaller_cells() {
        let sparse =
            EdgeTopology::tiled(TopologyLayout::Square, 100.0, AccessTechnology::WiFi5GHz, 1)
                .unwrap();
        let dense = EdgeTopology::tiled(
            TopologyLayout::Square,
            2500.0,
            AccessTechnology::WiFi5GHz,
            1,
        )
        .unwrap();
        assert!(
            dense.sites()[0].zone().radius() < sparse.sites()[0].zone().radius(),
            "density must shrink the coverage radius"
        );
    }

    #[test]
    fn tenant_populations_cycle_around_the_base() {
        assert_eq!(EdgeTopology::tenant_population(4, 0), 4);
        assert_eq!(EdgeTopology::tenant_population(4, 1), 5);
        assert_eq!(EdgeTopology::tenant_population(4, 2), 3);
        assert_eq!(EdgeTopology::tenant_population(4, 3), 4);
        // Never below one session (the tagged one).
        assert_eq!(EdgeTopology::tenant_population(1, 2), 1);
        assert_eq!(EdgeTopology::tenant_population(0, 0), 1);
    }

    #[test]
    fn invalid_densities_and_the_single_layout_are_rejected() {
        for density in [0.0, -4.0, f64::NAN, f64::INFINITY] {
            let err = EdgeTopology::tiled(
                TopologyLayout::Square,
                density,
                AccessTechnology::WiFi5GHz,
                1,
            )
            .unwrap_err();
            assert!(err.to_string().contains("site_density"), "{density}");
        }
        assert!(
            EdgeTopology::tiled(TopologyLayout::Single, 100.0, AccessTechnology::WiFi5GHz, 1)
                .is_err()
        );
    }

    #[test]
    fn walker_migrates_between_sites_on_a_tiled_map() {
        let topology = EdgeTopology::tiled(
            TopologyLayout::Square,
            2500.0,
            AccessTechnology::WiFi5GHz,
            2,
        )
        .unwrap();
        let mut walker = topology.walker(MetersPerSecond::new(25.0), Seconds::new(0.1), 7);
        walker.reset_uniform();
        let mut crossings = 0usize;
        let mut migrations = 0usize;
        for _ in 0..600 {
            let events = walker.advance(Seconds::new(1.0 / 5.0));
            crossings += events.crossings;
            migrations += events.migrations;
            assert!(events.migrations <= events.crossings);
            assert!(events.site < topology.len());
        }
        assert!(crossings > 0, "vehicle never left a 20 m cell");
        assert!(migrations > 0, "overlapping square disks must migrate");
        assert!(walker.sites_visited() > 1);
        assert!(walker.sites_visited() <= topology.len());
    }

    #[test]
    fn batched_advance_matches_repeated_advance() {
        let topology =
            EdgeTopology::tiled(TopologyLayout::Hex, 1600.0, AccessTechnology::WiFi5GHz, 3)
                .unwrap();
        let windows: Vec<Seconds> = (0..150)
            .map(|i| Seconds::new(if i % 2 == 0 { 1.0 / 30.0 } else { 0.21 }))
            .collect();
        let mut scalar = topology.walker(MetersPerSecond::new(20.0), Seconds::new(0.1), 31);
        let mut batched = scalar.clone();
        let expected: Vec<SiteEvents> = windows.iter().map(|&w| scalar.advance(w)).collect();
        let mut events = vec![SiteEvents::default(); 3];
        batched.advance_many_into(&windows, &mut events);
        assert_eq!(events, expected);
        assert_eq!(batched.position(), scalar.position());
        assert_eq!(batched.site_index(), scalar.site_index());
        assert_eq!(batched.sites_visited(), scalar.sites_visited());
    }

    #[test]
    fn start_site_and_lookup_are_deterministic() {
        let topology =
            EdgeTopology::tiled(TopologyLayout::Voronoi, 400.0, AccessTechnology::Lte, 2).unwrap();
        let start = topology.start_site();
        assert_eq!(start, topology.start_site());
        let (x, y) = topology.sites()[start].center();
        assert_eq!(topology.nearest_to(x, y), start);
        assert_eq!(topology.site_covering(x, y), Some(start));
        // Far off the map nothing covers.
        assert_eq!(topology.site_covering(1e6, 1e6), None);
        // Two identically seeded builds are the same map.
        let again =
            EdgeTopology::tiled(TopologyLayout::Voronoi, 400.0, AccessTechnology::Lte, 2).unwrap();
        assert_eq!(topology, again);
    }
}
