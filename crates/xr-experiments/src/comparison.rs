//! The Fig. 5 comparison: normalized accuracy of the proposed model, FACT,
//! and LEAF against the ground truth for remote inference.

use crate::context::ExperimentContext;
use serde::{Deserialize, Serialize};
use xr_baselines::{BaselineModel, FactModel, LeafModel};
use xr_stats::metrics;
use xr_sweep::SweepGrid;
use xr_types::{ExecutionTarget, Joules, Result, Seconds};

/// Which quantity Fig. 5 compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Fig. 5(a): end-to-end latency.
    Latency,
    /// Fig. 5(b): end-to-end energy consumption.
    Energy,
}

impl Metric {
    /// Figure label.
    #[must_use]
    pub fn figure(&self) -> &'static str {
        match self {
            Metric::Latency => "Fig. 5(a)",
            Metric::Energy => "Fig. 5(b)",
        }
    }
}

/// One frame-size point of the Fig. 5 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComparisonPoint {
    /// The frame-size parameter.
    pub frame_size: f64,
    /// Ground-truth value (ms or mJ).
    pub ground_truth: f64,
    /// Proposed-model prediction.
    pub proposed: f64,
    /// FACT prediction.
    pub fact: f64,
    /// LEAF prediction.
    pub leaf: f64,
}

/// The whole Fig. 5 panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonSweep {
    /// Which metric was compared.
    pub metric: Metric,
    /// Per-frame-size points.
    pub points: Vec<ComparisonPoint>,
}

impl ComparisonSweep {
    fn series(&self, select: impl Fn(&ComparisonPoint) -> f64) -> Vec<f64> {
        self.points.iter().map(select).collect()
    }

    /// Normalized accuracy (%) of the proposed model over the sweep.
    #[must_use]
    pub fn proposed_accuracy(&self) -> f64 {
        metrics::normalized_accuracy(
            &self.series(|p| p.ground_truth),
            &self.series(|p| p.proposed),
        )
    }

    /// Normalized accuracy (%) of FACT over the sweep.
    #[must_use]
    pub fn fact_accuracy(&self) -> f64 {
        metrics::normalized_accuracy(&self.series(|p| p.ground_truth), &self.series(|p| p.fact))
    }

    /// Normalized accuracy (%) of LEAF over the sweep.
    #[must_use]
    pub fn leaf_accuracy(&self) -> f64 {
        metrics::normalized_accuracy(&self.series(|p| p.ground_truth), &self.series(|p| p.leaf))
    }

    /// The paper's headline improvement figures: (accuracy gain over FACT,
    /// accuracy gain over LEAF), in percentage points.
    #[must_use]
    pub fn improvement_over_baselines(&self) -> (f64, f64) {
        (
            self.proposed_accuracy() - self.fact_accuracy(),
            self.proposed_accuracy() - self.leaf_accuracy(),
        )
    }

    /// CSV/console rows: per-point normalized accuracy for every model (GT is
    /// 100 % by definition, as in the figure).
    #[must_use]
    pub fn rows(&self) -> Vec<Vec<String>> {
        let gt: Vec<f64> = self.series(|p| p.ground_truth);
        let acc = |pred: Vec<f64>| metrics::normalized_accuracy_series(&gt, &pred);
        let proposed = acc(self.series(|p| p.proposed));
        let fact = acc(self.series(|p| p.fact));
        let leaf = acc(self.series(|p| p.leaf));
        self.points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                vec![
                    format!("{:.0}", p.frame_size),
                    "100.00".to_string(),
                    format!("{:.2}", proposed[i]),
                    format!("{:.2}", fact[i]),
                    format!("{:.2}", leaf[i]),
                ]
            })
            .collect()
    }
}

/// Runs the Fig. 5 comparison for one metric.
///
/// Every model sees the same scenarios; FACT and LEAF are first calibrated at
/// the central operating point (500 px², 2 GHz) against the ground truth,
/// mirroring how their constants would be fitted on measurement data.
///
/// # Errors
///
/// Propagates scenario and model errors.
pub fn comparison_sweep(ctx: &ExperimentContext, metric: Metric) -> Result<ComparisonSweep> {
    let clock = 2.0;
    let mut fact = FactModel::new();
    let mut leaf = LeafModel::new();

    // Calibrate the baselines at the centre of the sweep.
    let reference = ctx.scenario(500.0, clock, ExecutionTarget::Remote)?;
    let reference_session = ctx
        .testbed()
        .simulate_session(&reference, ctx.frames_per_point())?;
    let observed_latency = reference_session.mean_latency();
    let observed_energy = reference_session.mean_energy();
    fact.calibrate(&reference, observed_latency, observed_energy)?;
    leaf.calibrate(&reference, observed_latency, observed_energy)?;

    // The Fig. 5 sweep is a single-clock campaign over the frame-size axis,
    // driven by the shared engine once the baselines are calibrated.
    let grid = SweepGrid::paper_panel(ExecutionTarget::Remote).with_cpu_clocks([clock]);
    let points = ctx.runner().run(&grid.points()?, |_, point| {
        let scenario = ctx.scenario_for(point)?;
        let session = ctx
            .testbed()
            .simulate_session(&scenario, ctx.frames_per_point())?;
        let report = ctx.proposed().analyze(&scenario)?;
        let (ground_truth, proposed, fact_value, leaf_value) = match metric {
            Metric::Latency => (
                session.mean_latency().as_f64() * 1e3,
                report.latency_ms().as_f64(),
                to_ms(fact.predict_latency(&scenario)?),
                to_ms(leaf.predict_latency(&scenario)?),
            ),
            Metric::Energy => (
                session.mean_energy().as_f64() * 1e3,
                report.energy_mj().as_f64(),
                to_mj(fact.predict_energy(&scenario)?),
                to_mj(leaf.predict_energy(&scenario)?),
            ),
        };
        Ok(ComparisonPoint {
            frame_size: point.frame_size,
            ground_truth,
            proposed,
            fact: fact_value,
            leaf: leaf_value,
        })
    })?;
    Ok(ComparisonSweep { metric, points })
}

fn to_ms(latency: Seconds) -> f64 {
    latency.as_f64() * 1e3
}

fn to_mj(energy: Joules) -> f64 {
    energy.as_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_model_beats_both_baselines_on_latency() {
        let ctx = ExperimentContext::quick(21).unwrap();
        let sweep = comparison_sweep(&ctx, Metric::Latency).unwrap();
        assert_eq!(sweep.points.len(), 5);
        assert!(
            sweep.proposed_accuracy() > sweep.fact_accuracy(),
            "proposed {} vs FACT {}",
            sweep.proposed_accuracy(),
            sweep.fact_accuracy()
        );
        assert!(
            sweep.proposed_accuracy() > sweep.leaf_accuracy(),
            "proposed {} vs LEAF {}",
            sweep.proposed_accuracy(),
            sweep.leaf_accuracy()
        );
        let (vs_fact, vs_leaf) = sweep.improvement_over_baselines();
        assert!(vs_fact > 0.0 && vs_leaf > 0.0);
        assert_eq!(sweep.rows().len(), 5);
        assert_eq!(Metric::Latency.figure(), "Fig. 5(a)");
    }

    #[test]
    fn proposed_model_beats_both_baselines_on_energy() {
        let ctx = ExperimentContext::quick(22).unwrap();
        let sweep = comparison_sweep(&ctx, Metric::Energy).unwrap();
        assert!(sweep.proposed_accuracy() > sweep.fact_accuracy());
        assert!(sweep.proposed_accuracy() > sweep.leaf_accuracy());
        assert!(sweep.proposed_accuracy() > 70.0);
        assert_eq!(Metric::Energy.figure(), "Fig. 5(b)");
    }
}
