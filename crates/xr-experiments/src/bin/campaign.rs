//! The consolidated campaign binary: sweeps the full five-axis quick grid
//! (frame size × CPU clock × execution target × device × wireless condition)
//! through the parallel campaign engine and writes one row per operating
//! point to `campaign.csv`.
//!
//! The CSV is bit-identical for every worker count (`XR_SWEEP_WORKERS`); CI
//! runs this binary twice with different counts and diffs the artifacts.

use xr_experiments::campaign::{quick_grid, run_campaign, CAMPAIGN_HEADER};
use xr_experiments::{output, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::from_args();
    let grid = quick_grid();
    let rows = run_campaign(&ctx, &grid).expect("campaign failed");
    let cells: Vec<Vec<String>> = rows.iter().map(|r| r.cells()).collect();
    output::print_experiment(
        "Consolidated campaign — five-axis sweep",
        &CAMPAIGN_HEADER,
        &cells,
        "campaign.csv",
    );
    println!(
        "{} operating points evaluated with {} worker(s)",
        rows.len(),
        ctx.runner().workers()
    );
}
