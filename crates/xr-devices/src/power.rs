//! The power-consumption sub-models of Section V.
//!
//! * [`MeanPowerModel`] — the mean-power regression of Eq. 21,
//!   `P_mean = ω_c·(18.85·f_c − 3.64·f_c² − 20.74)
//!           + (1 − ω_c)·(187.48·f_g − 135.11·f_g² − 62.197)` (R² = 0.863),
//!   in watts.
//! * [`BasePower`] — the always-on background power (system clock, display,
//!   connectivity, leakage current) that accrues as `E_base` over the frame.
//! * [`ThermalModel`] — the small fraction of consumed electrical energy that
//!   is converted to heat (`E_θ`).

use serde::{Deserialize, Serialize};
use xr_stats::{FittedLinearModel, LinearRegression};
use xr_types::{GigaHertz, Joules, Ratio, Result, Seconds, Watts};

/// Lower clamp on the regression output: a running XR workload never draws
/// less than this (Eq. 21 extrapolates below zero outside the fitted range).
const MIN_ACTIVE_POWER_W: f64 = 0.25;

/// The mean-power regression of Eq. 21.
///
/// Like [`crate::ComputeResourceModel`], the model is linear in the six
/// structural features `[ω_c, ω_c·f_c, ω_c·f_c², ω̄_c, ω̄_c·f_g, ω̄_c·f_g²]`
/// with no global intercept.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeanPowerModel {
    model: FittedLinearModel,
}

impl MeanPowerModel {
    /// The published coefficients of Eq. 21 (R² = 0.863).
    #[must_use]
    pub fn published() -> Self {
        // Feature order: [ω_c, ω_c·f_c, ω_c·f_c², ω̄_c, ω̄_c·f_g, ω̄_c·f_g²]
        Self {
            model: FittedLinearModel::from_coefficients(
                0.0,
                vec![-20.74, 18.85, -3.64, -62.197, 187.48, -135.11],
                0.863,
            ),
        }
    }

    /// Refits the Eq.-21 functional form on observations
    /// `(f_c, f_g, ω_c) → mean power (W)`.
    ///
    /// # Errors
    ///
    /// Propagates regression errors.
    pub fn fit(observations: &[(GigaHertz, GigaHertz, Ratio)], power_w: &[f64]) -> Result<Self> {
        let xs: Vec<Vec<f64>> = observations
            .iter()
            .map(|(fc, fg, wc)| Self::features(*fc, *fg, *wc))
            .collect();
        let model = LinearRegression::new()
            .without_intercept()
            .fit(&xs, power_w)?;
        Ok(Self { model })
    }

    /// The structural feature vector of Eq. 21.
    #[must_use]
    pub fn features(cpu_clock: GigaHertz, gpu_clock: GigaHertz, cpu_share: Ratio) -> Vec<f64> {
        let fc = cpu_clock.as_f64();
        let fg = gpu_clock.as_f64();
        let wc = cpu_share.as_f64();
        let wg = 1.0 - wc;
        vec![wc, wc * fc, wc * fc * fc, wg, wg * fg, wg * fg * fg]
    }

    /// Mean power draw while executing a computation segment, clamped below
    /// at a small positive floor.
    #[must_use]
    pub fn mean_power(
        &self,
        cpu_clock: GigaHertz,
        gpu_clock: GigaHertz,
        cpu_share: Ratio,
    ) -> Watts {
        Watts::new(
            self.model
                .predict(&Self::features(cpu_clock, gpu_clock, cpu_share))
                .max(MIN_ACTIVE_POWER_W),
        )
    }

    /// Energy of a segment: `∫₀^L P dt = P_mean · L` (the per-segment
    /// integrals of Eq. 20 with a constant mean power).
    #[must_use]
    pub fn segment_energy(
        &self,
        cpu_clock: GigaHertz,
        gpu_clock: GigaHertz,
        cpu_share: Ratio,
        latency: Seconds,
    ) -> Joules {
        self.mean_power(cpu_clock, gpu_clock, cpu_share) * latency.max(Seconds::ZERO)
    }

    /// R² of the underlying regression.
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        self.model.r_squared()
    }

    /// Access to the fitted regression.
    #[must_use]
    pub fn regression(&self) -> &FittedLinearModel {
        &self.model
    }
}

impl Default for MeanPowerModel {
    fn default() -> Self {
        Self::published()
    }
}

/// Always-on base power of an XR device (Section V-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BasePower {
    power: Watts,
}

impl BasePower {
    /// Typical smartphone base draw with the screen on and radios idle,
    /// matching the measurement literature the paper builds on (≈ 0.8 W).
    #[must_use]
    pub fn typical_smartphone() -> Self {
        Self {
            power: Watts::new(0.8),
        }
    }

    /// Creates a base-power model from an explicit draw.
    ///
    /// # Panics
    ///
    /// Panics if the power is negative.
    #[must_use]
    pub fn new(power: Watts) -> Self {
        assert!(power.as_f64() >= 0.0, "base power must be non-negative");
        Self { power }
    }

    /// The base power draw.
    #[must_use]
    pub fn power(&self) -> Watts {
        self.power
    }

    /// Base energy over a window: `E_base = P_base · T`.
    #[must_use]
    pub fn energy_over(&self, window: Seconds) -> Joules {
        self.power * window.max(Seconds::ZERO)
    }
}

impl Default for BasePower {
    fn default() -> Self {
        Self::typical_smartphone()
    }
}

/// Fraction of the consumed electrical energy converted to heat (`E_θ`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    fraction: Ratio,
}

impl ThermalModel {
    /// Typical conversion fraction for a passively-cooled mobile SoC (≈ 5 %).
    #[must_use]
    pub fn typical() -> Self {
        Self {
            fraction: Ratio::new(0.05),
        }
    }

    /// Creates a thermal model from an explicit conversion fraction.
    #[must_use]
    pub fn new(fraction: Ratio) -> Self {
        Self { fraction }
    }

    /// The conversion fraction.
    #[must_use]
    pub fn fraction(&self) -> Ratio {
        self.fraction
    }

    /// Thermal energy `E_θ` produced while consuming `consumed` joules of
    /// electrical energy.
    #[must_use]
    pub fn thermal_energy(&self, consumed: Joules) -> Joules {
        consumed.max_zero() * self.fraction.as_f64()
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        Self::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(v: f64) -> GigaHertz {
        GigaHertz::new(v)
    }

    #[test]
    fn published_matches_eq21_cpu_only() {
        let m = MeanPowerModel::published();
        for f in [2.0, 2.5, 3.0] {
            let expected = 18.85 * f - 3.64 * f * f - 20.74;
            let got = m.mean_power(ghz(f), ghz(0.6), Ratio::ONE).as_f64();
            assert!((got - expected).abs() < 1e-9, "f={f}");
        }
    }

    #[test]
    fn published_matches_eq21_gpu_only() {
        let m = MeanPowerModel::published();
        let f = 0.6_f64;
        let expected = 187.48 * f - 135.11 * f * f - 62.197;
        let got = m.mean_power(ghz(2.0), ghz(f), Ratio::ZERO).as_f64();
        assert!((got - expected).abs() < 1e-9);
    }

    #[test]
    fn power_clamped_outside_fitted_range() {
        let m = MeanPowerModel::published();
        // At 1 GHz CPU-only the raw Eq. 21 value is negative; clamp applies.
        let p = m.mean_power(ghz(1.0), ghz(0.6), Ratio::ONE);
        assert!(p.as_f64() >= MIN_ACTIVE_POWER_W);
    }

    #[test]
    fn segment_energy_is_power_times_latency() {
        let m = MeanPowerModel::published();
        let p = m.mean_power(ghz(2.84), ghz(0.587), Ratio::new(0.5));
        let e = m.segment_energy(ghz(2.84), ghz(0.587), Ratio::new(0.5), Seconds::new(0.2));
        assert!((e.as_f64() - p.as_f64() * 0.2).abs() < 1e-12);
        // Negative latency clamps to zero energy.
        let e = m.segment_energy(ghz(2.84), ghz(0.587), Ratio::new(0.5), Seconds::new(-1.0));
        assert_eq!(e.as_f64(), 0.0);
    }

    #[test]
    fn refit_recovers_known_power_law() {
        let mut obs = Vec::new();
        let mut ys = Vec::new();
        for fc10 in 18..=32 {
            for fg10 in 4..=14 {
                for wc10 in 0..=10 {
                    let fc = fc10 as f64 / 10.0;
                    let fg = fg10 as f64 / 10.0;
                    let wc = wc10 as f64 / 10.0;
                    obs.push((ghz(fc), ghz(fg), Ratio::new(wc)));
                    ys.push(wc * (0.5 + 1.1 * fc) + (1.0 - wc) * (0.3 + 2.5 * fg));
                }
            }
        }
        let fit = MeanPowerModel::fit(&obs, &ys).unwrap();
        assert!(fit.r_squared() > 0.999);
        let p = fit.mean_power(ghz(2.5), ghz(1.0), Ratio::new(0.4)).as_f64();
        let truth = 0.4 * (0.5 + 1.1 * 2.5) + 0.6 * (0.3 + 2.5 * 1.0);
        assert!((p - truth).abs() < 1e-6);
        assert_eq!(fit.regression().coefficients().len(), 6);
    }

    #[test]
    fn base_power_energy_accrues_linearly() {
        let base = BasePower::typical_smartphone();
        assert!((base.power().as_f64() - 0.8).abs() < 1e-12);
        let e = base.energy_over(Seconds::new(2.0));
        assert!((e.as_f64() - 1.6).abs() < 1e-12);
        assert_eq!(base.energy_over(Seconds::new(-1.0)).as_f64(), 0.0);
        let custom = BasePower::new(Watts::new(0.4));
        assert!((custom.energy_over(Seconds::new(1.0)).as_f64() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn thermal_energy_is_a_fraction() {
        let t = ThermalModel::typical();
        assert!((t.fraction().as_f64() - 0.05).abs() < 1e-12);
        let e = t.thermal_energy(Joules::new(10.0));
        assert!((e.as_f64() - 0.5).abs() < 1e-12);
        assert_eq!(t.thermal_energy(Joules::new(-3.0)).as_f64(), 0.0);
        let half = ThermalModel::new(Ratio::new(0.5));
        assert!((half.thermal_energy(Joules::new(2.0)).as_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "base power must be non-negative")]
    fn negative_base_power_rejected() {
        let _ = BasePower::new(Watts::new(-1.0));
    }

    #[test]
    fn higher_gpu_clock_draws_more_power_in_fitted_range() {
        let m = MeanPowerModel::published();
        // Within the fitted band (≈0.45–0.7 GHz for the GPUs of Table I) the
        // published quadratic is increasing.
        let low = m.mean_power(ghz(2.5), ghz(0.45), Ratio::ZERO);
        let high = m.mean_power(ghz(2.5), ghz(0.65), Ratio::ZERO);
        assert!(high > low);
    }
}
