//! The §VIII-A/B mean-error summary: the proposed model's mean error against
//! ground truth for latency and energy, local and remote execution.

use crate::context::ExperimentContext;
use crate::figures::{energy_sweep, latency_sweep};
use serde::{Deserialize, Serialize};
use xr_types::{ExecutionTarget, Result};

/// The four mean-error numbers the paper reports in §VIII-A/B
/// (2.74 %, 3.23 %, 3.52 %, 5.38 % on the real testbed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorSummary {
    /// Mean error of the latency model under local inference (%).
    pub latency_local_percent: f64,
    /// Mean error of the latency model under remote inference (%).
    pub latency_remote_percent: f64,
    /// Mean error of the energy model under local inference (%).
    pub energy_local_percent: f64,
    /// Mean error of the energy model under remote inference (%).
    pub energy_remote_percent: f64,
}

impl ErrorSummary {
    /// Computes the summary over the full Fig. 4 sweeps.
    ///
    /// # Errors
    ///
    /// Propagates scenario and model errors.
    pub fn compute(ctx: &ExperimentContext) -> Result<Self> {
        Ok(Self {
            latency_local_percent: latency_sweep(ctx, ExecutionTarget::Local)?.mean_error_percent(),
            latency_remote_percent: latency_sweep(ctx, ExecutionTarget::Remote)?
                .mean_error_percent(),
            energy_local_percent: energy_sweep(ctx, ExecutionTarget::Local)?.mean_error_percent(),
            energy_remote_percent: energy_sweep(ctx, ExecutionTarget::Remote)?.mean_error_percent(),
        })
    }

    /// The largest of the four errors.
    #[must_use]
    pub fn worst_percent(&self) -> f64 {
        self.latency_local_percent
            .max(self.latency_remote_percent)
            .max(self.energy_local_percent)
            .max(self.energy_remote_percent)
    }

    /// Console/CSV rows comparing against the paper's reported values.
    #[must_use]
    pub fn rows(&self) -> Vec<Vec<String>> {
        vec![
            vec![
                "latency/local".into(),
                format!("{:.2}", self.latency_local_percent),
                "2.74".into(),
            ],
            vec![
                "latency/remote".into(),
                format!("{:.2}", self.latency_remote_percent),
                "3.23".into(),
            ],
            vec![
                "energy/local".into(),
                format!("{:.2}", self.energy_local_percent),
                "3.52".into(),
            ],
            vec![
                "energy/remote".into(),
                format!("{:.2}", self.energy_remote_percent),
                "5.38".into(),
            ],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_summary_stays_in_single_digit_territory() {
        let ctx = ExperimentContext::quick(41).unwrap();
        let summary = ErrorSummary::compute(&ctx).unwrap();
        // On the simulated testbed the calibrated model should stay within a
        // handful of percent — the same order as the paper's 2.7–5.4 %.
        assert!(summary.worst_percent() < 20.0, "{summary:?}");
        assert!(summary.latency_local_percent > 0.0);
        assert_eq!(summary.rows().len(), 4);
    }
}
