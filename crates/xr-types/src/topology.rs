//! Shared multi-edge topology vocabulary.
//!
//! The paper models a *single* edge-assisted coverage zone; the workspace's
//! multi-edge extension (the `xr-wireless` topology module and the testbed's
//! edge-to-edge handoff stage) tiles a service area with many edge sites and
//! migrates the tagged session between them. The two small enums here are the
//! cross-crate vocabulary of that extension: the site **layout** family and
//! the state-**migration policy** priced at each inter-site handoff. They
//! live in `xr-types` (like [`crate::ExecutionTarget`]) because the sweep
//! engine's operating-point grid needs them without depending on the
//! wireless substrate.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The site-layout family of an edge topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyLayout {
    /// One site covering the whole service area — the degenerate layout that
    /// must reproduce the paper's single-coverage-zone behaviour bit for bit
    /// (the equivalence pin of the topology refactor). Not reachable from
    /// grid files; campaigns sweep the tiled layouts below.
    Single,
    /// Sites on a square lattice, each covering the circumcircle of its
    /// tile (neighbouring disks overlap, so the map has no coverage holes).
    Square,
    /// Sites on a triangular lattice with hexagonal cells — the classic
    /// cellular layout; cell circumcircles overlap like the square case.
    Hex,
    /// Voronoi-seeded sites: lattice positions jittered by a deterministic
    /// per-site offset, with per-site radii derived from the
    /// nearest-neighbour distance. Gaps between disks model coverage holes:
    /// a session falling into one re-enters its old site's service area
    /// instead of migrating.
    Voronoi,
}

impl fmt::Display for TopologyLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TopologyLayout::Single => "single",
            TopologyLayout::Square => "square",
            TopologyLayout::Hex => "hex",
            TopologyLayout::Voronoi => "voronoi",
        })
    }
}

impl FromStr for TopologyLayout {
    type Err = crate::Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "single" => Ok(TopologyLayout::Single),
            "square" => Ok(TopologyLayout::Square),
            "hex" => Ok(TopologyLayout::Hex),
            "voronoi" => Ok(TopologyLayout::Voronoi),
            other => Err(crate::Error::invalid_parameter(
                "topology",
                format!("unknown layout `{other}` (expected square, hex, or voronoi)"),
            )),
        }
    }
}

/// How session state follows the device across an inter-site handoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MigrationPolicy {
    /// Re-offload eagerly: the source site pushes the full session state
    /// (decoder context, CNN activations, render surfaces) to the target
    /// site inline with the handoff, so every migration pays the whole
    /// state-transfer latency up front.
    Eager,
    /// Re-offload lazily: the handoff only redirects the uplink; session
    /// state is fetched on demand over the inter-edge backhaul, so the
    /// inline migration cost is a small redirect penalty (the deferred
    /// fetches are amortised into later service and not modelled here).
    Lazy,
}

impl fmt::Display for MigrationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MigrationPolicy::Eager => "eager",
            MigrationPolicy::Lazy => "lazy",
        })
    }
}

impl FromStr for MigrationPolicy {
    type Err = crate::Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "eager" => Ok(MigrationPolicy::Eager),
            "lazy" => Ok(MigrationPolicy::Lazy),
            other => Err(crate::Error::invalid_parameter(
                "migration_policy",
                format!("unknown migration policy `{other}` (expected eager or lazy)"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_round_trip_through_strings() {
        for layout in [
            TopologyLayout::Single,
            TopologyLayout::Square,
            TopologyLayout::Hex,
            TopologyLayout::Voronoi,
        ] {
            assert_eq!(
                layout.to_string().parse::<TopologyLayout>().unwrap(),
                layout
            );
        }
        let err = "triangular".parse::<TopologyLayout>().unwrap_err();
        assert!(err.to_string().contains("unknown layout `triangular`"));
    }

    #[test]
    fn policies_round_trip_through_strings() {
        for policy in [MigrationPolicy::Eager, MigrationPolicy::Lazy] {
            assert_eq!(
                policy.to_string().parse::<MigrationPolicy>().unwrap(),
                policy
            );
        }
        let err = "hot".parse::<MigrationPolicy>().unwrap_err();
        assert!(err.to_string().contains("unknown migration policy `hot`"));
    }
}
