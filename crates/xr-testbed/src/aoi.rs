//! Event-driven ground truth for the Age-of-Information experiments
//! (Figs. 4(e)/(f)).
//!
//! Sensors generate information packets at their own cadence (with a small
//! clock jitter); packets cross the wireless medium and wait in the input
//! buffer (exponential sojourn of the stable M/M/1 flow); the XR application
//! issues update requests at a fixed period. The measured AoI of the `n`-th
//! update is the age of the `n`-th information packet at the moment the
//! request is served.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};
use xr_core::SensorConfig;
use xr_types::{Error, Result, Seconds, SPEED_OF_LIGHT};

/// Ground-truth AoI series for one sensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AoiGroundTruth {
    /// Sensor label.
    pub name: String,
    /// Request timestamps (one per update cycle).
    pub request_times: Vec<Seconds>,
    /// Measured AoI at each update cycle.
    pub aoi: Vec<Seconds>,
}

impl AoiGroundTruth {
    /// Mean AoI over the observed updates.
    #[must_use]
    pub fn mean(&self) -> Seconds {
        if self.aoi.is_empty() {
            return Seconds::ZERO;
        }
        Seconds::new(self.aoi.iter().map(|a| a.as_f64()).sum::<f64>() / self.aoi.len() as f64)
    }

    /// Measured Relevance-of-Information: the processed frequency `1/mean`
    /// over the required frequency `1/request_period`.
    #[must_use]
    pub fn roi(&self, request_period: Seconds) -> f64 {
        let mean = self.mean().as_f64();
        if mean <= 0.0 {
            return f64::INFINITY;
        }
        (1.0 / mean) / (1.0 / request_period.as_f64().max(f64::MIN_POSITIVE))
    }

    /// Simulates the AoI ground truth for one sensor.
    ///
    /// * `service_rate` — input-buffer service rate `µ` (items/s),
    /// * `request_period` — the application's update request period,
    /// * `updates` — how many update cycles to observe,
    /// * `jitter` — relative clock jitter of the sensor (e.g. 0.02),
    /// * `seed` — RNG seed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnstableQueue`] when the sensor saturates the buffer
    /// and [`Error::InvalidParameter`] for a non-positive request period or
    /// zero updates.
    pub fn simulate(
        sensor: &SensorConfig,
        service_rate: f64,
        request_period: Seconds,
        updates: u32,
        jitter: f64,
        seed: u64,
    ) -> Result<Self> {
        if updates == 0 {
            return Err(Error::invalid_parameter("updates", "must be at least 1"));
        }
        if !request_period.is_positive() {
            return Err(Error::invalid_parameter(
                "request_period",
                "must be positive",
            ));
        }
        if sensor.arrival_rate >= service_rate {
            return Err(Error::UnstableQueue {
                arrival_rate: sensor.arrival_rate,
                service_rate,
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let sojourn = Exp::new(service_rate - sensor.arrival_rate)
            .map_err(|_| Error::invalid_parameter("service_rate", "rejected by Exp"))?;
        let period = sensor.generation_frequency.period();
        let propagation = sensor.distance / SPEED_OF_LIGHT;

        let mut request_times = Vec::with_capacity(updates as usize);
        let mut aoi = Vec::with_capacity(updates as usize);
        let mut generation_clock = Seconds::ZERO;

        for n in 1..=updates {
            // The n-th information packet finishes generation one (jittered)
            // period after the previous one.
            let jitter_factor = 1.0 + rng.gen_range(-jitter..=jitter.max(f64::MIN_POSITIVE));
            generation_clock += period * jitter_factor;
            let buffer_wait = Seconds::new(sojourn.sample(&mut rng));
            let arrival = generation_clock + propagation + buffer_wait;

            let request_time = request_period * f64::from(n);
            request_times.push(request_time);

            // Measured AoI (Eq. 23's empirical counterpart): how late the
            // n-th packet is relative to the n-th request, floored at the
            // freshest achievable age (propagation + buffer wait) when the
            // sensor outpaces the request cadence.
            let lateness = arrival - request_time;
            let floor = propagation + buffer_wait;
            aoi.push(lateness.max(floor));
        }

        Ok(Self {
            name: sensor.name.clone(),
            request_times,
            aoi,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr_core::AoiModel;
    use xr_types::{Hertz, Meters};

    fn sensor(freq: f64) -> SensorConfig {
        SensorConfig::new(format!("{freq}hz"), Hertz::new(freq), Meters::new(30.0))
    }

    #[test]
    fn slower_sensors_age_faster() {
        let fast = AoiGroundTruth::simulate(
            &sensor(200.0),
            2_000.0,
            Seconds::from_millis(5.0),
            12,
            0.01,
            1,
        )
        .unwrap();
        let slow = AoiGroundTruth::simulate(
            &sensor(66.67),
            2_000.0,
            Seconds::from_millis(5.0),
            12,
            0.01,
            1,
        )
        .unwrap();
        assert!(slow.mean() > fast.mean());
        assert!(slow.aoi.last().unwrap() > slow.aoi.first().unwrap());
        assert_eq!(fast.aoi.len(), 12);
        assert_eq!(fast.request_times.len(), 12);
    }

    #[test]
    fn ground_truth_tracks_analytic_model() {
        let model = AoiModel::published();
        // 100 updates keeps the sample mean of the exponential sojourns well
        // inside the tolerance band regardless of the RNG stream backing
        // StdRng (10 updates was flaky across generator implementations).
        for freq in [200.0, 100.0, 66.67] {
            let s = sensor(freq);
            let analytic = model
                .sensor_series(&s, 2_000.0, Seconds::from_millis(5.0), 100)
                .unwrap();
            let measured =
                AoiGroundTruth::simulate(&s, 2_000.0, Seconds::from_millis(5.0), 100, 0.01, 7)
                    .unwrap();
            let analytic_mean: f64 =
                analytic.iter().map(|a| a.as_f64()).sum::<f64>() / analytic.len() as f64;
            let measured_mean = measured.mean().as_f64();
            let denom = analytic_mean.max(1e-4);
            let rel = (analytic_mean - measured_mean).abs() / denom;
            assert!(
                rel < 0.35,
                "freq {freq}: analytic {analytic_mean} vs measured {measured_mean}"
            );
        }
    }

    #[test]
    fn roi_decreases_with_generation_period() {
        let period = Seconds::from_millis(5.0);
        let fast = AoiGroundTruth::simulate(&sensor(200.0), 2_000.0, period, 10, 0.01, 3).unwrap();
        let slow = AoiGroundTruth::simulate(&sensor(50.0), 2_000.0, period, 10, 0.01, 3).unwrap();
        assert!(fast.roi(period) > slow.roi(period));
        assert!(slow.roi(period) < 1.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let s = sensor(100.0);
        assert!(AoiGroundTruth::simulate(&s, 50.0, Seconds::from_millis(5.0), 5, 0.0, 1).is_err());
        assert!(AoiGroundTruth::simulate(&s, 2_000.0, Seconds::ZERO, 5, 0.0, 1).is_err());
        assert!(
            AoiGroundTruth::simulate(&s, 2_000.0, Seconds::from_millis(5.0), 0, 0.0, 1).is_err()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let s = sensor(100.0);
        let a =
            AoiGroundTruth::simulate(&s, 2_000.0, Seconds::from_millis(5.0), 8, 0.02, 5).unwrap();
        let b =
            AoiGroundTruth::simulate(&s, 2_000.0, Seconds::from_millis(5.0), 8, 0.02, 5).unwrap();
        assert_eq!(a, b);
    }
}
