//! The end-to-end latency analysis model of Section IV (Eqs. 1–18).

use crate::encoding::EncodingLatencyModel;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use xr_devices::{CnnComplexityModel, ComputeResourceModel};
use xr_queueing::MM1Queue;
use xr_types::{MegaBytes, Result, Seconds, Segment, SPEED_OF_LIGHT};
use xr_wireless::{CoverageZone, HandoffModel, RandomWalkMobility, WirelessLink};

/// Size of the inference-result payload handed back to the renderer (bounding
/// boxes + labels). Small compared to the frame itself; the paper's rendering
/// model (Eq. 8) only needs it to cost the result-transfer terms
/// `L_tr(loc)` / `L_tr(rem)`.
pub const RESULT_PAYLOAD: MegaBytes = MegaBytes::ZERO;

/// Default inference-result payload in MB when none is configured.
const RESULT_PAYLOAD_MB: f64 = 0.01;

/// Per-frame latency breakdown: one entry per pipeline segment plus the
/// end-to-end total of Eq. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    segments: BTreeMap<Segment, Seconds>,
    total: Seconds,
    buffering: Seconds,
}

impl LatencyBreakdown {
    /// Latency attributed to one segment (zero when the segment does not
    /// participate in the scenario).
    #[must_use]
    pub fn segment(&self, segment: Segment) -> Seconds {
        self.segments
            .get(&segment)
            .copied()
            .unwrap_or(Seconds::ZERO)
    }

    /// The end-to-end latency `L_tot` of Eq. 1.
    #[must_use]
    pub fn total(&self) -> Seconds {
        self.total
    }

    /// The input-buffer waiting component `t_buff` folded into rendering
    /// (Eq. 7), exposed separately for the ablation bench.
    #[must_use]
    pub fn buffering(&self) -> Seconds {
        self.buffering
    }

    /// Iterates over `(segment, latency)` pairs in segment order.
    pub fn iter(&self) -> impl Iterator<Item = (Segment, Seconds)> + '_ {
        self.segments.iter().map(|(s, l)| (*s, *l))
    }

    /// The sum of every segment in the map (ignoring the execution-target
    /// gating); useful for sanity checks.
    #[must_use]
    pub fn sum_of_segments(&self) -> Seconds {
        self.segments.values().copied().sum()
    }
}

/// The proposed latency analysis model.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    compute: ComputeResourceModel,
    cnn_complexity: CnnComplexityModel,
    encoding: EncodingLatencyModel,
    handoff: HandoffModel,
    include_memory_terms: bool,
    include_buffering: bool,
    result_payload: MegaBytes,
}

impl LatencyModel {
    /// Builds the model with the paper's published regression coefficients
    /// (Eqs. 3, 10, 12) and literature handoff latencies.
    #[must_use]
    pub fn published() -> Self {
        Self {
            compute: ComputeResourceModel::published(),
            cnn_complexity: CnnComplexityModel::published(),
            encoding: EncodingLatencyModel::published(),
            handoff: HandoffModel::literature_defaults(),
            include_memory_terms: true,
            include_buffering: true,
            result_payload: MegaBytes::new(RESULT_PAYLOAD_MB),
        }
    }

    /// Replaces the compute-resource sub-model (e.g. with one refit on
    /// simulated training data).
    #[must_use]
    pub fn with_compute_model(mut self, compute: ComputeResourceModel) -> Self {
        self.compute = compute;
        self
    }

    /// Replaces the CNN-complexity sub-model.
    #[must_use]
    pub fn with_cnn_complexity(mut self, model: CnnComplexityModel) -> Self {
        self.cnn_complexity = model;
        self
    }

    /// Replaces the encoding-latency sub-model.
    #[must_use]
    pub fn with_encoding_model(mut self, model: EncodingLatencyModel) -> Self {
        self.encoding = model;
        self
    }

    /// Replaces the handoff sub-model.
    #[must_use]
    pub fn with_handoff_model(mut self, model: HandoffModel) -> Self {
        self.handoff = model;
        self
    }

    /// Disables the memory-bandwidth (`δ/m`) terms — the FACT-style
    /// ablation exercised by the `ablation_table` binary and the
    /// `ablations` bench.
    #[must_use]
    pub fn without_memory_terms(mut self) -> Self {
        self.include_memory_terms = false;
        self
    }

    /// Disables the M/M/1 buffering term in rendering — another ablation.
    #[must_use]
    pub fn without_buffering(mut self) -> Self {
        self.include_buffering = false;
        self
    }

    /// Access to the compute-resource sub-model (used by the energy model to
    /// stay consistent with the latency model's resource estimates).
    #[must_use]
    pub fn compute_model(&self) -> &ComputeResourceModel {
        &self.compute
    }

    /// The client compute resource `c_client` for a scenario.
    #[must_use]
    pub fn client_resource(&self, scenario: &Scenario) -> f64 {
        self.compute.client_resource(
            scenario.client.cpu_clock,
            scenario.client.gpu_clock,
            scenario.client.cpu_share,
        )
    }

    /// The edge compute resource `c_ε` for one edge server of a scenario:
    /// either the server's explicit resource or the coupled
    /// `11.76 · c_client`.
    #[must_use]
    pub fn edge_resource(&self, scenario: &Scenario, server_index: usize) -> f64 {
        let client = self.client_resource(scenario);
        scenario
            .edge_servers
            .get(server_index)
            .and_then(|s| s.compute_resource)
            .unwrap_or_else(|| self.compute.edge_resource_from_client(client))
    }

    fn memory_term(&self, data: MegaBytes, bandwidth: xr_types::GigaBytesPerSecond) -> Seconds {
        if self.include_memory_terms {
            data / bandwidth
        } else {
            Seconds::ZERO
        }
    }

    fn compute_term(&self, pixels: f64, resource: f64) -> Seconds {
        Seconds::from_millis(pixels / resource.max(f64::MIN_POSITIVE))
    }

    /// Frame-generation latency (Eq. 2).
    #[must_use]
    pub fn frame_generation(&self, scenario: &Scenario) -> Seconds {
        let c = self.client_resource(scenario);
        scenario.frame.frame_rate.period()
            + self.compute_term(scenario.frame.raw_size.as_f64(), c)
            + self.memory_term(scenario.frame.raw_data, scenario.client.memory_bandwidth)
    }

    /// Volumetric-data-generation latency (Eq. 4).
    #[must_use]
    pub fn volumetric(&self, scenario: &Scenario) -> Seconds {
        let c = self.client_resource(scenario);
        self.compute_term(scenario.frame.scene_size.as_f64(), c)
            + self.memory_term(
                scenario.frame.volumetric_data,
                scenario.client.memory_bandwidth,
            )
    }

    /// External-sensor-information latency (Eqs. 5–6): the slowest sensor's
    /// cumulative generation + propagation time over the `N` required updates.
    #[must_use]
    pub fn external_information(&self, scenario: &Scenario) -> Seconds {
        let n = f64::from(scenario.updates_per_frame);
        scenario
            .sensors
            .iter()
            .map(|s| {
                let per_update = s.generation_frequency.period() + (s.distance / SPEED_OF_LIGHT);
                per_update * n
            })
            .fold(Seconds::ZERO, Seconds::max)
    }

    /// Input-buffer waiting time (Eq. 7 with each flow modelled as a stable
    /// M/M/1 queue, Eq. 22).
    ///
    /// # Errors
    ///
    /// Returns [`xr_types::Error::UnstableQueue`] if any flow saturates the
    /// buffer (scenario validation normally rules this out).
    pub fn buffering(&self, scenario: &Scenario) -> Result<Seconds> {
        if !self.include_buffering {
            return Ok(Seconds::ZERO);
        }
        let mu = scenario.buffer.service_rate;
        let frame_rate = scenario.frame.frame_rate.as_f64();
        let mut total = Seconds::ZERO;
        let flows = [
            scenario.buffer.frame_arrival_rate.unwrap_or(frame_rate),
            scenario
                .buffer
                .volumetric_arrival_rate
                .unwrap_or(frame_rate),
            scenario.external_arrival_rate(),
        ];
        for lambda in flows {
            if lambda <= 0.0 {
                continue;
            }
            total += MM1Queue::new(lambda, mu)?.mean_time_in_system();
        }
        Ok(total)
    }

    /// Frame-conversion latency (Eq. 9).
    #[must_use]
    pub fn frame_conversion(&self, scenario: &Scenario) -> Seconds {
        let c = self.client_resource(scenario);
        self.compute_term(scenario.frame.raw_size.as_f64(), c)
            + self.memory_term(scenario.frame.raw_data, scenario.client.memory_bandwidth)
    }

    /// Frame-encoding latency (Eq. 10).
    #[must_use]
    pub fn frame_encoding(&self, scenario: &Scenario) -> Seconds {
        let c = self.client_resource(scenario);
        let full = self.encoding.encoding_latency(
            &scenario.encoding,
            &scenario.frame,
            c,
            scenario.client.memory_bandwidth,
        );
        if self.include_memory_terms {
            full
        } else {
            full - (scenario.frame.raw_data / scenario.client.memory_bandwidth)
        }
    }

    /// Local-inference latency (Eq. 11).
    ///
    /// Note on `C_CNN`: Eq. 11 as typeset divides the frame size by
    /// `c_client · C_CNN`, which would make deeper/larger CNNs *faster*. The
    /// paper's own motivation (§IV-A: "the depth and size of neural networks
    /// have impacts on the latency") and the EPAM measurement study it builds
    /// on show the opposite, so this implementation treats `C_CNN` as a
    /// workload multiplier: `L_loc = ω_client·[s_f2·C_CNN/c_client + δ_f2/m]`.
    #[must_use]
    pub fn local_inference(&self, scenario: &Scenario) -> Seconds {
        let client_share = scenario.execution.client_share();
        if client_share <= 0.0 {
            return Seconds::ZERO;
        }
        let c = self.client_resource(scenario);
        let complexity = self.cnn_complexity.complexity(&scenario.local_cnn);
        let inner = self.compute_term(scenario.frame.converted_size.as_f64() * complexity, c)
            + self.memory_term(
                scenario.frame.converted_data,
                scenario.client.memory_bandwidth,
            );
        inner * client_share
    }

    /// Remote-inference latency on one edge server (Eq. 13): decode + infer +
    /// memory traffic.
    #[must_use]
    pub fn remote_inference_on(&self, scenario: &Scenario, server_index: usize) -> Seconds {
        let Some(server) = scenario.edge_servers.get(server_index) else {
            return Seconds::ZERO;
        };
        let c_client = self.client_resource(scenario);
        let c_edge = self.edge_resource(scenario, server_index);
        let complexity = self.cnn_complexity.complexity(&scenario.remote_cnn);
        let decode =
            self.encoding
                .decoding_latency(&scenario.encoding, &scenario.frame, c_client, c_edge);
        // `C_CNN` multiplies the workload; see the note on `local_inference`.
        self.compute_term(scenario.frame.encoded_size.as_f64() * complexity, c_edge)
            + self.memory_term(scenario.frame.encoded_data, server.memory_bandwidth)
            + decode
    }

    /// Remote-inference latency across all edge servers (Eq. 15): the slowest
    /// weighted share dominates because the servers work in parallel.
    #[must_use]
    pub fn remote_inference(&self, scenario: &Scenario) -> Seconds {
        let edge_share = scenario.execution.edge_share();
        if edge_share <= 0.0 || scenario.edge_servers.is_empty() {
            return Seconds::ZERO;
        }
        let total_share: f64 = scenario.edge_servers.iter().map(|s| s.task_share).sum();
        scenario
            .edge_servers
            .iter()
            .enumerate()
            .map(|(i, server)| {
                let weight = if total_share > 0.0 {
                    server.task_share / total_share * edge_share
                } else {
                    0.0
                };
                self.remote_inference_on(scenario, i) * weight
            })
            .fold(Seconds::ZERO, Seconds::max)
    }

    /// Uplink transmission latency (Eq. 16): encoded frame (plus volumetric
    /// data and control info riding along) over the wireless link to the
    /// slowest edge server used.
    #[must_use]
    pub fn transmission(&self, scenario: &Scenario) -> Seconds {
        if !scenario.execution.uses_edge() || scenario.edge_servers.is_empty() {
            return Seconds::ZERO;
        }
        scenario
            .edge_servers
            .iter()
            .map(|server| {
                let link = self.link_for(server);
                link.transmission_latency(scenario.frame.encoded_data)
            })
            .fold(Seconds::ZERO, Seconds::max)
    }

    /// Latency of delivering the inference result to the renderer:
    /// `L_tr(loc)` reads the result out of device memory, `L_tr(rem)` carries
    /// it back over the wireless downlink (Eq. 8's last two terms).
    #[must_use]
    pub fn result_delivery(&self, scenario: &Scenario) -> Seconds {
        if scenario.execution.uses_edge() && !scenario.edge_servers.is_empty() {
            let server = &scenario.edge_servers[0];
            let link = self.link_for(server);
            link.transmission_latency(self.result_payload)
        } else {
            self.memory_term(self.result_payload, scenario.client.memory_bandwidth)
        }
    }

    /// Handoff latency (Eq. 17).
    #[must_use]
    pub fn handoff(&self, scenario: &Scenario) -> Seconds {
        if !scenario.execution.uses_edge() {
            return Seconds::ZERO;
        }
        if scenario.mobility.speed.as_f64() <= 0.0 {
            return Seconds::ZERO;
        }
        let mobility = RandomWalkMobility::new(
            scenario.mobility.speed,
            Seconds::new(0.1),
            CoverageZone::new(scenario.mobility.coverage_radius),
        );
        self.handoff.expected_latency(
            scenario.mobility.handoff_kind,
            &mobility,
            scenario.frame_window(),
        )
    }

    /// XR-cooperation latency (Eq. 18).
    #[must_use]
    pub fn cooperation(&self, scenario: &Scenario) -> Seconds {
        scenario.cooperation.payload / scenario.cooperation.throughput
            + scenario.cooperation.distance / SPEED_OF_LIGHT
    }

    /// Frame-rendering latency (Eq. 8): compute + memory + buffering +
    /// result delivery.
    ///
    /// # Errors
    ///
    /// Propagates buffering errors for unstable buffer configurations.
    pub fn rendering(&self, scenario: &Scenario) -> Result<Seconds> {
        let c = self.client_resource(scenario);
        Ok(self.compute_term(scenario.frame.raw_size.as_f64(), c)
            + self.memory_term(scenario.frame.raw_data, scenario.client.memory_bandwidth)
            + self.buffering(scenario)?
            + self.result_delivery(scenario))
    }

    /// Computes the full per-segment breakdown and the end-to-end total of
    /// Eq. 1 for one frame of the scenario.
    ///
    /// # Errors
    ///
    /// Returns scenario-validation or queueing errors.
    pub fn analyze(&self, scenario: &Scenario) -> Result<LatencyBreakdown> {
        scenario.validate()?;

        let omega_loc = scenario.execution.client_share();
        let omega_rem = scenario.execution.edge_share();
        let uses_local = scenario.execution.uses_client();
        let uses_edge = scenario.execution.uses_edge();

        let mut segments = BTreeMap::new();
        let buffering = self.buffering(scenario)?;

        segments.insert(Segment::FrameGeneration, self.frame_generation(scenario));
        segments.insert(Segment::VolumetricDataGeneration, self.volumetric(scenario));
        segments.insert(
            Segment::ExternalSensorInformation,
            self.external_information(scenario),
        );
        segments.insert(Segment::FrameRendering, self.rendering(scenario)?);
        segments.insert(
            Segment::FrameConversion,
            if uses_local {
                self.frame_conversion(scenario)
            } else {
                Seconds::ZERO
            },
        );
        segments.insert(
            Segment::FrameEncoding,
            if uses_edge {
                self.frame_encoding(scenario)
            } else {
                Seconds::ZERO
            },
        );
        segments.insert(Segment::LocalInference, self.local_inference(scenario));
        segments.insert(Segment::RemoteInference, self.remote_inference(scenario));
        segments.insert(Segment::Transmission, self.transmission(scenario));
        segments.insert(Segment::Handoff, self.handoff(scenario));
        segments.insert(Segment::XrCooperation, self.cooperation(scenario));

        // Eq. 1, gated by the execution decision and the scenario's segment
        // set. The conversion/encoding and inference terms are already scaled
        // by their shares inside the per-segment functions where the paper
        // scales them (Eqs. 11, 13); the binary ω gating happens here.
        let mut total = Seconds::ZERO;
        for (segment, latency) in &segments {
            if !scenario.segments.contains(*segment) {
                continue;
            }
            let included = match segment {
                Segment::FrameConversion => uses_local,
                Segment::LocalInference => uses_local,
                Segment::FrameEncoding | Segment::RemoteInference => uses_edge,
                Segment::Transmission | Segment::Handoff => uses_edge,
                Segment::XrCooperation => scenario.cooperation.include_in_totals,
                _ => true,
            };
            if !included {
                continue;
            }
            // Eq. 1 weights frame conversion by ω_loc and encoding by ω̄_loc.
            let weight = match segment {
                Segment::FrameConversion => omega_loc.max(f64::from(u8::from(uses_local))).min(1.0),
                Segment::FrameEncoding => omega_rem.max(f64::from(u8::from(uses_edge))).min(1.0),
                _ => 1.0,
            };
            total += *latency * weight;
        }

        Ok(LatencyBreakdown {
            segments,
            total,
            buffering,
        })
    }

    fn link_for(&self, server: &crate::scenario::EdgeServerConfig) -> WirelessLink {
        let link = WirelessLink::new(server.technology, server.distance);
        match server.throughput {
            Some(throughput) => link.with_throughput(throughput),
            None => link,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::published()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{BufferConfig, MobilityConfig, SensorConfig};
    use xr_types::{ExecutionTarget, GigaHertz, Hertz, Meters, MetersPerSecond};
    use xr_wireless::HandoffKind;

    fn local_scenario(side: f64, clock: f64) -> Scenario {
        Scenario::builder()
            .frame_side(side)
            .cpu_clock(GigaHertz::new(clock))
            .execution(ExecutionTarget::Local)
            .build()
            .unwrap()
    }

    fn remote_scenario(side: f64, clock: f64) -> Scenario {
        Scenario::builder()
            .frame_side(side)
            .cpu_clock(GigaHertz::new(clock))
            .execution(ExecutionTarget::Remote)
            .build()
            .unwrap()
    }

    #[test]
    fn breakdown_total_is_positive_and_consistent() {
        let model = LatencyModel::published();
        let breakdown = model.analyze(&local_scenario(500.0, 2.5)).unwrap();
        assert!(breakdown.total().as_f64() > 0.0);
        assert!(breakdown.total() <= breakdown.sum_of_segments());
        assert!(breakdown.segment(Segment::FrameGeneration).as_f64() > 0.0);
        assert!(breakdown.buffering().as_f64() > 0.0);
    }

    #[test]
    fn local_scenario_excludes_remote_segments() {
        let model = LatencyModel::published();
        let breakdown = model.analyze(&local_scenario(500.0, 2.5)).unwrap();
        assert_eq!(breakdown.segment(Segment::RemoteInference), Seconds::ZERO);
        assert_eq!(breakdown.segment(Segment::Transmission), Seconds::ZERO);
        assert_eq!(breakdown.segment(Segment::FrameEncoding), Seconds::ZERO);
        assert!(breakdown.segment(Segment::LocalInference).as_f64() > 0.0);
        assert!(breakdown.segment(Segment::FrameConversion).as_f64() > 0.0);
    }

    #[test]
    fn remote_scenario_excludes_local_segments() {
        let model = LatencyModel::published();
        let breakdown = model.analyze(&remote_scenario(500.0, 2.5)).unwrap();
        assert_eq!(breakdown.segment(Segment::LocalInference), Seconds::ZERO);
        assert_eq!(breakdown.segment(Segment::FrameConversion), Seconds::ZERO);
        assert!(breakdown.segment(Segment::RemoteInference).as_f64() > 0.0);
        assert!(breakdown.segment(Segment::Transmission).as_f64() > 0.0);
        assert!(breakdown.segment(Segment::FrameEncoding).as_f64() > 0.0);
    }

    #[test]
    fn latency_grows_with_frame_size() {
        let model = LatencyModel::published();
        for make in [local_scenario as fn(f64, f64) -> Scenario, remote_scenario] {
            let small = model.analyze(&make(300.0, 2.5)).unwrap().total();
            let large = model.analyze(&make(700.0, 2.5)).unwrap().total();
            assert!(large > small, "large {large} should exceed small {small}");
        }
    }

    #[test]
    fn latency_falls_with_clock_in_fitted_range() {
        let model = LatencyModel::published();
        // The published Eq.-3 quadratic is increasing above ~1.6 GHz, so more
        // clock means more resource and less latency in that band.
        let slow = model.analyze(&local_scenario(500.0, 2.0)).unwrap().total();
        let fast = model.analyze(&local_scenario(500.0, 3.0)).unwrap().total();
        assert!(fast < slow);
    }

    #[test]
    fn split_execution_includes_both_paths() {
        let model = LatencyModel::published();
        let scenario = Scenario::builder()
            .execution(ExecutionTarget::Split { client_share: 0.5 })
            .build()
            .unwrap();
        let b = model.analyze(&scenario).unwrap();
        assert!(b.segment(Segment::LocalInference).as_f64() > 0.0);
        assert!(b.segment(Segment::RemoteInference).as_f64() > 0.0);
        assert!(b.segment(Segment::Transmission).as_f64() > 0.0);
        // Local inference is scaled by the 0.5 client share.
        let full_local = model
            .analyze(
                &Scenario::builder()
                    .execution(ExecutionTarget::Local)
                    .build()
                    .unwrap(),
            )
            .unwrap()
            .segment(Segment::LocalInference);
        assert!(b.segment(Segment::LocalInference) < full_local);
    }

    #[test]
    fn heavier_cnn_slows_local_inference() {
        let model = LatencyModel::published();
        let light = Scenario::builder()
            .local_cnn("MobileNetV1_240_Quant")
            .unwrap()
            .build()
            .unwrap();
        let heavy = Scenario::builder()
            .local_cnn("NasNet_Float")
            .unwrap()
            .build()
            .unwrap();
        assert!(model.local_inference(&heavy) > model.local_inference(&light));
    }

    #[test]
    fn handoff_only_contributes_for_mobile_remote_scenarios() {
        let model = LatencyModel::published();
        let static_remote = remote_scenario(500.0, 2.5);
        assert_eq!(model.handoff(&static_remote), Seconds::ZERO);

        let mobile = Scenario::builder()
            .execution(ExecutionTarget::Remote)
            .mobility(MobilityConfig {
                speed: MetersPerSecond::new(10.0),
                coverage_radius: Meters::new(30.0),
                handoff_kind: HandoffKind::Vertical,
            })
            .build()
            .unwrap();
        assert!(model.handoff(&mobile).as_f64() > 0.0);
        let local_mobile = Scenario::builder()
            .execution(ExecutionTarget::Local)
            .mobility(MobilityConfig {
                speed: MetersPerSecond::new(10.0),
                coverage_radius: Meters::new(30.0),
                handoff_kind: HandoffKind::Vertical,
            })
            .build()
            .unwrap();
        assert_eq!(model.handoff(&local_mobile), Seconds::ZERO);
    }

    #[test]
    fn slowest_sensor_dominates_external_information() {
        let model = LatencyModel::published();
        let scenario = Scenario::builder()
            .sensors(vec![
                SensorConfig::new("fast", Hertz::new(1000.0), Meters::new(10.0)),
                SensorConfig::new("slow", Hertz::new(20.0), Meters::new(10.0)),
            ])
            .updates_per_frame(3)
            .build()
            .unwrap();
        let ext = model.external_information(&scenario);
        // Slow sensor: 3 × (50 ms + propagation) ≈ 150 ms.
        assert!((ext.as_f64() - 0.15).abs() < 1e-3);
    }

    #[test]
    fn no_sensors_means_no_external_latency() {
        let model = LatencyModel::published();
        let scenario = Scenario::builder().sensors(Vec::new()).build().unwrap();
        assert_eq!(model.external_information(&scenario), Seconds::ZERO);
    }

    #[test]
    fn ablations_reduce_latency() {
        let scenario = remote_scenario(500.0, 2.5);
        let full = LatencyModel::published()
            .analyze(&scenario)
            .unwrap()
            .total();
        let no_memory = LatencyModel::published()
            .without_memory_terms()
            .analyze(&scenario)
            .unwrap()
            .total();
        let no_buffer = LatencyModel::published()
            .without_buffering()
            .analyze(&scenario)
            .unwrap()
            .total();
        assert!(no_memory < full);
        assert!(no_buffer < full);
    }

    #[test]
    fn buffering_matches_mm1_sum() {
        let model = LatencyModel::published();
        let scenario = Scenario::builder()
            .buffer(BufferConfig {
                service_rate: 1_000.0,
                frame_arrival_rate: Some(30.0),
                volumetric_arrival_rate: Some(30.0),
            })
            .sensors(vec![SensorConfig::new(
                "s",
                Hertz::new(100.0),
                Meters::new(10.0),
            )])
            .build()
            .unwrap();
        let expected = 1.0 / (1000.0 - 30.0) + 1.0 / (1000.0 - 30.0) + 1.0 / (1000.0 - 100.0);
        assert!((model.buffering(&scenario).unwrap().as_f64() - expected).abs() < 1e-12);
    }

    #[test]
    fn multiple_edge_servers_take_the_slowest_share() {
        let model = LatencyModel::published();
        let mut fast = crate::scenario::EdgeServerConfig::jetson_xavier();
        fast.name = "fast-edge".into();
        fast.compute_resource = Some(500.0);
        fast.task_share = 0.5;
        let mut slow = crate::scenario::EdgeServerConfig::jetson_xavier();
        slow.name = "slow-edge".into();
        slow.compute_resource = Some(50.0);
        slow.task_share = 0.5;
        let scenario = Scenario::builder()
            .execution(ExecutionTarget::Remote)
            .edge_servers(vec![fast, slow])
            .build()
            .unwrap();
        let combined = model.remote_inference(&scenario);
        let slow_alone = model.remote_inference_on(&scenario, 1) * 0.5;
        assert!((combined.as_f64() - slow_alone.as_f64()).abs() < 1e-12);
    }

    #[test]
    fn edge_resource_uses_coupling_by_default() {
        let model = LatencyModel::published();
        let scenario = remote_scenario(500.0, 2.84);
        let c_client = model.client_resource(&scenario);
        let c_edge = model.edge_resource(&scenario, 0);
        assert!((c_edge - 11.76 * c_client).abs() < 1e-9);
    }

    #[test]
    fn cooperation_excluded_from_total_by_default() {
        let model = LatencyModel::published();
        let scenario = local_scenario(500.0, 2.5);
        let b = model.analyze(&scenario).unwrap();
        assert!(b.segment(Segment::XrCooperation).as_f64() > 0.0);
        // The standard segment set excludes cooperation, so the total must be
        // smaller than the sum of all segments.
        assert!(b.total() < b.sum_of_segments());
    }
}
