//! Benchmarks the regression substrate: OLS fits of the paper's four
//! sub-models at increasing dataset sizes (the paper's campaign is 119 465
//! records).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xr_devices::DeviceCatalog;
use xr_testbed::{CalibratedModels, MeasurementCampaign, TestbedSimulator};

fn fit_at_scale(c: &mut Criterion) {
    let testbed = TestbedSimulator::new(7);
    let mut group = c.benchmark_group("regression_fit/calibrate_all_submodels");
    group.sample_size(10);
    for records in [2_000usize, 10_000, 40_000] {
        let dataset = MeasurementCampaign::small(7)
            .with_target_records(records)
            .collect(testbed.laws(), &DeviceCatalog::training_devices());
        group.bench_with_input(BenchmarkId::from_parameter(records), &dataset, |b, d| {
            b.iter(|| black_box(CalibratedModels::fit(d).unwrap()))
        });
    }
    group.finish();
}

fn collect_campaign(c: &mut Criterion) {
    let testbed = TestbedSimulator::new(7);
    let mut group = c.benchmark_group("regression_fit/collect_campaign");
    group.sample_size(10);
    for records in [2_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(records), &records, |b, &r| {
            b.iter(|| {
                black_box(
                    MeasurementCampaign::small(7)
                        .with_target_records(r)
                        .collect(testbed.laws(), &DeviceCatalog::training_devices()),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fit_at_scale, collect_campaign);
criterion_main!(benches);
