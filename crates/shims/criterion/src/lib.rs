//! Offline stand-in for the `criterion` crate.
//!
//! The bench targets in `crates/bench` are written against the real
//! criterion API (`criterion_group!`, `Criterion::benchmark_group`,
//! `bench_with_input`, …). This shim implements that subset as a small
//! wall-clock harness: each benchmark runs a short warm-up, then
//! `sample_size` timed batches, and the mean/min per-iteration time is
//! printed to stdout. It has no statistical machinery, HTML reports, or
//! CLI filtering — it exists so `cargo bench` works in an air-gapped
//! build. Swap the root manifest's `criterion` entry for crates.io to get
//! the real harness; no bench source changes are needed.
//!
//! One extension beyond the real API: the `XR_BENCH_SAMPLE_SIZE`
//! environment variable overrides every benchmark's sample count, so CI
//! can smoke-run a bench target (exercising its pre-timing correctness
//! assertions) without paying for a full timing session.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into an id like `name/3`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Per-iteration timing callback handle, mirroring `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_secs_f64() * 1e9;
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1e3)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.3} s", nanos / 1e9)
    }
}

/// Sample-count override for CI smoke runs: `XR_BENCH_SAMPLE_SIZE=2 cargo
/// bench` runs every benchmark with two timed batches, keeping the
/// pre-timing setup and assertions (e.g. the frame-batch bench's
/// bit-identity gate) while making the timed portion near-free. Ignored
/// when unset or unparsable.
fn sample_size_override() -> Option<usize> {
    std::env::var("XR_BENCH_SAMPLE_SIZE")
        .ok()?
        .parse::<usize>()
        .ok()
        .map(|n| n.max(1))
}

fn run_one(full_id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: sample_size_override().unwrap_or(sample_size),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{full_id:<60} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{full_id:<60} mean {:>12}   min {:>12}   ({} samples)",
        format_duration(mean),
        format_duration(min),
        bencher.samples.len()
    );
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// Default number of timed batches per benchmark. The real criterion uses
/// 100; the shim keeps runs short since it reports raw means only.
const DEFAULT_SAMPLE_SIZE: usize = 20;

impl Criterion {
    /// Registers and immediately runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().id, DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Bundles bench functions into a single runner, mirroring
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_size_env_override_is_honored() {
        std::env::set_var("XR_BENCH_SAMPLE_SIZE", "3");
        let mut calls = 0u32;
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("short");
        group.sample_size(50);
        group.bench_function("counted", |b| b.iter(|| calls += 1));
        group.finish();
        std::env::remove_var("XR_BENCH_SAMPLE_SIZE");
        // One warm-up call plus the overridden three timed batches.
        assert_eq!(calls, 4, "override did not shorten the run");
    }

    #[test]
    fn group_and_function_benches_run() {
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| black_box(2 + 2)));
        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with_input", 5), &5u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
