//! End-to-end determinism of the campaign engine: the same grid evaluated
//! with different worker counts — or partitioned across shards and merged
//! back, or killed mid-shard and resumed from the checkpoint — must produce
//! byte-identical artifacts.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;
use xr_experiments::campaign::{
    quick_grid, run_campaign_streaming_with, run_campaign_with, CAMPAIGN_HEADER,
};
use xr_experiments::figures::latency_sweep;
use xr_experiments::mobility_experiments::mobility_sweep_with;
use xr_experiments::shard_campaign::{
    checkpoint_path, manifest_path, merge_campaign_csvs, run_campaign_shard_with, shard_csv_name,
};
use xr_experiments::ExperimentContext;
use xr_sweep::{parse_grid_spec, CampaignRunner, ShardSpec, SweepGrid};
use xr_types::ExecutionTarget;

/// Renders campaign rows exactly as the CSV layer writes them.
fn csv_lines(rows: &[xr_experiments::CampaignRow]) -> Vec<String> {
    let mut lines = vec![CAMPAIGN_HEADER.join(",")];
    lines.extend(rows.iter().map(|r| r.cells().join(",")));
    lines
}

#[test]
fn campaign_csv_rows_are_byte_identical_across_worker_counts() {
    let ctx = ExperimentContext::quick(2024).unwrap();
    let grid = quick_grid();
    let reference = csv_lines(&run_campaign_with(&ctx, &grid, &CampaignRunner::new(1)).unwrap());
    assert_eq!(reference.len(), grid.len() + 1);
    for workers in [2, 4, 9] {
        let rows = run_campaign_with(&ctx, &grid, &CampaignRunner::new(workers)).unwrap();
        assert_eq!(
            csv_lines(&rows),
            reference,
            "{workers} workers diverged from the sequential reference"
        );
    }
}

#[test]
fn replicated_mobility_campaign_is_byte_identical_across_worker_counts() {
    // The acceptance bar for the replication/mobility refactor: a campaign
    // with a moving device and several independently seeded replications per
    // point — defined through the data-driven grid-spec path — must stream
    // the same CSV bytes for every worker count.
    let ctx = ExperimentContext::quick(7).unwrap();
    let grid = parse_grid_spec(
        "frame_sizes  = 500\n\
         cpu_clocks   = 2.0\n\
         executions   = remote\n\
         mobility     = static, walk:1.4:20, vehicle:25:10\n\
         replications = 4\n",
    )
    .unwrap();
    assert_eq!(grid.replications(), 4);
    let reference = csv_lines(&run_campaign_with(&ctx, &grid, &CampaignRunner::new(1)).unwrap());
    for workers in [2, 3, 8] {
        let rows = run_campaign_with(&ctx, &grid, &CampaignRunner::new(workers)).unwrap();
        assert_eq!(
            csv_lines(&rows),
            reference,
            "{workers} workers diverged on the replicated mobility campaign"
        );
    }
    // The replication machinery is real: every row aggregates 4 sessions,
    // and the mobile fast-walker point records handoffs.
    let rows = run_campaign_with(&ctx, &grid, &CampaignRunner::new(2)).unwrap();
    assert!(rows.iter().all(|r| r.replications == 4));
    assert!(rows
        .iter()
        .all(|r| r.gt_latency_ms.ci95_lo <= r.gt_latency_ms.mean
            && r.gt_latency_ms.mean <= r.gt_latency_ms.ci95_hi));
    let vehicle = rows
        .iter()
        .find(|r| r.point.mobility.label == "vehicle")
        .expect("vehicle row");
    assert!(
        vehicle.gt_handoff_rate > 0.0,
        "fast walker in a 10 m zone never handed off"
    );
}

#[test]
fn fused_point_campaigns_match_the_per_rep_artifacts_across_worker_counts() {
    // The replication-fused engine evaluates all replications of a point in
    // one wide SoA pass; its campaign CSVs must be byte-identical to the
    // per-rep path on every grid family — plain replicated, mobility,
    // contention, and topology — and for every worker count.
    let families: [(u64, SweepGrid); 4] = [
        (2024, quick_grid()),
        (
            7,
            parse_grid_spec(
                "frame_sizes  = 500\n\
                 cpu_clocks   = 2.0\n\
                 executions   = remote\n\
                 mobility     = static, walk:1.4:20, vehicle:25:10\n\
                 replications = 4\n",
            )
            .unwrap(),
        ),
        (
            13,
            parse_grid_spec(
                "frame_sizes    = 300\n\
                 cpu_clocks     = 2.0\n\
                 executions     = remote\n\
                 frame_rates    = 5\n\
                 users_per_edge = 1, 4, 8\n\
                 replications   = 3\n",
            )
            .unwrap(),
        ),
        (
            19,
            parse_grid_spec(
                "frame_sizes        = 300\n\
                 cpu_clocks         = 2.0\n\
                 executions         = remote\n\
                 frame_rates        = 5\n\
                 mobility           = vehicle:25:8\n\
                 frames_per_session = 100\n\
                 topology           = square, hex\n\
                 site_density       = 400, 1600\n\
                 migration_policy   = eager, lazy\n\
                 replications       = 2\n",
            )
            .unwrap(),
        ),
    ];
    for (seed, grid) in families {
        let ctx = ExperimentContext::quick(seed).unwrap();
        let reference =
            csv_lines(&run_campaign_with(&ctx, &grid, &CampaignRunner::new(1)).unwrap());
        let fused_ctx = ctx.with_fused_points();
        for workers in [1, 3, 4] {
            let rows = run_campaign_with(&fused_ctx, &grid, &CampaignRunner::new(workers)).unwrap();
            assert_eq!(
                csv_lines(&rows),
                reference,
                "fused campaign diverged from the per-rep artifact (seed {seed}, {workers} workers)"
            );
        }
    }
}

#[test]
fn contention_campaign_is_byte_identical_across_worker_counts_and_runs() {
    // The multi-tenant grid threads the edge stage through the CONTENTION
    // RNG streams; the campaign artifact must stay a pure function of
    // (grid, campaign seed) — identical bytes for every worker count and
    // across two independent runs of the same context seed.
    let ctx = ExperimentContext::quick(13).unwrap();
    let grid = parse_grid_spec(
        "frame_sizes    = 300\n\
         cpu_clocks     = 2.0\n\
         executions     = remote\n\
         frame_rates    = 5\n\
         users_per_edge = 1, 4, 8\n\
         replications   = 3\n",
    )
    .unwrap();
    let reference = csv_lines(&run_campaign_with(&ctx, &grid, &CampaignRunner::new(1)).unwrap());
    assert_eq!(reference.len(), grid.len() + 1);
    for workers in [2, 5] {
        let rows = run_campaign_with(&ctx, &grid, &CampaignRunner::new(workers)).unwrap();
        assert_eq!(
            csv_lines(&rows),
            reference,
            "{workers} workers diverged on the contention campaign"
        );
    }
    // A second run from a fresh context with the same seed reproduces the
    // bytes exactly — the two-run CI diff in miniature.
    let rerun_ctx = ExperimentContext::quick(13).unwrap();
    let rerun = csv_lines(&run_campaign_with(&rerun_ctx, &grid, &CampaignRunner::new(3)).unwrap());
    assert_eq!(rerun, reference, "a repeated run changed the artifact");
    // The contention columns carry real signal: utilisation scales linearly
    // with the population and the measured latency rises with it.
    let rows = run_campaign_with(&ctx, &grid, &CampaignRunner::new(2)).unwrap();
    assert_eq!(rows.len(), 3);
    let unit = rows[0].edge_utilization;
    assert!(unit > 0.0);
    for row in &rows {
        let users = row.point.users_per_edge.expect("contended point");
        assert!((row.edge_utilization - unit * f64::from(users)).abs() < 1e-9);
        assert!(row.gt_contention_ms_mean > 0.0);
    }
    assert!(rows[1].gt_latency_ms.mean > rows[0].gt_latency_ms.mean);
    assert!(rows[2].gt_latency_ms.mean > rows[1].gt_latency_ms.mean);
}

#[test]
fn topology_campaign_is_byte_identical_across_worker_counts_and_runs() {
    // The topology grid routes the walk through the WALKER stream, prices
    // migrations on the MIGRATION stream, and pulls per-site contention
    // plans; the artifact must stay a pure function of (grid, campaign
    // seed) — identical bytes for every worker count and across two
    // independent runs of the same context seed.
    let ctx = ExperimentContext::quick(19).unwrap();
    let grid = parse_grid_spec(
        "frame_sizes        = 300\n\
         cpu_clocks         = 2.0\n\
         executions         = remote\n\
         frame_rates        = 5\n\
         mobility           = vehicle:25:8\n\
         frames_per_session = 100\n\
         topology           = square, hex\n\
         site_density       = 400, 1600\n\
         migration_policy   = eager, lazy\n\
         replications       = 2\n",
    )
    .unwrap();
    let reference = csv_lines(&run_campaign_with(&ctx, &grid, &CampaignRunner::new(1)).unwrap());
    assert_eq!(reference.len(), grid.len() + 1);
    assert_eq!(grid.len(), 8);
    for workers in [2, 5] {
        let rows = run_campaign_with(&ctx, &grid, &CampaignRunner::new(workers)).unwrap();
        assert_eq!(
            csv_lines(&rows),
            reference,
            "{workers} workers diverged on the topology campaign"
        );
    }
    let rerun_ctx = ExperimentContext::quick(19).unwrap();
    let rerun = csv_lines(&run_campaign_with(&rerun_ctx, &grid, &CampaignRunner::new(3)).unwrap());
    assert_eq!(rerun, reference, "a repeated run changed the artifact");
    // The topology columns carry real signal: the vehicular session roams
    // (sites_visited > 1, migration cost > 0), and at a fixed layout ×
    // policy the denser tiling bills more migration latency.
    let rows = run_campaign_with(&ctx, &grid, &CampaignRunner::new(2)).unwrap();
    for row in &rows {
        assert!(row.sites_visited > 1, "session never left its start site");
        assert!(row.gt_migration_ms_mean > 0.0);
        assert!(row.gt_handoff_rate > 0.0);
    }
    let find = |layout: &str, density: f64, policy: &str| {
        rows.iter()
            .find(|r| {
                r.point.topology.map(|l| l.to_string()) == Some(layout.to_string())
                    && r.point.site_density == Some(density)
                    && r.point.migration_policy.map(|p| p.to_string()) == Some(policy.to_string())
            })
            .expect("row exists")
    };
    assert!(
        find("square", 1600.0, "eager").gt_migration_ms_mean
            > find("square", 400.0, "eager").gt_migration_ms_mean,
        "denser square tiling must bill more migration latency"
    );
    assert!(
        find("hex", 1600.0, "eager").gt_migration_ms_mean
            > find("hex", 1600.0, "lazy").gt_migration_ms_mean,
        "eager must out-bill lazy on the same walk"
    );
}

/// A per-process scratch directory for shard artifacts.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xr-sweep-shard-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Runs every shard of an `N`-way partition into fresh artifacts and
/// returns the shard CSV paths.
fn run_all_shards(
    ctx: &ExperimentContext,
    grid: &SweepGrid,
    runner: &CampaignRunner,
    count: usize,
    tag: &str,
) -> Vec<PathBuf> {
    (1..=count)
        .map(|index| {
            let shard = ShardSpec::new(index, count).unwrap();
            let path = scratch(&format!("{tag}-{}", shard_csv_name(shard)));
            for stale in [&path, &checkpoint_path(&path), &manifest_path(&path)] {
                let _ = std::fs::remove_file(stale);
            }
            let report = run_campaign_shard_with(ctx, grid, runner, shard, &path, 1).unwrap();
            assert_eq!(report.evaluated_rows, shard.owned_len(grid.len()));
            path
        })
        .collect()
}

#[test]
fn sharded_campaigns_merge_byte_identically_across_grids() {
    // The tentpole acceptance bar: for every campaign family — the
    // twelve-axis quick grid and the mobility / contention / topology
    // config grids — partitioning the run across {2, 3, 8} shard processes
    // and merging the artifacts must reproduce the unsharded CSV byte for
    // byte. Seeds derive from original point indices, rows stream in
    // canonical order, and the merge interleaves without re-measuring.
    let mobility = "frame_sizes  = 500\n\
         cpu_clocks   = 2.0\n\
         executions   = remote\n\
         mobility     = static, walk:1.4:20, vehicle:25:10\n\
         replications = 4\n";
    let contention = "frame_sizes    = 300\n\
         cpu_clocks     = 2.0\n\
         executions     = remote\n\
         frame_rates    = 5\n\
         users_per_edge = 1, 4, 8\n\
         replications   = 3\n";
    let topology = "frame_sizes        = 300\n\
         cpu_clocks         = 2.0\n\
         executions         = remote\n\
         frame_rates        = 5\n\
         mobility           = vehicle:25:8\n\
         frames_per_session = 100\n\
         topology           = square, hex\n\
         site_density       = 400, 1600\n\
         migration_policy   = eager, lazy\n\
         replications       = 2\n";
    let families: [(&str, Option<&str>, u64); 4] = [
        ("quick", None, 2024),
        ("mobility", Some(mobility), 7),
        ("contention", Some(contention), 13),
        ("topology", Some(topology), 19),
    ];
    for (name, spec, seed) in families {
        let ctx = ExperimentContext::quick(seed).unwrap();
        let grid = spec.map_or_else(quick_grid, |s| parse_grid_spec(s).unwrap());
        let runner = CampaignRunner::new(3).with_campaign_seed(ctx.seed());
        let reference = {
            let mut text = csv_lines(&run_campaign_with(&ctx, &grid, &runner).unwrap()).join("\n");
            text.push('\n');
            text
        };
        for count in [2usize, 3, 8] {
            let paths = run_all_shards(&ctx, &grid, &runner, count, &format!("{name}-{count}"));
            assert_eq!(
                merge_campaign_csvs(&paths).unwrap(),
                reference,
                "{name} grid diverged at {count} shards"
            );
        }
    }
}

/// Everything the crash-resume property test replays: one completed shard
/// run's artifacts, plus the context/grid to resume under.
struct ResumeFixture {
    ctx: ExperimentContext,
    grid: SweepGrid,
    full_csv: Vec<u8>,
    full_checkpoint: Vec<u8>,
    /// Byte offset of the end of the header and of each data row/record.
    csv_boundaries: Vec<usize>,
    checkpoint_boundaries: Vec<usize>,
}

/// End offsets of the prefix ending at the header plus each subsequent
/// newline — the valid truncation boundaries of an append-only line file.
fn line_boundaries(data: &[u8], header_lines: usize) -> Vec<usize> {
    let mut boundaries = Vec::new();
    let mut seen = 0usize;
    for (i, &b) in data.iter().enumerate() {
        if b == b'\n' {
            seen += 1;
            if seen >= header_lines {
                boundaries.push(i + 1);
            }
        }
    }
    boundaries
}

fn resume_fixture() -> &'static ResumeFixture {
    static FIXTURE: OnceLock<ResumeFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ctx = ExperimentContext::quick(37).unwrap();
        let grid = parse_grid_spec(
            "frame_sizes  = 500\n\
             cpu_clocks   = 1.0, 3.0\n\
             executions   = remote\n\
             mobility     = static, walk:1.4:20, vehicle:25:10\n\
             replications = 2\n",
        )
        .unwrap();
        let runner = CampaignRunner::new(2).with_campaign_seed(ctx.seed());
        let shard = ShardSpec::new(1, 2).unwrap();
        let path = scratch("resume-fixture.csv");
        for stale in [&path, &checkpoint_path(&path), &manifest_path(&path)] {
            let _ = std::fs::remove_file(stale);
        }
        run_campaign_shard_with(&ctx, &grid, &runner, shard, &path, 1).unwrap();
        let full_csv = std::fs::read(&path).unwrap();
        let full_checkpoint = std::fs::read(checkpoint_path(&path)).unwrap();
        // CSV: 1 header line; checkpoint: magic + 4 header fields.
        let csv_boundaries = line_boundaries(&full_csv, 1);
        let checkpoint_boundaries = line_boundaries(&full_checkpoint, 5);
        ResumeFixture {
            ctx,
            grid,
            full_csv,
            full_checkpoint,
            csv_boundaries,
            checkpoint_boundaries,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    // A shard process can die at any instant: the CSV and the checkpoint
    // are each cut at an arbitrary record boundary — or *inside* a record,
    // the torn tail a crash mid-`write` leaves — independently, since the
    // kill can land between the row append and the checkpoint append.
    // Resuming must always reproduce the uninterrupted artifacts byte for
    // byte. (A plain comment: the proptest shim's matcher expects `#[test]`
    // immediately.)
    #[test]
    fn killed_shards_resume_to_byte_identical_artifacts(
        csv_keep in 0usize..4,
        csv_tear in 0usize..40,
        checkpoint_keep in 0usize..4,
        checkpoint_tear in 0usize..8,
    ) {
        let fixture = resume_fixture();
        let rows = fixture.csv_boundaries.len() - 1;
        prop_assert_eq!(rows, 3); // shard 1/2 of the 6-point grid
        let cut = |data: &[u8], boundaries: &[usize], keep: usize, tear: usize| {
            let keep = keep.min(boundaries.len() - 1);
            let at = boundaries[keep];
            // Tearing past the next boundary would fabricate a complete
            // record; stay strictly inside it.
            let next = boundaries.get(keep + 1).copied().unwrap_or(at);
            let torn = (at + tear).min(next.saturating_sub(1)).max(at);
            data[..torn].to_vec()
        };
        let tag = format!(
            "resume-{csv_keep}-{csv_tear}-{checkpoint_keep}-{checkpoint_tear}.csv"
        );
        let path = scratch(&tag);
        for stale in [&path, &checkpoint_path(&path), &manifest_path(&path)] {
            let _ = std::fs::remove_file(stale);
        }
        std::fs::write(
            &path,
            cut(&fixture.full_csv, &fixture.csv_boundaries, csv_keep, csv_tear),
        ).unwrap();
        std::fs::write(
            checkpoint_path(&path),
            cut(
                &fixture.full_checkpoint,
                &fixture.checkpoint_boundaries,
                checkpoint_keep,
                checkpoint_tear,
            ),
        ).unwrap();
        let runner = CampaignRunner::new(2).with_campaign_seed(fixture.ctx.seed());
        let report = run_campaign_shard_with(
            &fixture.ctx,
            &fixture.grid,
            &runner,
            ShardSpec::new(1, 2).unwrap(),
            &path,
            1,
        ).unwrap();
        // Only what CSV and checkpoint agree on survives as progress.
        prop_assert_eq!(report.resumed_rows, csv_keep.min(checkpoint_keep).min(rows));
        prop_assert_eq!(std::fs::read(&path).unwrap(), fixture.full_csv.clone());
        prop_assert_eq!(
            std::fs::read(checkpoint_path(&path)).unwrap(),
            fixture.full_checkpoint.clone()
        );
    }
}

#[test]
fn mobility_sweep_is_worker_count_invariant() {
    let ctx = ExperimentContext::quick(9).unwrap();
    let reference = mobility_sweep_with(&ctx, &CampaignRunner::new(1)).unwrap();
    let parallel = mobility_sweep_with(&ctx, &CampaignRunner::new(5)).unwrap();
    assert_eq!(reference, parallel);
    let cells: Vec<Vec<String>> = reference.iter().map(|p| p.cells()).collect();
    let parallel_cells: Vec<Vec<String>> = parallel.iter().map(|p| p.cells()).collect();
    assert_eq!(cells, parallel_cells);
}

#[test]
fn single_replication_static_campaign_matches_a_hand_rolled_session_loop() {
    // With replications = 1 and a static mobility condition, a campaign row
    // is exactly one reseeded testbed session plus one model analysis —
    // pin the engine's aggregation to that hand-rolled equivalent.
    let ctx = ExperimentContext::quick(2024).unwrap();
    let grid = SweepGrid::paper_panel(ExecutionTarget::Remote)
        .with_frame_sizes([300.0, 700.0])
        .with_cpu_clocks([2.0]);
    assert_eq!(grid.replications(), 1);
    let runner = CampaignRunner::new(3).with_campaign_seed(ctx.seed());
    let rows = run_campaign_with(&ctx, &grid, &runner).unwrap();
    let points = grid.points().unwrap();
    assert_eq!(rows.len(), points.len());
    for (row, point) in rows.iter().zip(&points) {
        let seed = xr_sweep::replication_seed(ctx.seed(), point.index, 0);
        let scenario = ctx.scenario_for(point).unwrap();
        let session = ctx
            .testbed_for_seed(seed)
            .simulate_session(&scenario, ctx.frames_per_point())
            .unwrap();
        let expected = session.mean_latency().as_f64() * 1e3;
        assert_eq!(row.gt_latency_ms.mean, expected);
        assert_eq!(row.gt_latency_ms.ci95_lo, expected);
        assert_eq!(row.gt_latency_ms.ci95_hi, expected);
        assert_eq!(row.gt_handoff_rate, 0.0);
    }
}

#[test]
fn streaming_campaign_emits_the_same_rows_in_order() {
    let ctx = ExperimentContext::quick(5).unwrap();
    let grid = SweepGrid::paper_panel(ExecutionTarget::Remote)
        .with_frame_sizes([300.0, 700.0])
        .with_cpu_clocks([2.0]);
    let collected = run_campaign_with(&ctx, &grid, &CampaignRunner::new(3)).unwrap();
    let mut streamed = Vec::new();
    run_campaign_streaming_with(&ctx, &grid, &CampaignRunner::new(3), |index, row| {
        assert_eq!(index, streamed.len(), "rows must stream in point order");
        streamed.push(row);
    })
    .unwrap();
    assert_eq!(streamed, collected);
}

#[test]
fn figure_sweep_matches_a_hand_rolled_sequential_loop() {
    // The engine-driven Fig. 4 panel must reproduce, number for number, what
    // the pre-engine nested loop computed: clock outer, frame size inner,
    // one testbed session and one model analysis per point.
    let ctx = ExperimentContext::quick(2024).unwrap();
    let sweep = latency_sweep(&ctx, ExecutionTarget::Local).unwrap();
    let mut expected = Vec::new();
    for &clock in &ExperimentContext::CPU_CLOCKS {
        for &size in &ExperimentContext::FRAME_SIZES {
            let scenario = ctx.scenario(size, clock, ExecutionTarget::Local).unwrap();
            let session = ctx
                .testbed()
                .simulate_session(&scenario, ctx.frames_per_point())
                .unwrap();
            let report = ctx.proposed().analyze(&scenario).unwrap();
            expected.push((
                size,
                clock,
                session.mean_latency().as_f64() * 1e3,
                report.latency_ms().as_f64(),
            ));
        }
    }
    assert_eq!(sweep.points.len(), expected.len());
    for (point, (size, clock, ground_truth, proposed)) in sweep.points.iter().zip(expected) {
        assert_eq!(point.frame_size, size);
        assert_eq!(point.cpu_clock_ghz, clock);
        assert_eq!(
            point.ground_truth, ground_truth,
            "GT diverged at {size}/{clock}"
        );
        assert_eq!(point.proposed, proposed, "model diverged at {size}/{clock}");
    }
}
