//! Replicated-point throughput: the per-rep dispatch loop (each replication
//! simulated as its own standalone session) versus the replication-fused
//! engine (`simulate_point`, all R replications in one wide SoA pass), over
//! the point shapes campaigns actually evaluate — short quick-grid sessions
//! where the per-rep constant costs (the `BatchConsts` hoist, lane-bank
//! seeding, walker and monitor setup) dominate, plus a longer paper-scale
//! shape where the draw kernels do.
//!
//! The two paths are bit-identical by contract — asserted here before any
//! timing, so the speedup measures pure per-point overhead, not divergent
//! work. R=1 is included honestly: the fused engine falls back to a single
//! standalone session there, so its ratio is ~1.0×. Measured numbers are
//! recorded in `BENCH_point_fused.json` at the repository root; the
//! acceptance bar is ≥ 1.3× on at least one multi-rep shape.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use xr_core::{MobilityConfig, Scenario};
use xr_testbed::{SimulationEngine, TestbedSimulator, DEFAULT_BATCH_WIDTH};
use xr_types::{ExecutionTarget, GigaHertz, Meters, MetersPerSecond};
use xr_wireless::HandoffKind;

const POINT_SEED: u64 = 2024;

fn scenarios() -> Vec<(&'static str, Scenario)> {
    let base = |execution| {
        Scenario::builder()
            .frame_side(500.0)
            .cpu_clock(GigaHertz::new(2.0))
            .execution(execution)
    };
    vec![
        ("remote", base(ExecutionTarget::Remote).build().unwrap()),
        (
            "mobile",
            base(ExecutionTarget::Remote)
                .mobility(MobilityConfig {
                    speed: MetersPerSecond::new(25.0),
                    coverage_radius: Meters::new(10.0),
                    handoff_kind: HandoffKind::Vertical,
                })
                .build()
                .unwrap(),
        ),
        (
            // A vehicular session roaming a dense contended edge map: the
            // per-rep path rebuilds every site's contention plan for every
            // replication; the fused path hoists them once per point.
            "roaming",
            base(ExecutionTarget::Remote)
                .frame_rate(xr_types::Hertz::new(5.0))
                .contention(4)
                .topology(xr_core::TopologyConfig {
                    layout: xr_types::TopologyLayout::Hex,
                    site_density: 1600.0,
                    migration_policy: xr_types::MigrationPolicy::Eager,
                })
                .mobility(MobilityConfig {
                    speed: MetersPerSecond::new(25.0),
                    coverage_radius: Meters::new(8.0),
                    handoff_kind: HandoffKind::Vertical,
                })
                .build()
                .unwrap(),
        ),
    ]
}

/// `(replications, frames)` shapes: the quick-grid point (20 frames) at
/// R ∈ {1, 3, 8} plus the paper-scale point (100 frames) at R = 3.
fn shapes() -> [(usize, u64); 5] {
    [(1, 20), (3, 20), (8, 20), (8, 5), (3, 100)]
}

fn point_fused_throughput(c: &mut Criterion) {
    // The per-rep reference keeps the default batched engine, under which
    // `simulate_point` dispatches replication by replication — exactly the
    // per-rep campaign path. The fused testbed differs only in the engine.
    let per_rep = TestbedSimulator::new(7);
    let fused = per_rep.clone().with_engine(SimulationEngine::FusedPoint {
        width: DEFAULT_BATCH_WIDTH,
    });

    // Bit-identity gate: a faster point engine that drifts is not a
    // speedup. CI smoke-runs this bench with XR_BENCH_SAMPLE_SIZE=2 on both
    // the AVX2 and XR_FORCE_PORTABLE=1 legs precisely for this block.
    for (label, scenario) in &scenarios() {
        for (reps, frames) in shapes() {
            let reference = per_rep
                .simulate_point(scenario, POINT_SEED, reps, frames)
                .unwrap();
            let fused_sessions = fused
                .simulate_point(scenario, POINT_SEED, reps, frames)
                .unwrap();
            assert_eq!(
                fused_sessions, reference,
                "{label}: fused point (reps {reps}, frames {frames}) diverged from per-rep sessions"
            );
        }
    }

    let mut group = c.benchmark_group("point_fused");
    group.sample_size(20);
    for (label, scenario) in &scenarios() {
        for (reps, frames) in shapes() {
            let shape = format!("{label}/r{reps}xf{frames}");
            group.bench_with_input(
                BenchmarkId::new("per_rep", &shape),
                scenario,
                |b, scenario| {
                    b.iter(|| {
                        black_box(
                            per_rep
                                .simulate_point(scenario, POINT_SEED, reps, frames)
                                .unwrap(),
                        )
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("fused", &shape),
                scenario,
                |b, scenario| {
                    b.iter(|| {
                        black_box(
                            fused
                                .simulate_point(scenario, POINT_SEED, reps, frames)
                                .unwrap(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, point_fused_throughput);
criterion_main!(benches);
