//! Consolidated measurement campaigns over the full twelve-axis sweep grid.
//!
//! Where the `figures`/`comparison` modules regenerate individual paper
//! panels, a *campaign* sweeps every axis the engine knows about — frame
//! size, CPU clock, execution target, client device, wireless condition,
//! mobility condition, measurement-campaign size (frames per session),
//! edge population (`users_per_edge`), per-session frame rate, edge
//! topology layout, site density, migration policy —
//! and measures each operating point with
//! `grid.replications()` independently seeded testbed sessions, exactly as
//! the paper's campaign repeats measurements under a moving user. Each row
//! aggregates its replications into a mean with a two-sided 95 % Student-t
//! confidence interval. The `campaign` binary drives [`quick_grid`] (or a
//! `--grid <file>` spec) and is also the CI determinism probe: run twice
//! with different `XR_SWEEP_WORKERS`, the CSVs must be identical.

use crate::context::ExperimentContext;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use xr_stats::mean_confidence_interval;
use xr_sweep::{CampaignRunner, OperatingPoint, SweepGrid, WirelessCondition};
use xr_testbed::SimulationEngine;
use xr_types::{ExecutionTarget, Result};

/// Column header of the consolidated campaign CSV.
pub const CAMPAIGN_HEADER: [&str; 27] = [
    "point",
    "device",
    "wireless",
    "mobility",
    "execution",
    "cpu_ghz",
    "frame_size",
    "frame_rate_hz",
    "users_per_edge",
    "topology",
    "site_density",
    "migration_policy",
    "frames_per_session",
    "replications",
    "gt_latency_ms_mean",
    "gt_latency_ms_ci95_lo",
    "gt_latency_ms_ci95_hi",
    "gt_energy_mj_mean",
    "gt_energy_mj_ci95_lo",
    "gt_energy_mj_ci95_hi",
    "gt_handoff_rate",
    "gt_migration_ms_mean",
    "sites_visited",
    "edge_utilization",
    "gt_contention_ms_mean",
    "proposed_latency_ms",
    "proposed_energy_mj",
];

/// Mean and two-sided 95 % Student-t confidence bounds over the
/// replications of one operating point. With a single replication the
/// interval degenerates to the mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicateStats {
    /// Mean over the replications.
    pub mean: f64,
    /// Lower 95 % confidence bound.
    pub ci95_lo: f64,
    /// Upper 95 % confidence bound.
    pub ci95_hi: f64,
}

impl ReplicateStats {
    /// Aggregates per-replication measurements.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let (ci95_lo, ci95_hi) = mean_confidence_interval(samples, 0.95);
        Self {
            mean,
            ci95_lo,
            ci95_hi,
        }
    }
}

/// One replication's raw measurements at an operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RepSample {
    latency_ms: f64,
    energy_mj: f64,
    handoff_rate: f64,
    /// Mean per-frame edge-to-edge state-migration latency in ms; zero on
    /// untopologized points.
    migration_ms: f64,
    /// Distinct edge sites the session attached to (1 on untopologized
    /// points).
    sites_visited: u32,
    /// `(latency_ms, energy_mj)` model prediction, computed only on the
    /// first replication (the model is deterministic per point).
    proposed: Option<(f64, f64)>,
    /// `(bottleneck utilisation ρ, analytic mean contention delay in ms)`
    /// of the shared edge queue, computed only on the first replication
    /// (the snapshot is deterministic per point); `(0, 0)` when the point
    /// runs contention-free.
    contention: Option<(f64, f64)>,
}

/// One consolidated campaign measurement: the operating point plus
/// replication-aggregated ground truth and the (deterministic)
/// proposed-model prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignRow {
    /// The operating point this row measures.
    pub point: OperatingPoint,
    /// Resolved measurement-campaign size: ground-truth frames simulated
    /// per session (the point's own `frames_per_session`, or the context
    /// default when the grid does not sweep the campaign-size axis).
    pub frames_per_session: u64,
    /// Number of independently seeded sessions aggregated into this row.
    pub replications: usize,
    /// Ground-truth mean end-to-end latency (ms) with 95 % CI.
    pub gt_latency_ms: ReplicateStats,
    /// Ground-truth mean per-frame energy (mJ) with 95 % CI.
    pub gt_energy_mj: ReplicateStats,
    /// Ground-truth fraction of frames with a handoff, averaged over
    /// replications.
    pub gt_handoff_rate: f64,
    /// Ground-truth mean per-frame edge-to-edge state-migration latency
    /// (ms), averaged over replications; zero on untopologized points.
    pub gt_migration_ms_mean: f64,
    /// Maximum number of distinct edge sites any replication's session
    /// attached to; 1 on untopologized points.
    pub sites_visited: u32,
    /// Utilisation `ρ` of the bottleneck shared edge queue at this point —
    /// deterministic (offered load over service rate), `0` when the point
    /// runs contention-free.
    pub edge_utilization: f64,
    /// Analytic mean contention delay (ms) of the shared edge queue: the
    /// expectation of the M/M/1 sojourn term the contended remote stage
    /// draws from, `0` when the point runs contention-free.
    pub gt_contention_ms_mean: f64,
    /// Proposed-model latency prediction (ms) — deterministic per point.
    pub proposed_latency_ms: f64,
    /// Proposed-model energy prediction (mJ) — deterministic per point.
    pub proposed_energy_mj: f64,
}

impl CampaignRow {
    /// The row formatted for the CSV/console output layer.
    #[must_use]
    pub fn cells(&self) -> Vec<String> {
        let execution = match self.point.execution {
            ExecutionTarget::Local => "local".to_string(),
            ExecutionTarget::Remote => "remote".to_string(),
            ExecutionTarget::Split { client_share } => format!("split{client_share:.2}"),
        };
        vec![
            self.point.index.to_string(),
            self.point.device.clone(),
            self.point.wireless.label.clone(),
            self.point.mobility.label.clone(),
            execution,
            format!("{:.1}", self.point.cpu_clock_ghz),
            format!("{:.0}", self.point.frame_size),
            self.point
                .frame_rate_hz
                .map_or_else(|| "default".to_string(), |rate| format!("{rate:.1}")),
            self.point
                .users_per_edge
                .map_or_else(|| "off".to_string(), |users| users.to_string()),
            self.point
                .topology
                .map_or_else(|| "off".to_string(), |layout| layout.to_string()),
            self.point
                .site_density
                .map_or_else(|| "default".to_string(), |density| format!("{density:.0}")),
            self.point
                .migration_policy
                .map_or_else(|| "default".to_string(), |policy| policy.to_string()),
            self.frames_per_session.to_string(),
            self.replications.to_string(),
            format!("{:.3}", self.gt_latency_ms.mean),
            format!("{:.3}", self.gt_latency_ms.ci95_lo),
            format!("{:.3}", self.gt_latency_ms.ci95_hi),
            format!("{:.3}", self.gt_energy_mj.mean),
            format!("{:.3}", self.gt_energy_mj.ci95_lo),
            format!("{:.3}", self.gt_energy_mj.ci95_hi),
            format!("{:.4}", self.gt_handoff_rate),
            format!("{:.4}", self.gt_migration_ms_mean),
            self.sites_visited.to_string(),
            format!("{:.4}", self.edge_utilization),
            format!("{:.3}", self.gt_contention_ms_mean),
            format!("{:.3}", self.proposed_latency_ms),
            format!("{:.3}", self.proposed_energy_mj),
        ]
    }

    /// Renders the row as one CSV line (no trailing newline) into `out`,
    /// clearing it first. Byte-identical to `cells().join(",")` — pinned by
    /// a unit test — but reuses the caller's buffer instead of allocating a
    /// `String` per cell, which matters in the sharded campaign sink where
    /// every row goes straight to a file.
    pub fn render_csv_into(&self, out: &mut String) {
        out.clear();
        let _ = write!(
            out,
            "{},{},{},{},",
            self.point.index,
            self.point.device,
            self.point.wireless.label,
            self.point.mobility.label
        );
        match self.point.execution {
            ExecutionTarget::Local => out.push_str("local"),
            ExecutionTarget::Remote => out.push_str("remote"),
            ExecutionTarget::Split { client_share } => {
                let _ = write!(out, "split{client_share:.2}");
            }
        }
        let _ = write!(
            out,
            ",{:.1},{:.0},",
            self.point.cpu_clock_ghz, self.point.frame_size
        );
        match self.point.frame_rate_hz {
            Some(rate) => {
                let _ = write!(out, "{rate:.1}");
            }
            None => out.push_str("default"),
        }
        out.push(',');
        match self.point.users_per_edge {
            Some(users) => {
                let _ = write!(out, "{users}");
            }
            None => out.push_str("off"),
        }
        out.push(',');
        match self.point.topology {
            Some(layout) => {
                let _ = write!(out, "{layout}");
            }
            None => out.push_str("off"),
        }
        out.push(',');
        match self.point.site_density {
            Some(density) => {
                let _ = write!(out, "{density:.0}");
            }
            None => out.push_str("default"),
        }
        out.push(',');
        match self.point.migration_policy {
            Some(policy) => {
                let _ = write!(out, "{policy}");
            }
            None => out.push_str("default"),
        }
        let _ = write!(
            out,
            ",{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.4},{:.4},{},{:.4},{:.3},{:.3},{:.3}",
            self.frames_per_session,
            self.replications,
            self.gt_latency_ms.mean,
            self.gt_latency_ms.ci95_lo,
            self.gt_latency_ms.ci95_hi,
            self.gt_energy_mj.mean,
            self.gt_energy_mj.ci95_lo,
            self.gt_energy_mj.ci95_hi,
            self.gt_handoff_rate,
            self.gt_migration_ms_mean,
            self.sites_visited,
            self.edge_utilization,
            self.gt_contention_ms_mean,
            self.proposed_latency_ms,
            self.proposed_energy_mj,
        );
    }
}

/// The quick consolidated grid the `campaign` binary sweeps: a scenario
/// spread no single figure covers — two client devices, local and remote
/// execution, a degraded cell-edge link next to the nominal one, a moving
/// device next to the static one, and three replications per point.
#[must_use]
pub fn quick_grid() -> SweepGrid {
    // Every axis of the starting panel is replaced below, so its execution
    // target carries no meaning here; `paper_panel` is just the only grid
    // constructor.
    SweepGrid::paper_panel(ExecutionTarget::Remote)
        .with_frame_sizes([300.0, 500.0, 700.0])
        .with_cpu_clocks([1.0, 3.0])
        .with_executions([ExecutionTarget::Local, ExecutionTarget::Remote])
        .with_devices(vec!["XR2".to_string(), "XR3".to_string()])
        .with_wireless(vec![
            WirelessCondition::baseline(),
            WirelessCondition::new("cell-edge", Some(60.0), Some(40.0)),
        ])
        .with_mobility(vec![
            xr_sweep::MobilityCondition::static_device(),
            xr_sweep::MobilityCondition::new("vehicle", 25.0, 10.0),
        ])
        .with_replications(3)
}

/// Runs a replicated campaign over `grid`, streaming aggregated rows **in
/// point order** into `sink` as each point's replications complete (the
/// engine's hold-back collector guarantees the order regardless of worker
/// count). Every replication simulates an independently seeded testbed
/// session; seeds derive from `(campaign_seed, point_index, rep_index)`, so
/// the artifact is bit-identical for any worker count.
///
/// # Errors
///
/// Propagates grid, scenario and model errors.
pub fn run_campaign_streaming(
    ctx: &ExperimentContext,
    grid: &SweepGrid,
    sink: impl FnMut(usize, CampaignRow) + Send,
) -> Result<()> {
    run_campaign_streaming_with(ctx, grid, &ctx.runner(), sink)
}

/// [`run_campaign_streaming`] with an explicit runner — the entry point for
/// benchmarks and determinism tests that pin the worker count.
///
/// # Errors
///
/// Propagates grid, scenario and model errors.
pub fn run_campaign_streaming_with(
    ctx: &ExperimentContext,
    grid: &SweepGrid,
    runner: &CampaignRunner,
    mut sink: impl FnMut(usize, CampaignRow) + Send,
) -> Result<()> {
    let subset: Vec<(usize, OperatingPoint)> = grid.points()?.into_iter().enumerate().collect();
    run_campaign_subset_streaming_with(ctx, grid, runner, &subset, |index, row| {
        sink(index, row);
    })
}

/// The core campaign evaluator: streams aggregated rows for an explicitly
/// indexed **subset** of a grid's points, in subset order. Each pair carries
/// the point's index in the full grid enumeration; replication seeds derive
/// from that original index, so a shard's rows are bit-identical to the same
/// rows of an unsharded campaign. [`run_campaign_streaming_with`] passes the
/// whole grid; the sharded campaign path passes its round-robin slice.
///
/// # Errors
///
/// Propagates grid, scenario and model errors.
pub fn run_campaign_subset_streaming_with(
    ctx: &ExperimentContext,
    grid: &SweepGrid,
    runner: &CampaignRunner,
    subset: &[(usize, OperatingPoint)],
    mut sink: impl FnMut(usize, CampaignRow) + Send,
) -> Result<()> {
    let replications = grid.replications();
    // The model prediction and the contention snapshot are deterministic per
    // point: both paths compute them once, on the first replication.
    let point_constants = |scenario: &xr_core::Scenario| -> Result<((f64, f64), (f64, f64))> {
        let report = ctx.proposed().analyze(scenario)?;
        let contention =
            ctx.testbed()
                .contention_snapshot(scenario)?
                .map_or((0.0, 0.0), |snapshot| {
                    (
                        snapshot.utilization(),
                        snapshot.mean_contention_delay().as_f64() * 1e3,
                    )
                });
        Ok((
            (report.latency_ms().as_f64(), report.energy_mj().as_f64()),
            contention,
        ))
    };
    // Rows stream back in subset order, so the sink can walk the subset in
    // lock-step to recover each row's operating point. Both the fused and
    // the per-rep path feed this same column reduction, so their rows are
    // identical whenever their per-rep samples are.
    let mut slot = 0usize;
    let mut emit = move |point_index: usize, samples: Vec<RepSample>| {
        let (original, ref point) = subset[slot];
        debug_assert_eq!(original, point_index, "rows must stream in subset order");
        slot += 1;
        let latencies: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
        let energies: Vec<f64> = samples.iter().map(|s| s.energy_mj).collect();
        let handoff_rate =
            samples.iter().map(|s| s.handoff_rate).sum::<f64>() / samples.len() as f64;
        let gt_migration_ms_mean =
            samples.iter().map(|s| s.migration_ms).sum::<f64>() / samples.len() as f64;
        let sites_visited = samples.iter().map(|s| s.sites_visited).max().unwrap_or(1);
        let (proposed_latency_ms, proposed_energy_mj) = samples[0]
            .proposed
            .expect("the first replication carries the model prediction");
        let (edge_utilization, gt_contention_ms_mean) = samples[0]
            .contention
            .expect("the first replication carries the contention snapshot");
        sink(
            point_index,
            CampaignRow {
                point: point.clone(),
                frames_per_session: ctx.frames_for(point),
                replications: samples.len(),
                gt_latency_ms: ReplicateStats::of(&latencies),
                gt_energy_mj: ReplicateStats::of(&energies),
                gt_handoff_rate: handoff_rate,
                gt_migration_ms_mean,
                sites_visited,
                edge_utilization,
                gt_contention_ms_mean,
                proposed_latency_ms,
                proposed_energy_mj,
            },
        );
    };
    // A fused-point testbed evaluates all replications of a point in one
    // wide SoA pass: the point becomes the work item, and the engine itself
    // falls back to per-rep dispatch when fusion cannot apply (single
    // replication, range-chunked sessions). Per-rep seeds derive from the
    // point seed exactly as `run_indexed_replicated_streaming` derives them,
    // so the samples — and therefore the rows — are bit-identical.
    if matches!(ctx.testbed().engine(), SimulationEngine::FusedPoint { .. }) {
        return runner.run_indexed_fused_streaming(
            subset,
            |point_ctx, point: &OperatingPoint| {
                let scenario = ctx.scenario_for(point)?;
                let sessions = ctx.testbed().simulate_point(
                    &scenario,
                    point_ctx.seed,
                    replications.max(1),
                    ctx.frames_for(point),
                )?;
                let (proposed, contention) = point_constants(&scenario)?;
                Ok(sessions
                    .iter()
                    .enumerate()
                    .map(|(rep, session)| RepSample {
                        latency_ms: session.mean_latency().as_f64() * 1e3,
                        energy_mj: session.mean_energy().as_f64() * 1e3,
                        handoff_rate: session.handoff_rate(),
                        migration_ms: session.mean_migration_latency().as_f64() * 1e3,
                        sites_visited: session.sites_visited(),
                        proposed: (rep == 0).then_some(proposed),
                        contention: (rep == 0).then_some(contention),
                    })
                    .collect())
            },
            emit,
        );
    }
    runner.run_indexed_replicated_streaming(
        subset,
        replications,
        |rep_ctx, point: &OperatingPoint| {
            let scenario = ctx.scenario_for(point)?;
            let session = ctx
                .testbed_for_seed(rep_ctx.seed)
                .simulate_session(&scenario, ctx.frames_for(point))?;
            let (proposed, contention) = if rep_ctx.rep_index == 0 {
                let (proposed, contention) = point_constants(&scenario)?;
                (Some(proposed), Some(contention))
            } else {
                (None, None)
            };
            Ok(RepSample {
                latency_ms: session.mean_latency().as_f64() * 1e3,
                energy_mj: session.mean_energy().as_f64() * 1e3,
                handoff_rate: session.handoff_rate(),
                migration_ms: session.mean_migration_latency().as_f64() * 1e3,
                sites_visited: session.sites_visited(),
                proposed,
                contention,
            })
        },
        &mut emit,
    )
}

/// Runs a campaign over `grid` and returns every aggregated row in point
/// order.
///
/// # Errors
///
/// Propagates grid, scenario and model errors.
pub fn run_campaign(ctx: &ExperimentContext, grid: &SweepGrid) -> Result<Vec<CampaignRow>> {
    run_campaign_with(ctx, grid, &ctx.runner())
}

/// [`run_campaign`] with an explicit runner.
///
/// # Errors
///
/// Propagates grid, scenario and model errors.
pub fn run_campaign_with(
    ctx: &ExperimentContext,
    grid: &SweepGrid,
    runner: &CampaignRunner,
) -> Result<Vec<CampaignRow>> {
    let mut rows = Vec::new();
    run_campaign_streaming_with(ctx, grid, runner, |_, row| rows.push(row))?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_covers_every_axis_in_order() {
        let ctx = ExperimentContext::quick(17).unwrap();
        let grid = quick_grid();
        let rows = run_campaign(&ctx, &grid).unwrap();
        assert_eq!(rows.len(), grid.len());
        assert_eq!(rows.len(), 96); // 3 sizes × 2 clocks × 2 targets × 2 devices × 2 links × 2 mobility
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.point.index, i);
            assert_eq!(row.replications, 3);
            assert_eq!(
                row.frames_per_session, 20,
                "grids without a campaign-size axis resolve to the context default"
            );
            assert!(row.gt_latency_ms.mean > 0.0);
            assert!(row.gt_latency_ms.ci95_lo <= row.gt_latency_ms.mean);
            assert!(row.gt_latency_ms.ci95_hi >= row.gt_latency_ms.mean);
            assert!(row.gt_energy_mj.mean > 0.0);
            assert!(row.proposed_latency_ms > 0.0);
            assert!(row.proposed_energy_mj > 0.0);
            assert_eq!(row.cells().len(), CAMPAIGN_HEADER.len());
        }
        let devices: std::collections::BTreeSet<&str> =
            rows.iter().map(|r| r.point.device.as_str()).collect();
        assert_eq!(devices.len(), 2);
        let links: std::collections::BTreeSet<&str> = rows
            .iter()
            .map(|r| r.point.wireless.label.as_str())
            .collect();
        assert_eq!(links.len(), 2);
        // Mobile remote points hand off; static points never do.
        let mobile_rate: f64 = rows
            .iter()
            .filter(|r| {
                !r.point.mobility.is_static() && r.point.execution == ExecutionTarget::Remote
            })
            .map(|r| r.gt_handoff_rate)
            .sum();
        assert!(mobile_rate > 0.0, "no mobile remote point handed off");
        assert!(rows
            .iter()
            .filter(|r| r.point.mobility.is_static())
            .all(|r| r.gt_handoff_rate == 0.0));
        // Replication spread is real: some row has a non-degenerate CI.
        assert!(rows
            .iter()
            .any(|r| r.gt_latency_ms.ci95_hi > r.gt_latency_ms.ci95_lo));
    }

    #[test]
    fn fused_campaign_rows_match_the_per_rep_path() {
        let ctx = ExperimentContext::quick(23).unwrap();
        let grid = quick_grid();
        let subset: Vec<(usize, OperatingPoint)> = grid
            .points()
            .unwrap()
            .into_iter()
            .enumerate()
            .step_by(11)
            .collect();
        let runner = CampaignRunner::new(2).with_campaign_seed(ctx.seed());
        let mut reference = Vec::new();
        run_campaign_subset_streaming_with(&ctx, &grid, &runner, &subset, |index, row| {
            reference.push((index, row));
        })
        .unwrap();
        let fused_ctx = ctx.with_fused_points();
        let mut fused = Vec::new();
        run_campaign_subset_streaming_with(&fused_ctx, &grid, &runner, &subset, |index, row| {
            fused.push((index, row));
        })
        .unwrap();
        assert_eq!(fused, reference);
    }

    #[test]
    fn csv_rendering_matches_the_cell_layer_byte_for_byte() {
        let ctx = ExperimentContext::quick(29).unwrap();
        // A grid exercising every optional column: frame rate, contention,
        // topology axes and a split execution target.
        let grid = SweepGrid::paper_panel(ExecutionTarget::Split { client_share: 0.25 })
            .with_frame_sizes([300.0])
            .with_cpu_clocks([2.0])
            .with_frame_rates([10.0])
            .with_users_per_edge([2])
            .with_topologies([xr_types::TopologyLayout::Hex])
            .with_site_densities([900.0])
            .with_migration_policies([xr_types::MigrationPolicy::Lazy])
            .with_replications(2);
        let mut rows = run_campaign(&ctx, &grid).unwrap();
        rows.extend(
            run_campaign(&ctx, &quick_grid())
                .unwrap()
                .into_iter()
                .take(8),
        );
        let mut line = String::new();
        for row in &rows {
            row.render_csv_into(&mut line);
            assert_eq!(line, row.cells().join(","));
        }
    }

    #[test]
    fn degraded_link_slows_remote_frames_only() {
        let ctx = ExperimentContext::quick(18).unwrap();
        let grid = quick_grid();
        let rows = run_campaign(&ctx, &grid).unwrap();
        // Pair rows that differ only in the wireless condition.
        let find = |device: &str, wireless: &str, execution, clock: f64, size: f64| {
            rows.iter()
                .find(|r| {
                    r.point.device == device
                        && r.point.wireless.label == wireless
                        && r.point.mobility.is_static()
                        && r.point.execution == execution
                        && (r.point.cpu_clock_ghz - clock).abs() < 1e-9
                        && (r.point.frame_size - size).abs() < 1e-9
                })
                .expect("row exists")
        };
        let nominal = find("XR2", "baseline", ExecutionTarget::Remote, 3.0, 500.0);
        let degraded = find("XR2", "cell-edge", ExecutionTarget::Remote, 3.0, 500.0);
        assert!(
            degraded.gt_latency_ms.mean > nominal.gt_latency_ms.mean,
            "cell-edge {} vs baseline {}",
            degraded.gt_latency_ms.mean,
            nominal.gt_latency_ms.mean
        );
        // Local execution never touches the link, so the condition is inert:
        // the deterministic model predicts identical latency, and the two
        // independently seeded ground-truth measurements agree to within
        // measurement noise.
        let local_a = find("XR2", "baseline", ExecutionTarget::Local, 3.0, 500.0);
        let local_b = find("XR2", "cell-edge", ExecutionTarget::Local, 3.0, 500.0);
        assert!((local_a.proposed_latency_ms - local_b.proposed_latency_ms).abs() < 1e-9);
        let gap = (local_a.gt_latency_ms.mean - local_b.gt_latency_ms.mean).abs()
            / local_a.gt_latency_ms.mean;
        assert!(
            gap < 0.05,
            "independent local measurements diverged by {gap}"
        );
    }
}
