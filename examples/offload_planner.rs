//! Offload planner: use the analytical framework the way a scheduler would —
//! sweep devices, CNNs and execution targets, and pick the configuration that
//! minimises energy subject to a latency budget, without running a single
//! real experiment.
//!
//! ```text
//! cargo run -p xr-examples --bin offload_planner
//! ```

use xr_core::{Scenario, XrPerformanceModel};
use xr_devices::DeviceCatalog;
use xr_types::{Error, ExecutionTarget};

fn main() -> Result<(), Error> {
    let model = XrPerformanceModel::published();
    let latency_budget_ms = 800.0;

    println!(
        "=== Offload planner: minimise energy under a {latency_budget_ms:.0} ms latency budget ==="
    );
    println!(
        "{:<6} {:<26} {:<8} {:>13} {:>13} {:>9}",
        "device", "local CNN", "target", "latency (ms)", "energy (mJ)", "feasible"
    );

    let mut best: Option<(String, f64, f64)> = None;
    let catalog = DeviceCatalog::table1();
    for device in catalog.xr_clients() {
        for cnn in [
            "MobileNetV1_240_Quant",
            "MobileNetV2_300_Float",
            "EfficientNet_Float",
        ] {
            for target in [ExecutionTarget::Local, ExecutionTarget::Remote] {
                let scenario = Scenario::builder()
                    .client_from_catalog(&device.name)?
                    .local_cnn(cnn)?
                    .frame_side(500.0)
                    .execution(target)
                    .build()?;
                let report = model.analyze(&scenario)?;
                let latency = report.latency_ms().as_f64();
                let energy = report.energy_mj().as_f64();
                let feasible = latency <= latency_budget_ms;
                println!(
                    "{:<6} {:<26} {:<8} {:>13.2} {:>13.2} {:>9}",
                    device.name,
                    cnn,
                    target.to_string(),
                    latency,
                    energy,
                    if feasible { "yes" } else { "no" }
                );
                if feasible {
                    let label = format!("{} / {} / {}", device.name, cnn, target);
                    if best.as_ref().is_none_or(|(_, _, e)| energy < *e) {
                        best = Some((label, latency, energy));
                    }
                }
            }
        }
    }

    match best {
        Some((label, latency, energy)) => println!(
            "\n-> best feasible configuration: {label} ({latency:.2} ms, {energy:.2} mJ per frame)"
        ),
        None => println!(
            "\n-> no configuration meets the latency budget; relax it or add edge capacity"
        ),
    }
    Ok(())
}
