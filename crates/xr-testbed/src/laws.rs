//! The hidden "true" hardware laws of the simulated testbed.
//!
//! The real testbed's devices obey physics the analytical framework can only
//! approximate through regression. To reproduce that relationship the
//! simulator evaluates *these* laws — smooth, monotone, with interaction
//! effects and per-device biases — while the analytical models are fitted on
//! noisy samples of them (see [`crate::dataset`]). The gap between the two is
//! what generates the few-percent validation errors of Section VIII.

use serde::{Deserialize, Serialize};
use xr_core::EncodingConfig;
use xr_devices::CnnModel;
use xr_types::{Frame, GigaHertz, Ratio, Watts};

/// Per-device multiplicative bias factors, modelling the fact that two phones
/// with the same nominal clocks still differ in sustained performance
/// (thermal envelopes, schedulers, memory controllers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceBias {
    /// Multiplier on the effective compute resource (1.0 = nominal).
    pub compute: f64,
    /// Multiplier on the power draw.
    pub power: f64,
    /// Multiplier on the encoder cost.
    pub encoding: f64,
}

impl DeviceBias {
    /// The bias of a named device. Values are fixed (not random) so that the
    /// training/held-out device split of the paper is reproducible: the
    /// training devices (XR1/XR3/XR5/XR6) and the validation devices
    /// (XR2/XR4/XR7) have slightly different biases, which is exactly what
    /// makes held-out validation meaningful.
    #[must_use]
    pub fn for_device(name: &str) -> Self {
        match name {
            "XR1" => Self {
                compute: 1.06,
                power: 0.97,
                encoding: 0.95,
            },
            "XR2" => Self {
                compute: 1.02,
                power: 1.03,
                encoding: 1.04,
            },
            "XR3" => Self {
                compute: 0.90,
                power: 1.05,
                encoding: 1.08,
            },
            "XR4" => Self {
                compute: 0.92,
                power: 1.02,
                encoding: 1.05,
            },
            "XR5" => Self {
                compute: 0.95,
                power: 0.98,
                encoding: 1.02,
            },
            "XR6" => Self {
                compute: 1.04,
                power: 1.00,
                encoding: 0.97,
            },
            "XR7" => Self {
                compute: 1.10,
                power: 0.95,
                encoding: 0.93,
            },
            _ => Self {
                compute: 1.0,
                power: 1.0,
                encoding: 1.0,
            },
        }
    }

    /// The neutral bias (1.0 everywhere).
    #[must_use]
    pub fn neutral() -> Self {
        Self {
            compute: 1.0,
            power: 1.0,
            encoding: 1.0,
        }
    }
}

impl Default for DeviceBias {
    fn default() -> Self {
        Self::neutral()
    }
}

/// The true hardware laws of the simulated testbed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrueLaws {
    /// Edge servers deliver this many times the compute resource of the
    /// reference client at equal nominal clocks (the physical counterpart of
    /// the paper's fitted `c_ε = 11.76·c_client`).
    pub edge_speedup: f64,
}

impl TrueLaws {
    /// The default laws used by all experiments.
    #[must_use]
    pub fn standard() -> Self {
        Self { edge_speedup: 11.5 }
    }

    /// The true compute resource (pixel²/ms) delivered to the application for
    /// a clock/utilisation operating point: monotone in both clocks, linear
    /// in the CPU band of Table I, super-linear in the GPU clock, with a
    /// small CPU×GPU interaction when the task is split.
    #[must_use]
    pub fn compute_resource(
        &self,
        cpu_clock: GigaHertz,
        gpu_clock: GigaHertz,
        cpu_share: Ratio,
        bias: DeviceBias,
    ) -> f64 {
        let fc = cpu_clock.as_f64().max(0.0);
        let fg = gpu_clock.as_f64().max(0.0);
        let wc = cpu_share.as_f64();
        let wg = 1.0 - wc;
        let cpu_part = 2.0 + 5.2 * fc;
        let gpu_part = (10.0 + 120.0 * fg * fg - 60.0 * fg).max(2.0);
        let interaction = 0.8 * wc * wg * fc * fg;
        (wc * cpu_part + wg * gpu_part + interaction).max(0.5) * bias.compute
    }

    /// The true mean power draw (W) of the device while computing.
    #[must_use]
    pub fn mean_power(
        &self,
        cpu_clock: GigaHertz,
        gpu_clock: GigaHertz,
        cpu_share: Ratio,
        bias: DeviceBias,
    ) -> Watts {
        let fc = cpu_clock.as_f64().max(0.0);
        let fg = gpu_clock.as_f64().max(0.0);
        let wc = cpu_share.as_f64();
        let wg = 1.0 - wc;
        let cpu_part = 0.9 + 0.75 * fc.powf(1.35);
        let gpu_part = 0.7 + 2.6 * fg.powf(1.25);
        Watts::new(((wc * cpu_part + wg * gpu_part) * bias.power).max(0.2))
    }

    /// The true encoder cost (pixel²-equivalents of work) for a frame under
    /// an encoder configuration. Includes a frame-size × quantisation
    /// interaction the paper's linear regression cannot represent.
    #[must_use]
    pub fn encoding_work(&self, config: &EncodingConfig, frame: &Frame, bias: DeviceBias) -> f64 {
        let s = frame.raw_size.as_f64();
        let fps = frame.frame_rate.as_f64();
        let base =
            1.5 * s + 150.0 * fps + 48.0 * config.bitrate_mbps + 130.0 * config.b_frame_interval
                - 6.5 * config.i_frame_interval
                + 3.2 * config.quantization
                + 0.000_28 * s * config.quantization;
        (base * bias.encoding).max(50.0)
    }

    /// The true decode/encode compute ratio on the same device (the paper's
    /// measured discount is "around one third"; the truth here is 0.31).
    #[must_use]
    pub fn decode_discount(&self) -> f64 {
        0.31
    }

    /// The true CNN workload multiplier: how much slower a frame is processed
    /// through this network compared to a hypothetical single-layer model.
    #[must_use]
    pub fn cnn_complexity(&self, cnn: &CnnModel) -> f64 {
        let depth = f64::from(cnn.depth);
        let size = cnn.size.as_f64();
        let scale = cnn.depth_scale;
        let gpu_relief = if cnn.gpu_support { 0.85 } else { 1.0 };
        ((2.1 + 0.0032 * depth + 0.027 * size + 0.003 * scale) * gpu_relief).max(0.5)
    }
}

impl Default for TrueLaws {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr_devices::CnnCatalog;
    use xr_types::{FrameId, Hertz};

    fn ghz(v: f64) -> GigaHertz {
        GigaHertz::new(v)
    }

    #[test]
    fn compute_resource_is_monotone_in_clocks() {
        let laws = TrueLaws::standard();
        let bias = DeviceBias::neutral();
        let mut last = 0.0;
        for f in [1.0, 1.5, 2.0, 2.5, 3.0] {
            let c = laws.compute_resource(ghz(f), ghz(0.6), Ratio::ONE, bias);
            assert!(c > last, "resource must grow with CPU clock");
            last = c;
        }
        let mut last = 0.0;
        for f in [0.5, 0.8, 1.0, 1.3] {
            let c = laws.compute_resource(ghz(2.0), ghz(f), Ratio::ZERO, bias);
            assert!(c > last, "resource must grow with GPU clock");
            last = c;
        }
    }

    #[test]
    fn power_is_monotone_in_clocks() {
        let laws = TrueLaws::standard();
        let bias = DeviceBias::neutral();
        assert!(
            laws.mean_power(ghz(3.0), ghz(0.6), Ratio::ONE, bias)
                > laws.mean_power(ghz(1.0), ghz(0.6), Ratio::ONE, bias)
        );
        assert!(
            laws.mean_power(ghz(2.0), ghz(1.3), Ratio::ZERO, bias)
                > laws.mean_power(ghz(2.0), ghz(0.5), Ratio::ZERO, bias)
        );
        // Power magnitudes stay in the single-watt smartphone band.
        let p = laws.mean_power(ghz(2.84), ghz(0.587), Ratio::new(0.6), bias);
        assert!(p.as_f64() > 1.0 && p.as_f64() < 6.0);
    }

    #[test]
    fn device_bias_shifts_devices_apart() {
        let laws = TrueLaws::standard();
        let xr1 = laws.compute_resource(
            ghz(2.0),
            ghz(0.6),
            Ratio::ONE,
            DeviceBias::for_device("XR1"),
        );
        let xr3 = laws.compute_resource(
            ghz(2.0),
            ghz(0.6),
            Ratio::ONE,
            DeviceBias::for_device("XR3"),
        );
        assert!(xr1 > xr3);
        assert_eq!(DeviceBias::for_device("unknown"), DeviceBias::neutral());
        assert_eq!(DeviceBias::default(), DeviceBias::neutral());
    }

    #[test]
    fn encoding_work_grows_with_frame_size_and_bitrate() {
        let laws = TrueLaws::standard();
        let bias = DeviceBias::neutral();
        let config = EncodingConfig::default();
        let small = Frame::from_resolution(FrameId::new(1), 300.0, Hertz::new(30.0));
        let large = Frame::from_resolution(FrameId::new(1), 700.0, Hertz::new(30.0));
        assert!(
            laws.encoding_work(&config, &large, bias) > laws.encoding_work(&config, &small, bias)
        );
        let high_bitrate = EncodingConfig {
            bitrate_mbps: 20.0,
            ..EncodingConfig::default()
        };
        assert!(
            laws.encoding_work(&high_bitrate, &small, bias)
                > laws.encoding_work(&config, &small, bias)
        );
    }

    #[test]
    fn cnn_complexity_ranks_models_sensibly() {
        let laws = TrueLaws::standard();
        let catalog = CnnCatalog::table2();
        let mobilenet = laws.cnn_complexity(catalog.model("MobileNetV1_240_Quant").unwrap());
        let yolo = laws.cnn_complexity(catalog.model("YoloV3").unwrap());
        let nasnet = laws.cnn_complexity(catalog.model("NasNet_Float").unwrap());
        assert!(yolo > mobilenet);
        assert!(nasnet > mobilenet);
        for m in catalog.iter() {
            assert!(laws.cnn_complexity(m) > 0.0);
        }
    }

    #[test]
    fn decode_discount_is_about_one_third() {
        let laws = TrueLaws::standard();
        assert!((laws.decode_discount() - 1.0 / 3.0).abs() < 0.05);
        assert!(laws.edge_speedup > 10.0 && laws.edge_speedup < 13.0);
    }
}
