//! # xr-devices
//!
//! Device and CNN catalogs plus the hardware-dependent regression sub-models
//! of the paper.
//!
//! * [`catalog`] — the XR devices and edge servers of Table I (XR1–XR7,
//!   Nvidia Jetson TX2 and AGX Xavier) with their CPU/GPU clocks, RAM,
//!   memory bandwidth, Wi-Fi capability and release dates.
//! * [`cnn`] — the 11 CNN models of Table II (MobileNet v1/v2 variants,
//!   EfficientNet, NasNet, YOLOv3, YOLOv7) and the CNN-complexity model of
//!   Eq. 12.
//! * [`compute`] — the computation-resource availability model of Eq. 3
//!   (`c_client` as a regression over CPU/GPU clocks and the utilisation
//!   split `ω_c`), plus the paper's edge/client coupling `c_ε = 11.76·c_client`.
//! * [`power`] — the mean-power model of Eq. 21, base power, and the
//!   thermal-conversion fraction used by the energy model.
//!
//! ```
//! use xr_devices::{DeviceCatalog, ComputeResourceModel};
//! use xr_types::{GigaHertz, Ratio};
//!
//! let catalog = DeviceCatalog::table1();
//! let xr2 = catalog.device("XR2").unwrap();
//! let model = ComputeResourceModel::published();
//! let c = model.client_resource(GigaHertz::new(2.0), xr2.gpu_clock, Ratio::new(0.6));
//! assert!(c > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod cnn;
pub mod compute;
pub mod power;

pub use catalog::{DeviceCatalog, DeviceClass, DeviceSpec};
pub use cnn::{CnnCatalog, CnnComplexityModel, CnnModel};
pub use compute::ComputeResourceModel;
pub use power::{BasePower, MeanPowerModel, ThermalModel};
