//! Data-defined campaign grids: a small `key = value` spec format parsed
//! into a [`SweepGrid`], so campaigns can be changed without recompiling.
//!
//! The `campaign` binary's `--grid <file>` mode reads this format. One axis
//! per line; axes not named keep the Fig. 4 paper-panel defaults (XR2
//! client, baseline link, static device, local execution, the paper's frame
//! sizes and clocks, one replication). Blank lines and `#` comments are
//! ignored.
//!
//! ```text
//! # speed × radius mobility campaign
//! frame_sizes  = 500
//! cpu_clocks   = 2.0
//! executions   = remote, split:0.5
//! devices      = XR2, XR3
//! wireless     = baseline, cell-edge:60:40   # label:distance_m:throughput_mbps
//! mobility     = static, vehicle:20:15       # label:speed_mps:radius_m
//! frames_per_session = 20, 80                # measurement-campaign sizes
//! users_per_edge = 1, 2, 4                   # sessions sharing the edge server
//! frame_rates  = 5                           # per-session frame rate (Hz)
//! topology     = square, hex                 # edge-site tiling (or voronoi)
//! site_density = 400, 1600                   # edge sites per km²
//! migration_policy = eager, lazy             # state re-offload on migration
//! replications = 5
//! ```
//!
//! Wireless overrides use `-` for "keep the scenario default", e.g.
//! `far:60:-` overrides only the distance.

use crate::grid::{MobilityCondition, SweepGrid, WirelessCondition};
use std::collections::BTreeSet;
use xr_types::{Error, ExecutionTarget, MigrationPolicy, Result, TopologyLayout};

fn spec_error(line_number: usize, message: impl std::fmt::Display) -> Error {
    Error::invalid_parameter("grid spec", format!("line {line_number}: {message}"))
}

fn parse_positive_floats(line_number: usize, key: &str, tokens: &[&str]) -> Result<Vec<f64>> {
    tokens
        .iter()
        .map(|t| {
            let value = t
                .parse::<f64>()
                .map_err(|_| spec_error(line_number, format!("{key}: `{t}` is not a number")))?;
            if value <= 0.0 || !value.is_finite() {
                return Err(spec_error(
                    line_number,
                    format!("{key}: `{t}` must be positive"),
                ));
            }
            Ok(value)
        })
        .collect()
}

fn parse_execution(line_number: usize, token: &str) -> Result<ExecutionTarget> {
    match token {
        "local" => Ok(ExecutionTarget::Local),
        "remote" => Ok(ExecutionTarget::Remote),
        _ => {
            if let Some(share) = token.strip_prefix("split:") {
                let client_share = share.parse::<f64>().map_err(|_| {
                    spec_error(
                        line_number,
                        format!("executions: `{share}` is not a split share"),
                    )
                })?;
                if !(0.0..=1.0).contains(&client_share) {
                    return Err(spec_error(
                        line_number,
                        format!("executions: split share {client_share} outside [0, 1]"),
                    ));
                }
                Ok(ExecutionTarget::Split { client_share })
            } else {
                Err(spec_error(
                    line_number,
                    format!("executions: `{token}` is not local/remote/split:<share>"),
                ))
            }
        }
    }
}

fn parse_override(line_number: usize, key: &str, field: &str, token: &str) -> Result<Option<f64>> {
    if token == "-" {
        return Ok(None);
    }
    let value = token.parse::<f64>().map_err(|_| {
        spec_error(
            line_number,
            format!("{key}: {field} `{token}` is not a number or `-`"),
        )
    })?;
    // Zero/negative overrides would only fail later as a panic deep inside
    // a campaign worker (e.g. `WirelessLink` asserts positive throughput);
    // reject them here with the line number instead.
    if value <= 0.0 || !value.is_finite() {
        return Err(spec_error(
            line_number,
            format!("{key}: {field} `{token}` must be positive"),
        ));
    }
    Ok(Some(value))
}

fn parse_wireless(line_number: usize, token: &str) -> Result<WirelessCondition> {
    if token == "baseline" {
        return Ok(WirelessCondition::baseline());
    }
    let parts: Vec<&str> = token.split(':').collect();
    if parts.len() != 3 || parts[0].is_empty() {
        return Err(spec_error(
            line_number,
            format!("wireless: `{token}` is not `baseline` or `label:distance_m:throughput_mbps`"),
        ));
    }
    Ok(WirelessCondition::new(
        parts[0],
        parse_override(line_number, "wireless", "distance_m", parts[1])?,
        parse_override(line_number, "wireless", "throughput_mbps", parts[2])?,
    ))
}

fn parse_mobility(line_number: usize, token: &str) -> Result<MobilityCondition> {
    if token == "static" {
        return Ok(MobilityCondition::static_device());
    }
    let parts: Vec<&str> = token.split(':').collect();
    if parts.len() != 3 || parts[0].is_empty() {
        return Err(spec_error(
            line_number,
            format!("mobility: `{token}` is not `static` or `label:speed_mps:radius_m`"),
        ));
    }
    let speed_mps = parts[1].parse::<f64>().map_err(|_| {
        spec_error(
            line_number,
            format!("mobility: speed `{}` is not a number", parts[1]),
        )
    })?;
    let radius_m = parts[2].parse::<f64>().map_err(|_| {
        spec_error(
            line_number,
            format!("mobility: radius `{}` is not a number", parts[2]),
        )
    })?;
    if speed_mps < 0.0 {
        return Err(spec_error(
            line_number,
            format!("mobility: speed {speed_mps} must be non-negative"),
        ));
    }
    if radius_m <= 0.0 {
        return Err(spec_error(
            line_number,
            format!("mobility: radius {radius_m} must be positive"),
        ));
    }
    Ok(MobilityCondition::new(parts[0], speed_mps, radius_m))
}

/// Parses a grid spec (see the module docs for the format) into a
/// [`SweepGrid`]. Axes not named in the spec keep the Fig. 4 paper-panel
/// defaults.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] with the offending line number for a
/// malformed line, an unknown or duplicate key, an empty value list, or an
/// out-of-range value.
pub fn parse_grid_spec(text: &str) -> Result<SweepGrid> {
    let mut grid = SweepGrid::paper_panel(ExecutionTarget::Local);
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (index, raw) in text.lines().enumerate() {
        let line_number = index + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(spec_error(
                line_number,
                format!("expected `key = value`, got `{line}`"),
            ));
        };
        let key = key.trim();
        let value = value.trim();
        if !seen.insert(key.to_string()) {
            return Err(spec_error(line_number, format!("duplicate key `{key}`")));
        }
        let tokens: Vec<&str> = value
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .collect();
        if tokens.is_empty() {
            return Err(spec_error(line_number, format!("{key}: empty value list")));
        }
        grid = match key {
            "frame_sizes" => {
                grid.with_frame_sizes(parse_positive_floats(line_number, key, &tokens)?)
            }
            "cpu_clocks" => grid.with_cpu_clocks(parse_positive_floats(line_number, key, &tokens)?),
            "executions" => grid.with_executions(
                tokens
                    .iter()
                    .map(|t| parse_execution(line_number, t))
                    .collect::<Result<Vec<_>>>()?,
            ),
            "devices" => grid.with_devices(tokens.iter().map(|t| (*t).to_string()).collect()),
            "wireless" => grid.with_wireless(
                tokens
                    .iter()
                    .map(|t| parse_wireless(line_number, t))
                    .collect::<Result<Vec<_>>>()?,
            ),
            "mobility" => grid.with_mobility(
                tokens
                    .iter()
                    .map(|t| parse_mobility(line_number, t))
                    .collect::<Result<Vec<_>>>()?,
            ),
            "frames_per_session" => grid.with_frames_per_session(
                tokens
                    .iter()
                    .map(|t| {
                        let frames = t.parse::<u64>().map_err(|_| {
                            spec_error(
                                line_number,
                                format!("frames_per_session: `{t}` is not a positive integer"),
                            )
                        })?;
                        if frames == 0 {
                            return Err(spec_error(
                                line_number,
                                "frames_per_session: must be at least 1",
                            ));
                        }
                        Ok(frames)
                    })
                    .collect::<Result<Vec<_>>>()?,
            ),
            "users_per_edge" => grid.with_users_per_edge(
                tokens
                    .iter()
                    .map(|t| {
                        let users = t.parse::<u32>().map_err(|_| {
                            spec_error(
                                line_number,
                                format!("users_per_edge: `{t}` is not a positive integer"),
                            )
                        })?;
                        if users == 0 {
                            return Err(spec_error(
                                line_number,
                                "users_per_edge: must be at least 1",
                            ));
                        }
                        Ok(users)
                    })
                    .collect::<Result<Vec<_>>>()?,
            ),
            "frame_rates" => {
                grid.with_frame_rates(parse_positive_floats(line_number, key, &tokens)?)
            }
            "topology" => grid.with_topologies(
                tokens
                    .iter()
                    .map(|t| {
                        t.parse::<TopologyLayout>()
                            .map_err(|e| spec_error(line_number, e))
                    })
                    .collect::<Result<Vec<_>>>()?,
            ),
            "site_density" => {
                grid.with_site_densities(parse_positive_floats(line_number, key, &tokens)?)
            }
            "migration_policy" => grid.with_migration_policies(
                tokens
                    .iter()
                    .map(|t| {
                        t.parse::<MigrationPolicy>()
                            .map_err(|e| spec_error(line_number, e))
                    })
                    .collect::<Result<Vec<_>>>()?,
            ),
            "replications" => {
                if tokens.len() != 1 {
                    return Err(spec_error(line_number, "replications: expected one value"));
                }
                let replications = tokens[0].parse::<usize>().map_err(|_| {
                    spec_error(
                        line_number,
                        format!("replications: `{}` is not a positive integer", tokens[0]),
                    )
                })?;
                if replications == 0 {
                    return Err(spec_error(line_number, "replications: must be at least 1"));
                }
                grid.with_replications(replications)
            }
            _ => {
                return Err(spec_error(
                    line_number,
                    format!(
                        "unknown key `{key}` (expected frame_sizes, cpu_clocks, executions, \
                         devices, wireless, mobility, frames_per_session, users_per_edge, \
                         frame_rates, topology, site_density, migration_policy, or \
                         replications)"
                    ),
                ))
            }
        };
    }
    Ok(grid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_spec_round_trips_into_a_grid() {
        let spec = "
            # a mobility campaign
            frame_sizes  = 300, 500
            cpu_clocks   = 2.0
            executions   = local, remote, split:0.25
            devices      = XR2, XR3
            wireless     = baseline, cell-edge:60:40, far:80:-
            mobility     = static, vehicle:20:15
            frames_per_session = 10, 40
            replications = 4
        ";
        let grid = parse_grid_spec(spec).unwrap();
        assert_eq!(grid.replications(), 4);
        // 2 sizes × 1 clock × 3 targets × 2 devices × 3 links × 2 mobility
        // × 2 campaign sizes
        assert_eq!(grid.len(), 144);
        assert!(grid
            .points()
            .unwrap()
            .iter()
            .all(|p| matches!(p.frames_per_session, Some(10) | Some(40))));
        let points = grid.points().unwrap();
        // Frame size innermost (2 values), so executions vary at stride 2.
        assert_eq!(
            points[4].execution,
            ExecutionTarget::Split { client_share: 0.25 }
        );
        let far = points
            .iter()
            .find(|p| p.wireless.label == "far")
            .expect("far condition present");
        assert_eq!(far.wireless.distance_m, Some(80.0));
        assert_eq!(far.wireless.throughput_mbps, None);
        let vehicle = points
            .iter()
            .find(|p| p.mobility.label == "vehicle")
            .expect("vehicle condition present");
        assert_eq!(vehicle.mobility.speed_mps, 20.0);
        assert_eq!(vehicle.mobility.coverage_radius_m, 15.0);
    }

    #[test]
    fn contention_keys_parse_into_the_new_axes() {
        let spec = "
            frame_sizes = 300
            cpu_clocks = 2.0
            executions = remote
            users_per_edge = 1, 2, 6
            frame_rates = 5
        ";
        let grid = parse_grid_spec(spec).unwrap();
        assert_eq!(grid.len(), 3);
        let points = grid.points().unwrap();
        assert_eq!(points[0].users_per_edge, Some(1));
        assert_eq!(points[1].users_per_edge, Some(2));
        assert_eq!(points[2].users_per_edge, Some(6));
        assert!(points.iter().all(|p| p.frame_rate_hz == Some(5.0)));
        // Without the keys both axes stay off.
        let plain = parse_grid_spec("frame_sizes = 300\n").unwrap();
        let points = plain.points().unwrap();
        assert!(points.iter().all(|p| p.users_per_edge.is_none()));
        assert!(points.iter().all(|p| p.frame_rate_hz.is_none()));
    }

    #[test]
    fn topology_keys_parse_into_the_new_axes() {
        let spec = "
            frame_sizes = 300
            cpu_clocks = 2.0
            executions = remote
            mobility = vehicle:25:8
            topology = square, hex, voronoi
            site_density = 400, 1600
            migration_policy = eager, lazy
        ";
        let grid = parse_grid_spec(spec).unwrap();
        assert_eq!(grid.len(), 12); // 3 layouts × 2 densities × 2 policies
        let points = grid.points().unwrap();
        assert_eq!(points[0].topology, Some(TopologyLayout::Square));
        assert_eq!(points[0].site_density, Some(400.0));
        assert_eq!(points[0].migration_policy, Some(MigrationPolicy::Eager));
        assert_eq!(points[1].migration_policy, Some(MigrationPolicy::Lazy));
        assert_eq!(points[2].site_density, Some(1600.0));
        assert_eq!(points[4].topology, Some(TopologyLayout::Hex));
        assert_eq!(points[8].topology, Some(TopologyLayout::Voronoi));
        // The legacy single-zone model is spelled out explicitly.
        let single = parse_grid_spec("topology = single\n").unwrap();
        let points = single.points().unwrap();
        assert!(points
            .iter()
            .all(|p| p.topology == Some(TopologyLayout::Single)));
        // Without the keys all three axes stay off.
        let plain = parse_grid_spec("frame_sizes = 300\n").unwrap();
        let points = plain.points().unwrap();
        assert!(points.iter().all(|p| p.topology.is_none()));
        assert!(points.iter().all(|p| p.site_density.is_none()));
        assert!(points.iter().all(|p| p.migration_policy.is_none()));
    }

    #[test]
    fn unspecified_axes_keep_paper_defaults() {
        let grid = parse_grid_spec("replications = 2\n").unwrap();
        assert_eq!(grid.replications(), 2);
        assert_eq!(grid.len(), 15); // the 5 × 3 paper panel
        let points = grid.points().unwrap();
        assert!(points.iter().all(|p| p.device == "XR2"));
        assert!(points.iter().all(|p| p.wireless.is_baseline()));
        assert!(points.iter().all(|p| p.mobility.is_static()));
        // The empty spec is the paper panel itself.
        assert_eq!(parse_grid_spec("# nothing\n\n").unwrap().len(), 15);
    }

    #[test]
    fn error_paths_name_the_offending_line() {
        let err = |spec: &str| parse_grid_spec(spec).unwrap_err().to_string();
        assert!(err("bogus_key = 1").contains("unknown key `bogus_key`"));
        assert!(err("frame_sizes 300").contains("expected `key = value`"));
        assert!(err("frame_sizes = 300, abc").contains("`abc` is not a number"));
        assert!(err("frame_sizes = ").contains("empty value list"));
        assert!(err("frame_sizes = -300").contains("must be positive"));
        assert!(err("cpu_clocks = 0").contains("must be positive"));
        assert!(err("wireless = edge:60:0").contains("throughput_mbps `0` must be positive"));
        assert!(err("wireless = edge:-5:40").contains("distance_m `-5` must be positive"));
        assert!(err("executions = orbital").contains("`orbital` is not local/remote"));
        assert!(err("executions = split:1.5").contains("outside [0, 1]"));
        assert!(err("executions = split:x").contains("not a split share"));
        assert!(err("wireless = cell-edge:60").contains("label:distance_m:throughput_mbps"));
        assert!(err("wireless = cell-edge:a:40").contains("not a number or `-`"));
        assert!(err("mobility = vehicle:20").contains("label:speed_mps:radius_m"));
        assert!(err("mobility = vehicle:-1:15").contains("must be non-negative"));
        assert!(err("mobility = vehicle:20:0").contains("must be positive"));
        assert!(err("mobility = vehicle:fast:15").contains("not a number"));
        assert!(err("frames_per_session = 0").contains("must be at least 1"));
        assert!(err("frames_per_session = many").contains("not a positive integer"));
        assert!(err("users_per_edge = 0").contains("users_per_edge: must be at least 1"));
        assert!(err("users_per_edge = 2.5").contains("`2.5` is not a positive integer"));
        assert!(err("users_per_edge = -3").contains("`-3` is not a positive integer"));
        assert!(err("users_per_edge = many").contains("`many` is not a positive integer"));
        assert!(err("frame_rates = 0").contains("must be positive"));
        assert!(err("frame_rates = fast").contains("`fast` is not a number"));
        let torus = err("topology = torus");
        assert!(torus.contains("unknown layout `torus`"), "{torus}");
        assert!(
            torus.contains("expected square, hex, or voronoi"),
            "{torus}"
        );
        assert!(err("site_density = 0").contains("site_density: `0` must be positive"));
        assert!(err("site_density = -400").contains("must be positive"));
        assert!(err("site_density = dense").contains("`dense` is not a number"));
        let policy = err("migration_policy = teleport");
        assert!(
            policy.contains("unknown migration policy `teleport`"),
            "{policy}"
        );
        assert!(policy.contains("expected eager or lazy"), "{policy}");
        assert!(err("replications = 0").contains("must be at least 1"));
        assert!(err("replications = 2, 3").contains("expected one value"));
        assert!(err("replications = two").contains("not a positive integer"));
        let dup = err("cpu_clocks = 1\ncpu_clocks = 2");
        assert!(dup.contains("line 2"), "{dup}");
        assert!(dup.contains("duplicate key"), "{dup}");
    }
}
