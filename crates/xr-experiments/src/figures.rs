//! The Fig. 4(a)–(d) sweeps: end-to-end latency and energy versus frame size
//! at 1/2/3 GHz, for local and remote inference, ground truth versus the
//! calibrated proposed model.

use crate::context::ExperimentContext;
use serde::{Deserialize, Serialize};
use xr_stats::metrics;
use xr_sweep::SweepGrid;
use xr_types::{ExecutionTarget, Result};

/// One operating point of a Fig. 4 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The frame-size parameter (pixel², 300–700).
    pub frame_size: f64,
    /// CPU clock in GHz (1, 2 or 3).
    pub cpu_clock_ghz: f64,
    /// Ground-truth value (ms for latency sweeps, mJ for energy sweeps).
    pub ground_truth: f64,
    /// Proposed-model value in the same unit.
    pub proposed: f64,
}

impl SweepPoint {
    /// Relative error of the proposed model at this point, in percent.
    #[must_use]
    pub fn error_percent(&self) -> f64 {
        if self.ground_truth.abs() < f64::EPSILON {
            return 0.0;
        }
        ((self.ground_truth - self.proposed) / self.ground_truth).abs() * 100.0
    }
}

/// A whole Fig. 4 panel: every (frame size × clock) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Which execution target the sweep used.
    pub execution: ExecutionTarget,
    /// `"latency"` or `"energy"`.
    pub metric: String,
    /// The swept points, ordered by clock then frame size.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// The paper's mean-error statistic over the whole panel (the 2.74 % /
    /// 3.23 % / 3.52 % / 5.38 % numbers of §VIII-A/B).
    #[must_use]
    pub fn mean_error_percent(&self) -> f64 {
        let truth: Vec<f64> = self.points.iter().map(|p| p.ground_truth).collect();
        let predicted: Vec<f64> = self.points.iter().map(|p| p.proposed).collect();
        metrics::mean_error_percent(&truth, &predicted)
    }

    /// Points belonging to one clock series (one curve of the figure).
    #[must_use]
    pub fn series_for_clock(&self, cpu_clock_ghz: f64) -> Vec<SweepPoint> {
        self.points
            .iter()
            .copied()
            .filter(|p| (p.cpu_clock_ghz - cpu_clock_ghz).abs() < 1e-9)
            .collect()
    }

    /// CSV/console rows for the experiment binaries.
    #[must_use]
    pub fn rows(&self) -> Vec<Vec<String>> {
        self.points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.0}", p.frame_size),
                    format!("{:.0}", p.cpu_clock_ghz),
                    format!("{:.2}", p.ground_truth),
                    format!("{:.2}", p.proposed),
                    format!("{:.2}", p.error_percent()),
                ]
            })
            .collect()
    }
}

/// Runs the latency sweep of Fig. 4(a) (local) or Fig. 4(b) (remote).
///
/// # Errors
///
/// Propagates scenario and model errors.
pub fn latency_sweep(ctx: &ExperimentContext, execution: ExecutionTarget) -> Result<SweepResult> {
    sweep(ctx, execution, Metric::Latency)
}

/// Runs the energy sweep of Fig. 4(c) (local) or Fig. 4(d) (remote).
///
/// # Errors
///
/// Propagates scenario and model errors.
pub fn energy_sweep(ctx: &ExperimentContext, execution: ExecutionTarget) -> Result<SweepResult> {
    sweep(ctx, execution, Metric::Energy)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Metric {
    Latency,
    Energy,
}

fn sweep(
    ctx: &ExperimentContext,
    execution: ExecutionTarget,
    metric: Metric,
) -> Result<SweepResult> {
    // One campaign per panel: the paper grid (clock outer, frame size inner)
    // evaluated by the shared engine — in parallel when workers are
    // available, with output independent of the worker count.
    let grid = SweepGrid::paper_panel(execution);
    let points = ctx.runner().run(&grid.points()?, |_, point| {
        let scenario = ctx.scenario_for(point)?;
        let session = ctx
            .testbed()
            .simulate_session(&scenario, ctx.frames_per_point())?;
        let report = ctx.proposed().analyze(&scenario)?;
        let (ground_truth, proposed) = match metric {
            Metric::Latency => (
                session.mean_latency().as_f64() * 1e3,
                report.latency_ms().as_f64(),
            ),
            Metric::Energy => (
                session.mean_energy().as_f64() * 1e3,
                report.energy_mj().as_f64(),
            ),
        };
        Ok(SweepPoint {
            frame_size: point.frame_size,
            cpu_clock_ghz: point.cpu_clock_ghz,
            ground_truth,
            proposed,
        })
    })?;
    Ok(SweepResult {
        execution,
        metric: match metric {
            Metric::Latency => "latency".to_string(),
            Metric::Energy => "energy".to_string(),
        },
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_latency(execution: ExecutionTarget) -> SweepResult {
        let ctx = ExperimentContext::quick(11).unwrap();
        latency_sweep(&ctx, execution).unwrap()
    }

    #[test]
    fn latency_sweep_covers_the_grid_and_tracks_ground_truth() {
        let sweep = quick_latency(ExecutionTarget::Local);
        assert_eq!(sweep.points.len(), 15);
        assert_eq!(sweep.metric, "latency");
        // Shape: latency grows with frame size within each clock series.
        for &clock in &ExperimentContext::CPU_CLOCKS {
            let series = sweep.series_for_clock(clock);
            assert_eq!(series.len(), 5);
            assert!(series.last().unwrap().ground_truth > series.first().unwrap().ground_truth);
            assert!(series.last().unwrap().proposed > series.first().unwrap().proposed);
        }
        // Accuracy: the calibrated model stays within ~15 % of ground truth
        // on average (the paper reports 2.74 % on real hardware).
        assert!(
            sweep.mean_error_percent() < 15.0,
            "mean error {}",
            sweep.mean_error_percent()
        );
    }

    #[test]
    fn faster_clock_gives_lower_latency_at_fixed_size() {
        let sweep = quick_latency(ExecutionTarget::Local);
        let at = |clock: f64, size: f64| {
            sweep
                .points
                .iter()
                .find(|p| {
                    (p.cpu_clock_ghz - clock).abs() < 1e-9 && (p.frame_size - size).abs() < 1e-9
                })
                .copied()
                .unwrap()
        };
        assert!(at(3.0, 500.0).ground_truth < at(1.0, 500.0).ground_truth);
        assert!(at(3.0, 500.0).proposed < at(1.0, 500.0).proposed);
    }

    #[test]
    fn energy_sweep_has_the_same_structure() {
        let ctx = ExperimentContext::quick(13).unwrap();
        let sweep = energy_sweep(&ctx, ExecutionTarget::Remote).unwrap();
        assert_eq!(sweep.points.len(), 15);
        assert_eq!(sweep.metric, "energy");
        assert!(
            sweep.mean_error_percent() < 20.0,
            "{}",
            sweep.mean_error_percent()
        );
        assert_eq!(sweep.rows().len(), 15);
        assert_eq!(sweep.rows()[0].len(), 5);
    }
}
