//! # xr-sweep
//!
//! The measurement-campaign engine behind every figure sweep in the
//! workspace. The paper's validation story (Figs. 4–5, Tables III–IV) is a
//! grid sweep — frame size × CPU clock × execution target — and related
//! frameworks (Lecci et al.'s XR traffic framework, Laha et al.'s 5G-NR
//! provisioning study) treat the *campaign* as the first-class object. This
//! crate does the same for the xr-perf workspace:
//!
//! - [`SweepGrid`] enumerates operating points over frame size, CPU clock,
//!   execution target, client device, wireless condition, mobility
//!   condition (speed × coverage radius), and measurement-campaign size
//!   (frames per session — the training-set scaling axis) in a fixed
//!   row-major order (campaign size → device → wireless → mobility →
//!   execution → clock → frame size, frame size innermost — the ordering
//!   the Fig. 4 panels print). A grid also carries a per-point
//!   `replications` count: how many independently seeded sessions each
//!   operating point is measured with.
//! - [`CampaignRunner`] executes the points with `std::thread::scope` over a
//!   configurable worker count. Each point's random seed is derived
//!   deterministically from `(campaign_seed, point_index)` via
//!   [`point_seed`] — and each replication's from
//!   `(campaign_seed, point_index, rep_index)` via [`replication_seed`],
//!   both thin wrappers over the workspace-wide SplitMix64 chaining in
//!   [`xr_types::seed`] — so campaign results are **bit-identical
//!   regardless of thread count or scheduling order**.
//! - [`spec::parse_grid_spec`] turns a `key = value` grid file into a
//!   [`SweepGrid`], so campaigns are data-defined (`campaign --grid
//!   <file>`), not recompiled.
//! - [`InOrderCollector`] streams completed results back into point order so
//!   rows can be appended to the existing CSV output layer as they finish,
//!   without ever reordering the artifact. Its hold-back window is bounded
//!   (default [`runner::DEFAULT_REORDER_CAP`]): one slow point applies
//!   backpressure to run-ahead workers instead of buffering the campaign in
//!   memory.
//! - [`ShardSpec`] partitions a campaign's points round-robin across `N`
//!   independent shard processes (`--shard i/N`), [`ShardManifest`] records
//!   what a shard's CSV covers, and [`merge_shard_rows`] interleaves shard
//!   CSVs back into the canonical order — byte-identical to an unsharded
//!   run, validated against the manifests' campaign seed, grid fingerprint
//!   ([`SweepGrid::fingerprint`]), and disjoint-complete cover.
//! - [`ShardCheckpoint`] gives each shard an append-only, fsync'd record of
//!   completed points, so a killed shard resumes at the last completed unit
//!   instead of recomputing from scratch; torn tails are truncated away and
//!   stale checkpoints (different grid/seed/shard) are refused.
//!
//! The experiment drivers in `xr-experiments` (`figures`, `comparison`,
//! `ablation`, the `fig4*`/`run_all`/`campaign` binaries) all drive this one
//! engine instead of hand-rolled sequential loops.
//!
//! ## Determinism contract
//!
//! A campaign's output is a pure function of `(grid, campaign_seed,
//! evaluation function)`. Worker count only changes wall-clock time. This is
//! enforced by construction — workers never share mutable state with the
//! evaluation closure, per-point seeds never depend on scheduling — and
//! checked by the `sweep_campaign` integration tests and a CI step that runs
//! the `campaign` binary twice with different worker counts and diffs the
//! CSVs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod collector;
pub mod grid;
pub mod runner;
pub mod seed;
pub mod shard;
pub mod spec;

pub use checkpoint::{CheckpointHeader, ShardCheckpoint, DEFAULT_SYNC_EVERY};
pub use collector::InOrderCollector;
pub use grid::{MobilityCondition, OperatingPoint, SweepGrid, WirelessCondition};
pub use runner::{CampaignRunner, PointContext, RepContext, DEFAULT_REORDER_CAP};
pub use seed::{point_seed, replication_seed};
pub use shard::{merge_shard_rows, ShardManifest, ShardSpec};
pub use spec::parse_grid_spec;
