//! The training-scaling figure: estimator precision versus
//! measurement-campaign size.
//!
//! The framework is measurement-hungry — every modeled metric comes from
//! campaigns of simulated sessions, and related XR traffic frameworks
//! (Lecci et al., Laha et al.) size their credibility claims in sampled
//! sessions. This experiment measures the repo's own scaling law: one
//! operating point (the Fig. 4 midpoint under remote inference), swept over
//! the `frames_per_session` campaign-size axis with several independently
//! seeded replications per size, reporting the width of the 95 % confidence
//! interval of the session-mean latency and energy. The CI width should
//! shrink roughly like `1/√frames` — the curve that tells a campaign
//! designer how many frames buy how much precision.

use crate::campaign::{run_campaign_with, CampaignRow};
use crate::context::ExperimentContext;
use xr_sweep::{CampaignRunner, SweepGrid};
use xr_types::{ExecutionTarget, Result};

/// Column header of the training-scaling CSV.
pub const FIG_TRAINING_SCALING_HEADER: [&str; 7] = [
    "frames_per_session",
    "replications",
    "gt_latency_ms_mean",
    "latency_ci_width_ms",
    "gt_energy_mj_mean",
    "energy_ci_width_mj",
    "latency_rel_ci_width",
];

/// Campaign sizes (frames per session) swept by the scaling figure.
pub const SCALING_FRAMES: [u64; 6] = [5, 10, 20, 40, 80, 160];
/// Replications per campaign size.
pub const SCALING_REPLICATIONS: usize = 8;

/// The campaign-size grid: the Fig. 4 midpoint (500 px², 2 GHz, remote
/// inference on the held-out client), measured at every [`SCALING_FRAMES`]
/// session length with [`SCALING_REPLICATIONS`] independently seeded
/// sessions each.
#[must_use]
pub fn scaling_grid() -> SweepGrid {
    SweepGrid::paper_panel(ExecutionTarget::Remote)
        .with_frame_sizes([500.0])
        .with_cpu_clocks([2.0])
        .with_frames_per_session(SCALING_FRAMES)
        .with_replications(SCALING_REPLICATIONS)
}

/// One row of the training-scaling figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Frames simulated per session at this point.
    pub frames_per_session: u64,
    /// The aggregated campaign measurement at this point.
    pub row: CampaignRow,
}

impl ScalingPoint {
    /// Width of the 95 % latency confidence interval (ms).
    #[must_use]
    pub fn latency_ci_width_ms(&self) -> f64 {
        self.row.gt_latency_ms.ci95_hi - self.row.gt_latency_ms.ci95_lo
    }

    /// Width of the 95 % energy confidence interval (mJ).
    #[must_use]
    pub fn energy_ci_width_mj(&self) -> f64 {
        self.row.gt_energy_mj.ci95_hi - self.row.gt_energy_mj.ci95_lo
    }

    /// CSV/console cells for the output layer.
    #[must_use]
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.frames_per_session.to_string(),
            self.row.replications.to_string(),
            format!("{:.3}", self.row.gt_latency_ms.mean),
            format!("{:.4}", self.latency_ci_width_ms()),
            format!("{:.3}", self.row.gt_energy_mj.mean),
            format!("{:.4}", self.energy_ci_width_mj()),
            format!(
                "{:.6}",
                self.latency_ci_width_ms() / self.row.gt_latency_ms.mean
            ),
        ]
    }
}

/// Runs the campaign-size sweep and returns one point per session length,
/// smallest first.
///
/// # Errors
///
/// Propagates grid, scenario and model errors.
pub fn training_scaling_sweep(ctx: &ExperimentContext) -> Result<Vec<ScalingPoint>> {
    training_scaling_sweep_with(ctx, &ctx.runner())
}

/// [`training_scaling_sweep`] with an explicit runner (determinism tests
/// pin the worker count).
///
/// # Errors
///
/// Propagates grid, scenario and model errors.
pub fn training_scaling_sweep_with(
    ctx: &ExperimentContext,
    runner: &CampaignRunner,
) -> Result<Vec<ScalingPoint>> {
    let rows = run_campaign_with(ctx, &scaling_grid(), runner)?;
    Ok(rows
        .into_iter()
        .map(|row| ScalingPoint {
            frames_per_session: row.frames_per_session,
            row,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_width_shrinks_with_campaign_size() {
        let ctx = ExperimentContext::quick(23).unwrap();
        let points = training_scaling_sweep(&ctx).unwrap();
        assert_eq!(points.len(), SCALING_FRAMES.len());
        for (point, &frames) in points.iter().zip(&SCALING_FRAMES) {
            assert_eq!(point.frames_per_session, frames);
            assert_eq!(point.row.replications, SCALING_REPLICATIONS);
            assert!(point.row.gt_latency_ms.mean > 0.0);
            assert!(point.latency_ci_width_ms() > 0.0);
            assert_eq!(point.cells().len(), FIG_TRAINING_SCALING_HEADER.len());
        }
        // The scaling law itself: 32× more frames per session must shrink
        // the session-mean estimator's CI decisively (≈ √32 ≈ 5.7× in
        // expectation; 2× is a noise-proof bound).
        let smallest = &points[0];
        let largest = points.last().unwrap();
        assert!(
            largest.latency_ci_width_ms() < smallest.latency_ci_width_ms() / 2.0,
            "latency CI width did not shrink: {} frames → {:.4} ms, {} frames → {:.4} ms",
            smallest.frames_per_session,
            smallest.latency_ci_width_ms(),
            largest.frames_per_session,
            largest.latency_ci_width_ms()
        );
        // Means agree across campaign sizes (they estimate the same
        // quantity): the largest campaign's mean lies within the smallest
        // campaign's CI.
        assert!(
            largest.row.gt_latency_ms.mean >= smallest.row.gt_latency_ms.ci95_lo
                && largest.row.gt_latency_ms.mean <= smallest.row.gt_latency_ms.ci95_hi,
            "large-campaign mean {} escaped the small-campaign CI [{}, {}]",
            largest.row.gt_latency_ms.mean,
            smallest.row.gt_latency_ms.ci95_lo,
            smallest.row.gt_latency_ms.ci95_hi
        );
    }
}
