//! The contention figure: the end-to-end latency knee against the number of
//! sessions sharing one edge server.
//!
//! The paper models a private edge server per session; this experiment
//! relaxes that assumption. Every operating point routes the tagged
//! session's edge stage through a shared M/M/1 queue whose arrival rate is
//! `users_per_edge × frame rate` and whose service rate is the reciprocal
//! of the deterministic edge service time, then measures the session on the
//! ground-truth testbed. Sweeping the population at a fixed per-session
//! frame rate traces the classic queueing knee: latency is flat while the
//! bottleneck utilisation `ρ = N·λ/µ` is small and diverges as `ρ → 1`, at
//! which point the testbed refuses to run rather than simulate a divergent
//! queue. The per-session frame rate is pinned low (see
//! [`CONTENTION_FRAME_RATE_HZ`]) so the default edge hosts a double-digit
//! population before saturating — at the paper's 30 fps the knee sits
//! between one and two users, which makes for a very short figure.

use crate::campaign::{run_campaign_with, CampaignRow};
use crate::context::ExperimentContext;
use xr_sweep::{CampaignRunner, SweepGrid};
use xr_types::{ExecutionTarget, Result};

/// Column header of the contention-figure CSV.
pub const FIG_CONTENTION_HEADER: [&str; 10] = [
    "users_per_edge",
    "frame_rate_hz",
    "replications",
    "edge_utilization",
    "gt_latency_ms_mean",
    "gt_latency_ms_ci95_lo",
    "gt_latency_ms_ci95_hi",
    "gt_contention_ms_mean",
    "proposed_latency_ms",
    "execution",
];

/// Edge populations swept by the contention figure. The largest value sits
/// at `ρ ≈ 0.95` of the shared queue — just before the knee hits the wall.
pub const CONTENTION_POPULATIONS: [u32; 6] = [1, 2, 4, 6, 8, 10];
/// Per-session frame rate (Hz) of every contended session in the sweep.
pub const CONTENTION_FRAME_RATE_HZ: f64 = 5.0;
/// Frame side (pixels) of the contention sweep, chosen with the frame rate
/// so the shared queue saturates inside the swept population range.
pub const CONTENTION_FRAME_SIDE: f64 = 300.0;
/// Replications per population operating point.
pub const CONTENTION_REPLICATIONS: usize = 5;

/// The population grid behind the contention figure: remote inference on
/// the held-out client at a fixed small frame and low frame rate, sweeping
/// [`CONTENTION_POPULATIONS`] sessions over the shared edge with
/// [`CONTENTION_REPLICATIONS`] independently seeded sessions per point.
#[must_use]
pub fn contention_grid() -> SweepGrid {
    SweepGrid::paper_panel(ExecutionTarget::Remote)
        .with_frame_sizes([CONTENTION_FRAME_SIDE])
        .with_cpu_clocks([2.0])
        .with_frame_rates([CONTENTION_FRAME_RATE_HZ])
        .with_users_per_edge(CONTENTION_POPULATIONS)
        .with_replications(CONTENTION_REPLICATIONS)
}

/// One row of the contention figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionPoint {
    /// Sessions sharing the tagged session's edge server.
    pub users_per_edge: u32,
    /// Per-session frame rate (Hz) — also the per-session arrival rate of
    /// the shared queue.
    pub frame_rate_hz: f64,
    /// The aggregated campaign measurement at this point.
    pub row: CampaignRow,
}

impl ContentionPoint {
    /// CSV/console cells for the output layer.
    #[must_use]
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.users_per_edge.to_string(),
            format!("{:.1}", self.frame_rate_hz),
            self.row.replications.to_string(),
            format!("{:.4}", self.row.edge_utilization),
            format!("{:.3}", self.row.gt_latency_ms.mean),
            format!("{:.3}", self.row.gt_latency_ms.ci95_lo),
            format!("{:.3}", self.row.gt_latency_ms.ci95_hi),
            format!("{:.3}", self.row.gt_contention_ms_mean),
            format!("{:.3}", self.row.proposed_latency_ms),
            "remote".to_string(),
        ]
    }
}

/// Runs the contention sweep and returns one point per population in grid
/// order (population increasing).
///
/// # Errors
///
/// Propagates grid, scenario and model errors.
pub fn contention_sweep(ctx: &ExperimentContext) -> Result<Vec<ContentionPoint>> {
    contention_sweep_with(ctx, &ctx.runner())
}

/// [`contention_sweep`] with an explicit runner (determinism tests pin the
/// worker count).
///
/// # Errors
///
/// Propagates grid, scenario and model errors.
pub fn contention_sweep_with(
    ctx: &ExperimentContext,
    runner: &CampaignRunner,
) -> Result<Vec<ContentionPoint>> {
    let rows = run_campaign_with(ctx, &contention_grid(), runner)?;
    Ok(rows
        .into_iter()
        .map(|row| ContentionPoint {
            users_per_edge: row.point.users_per_edge.unwrap_or(1),
            frame_rate_hz: row.point.frame_rate_hz.unwrap_or(CONTENTION_FRAME_RATE_HZ),
            row,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_sweep_traces_the_latency_knee() {
        let ctx = ExperimentContext::quick(23).unwrap();
        let points = contention_sweep(&ctx).unwrap();
        assert_eq!(points.len(), CONTENTION_POPULATIONS.len());
        for (point, &users) in points.iter().zip(&CONTENTION_POPULATIONS) {
            assert_eq!(point.users_per_edge, users);
            assert_eq!(point.frame_rate_hz, CONTENTION_FRAME_RATE_HZ);
            assert_eq!(point.row.replications, CONTENTION_REPLICATIONS);
            assert_eq!(point.cells().len(), FIG_CONTENTION_HEADER.len());
            assert!(point.row.gt_contention_ms_mean > 0.0);
        }
        // Utilisation is linear in the population and stays below 1 for
        // every swept point (the largest sits just before the wall).
        let unit = points[0].row.edge_utilization;
        assert!(unit > 0.0);
        for point in &points {
            let expected = unit * f64::from(point.users_per_edge);
            assert!((point.row.edge_utilization - expected).abs() < 1e-9);
            assert!(point.row.edge_utilization < 1.0);
        }
        let last = points.last().unwrap();
        assert!(
            last.row.edge_utilization > 0.85,
            "the sweep should approach saturation, got ρ = {}",
            last.row.edge_utilization
        );
        // Measured latency rises monotonically with the population …
        for pair in points.windows(2) {
            assert!(
                pair[1].row.gt_latency_ms.mean > pair[0].row.gt_latency_ms.mean,
                "latency must increase with the population: {} users {} ms vs {} users {} ms",
                pair[1].users_per_edge,
                pair[1].row.gt_latency_ms.mean,
                pair[0].users_per_edge,
                pair[0].row.gt_latency_ms.mean
            );
        }
        // … with a visible knee: the final step dwarfs the first one.
        let first_step = points[1].row.gt_latency_ms.mean - points[0].row.gt_latency_ms.mean;
        let last_step = points[points.len() - 1].row.gt_latency_ms.mean
            - points[points.len() - 2].row.gt_latency_ms.mean;
        assert!(
            last_step > 4.0 * first_step.max(0.0),
            "no knee: first step {first_step} ms, last step {last_step} ms"
        );
        // The paper's private-edge analytical model is blind to the
        // population, so its prediction stays flat across the sweep.
        let proposed = points[0].row.proposed_latency_ms;
        assert!(points
            .iter()
            .all(|p| (p.row.proposed_latency_ms - proposed).abs() < 1e-9));
    }
}
