//! The XR application pipeline segments of Fig. 1 and the execution target
//! (local / remote / split) decision.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One segment of the XR object-detection pipeline described in Section III
/// of the paper (Fig. 1).
///
/// The end-to-end latency (Eq. 1) and energy (Eq. 19) models attribute a
/// per-frame cost to each of these segments. Some segments only contribute
/// under local execution (`FrameConversion`, `LocalInference`), some only
/// under remote execution (`FrameEncoding`, `RemoteInference`, `Transmission`,
/// `Handoff`), and `XrCooperation` usually runs in parallel with rendering and
/// may be excluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Segment {
    /// Camera capture, Bayer filtering, and image signal processing (Eq. 2).
    FrameGeneration,
    /// Inertial data, 6-DoF localisation and 3D point-cloud extraction (Eq. 4).
    VolumetricDataGeneration,
    /// External control/environment information from sensors and devices (Eq. 5).
    ExternalSensorInformation,
    /// YUV→RGB conversion, scaling and cropping for the local CNN (Eq. 9).
    FrameConversion,
    /// H.264 encoding of frames destined for the edge server (Eq. 10).
    FrameEncoding,
    /// On-device inference with the lightweight CNN (Eq. 11).
    LocalInference,
    /// Edge-side decode + inference with the large CNN (Eqs. 13–15).
    RemoteInference,
    /// Composition of frame, volumetric data, control info, and results (Eq. 8).
    FrameRendering,
    /// Uplink/downlink transfer between XR device and edge server (Eq. 16).
    Transmission,
    /// Horizontal or vertical handoff while the device is mobile (Eq. 17).
    Handoff,
    /// Scene/fragment exchange with cooperative XR devices (Eq. 18).
    XrCooperation,
}

impl Segment {
    /// All segments, in the order of the pipeline diagram in Fig. 1.
    pub const ALL: [Segment; 11] = [
        Segment::FrameGeneration,
        Segment::VolumetricDataGeneration,
        Segment::ExternalSensorInformation,
        Segment::FrameConversion,
        Segment::FrameEncoding,
        Segment::LocalInference,
        Segment::RemoteInference,
        Segment::FrameRendering,
        Segment::Transmission,
        Segment::Handoff,
        Segment::XrCooperation,
    ];

    /// The segment's index in [`Segment::ALL`] — the column slot used by
    /// structure-of-arrays per-segment storage (the testbed's frame
    /// engines and [`xr_testbed::GroundTruthFrame`]'s per-segment arrays).
    /// `ALL` lists the segments in declaration (= `Ord`) order, so slots
    /// ascend exactly like a `BTreeMap<Segment, _>` iterates.
    ///
    /// [`xr_testbed::GroundTruthFrame`]: https://docs.rs/xr-testbed
    #[must_use]
    pub const fn slot(self) -> usize {
        self as usize
    }

    /// Returns `true` when the segment runs on the XR device itself (as
    /// opposed to the edge server or the wireless medium).
    #[must_use]
    pub fn runs_on_client(self) -> bool {
        !matches!(
            self,
            Segment::RemoteInference | Segment::Transmission | Segment::Handoff
        )
    }

    /// Returns `true` when the segment only contributes under *local*
    /// inference (`ω_loc = 1` in Eq. 1).
    #[must_use]
    pub fn local_only(self) -> bool {
        matches!(self, Segment::FrameConversion | Segment::LocalInference)
    }

    /// Returns `true` when the segment only contributes under *remote*
    /// inference (`ω̄_loc = 1` in Eq. 1).
    #[must_use]
    pub fn remote_only(self) -> bool {
        matches!(
            self,
            Segment::FrameEncoding
                | Segment::RemoteInference
                | Segment::Transmission
                | Segment::Handoff
        )
    }

    /// Returns `true` when the paper treats the segment as optionally running
    /// in parallel with rendering (and therefore excludable from `L_tot`).
    #[must_use]
    pub fn parallel_with_rendering(self) -> bool {
        matches!(self, Segment::XrCooperation)
    }

    /// Short machine-readable name, used for CSV column headers.
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            Segment::FrameGeneration => "frame_gen",
            Segment::VolumetricDataGeneration => "volumetric",
            Segment::ExternalSensorInformation => "external",
            Segment::FrameConversion => "conversion",
            Segment::FrameEncoding => "encoding",
            Segment::LocalInference => "local_inf",
            Segment::RemoteInference => "remote_inf",
            Segment::FrameRendering => "rendering",
            Segment::Transmission => "transmission",
            Segment::Handoff => "handoff",
            Segment::XrCooperation => "cooperation",
        }
    }
}

#[cfg(test)]
mod slot_tests {
    use super::Segment;

    #[test]
    fn slots_are_the_positions_in_all_and_ascend_in_ord_order() {
        for (index, segment) in Segment::ALL.iter().enumerate() {
            assert_eq!(segment.slot(), index, "{segment:?} slot drifted");
        }
        let mut sorted = Segment::ALL;
        sorted.sort();
        assert_eq!(sorted, Segment::ALL, "ALL must stay in Ord order");
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Segment::FrameGeneration => "frame generation",
            Segment::VolumetricDataGeneration => "volumetric data generation",
            Segment::ExternalSensorInformation => "external sensor information generation",
            Segment::FrameConversion => "frame conversion",
            Segment::FrameEncoding => "frame encoding",
            Segment::LocalInference => "local inference",
            Segment::RemoteInference => "remote inference",
            Segment::FrameRendering => "frame rendering",
            Segment::Transmission => "transmission",
            Segment::Handoff => "handoff",
            Segment::XrCooperation => "XR cooperation",
        };
        f.write_str(name)
    }
}

/// Where the inference task of a frame executes.
///
/// The paper encodes this with the binary decision `ω_loc ∈ {0, 1}` plus a
/// task-split `ω_client + Σ_e ω_edge^e = ω_task` for distributed execution.
/// `ExecutionTarget` captures the three cases explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ExecutionTarget {
    /// `ω_loc = 1`: the whole inference task runs on the XR device.
    #[default]
    Local,
    /// `ω_loc = 0`: the whole inference task runs on one or more edge servers.
    Remote,
    /// The task is split: `client_share` runs on the device, the rest on the
    /// edge server(s). `client_share` is the paper's `ω_client`.
    Split {
        /// Fraction of the task executed on the XR device, `ω_client ∈ [0, 1]`.
        client_share: f64,
    },
}

impl ExecutionTarget {
    /// The paper's indicator `ω_loc`: 1 for fully local, 0 otherwise.
    #[must_use]
    pub fn omega_loc(self) -> f64 {
        match self {
            ExecutionTarget::Local => 1.0,
            ExecutionTarget::Remote | ExecutionTarget::Split { .. } => 0.0,
        }
    }

    /// Fraction of the task executed on the XR device (`ω_client`).
    #[must_use]
    pub fn client_share(self) -> f64 {
        match self {
            ExecutionTarget::Local => 1.0,
            ExecutionTarget::Remote => 0.0,
            ExecutionTarget::Split { client_share } => client_share.clamp(0.0, 1.0),
        }
    }

    /// Fraction of the task executed on the edge side (`Σ_e ω_edge^e`).
    #[must_use]
    pub fn edge_share(self) -> f64 {
        1.0 - self.client_share()
    }

    /// Returns `true` when any part of the task is offloaded.
    #[must_use]
    pub fn uses_edge(self) -> bool {
        self.edge_share() > 0.0
    }

    /// Returns `true` when any part of the task runs on the device.
    #[must_use]
    pub fn uses_client(self) -> bool {
        self.client_share() > 0.0
    }
}

impl fmt::Display for ExecutionTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionTarget::Local => f.write_str("local"),
            ExecutionTarget::Remote => f.write_str("remote"),
            ExecutionTarget::Split { client_share } => {
                write!(f, "split(client={client_share:.2})")
            }
        }
    }
}

/// A set of segments included in an end-to-end computation.
///
/// Applications differ in whether XR cooperation or handoff are part of the
/// critical path (Section IV-B); `SegmentSet` lets callers express that
/// choice once and reuse it across the latency and energy models.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentSet {
    included: Vec<Segment>,
}

impl SegmentSet {
    /// The default end-to-end set used in the paper's evaluation: everything
    /// except XR cooperation (assumed parallel with rendering).
    #[must_use]
    pub fn standard() -> Self {
        Self {
            included: Segment::ALL
                .into_iter()
                .filter(|s| !s.parallel_with_rendering())
                .collect(),
        }
    }

    /// Every segment, including XR cooperation.
    #[must_use]
    pub fn full() -> Self {
        Self {
            included: Segment::ALL.to_vec(),
        }
    }

    /// An empty set; use [`SegmentSet::with`] to add segments.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            included: Vec::new(),
        }
    }

    /// Returns a copy of this set with `segment` added (idempotent).
    #[must_use]
    pub fn with(mut self, segment: Segment) -> Self {
        if !self.included.contains(&segment) {
            self.included.push(segment);
        }
        self
    }

    /// Returns a copy of this set with `segment` removed.
    #[must_use]
    pub fn without(mut self, segment: Segment) -> Self {
        self.included.retain(|s| *s != segment);
        self
    }

    /// Returns `true` when `segment` is part of the end-to-end calculation.
    #[must_use]
    pub fn contains(&self, segment: Segment) -> bool {
        self.included.contains(&segment)
    }

    /// Iterates over the included segments in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = Segment> + '_ {
        self.included.iter().copied()
    }

    /// Number of included segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.included.len()
    }

    /// Returns `true` when no segment is included.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.included.is_empty()
    }
}

impl Default for SegmentSet {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_segments_enumerated_once() {
        let mut seen = std::collections::HashSet::new();
        for s in Segment::ALL {
            assert!(seen.insert(s), "duplicate segment {s}");
        }
        assert_eq!(seen.len(), 11);
    }

    #[test]
    fn local_and_remote_only_are_disjoint() {
        for s in Segment::ALL {
            assert!(!(s.local_only() && s.remote_only()), "{s} is both");
        }
    }

    #[test]
    fn standard_set_excludes_cooperation() {
        let set = SegmentSet::standard();
        assert!(!set.contains(Segment::XrCooperation));
        assert!(set.contains(Segment::FrameGeneration));
        assert_eq!(set.len(), 10);
        assert_eq!(SegmentSet::full().len(), 11);
    }

    #[test]
    fn with_and_without_round_trip() {
        let set = SegmentSet::standard()
            .with(Segment::XrCooperation)
            .with(Segment::XrCooperation);
        assert_eq!(set.len(), 11);
        let set = set.without(Segment::Handoff);
        assert!(!set.contains(Segment::Handoff));
        assert!(!SegmentSet::empty().contains(Segment::FrameGeneration));
        assert!(SegmentSet::empty().is_empty());
    }

    #[test]
    fn execution_target_shares_sum_to_one() {
        for target in [
            ExecutionTarget::Local,
            ExecutionTarget::Remote,
            ExecutionTarget::Split { client_share: 0.3 },
        ] {
            let total = target.client_share() + target.edge_share();
            assert!((total - 1.0).abs() < 1e-12, "{target}: {total}");
        }
    }

    #[test]
    fn omega_loc_matches_paper_semantics() {
        assert_eq!(ExecutionTarget::Local.omega_loc(), 1.0);
        assert_eq!(ExecutionTarget::Remote.omega_loc(), 0.0);
        assert_eq!(
            ExecutionTarget::Split { client_share: 0.5 }.omega_loc(),
            0.0
        );
        assert!(ExecutionTarget::Remote.uses_edge());
        assert!(!ExecutionTarget::Remote.uses_client());
        assert!(ExecutionTarget::Local.uses_client());
        assert!(!ExecutionTarget::Local.uses_edge());
    }

    #[test]
    fn split_share_is_clamped() {
        let t = ExecutionTarget::Split { client_share: 1.4 };
        assert_eq!(t.client_share(), 1.0);
        let t = ExecutionTarget::Split { client_share: -0.4 };
        assert_eq!(t.client_share(), 0.0);
    }

    #[test]
    fn segment_short_names_are_unique() {
        let mut names = std::collections::HashSet::new();
        for s in Segment::ALL {
            assert!(names.insert(s.short_name()));
        }
    }
}
