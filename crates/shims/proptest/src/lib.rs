//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait (ranges, tuples, [`Strategy::prop_map`],
//! `prop::sample::select`, `prop::collection::vec`), the [`proptest!`]
//! macro, and `prop_assert!`/`prop_assert_eq!`. Unlike the real crate it
//! does plain deterministic random sampling — there is **no shrinking**
//! and no persisted failure seeds; a failing case reports its case index
//! and the per-test RNG is seeded from the test name, so failures
//! reproduce exactly on re-run. Swap the root manifest's `proptest` entry
//! for crates.io to get real shrinking; the test sources stay unchanged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Failure raised by `prop_assert!` inside a property body.
#[derive(Debug)]
pub struct TestCaseError {
    /// Human-readable description of the failed assertion.
    pub message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

/// Result type property bodies are wrapped into by [`proptest!`].
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Config {
    /// Builds a config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Seeds the per-test RNG deterministically from the test's name (FNV-1a).
#[must_use]
pub fn rng_for_test(name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`, mirroring
    /// `proptest::strategy::Strategy::prop_map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Strategy modules re-exported through `prelude::prop`.
pub mod prop {
    /// Strategies drawing from explicit value sets.
    pub mod sample {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy returned by [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        /// Picks uniformly from `options`, mirroring
        /// `proptest::sample::select`.
        ///
        /// # Panics
        ///
        /// Panics at generation time if `options` is empty.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut StdRng) -> T {
                assert!(
                    !self.options.is_empty(),
                    "select requires at least one option"
                );
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }
    }

    /// Strategies for collections.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Length specification accepted by [`vec()`]: a fixed size or a range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            min: usize,
            /// Exclusive upper bound.
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n + 1 }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            /// # Panics
            ///
            /// Panics on an empty range, like the real proptest rejects an
            /// impossible size specification.
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(
                    r.start < r.end,
                    "empty vec size range {}..{}",
                    r.start,
                    r.end
                );
                SizeRange {
                    min: r.start,
                    max: r.end,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            /// # Panics
            ///
            /// Panics on an empty range, like the real proptest rejects an
            /// impossible size specification.
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                assert!(
                    r.start() <= r.end(),
                    "empty vec size range {}..={}",
                    r.start(),
                    r.end()
                );
                SizeRange {
                    min: *r.start(),
                    max: *r.end() + 1,
                }
            }
        }

        /// Strategy returned by [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors whose elements come from `element` and whose
        /// length falls in `size`, mirroring `proptest::collection::vec`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = if self.size.min + 1 >= self.size.max {
                    self.size.min
                } else {
                    rng.gen_range(self.size.min..self.size.max)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::prop;
    pub use super::{Config as ProptestConfig, Strategy, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines `#[test]` functions that check a property over sampled inputs,
/// mirroring `proptest::proptest!`.
///
/// Each listed function runs `cases` times (default [`Config::default`];
/// override with `#![proptest_config(...)]`) with inputs drawn from the
/// strategies on the right of each `in`.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            #[test]
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::Config = $config;
                let mut rng = $crate::rng_for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: $crate::TestCaseResult = (|| {
                        $(
                            // Rebind so the closure takes ownership and the
                            // body can move/consume the generated values.
                            let $arg = $arg;
                        )+
                        $body
                        Ok(())
                    })();
                    if let Err(failure) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            failure.message
                        );
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting the failing
/// expression without aborting the process mid-harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // `if c {} else` rather than `if !c` keeps user conditions over
        // partially ordered types clear of clippy::neg_cmp_op_on_partial_ord.
        if $cond {
        } else {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_generate_in_bounds(
            x in 0.0..10.0_f64,
            n in 1u32..5,
            pair in (0.0..1.0_f64, 2usize..9),
        ) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            prop_assert!(pair.0 < 1.0);
            prop_assert!((2..9).contains(&pair.1));
        }

        #[test]
        fn map_select_and_vec_compose(
            label in prop::sample::select(vec!["a", "b", "c"]),
            data in prop::collection::vec(1.0..2.0_f64, 3..6),
            doubled in (1u32..10).prop_map(|v| v * 2),
        ) {
            prop_assert!(["a", "b", "c"].contains(&label));
            prop_assert!((3..6).contains(&data.len()));
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 20);
        }
    }

    #[test]
    #[should_panic(expected = "empty vec size range")]
    fn empty_vec_size_range_is_rejected() {
        // Built via variables so the intentionally empty range does not trip
        // clippy::reversed_empty_ranges at the literal site.
        let (lo, hi) = (5usize, 3usize);
        let _ = prop::collection::vec(0.0..1.0_f64, lo..hi);
    }

    #[test]
    fn fixed_size_vec_is_exact() {
        let strategy = prop::collection::vec(0.0..1.0_f64, 20);
        let mut rng = crate::rng_for_test("fixed_size_vec_is_exact");
        let v = Strategy::generate(&strategy, &mut rng);
        assert_eq!(v.len(), 20);
    }
}
