//! Physical-unit newtypes used throughout the workspace.
//!
//! Each unit wraps an `f64` and provides:
//!
//! * a validating constructor [`new`](Seconds::new) that panics on NaN,
//! * a non-validating `new_unchecked`-style constructor is intentionally not
//!   provided — quantities are cheap to validate,
//! * `as_f64` to read the raw value,
//! * arithmetic that stays inside the dimension where meaningful
//!   (`Seconds + Seconds`, `Seconds * f64`), and
//! * cross-dimension conversions where they correspond to a real physical
//!   relation (e.g. [`Watts`] × [`Seconds`] → [`Joules`]).
//!
//! All units are plain `Copy` data and serialize transparently as their inner
//! number so experiment artifacts stay easy to post-process.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the shared newtype surface for a unit wrapper.
macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new quantity.
            ///
            /// # Panics
            ///
            /// Panics if `value` is NaN. Negative values are allowed because
            /// several intermediate regression terms in the paper can be
            /// negative before being clamped by the caller.
            #[must_use]
            pub fn new(value: f64) -> Self {
                assert!(!value.is_nan(), concat!(stringify!($name), " must not be NaN"));
                Self(value)
            }

            /// Returns the raw value.
            #[must_use]
            pub fn as_f64(self) -> f64 {
                self.0
            }

            /// Returns the value clamped below at zero.
            ///
            /// The paper's regression sub-models (Eqs. 3, 10, 12, 21) are only
            /// valid inside the measured covariate range; outside it they can
            /// dip below zero, so callers clamp.
            #[must_use]
            pub fn max_zero(self) -> Self {
                Self(self.0.max(0.0))
            }

            /// Returns `true` when the value is strictly positive and finite.
            #[must_use]
            pub fn is_positive(self) -> bool {
                self.0 > 0.0 && self.0.is_finite()
            }

            /// Returns the larger of the two quantities.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of the two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.6} {}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two quantities of the same dimension yields a
            /// dimensionless ratio.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self::new(value)
            }
        }

        impl From<$name> for f64 {
            fn from(value: $name) -> f64 {
                value.0
            }
        }
    };
}

unit!(
    /// A duration in seconds. End-to-end latencies (`L_tot`, Eq. 1) are
    /// expressed in this unit.
    Seconds,
    "s"
);
unit!(
    /// A duration in milliseconds, the unit the paper's figures use.
    MilliSeconds,
    "ms"
);
unit!(
    /// Energy in joules.
    Joules,
    "J"
);
unit!(
    /// Energy in millijoules, the unit of Figs. 4(c)–(d).
    MilliJoules,
    "mJ"
);
unit!(
    /// Power in watts.
    Watts,
    "W"
);
unit!(
    /// Power in milliwatts, the native unit of the simulated power monitor.
    MilliWatts,
    "mW"
);
unit!(
    /// Frequency in hertz (sensor information-generation frequency `f_t`,
    /// frame rate `n_fps`).
    Hertz,
    "Hz"
);
unit!(
    /// Clock frequency in gigahertz (CPU `f_c` and GPU `f_g` clocks).
    GigaHertz,
    "GHz"
);
unit!(
    /// Data size in bytes.
    Bytes,
    "B"
);
unit!(
    /// Data size in megabytes (`δ` terms in the latency model).
    MegaBytes,
    "MB"
);
unit!(
    /// Memory bandwidth in gigabytes per second (`m_client`, `m_ε`).
    GigaBytesPerSecond,
    "GB/s"
);
unit!(
    /// Network throughput in megabits per second (`r_w`, Eq. 16).
    MegaBitsPerSecond,
    "Mbps"
);
unit!(
    /// Distance in meters (`d_mnq`, `d_ε`, `d_coop`).
    Meters,
    "m"
);
unit!(
    /// Speed in meters per second (propagation speed `c`, device velocity).
    MetersPerSecond,
    "m/s"
);
unit!(
    /// Frame area in pixels² (`s_f1`, `s_f2`, `s_f3`, `s_vol`). The paper
    /// sweeps 300–700 pixel² in Figs. 4–5.
    PixelsSquared,
    "px²"
);
unit!(
    /// Temperature in degrees Celsius (heat-dissipation bookkeeping).
    Celsius,
    "°C"
);

/// A dimensionless ratio constrained to `[0, 1]`, e.g. the CPU utilisation
/// split `ω_c`, the local-inference decision `ω_loc`, or task-split factors
/// `ω_client` / `ω_edge`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Ratio(f64);

impl Ratio {
    /// The zero ratio.
    pub const ZERO: Self = Self(0.0);
    /// The unit ratio.
    pub const ONE: Self = Self(1.0);

    /// Creates a ratio.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or outside `[0, 1]`.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && (0.0..=1.0).contains(&value),
            "Ratio must lie in [0, 1], got {value}"
        );
        Self(value)
    }

    /// Creates a ratio, clamping into `[0, 1]` instead of panicking.
    #[must_use]
    pub fn saturating(value: f64) -> Self {
        if value.is_nan() {
            return Self(0.0);
        }
        Self(value.clamp(0.0, 1.0))
    }

    /// Returns the raw value.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Returns `1 − self`, i.e. the complementary share (the paper's
    /// `ω̄_loc` or the GPU share `1 − ω_c`).
    #[must_use]
    pub fn complement(self) -> Self {
        Self(1.0 - self.0)
    }

    /// Returns `true` when the ratio is exactly one.
    #[must_use]
    pub fn is_one(self) -> bool {
        (self.0 - 1.0).abs() < f64::EPSILON
    }

    /// Returns `true` when the ratio is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0.abs() < f64::EPSILON
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl From<Ratio> for f64 {
    fn from(value: Ratio) -> f64 {
        value.0
    }
}

// --- Cross-dimension conversions and physical relations -------------------

impl Seconds {
    /// Converts to milliseconds.
    #[must_use]
    pub fn to_millis(self) -> MilliSeconds {
        MilliSeconds::new(self.0 * 1e3)
    }

    /// Builds a duration from a millisecond count.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms / 1e3)
    }
}

impl MilliSeconds {
    /// Converts to seconds.
    #[must_use]
    pub fn to_seconds(self) -> Seconds {
        Seconds::new(self.0 / 1e3)
    }
}

impl Joules {
    /// Converts to millijoules.
    #[must_use]
    pub fn to_millijoules(self) -> MilliJoules {
        MilliJoules::new(self.0 * 1e3)
    }
}

impl MilliJoules {
    /// Converts to joules.
    #[must_use]
    pub fn to_joules(self) -> Joules {
        Joules::new(self.0 / 1e3)
    }
}

impl Watts {
    /// Converts to milliwatts.
    #[must_use]
    pub fn to_milliwatts(self) -> MilliWatts {
        MilliWatts::new(self.0 * 1e3)
    }
}

impl MilliWatts {
    /// Converts to watts.
    #[must_use]
    pub fn to_watts(self) -> Watts {
        Watts::new(self.0 / 1e3)
    }
}

impl Hertz {
    /// The period `1/f` of this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not strictly positive.
    #[must_use]
    pub fn period(self) -> Seconds {
        assert!(self.is_positive(), "cannot take the period of {self}");
        Seconds::new(1.0 / self.0)
    }
}

impl GigaHertz {
    /// Converts to plain hertz.
    #[must_use]
    pub fn to_hertz(self) -> Hertz {
        Hertz::new(self.0 * 1e9)
    }
}

impl Bytes {
    /// Converts to megabytes.
    #[must_use]
    pub fn to_megabytes(self) -> MegaBytes {
        MegaBytes::new(self.0 / 1e6)
    }
}

impl MegaBytes {
    /// Converts to bytes.
    #[must_use]
    pub fn to_bytes(self) -> Bytes {
        Bytes::new(self.0 * 1e6)
    }

    /// Converts to megabits (for transmission-latency computations).
    #[must_use]
    pub fn to_megabits(self) -> f64 {
        self.0 * 8.0
    }
}

/// Power × time = energy.
impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.0 * rhs.0)
    }
}

/// Time × power = energy (commutative form).
impl Mul<Watts> for Seconds {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

/// Transferring `MegaBytes` over a `MegaBitsPerSecond` link takes
/// `8·MB / Mbps` seconds.
impl Div<MegaBitsPerSecond> for MegaBytes {
    type Output = Seconds;
    fn div(self, rhs: MegaBitsPerSecond) -> Seconds {
        Seconds::new(self.to_megabits() / rhs.0)
    }
}

/// Reading or writing `MegaBytes` at `GigaBytesPerSecond` takes
/// `MB / (1000·GB/s)` seconds (the δ/m terms of Eqs. 2, 4, 9–11, 13).
impl Div<GigaBytesPerSecond> for MegaBytes {
    type Output = Seconds;
    fn div(self, rhs: GigaBytesPerSecond) -> Seconds {
        Seconds::new(self.0 / (rhs.0 * 1e3))
    }
}

/// Covering `Meters` at `MetersPerSecond` takes `m / (m/s)` seconds — the
/// propagation-delay terms `d/c` of Eqs. 6, 16, 18, 23.
impl Div<MetersPerSecond> for Meters {
    type Output = Seconds;
    fn div(self, rhs: MetersPerSecond) -> Seconds {
        Seconds::new(self.0 / rhs.0)
    }
}

/// The propagation speed used throughout the paper: the speed of light.
pub const SPEED_OF_LIGHT: MetersPerSecond = MetersPerSecond(299_792_458.0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_millis_round_trip() {
        let s = Seconds::new(0.125);
        assert!((s.to_millis().as_f64() - 125.0).abs() < 1e-9);
        assert!((s.to_millis().to_seconds().as_f64() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn energy_is_power_times_time() {
        let e = Watts::new(2.5) * Seconds::new(4.0);
        assert!((e.as_f64() - 10.0).abs() < 1e-12);
        let e2 = Seconds::new(4.0) * Watts::new(2.5);
        assert_eq!(e, e2);
    }

    #[test]
    fn transmission_latency_uses_bits() {
        // 1 MB over 8 Mbps takes exactly 1 second.
        let t = MegaBytes::new(1.0) / MegaBitsPerSecond::new(8.0);
        assert!((t.as_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memory_read_latency() {
        // 2 MB at 4 GB/s = 0.5 ms.
        let t = MegaBytes::new(2.0) / GigaBytesPerSecond::new(4.0);
        assert!((t.as_f64() - 0.0005).abs() < 1e-12);
    }

    #[test]
    fn propagation_delay() {
        let t = Meters::new(299_792_458.0) / SPEED_OF_LIGHT;
        assert!((t.as_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_complement() {
        let r = Ratio::new(0.3);
        assert!((r.complement().as_f64() - 0.7).abs() < 1e-12);
        assert!(Ratio::ONE.is_one());
        assert!(Ratio::ZERO.is_zero());
    }

    #[test]
    fn ratio_saturating_clamps() {
        assert_eq!(Ratio::saturating(1.7).as_f64(), 1.0);
        assert_eq!(Ratio::saturating(-0.2).as_f64(), 0.0);
        assert_eq!(Ratio::saturating(f64::NAN).as_f64(), 0.0);
    }

    #[test]
    #[should_panic(expected = "Ratio must lie in [0, 1]")]
    fn ratio_rejects_out_of_range() {
        let _ = Ratio::new(1.5);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_rejected() {
        let _ = Seconds::new(f64::NAN);
    }

    #[test]
    fn hertz_period() {
        let f = Hertz::new(200.0);
        assert!((f.period().as_f64() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = MilliJoules::new(3.0);
        let b = MilliJoules::new(1.5);
        assert_eq!((a + b).as_f64(), 4.5);
        assert_eq!((a - b).as_f64(), 1.5);
        assert_eq!((a * 2.0).as_f64(), 6.0);
        assert_eq!((a / 2.0).as_f64(), 1.5);
        assert!(a > b);
        assert_eq!(a / b, 2.0);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_of_units() {
        let total: Seconds = vec![Seconds::new(0.1), Seconds::new(0.2), Seconds::new(0.3)]
            .into_iter()
            .sum();
        assert!((total.as_f64() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn max_zero_clamps_negative_regression_outputs() {
        assert_eq!(Watts::new(-3.0).max_zero().as_f64(), 0.0);
        assert_eq!(Watts::new(3.0).max_zero().as_f64(), 3.0);
    }

    #[test]
    fn display_contains_suffix() {
        assert!(format!("{}", GigaHertz::new(2.0)).contains("GHz"));
        assert!(format!("{}", MegaBitsPerSecond::new(50.0)).contains("Mbps"));
    }

    #[test]
    fn gigahertz_to_hertz() {
        assert!((GigaHertz::new(2.0).to_hertz().as_f64() - 2e9).abs() < 1.0);
    }

    #[test]
    fn bytes_megabytes_round_trip() {
        let b = Bytes::new(5_000_000.0);
        assert!((b.to_megabytes().as_f64() - 5.0).abs() < 1e-12);
        assert!((b.to_megabytes().to_bytes().as_f64() - 5_000_000.0).abs() < 1e-6);
    }
}
