//! Validation of the analytical framework against the simulated testbed —
//! the integration-level counterpart of §VIII-A/B.

use xr_experiments::figures::{energy_sweep, latency_sweep};
use xr_experiments::ExperimentContext;
use xr_integration::evaluation_scenario;
use xr_testbed::TestbedSimulator;
use xr_types::ExecutionTarget;

#[test]
fn calibrated_model_tracks_ground_truth_across_the_full_sweep() {
    let ctx = ExperimentContext::quick(101).unwrap();
    for target in [ExecutionTarget::Local, ExecutionTarget::Remote] {
        let latency = latency_sweep(&ctx, target).unwrap();
        assert!(
            latency.mean_error_percent() < 15.0,
            "{target}: latency mean error {}%",
            latency.mean_error_percent()
        );
        let energy = energy_sweep(&ctx, target).unwrap();
        assert!(
            energy.mean_error_percent() < 20.0,
            "{target}: energy mean error {}%",
            energy.mean_error_percent()
        );
    }
}

#[test]
fn ground_truth_and_model_agree_on_the_clock_frequency_ordering() {
    let ctx = ExperimentContext::quick(102).unwrap();
    let sweep = latency_sweep(&ctx, ExecutionTarget::Local).unwrap();
    for size in ExperimentContext::FRAME_SIZES {
        let at = |clock: f64| {
            sweep
                .points
                .iter()
                .find(|p| {
                    (p.cpu_clock_ghz - clock).abs() < 1e-9 && (p.frame_size - size).abs() < 1e-9
                })
                .copied()
                .unwrap()
        };
        let (one, three) = (at(1.0), at(3.0));
        assert!(
            one.ground_truth > three.ground_truth,
            "GT ordering at {size}"
        );
        assert!(one.proposed > three.proposed, "model ordering at {size}");
    }
}

#[test]
fn per_segment_ground_truth_matches_model_structure() {
    // The testbed and the model must agree on which segments run under each
    // execution target — otherwise the error metrics compare apples to
    // oranges.
    let testbed = TestbedSimulator::new(103);
    let model = xr_core::LatencyModel::published();
    for target in [ExecutionTarget::Local, ExecutionTarget::Remote] {
        let scenario = evaluation_scenario(500.0, 2.0, target);
        let gt = testbed.simulate_frame(&scenario, 1).unwrap();
        let analytic = model.analyze(&scenario).unwrap();
        for segment in xr_types::Segment::ALL {
            let gt_runs = gt.segment_latency(segment).as_f64() > 0.0;
            let model_runs = analytic.segment(segment).as_f64() > 0.0;
            assert_eq!(gt_runs, model_runs, "{target}: segment {segment} mismatch");
        }
    }
}

#[test]
fn session_noise_shrinks_with_more_frames() {
    let testbed = TestbedSimulator::new(104);
    let scenario = evaluation_scenario(500.0, 2.0, ExecutionTarget::Local);
    let short = testbed.simulate_session(&scenario, 5).unwrap();
    let long = testbed.simulate_session(&scenario, 80).unwrap();
    // Means from the longer session are closer to each other than the spread
    // of the short one — a loose but meaningful convergence check.
    let short_spread = short.latency_summary().std_dev();
    let long_spread = long.latency_summary().std_dev();
    assert!(long_spread < short_spread * 3.0);
    assert!(long.mean_latency().as_f64() > 0.0);
}

#[test]
fn regression_refit_beats_published_coefficients_on_the_simulated_testbed() {
    // The calibrated (refit) model should track the simulated ground truth at
    // least as well as the paper's published coefficients, which were fitted
    // on different (real) hardware.
    let ctx = ExperimentContext::quick(105).unwrap();
    let scenario = evaluation_scenario(500.0, 2.0, ExecutionTarget::Local);
    let gt = ctx
        .testbed()
        .simulate_session(&scenario, 40)
        .unwrap()
        .mean_latency()
        .as_f64();
    let calibrated = ctx
        .proposed()
        .analyze(&scenario)
        .unwrap()
        .latency
        .total()
        .as_f64();
    let published = xr_core::XrPerformanceModel::published()
        .analyze(&scenario)
        .unwrap()
        .latency
        .total()
        .as_f64();
    let err = |v: f64| ((v - gt) / gt).abs();
    assert!(
        err(calibrated) <= err(published) + 0.02,
        "calibrated error {} vs published error {}",
        err(calibrated),
        err(published)
    );
}
