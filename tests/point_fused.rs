//! The replication-fused point engine's contract: for every scenario,
//! point seed, replication count, session length, and batch width,
//! `simulate_point` produces exactly the sessions that R standalone
//! per-rep runs produce — bit-identical, not statistically equal.
//!
//! This is the same property that makes the batched engine safe: a draw
//! depends only on `(replication_seed, stage_id, frame_index)`, so fusing
//! all replications of a point into one wide SoA pass cannot change any
//! `f64`. Error behaviour must match too: a point whose scenario saturates
//! a queue refuses identically on both paths.

use proptest::prelude::*;
use xr_core::{MobilityConfig, Scenario};
use xr_testbed::{SimulationEngine, TestbedSimulator};
use xr_types::{ExecutionTarget, GigaHertz, Hertz, Meters, MetersPerSecond, Ratio};
use xr_wireless::HandoffKind;

#[allow(clippy::too_many_arguments)]
fn build_scenario(
    size: f64,
    clock: f64,
    share: f64,
    fps: f64,
    target: u8,
    updates: u32,
    speed: f64,
    radius: f64,
) -> Scenario {
    let execution = match target {
        0 => ExecutionTarget::Local,
        1 => ExecutionTarget::Remote,
        _ => ExecutionTarget::Split { client_share: 0.5 },
    };
    Scenario::builder()
        .frame_side(size)
        .cpu_clock(GigaHertz::new(clock))
        .cpu_share(Ratio::new(share))
        .frame_rate(Hertz::new(fps))
        .updates_per_frame(updates)
        .execution(execution)
        .mobility(MobilityConfig {
            speed: MetersPerSecond::new(speed),
            coverage_radius: Meters::new(radius),
            handoff_kind: HandoffKind::Vertical,
        })
        .build()
        .expect("generated scenario is valid")
}

/// Asserts that the fused engine and a sequence of standalone per-rep
/// sessions agree on `scenario` — on every frame when the point is
/// simulable, on the refusal when it is not.
fn assert_fused_matches_per_rep(
    fused: &TestbedSimulator,
    reference: &TestbedSimulator,
    scenario: &Scenario,
    point_seed: u64,
    reps: usize,
    frames: u64,
    label: &str,
) -> Result<(), TestCaseError> {
    let per_rep: xr_types::Result<Vec<_>> = (0..reps)
        .map(|rep| {
            reference
                .reseeded(xr_types::seed::mix(point_seed, rep as u64))
                .simulate_session(scenario, frames)
        })
        .collect();
    match (
        fused.simulate_point(scenario, point_seed, reps, frames),
        per_rep,
    ) {
        (Ok(fused_sessions), Ok(reference_sessions)) => {
            prop_assert!(
                fused_sessions == reference_sessions,
                "fused point diverged from per-rep sessions ({label})"
            );
        }
        (Err(fused_err), Err(reference_err)) => {
            prop_assert!(
                format!("{fused_err:?}") == format!("{reference_err:?}"),
                "fused point refused differently ({label}): {fused_err:?} vs {reference_err:?}"
            );
        }
        (fused, reference) => {
            return Err(TestCaseError::fail(format!(
                "one path failed where the other succeeded ({label}): fused {} vs per-rep {}",
                if fused.is_ok() { "ok" } else { "err" },
                if reference.is_ok() { "ok" } else { "err" },
            )));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fused_points_are_bit_identical_to_per_rep_sessions(
        size in 300.0..700.0_f64,
        clock in 1.0..3.2_f64,
        share in 0.0..1.0_f64,
        fps in 15.0..60.0_f64,
        target in prop::sample::select(vec![0u8, 1, 2]),
        updates in 1u32..8,
        speed in 0.0..30.0_f64,
        radius in 5.0..60.0_f64,
        point_seed in 0u64..1_000_000,
        frames in 1u64..48,
        reps in 1usize..9,
        width in prop::sample::select(vec![1usize, 7, 64, 256]),
        users in prop::sample::select(vec![0u32, 1, 2, 3, 5]),
        layout in prop::sample::select(vec![0u8, 1, 2, 3]),
        density in 50.0..3000.0_f64,
        lazy in prop::sample::select(vec![false, true]),
    ) {
        // The reference testbed keeps the default batched engine: its
        // `simulate_point` dispatches rep-by-rep, which is also the exact
        // path the per-rep campaign uses.
        let reference = TestbedSimulator::new(9);
        let fused = reference
            .clone()
            .with_engine(SimulationEngine::FusedPoint { width });

        let scenario = build_scenario(size, clock, share, fps, target, updates, speed, radius);
        assert_fused_matches_per_rep(
            &fused, &reference, &scenario, point_seed, reps, frames,
            &format!("plain, reps {reps}, width {width}, frames {frames}"),
        )?;

        // Multi-tenant contention, at a frame rate low enough to generate
        // a mix of stable and saturated queues (a saturated point must
        // refuse identically on both paths).
        if users > 0 {
            let mut contended =
                build_scenario(size, clock, share, fps / 6.0, target, updates, speed, radius);
            contended.contention = Some(xr_core::ContentionConfig { users_per_edge: users });
            contended.validate().expect("contended scenario is valid");
            assert_fused_matches_per_rep(
                &fused, &reference, &contended, point_seed, reps, frames,
                &format!("contended, users {users}, reps {reps}, width {width}"),
            )?;
        }

        // Edge topology: per-rep walkers and migration state live in
        // rep-indexed banks on the fused path, so roaming sessions are the
        // sharpest divergence detector.
        let mut topologized =
            build_scenario(size, clock, share, fps / 6.0, target, updates, speed, radius);
        let topo_layout = match layout {
            0 => xr_types::TopologyLayout::Single,
            1 => xr_types::TopologyLayout::Square,
            2 => xr_types::TopologyLayout::Hex,
            _ => xr_types::TopologyLayout::Voronoi,
        };
        topologized.topology = Some(xr_core::TopologyConfig {
            layout: topo_layout,
            site_density: if topo_layout == xr_types::TopologyLayout::Single { 0.0 } else { density },
            migration_policy: if lazy {
                xr_types::MigrationPolicy::Lazy
            } else {
                xr_types::MigrationPolicy::Eager
            },
        });
        if users > 0 {
            topologized.contention = Some(xr_core::ContentionConfig { users_per_edge: users });
        }
        topologized.validate().expect("topologized scenario is valid");
        assert_fused_matches_per_rep(
            &fused, &reference, &topologized, point_seed, reps, frames,
            &format!("topologized {topo_layout:?}, density {density:.0}, reps {reps}, width {width}"),
        )?;
    }
}

#[test]
fn tail_frames_and_narrow_widths_fuse_exactly() {
    // Deterministic corners the proptest may not pin every run: a lane
    // budget narrower than the rep count (per-rep width clamps to 1), a
    // tail where the last pass is shorter than the others, and R=1 (the
    // engine falls back to a single standalone session).
    let reference = TestbedSimulator::new(4242);
    let scenario = Scenario::builder()
        .frame_side(512.0)
        .execution(ExecutionTarget::Remote)
        .build()
        .expect("scenario is valid");
    for (reps, frames, width) in [
        (5usize, 13u64, 2usize),
        (3, 1, 256),
        (8, 19, 7),
        (1, 33, 64),
        (4, 20, 4),
    ] {
        let fused = reference
            .clone()
            .with_engine(SimulationEngine::FusedPoint { width });
        let point_seed = 77_000 + reps as u64;
        let fused_sessions = fused
            .simulate_point(&scenario, point_seed, reps, frames)
            .unwrap();
        for (rep, session) in fused_sessions.iter().enumerate() {
            let standalone = reference
                .reseeded(xr_types::seed::mix(point_seed, rep as u64))
                .simulate_session(&scenario, frames)
                .unwrap();
            assert_eq!(
                session, &standalone,
                "rep {rep} diverged (reps {reps}, frames {frames}, width {width})"
            );
        }
    }
}
