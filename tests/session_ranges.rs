//! The within-session frame-range contract: simulating a session as any
//! partition of contiguous frame ranges — on either engine — reproduces the
//! whole-session [`GroundTruthFrame`] stream **bit for bit**, including the
//! cumulative mobility tallies (`migration_time`, `sites_visited`).
//!
//! This closes the seam the lane layer left open: per-stage draws are keyed
//! by `(session_seed, stage, frame_index)`, so a range `a..b` only has to
//! fast-forward the strictly sequential state (the mobility walker and the
//! migration-cost draws of the skipped prefix) to land on exactly the
//! trajectory a full run would have reached at frame `a`.

use proptest::prelude::*;
use xr_core::{MobilityConfig, Scenario};
use xr_testbed::{SimulationEngine, TestbedSimulator};
use xr_types::{ExecutionTarget, GigaHertz, Hertz, Meters, MetersPerSecond, Ratio};
use xr_wireless::HandoffKind;

#[allow(clippy::too_many_arguments)]
fn build_scenario(
    size: f64,
    clock: f64,
    share: f64,
    fps: f64,
    target: u8,
    speed: f64,
    radius: f64,
    users: u32,
    layout: u8,
    density: f64,
    lazy: bool,
) -> Scenario {
    let execution = match target {
        0 => ExecutionTarget::Local,
        1 => ExecutionTarget::Remote,
        _ => ExecutionTarget::Split { client_share: 0.5 },
    };
    let mut scenario = Scenario::builder()
        .frame_side(size)
        .cpu_clock(GigaHertz::new(clock))
        .cpu_share(Ratio::new(share))
        .frame_rate(Hertz::new(fps))
        .execution(execution)
        .mobility(MobilityConfig {
            speed: MetersPerSecond::new(speed),
            coverage_radius: Meters::new(radius),
            handoff_kind: HandoffKind::Vertical,
        })
        .build()
        .expect("generated scenario is valid");
    if users > 0 {
        scenario.contention = Some(xr_core::ContentionConfig {
            users_per_edge: users,
        });
    }
    if layout > 0 {
        let topo_layout = match layout {
            1 => xr_types::TopologyLayout::Square,
            2 => xr_types::TopologyLayout::Hex,
            _ => xr_types::TopologyLayout::Voronoi,
        };
        scenario.topology = Some(xr_core::TopologyConfig {
            layout: topo_layout,
            site_density: density,
            migration_policy: if lazy {
                xr_types::MigrationPolicy::Lazy
            } else {
                xr_types::MigrationPolicy::Eager
            },
        });
    }
    scenario.validate().expect("generated scenario is valid");
    scenario
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    // Random split points, chunk counts, widths, and both engines: every
    // decomposition of a session into contiguous ranges is bit-identical
    // to the one-shot run. (A plain comment: the proptest shim's matcher
    // expects `#[test]` immediately.)
    #[test]
    fn range_splits_are_bit_identical_to_whole_sessions(
        size in 300.0..700.0_f64,
        clock in 1.0..3.2_f64,
        share in 0.0..1.0_f64,
        fps in 4.0..60.0_f64,
        target in prop::sample::select(vec![0u8, 1, 2]),
        speed in 0.0..30.0_f64,
        radius in 5.0..60.0_f64,
        users in prop::sample::select(vec![0u32, 1, 3]),
        layout in prop::sample::select(vec![0u8, 1, 2, 3]),
        density in 50.0..3000.0_f64,
        lazy in prop::sample::select(vec![false, true]),
        seed in 0u64..1_000_000,
        frames in 2u64..72,
        split in 1u64..71,
        chunks in 1usize..9,
        width in 1usize..80,
        scalar_engine in prop::sample::select(vec![false, true]),
    ) {
        let scenario = build_scenario(
            size, clock, share, fps, target, speed, radius, users, layout, density, lazy,
        );
        let testbed = if scalar_engine {
            TestbedSimulator::new(seed).with_engine(SimulationEngine::Scalar)
        } else {
            TestbedSimulator::new(seed).with_engine(SimulationEngine::Batched { width })
        };
        // Saturated queues refuse to run; range decompositions of a refused
        // session must refuse too (checked on the trivial full range).
        let full = match testbed.simulate_session(&scenario, frames) {
            Ok(full) => full,
            Err(full_err) => {
                let range_err = testbed
                    .simulate_session_range(&scenario, 0..frames)
                    .unwrap_err();
                prop_assert_eq!(format!("{full_err:?}"), format!("{range_err:?}"));
                return Ok(());
            }
        };

        // The full range is the whole session.
        let full_range = testbed.simulate_session_range(&scenario, 0..frames).unwrap();
        prop_assert_eq!(&full_range, &full);

        // An arbitrary two-way split stitches back bit for bit: frames
        // concatenate, tallies come from the last (cumulative) range.
        let split = 1 + split % (frames - 1);
        let head = testbed.simulate_session_range(&scenario, 0..split).unwrap();
        let tail = testbed.simulate_session_range(&scenario, split..frames).unwrap();
        let stitched: Vec<_> = head
            .frames()
            .iter()
            .chain(tail.frames())
            .cloned()
            .collect();
        prop_assert_eq!(stitched.as_slice(), full.frames());
        prop_assert_eq!(tail.migration_time(), full.migration_time());
        prop_assert_eq!(tail.sites_visited(), full.sites_visited());
        // The head alone matches the same-length prefix session exactly.
        let prefix = testbed.simulate_session(&scenario, split).unwrap();
        prop_assert_eq!(&head, &prefix);

        // Multi-threaded chunked execution — explicit and via the
        // `with_session_chunks` builder — agrees at every chunk count.
        let chunked = testbed
            .simulate_session_split(&scenario, frames, chunks)
            .unwrap();
        prop_assert_eq!(&chunked, &full);
        let via_builder = testbed
            .clone()
            .with_session_chunks(chunks)
            .simulate_session(&scenario, frames)
            .unwrap();
        prop_assert_eq!(&via_builder, &full);

        // Cross-engine: a scalar range equals a batched range of the same
        // frames (the range API preserves the PR-5 engine equivalence).
        let scalar_tail = testbed
            .simulate_session_range_scalar(&scenario, split..frames)
            .unwrap();
        let batched_tail = testbed
            .simulate_session_range_batched(&scenario, split..frames, width)
            .unwrap();
        prop_assert_eq!(&scalar_tail, &batched_tail);
    }
}

#[test]
// A reversed range is exactly the malformed input under test.
#[allow(clippy::reversed_empty_ranges)]
fn empty_ranges_and_zero_frames_are_rejected() {
    let scenario = build_scenario(512.0, 2.0, 0.8, 30.0, 1, 5.0, 20.0, 0, 0, 0.0, false);
    let testbed = TestbedSimulator::new(7);
    let err = testbed
        .simulate_session_range(&scenario, 5..5)
        .unwrap_err()
        .to_string();
    assert!(err.contains("range 5..5 must be non-empty"), "got: {err}");
    let err = testbed
        .simulate_session_range(&scenario, 9..3)
        .unwrap_err()
        .to_string();
    assert!(err.contains("range 9..3 must be non-empty"), "got: {err}");
    let err = testbed
        .simulate_session_split(&scenario, 0, 4)
        .unwrap_err()
        .to_string();
    assert!(err.contains("at least 1"), "got: {err}");
}

#[test]
fn chunk_counts_beyond_the_frame_count_clamp() {
    // 3 frames split 16 ways degenerates to (at most) 3 single-frame
    // ranges — still bit-identical, never an empty range.
    let scenario = build_scenario(480.0, 2.4, 0.7, 8.0, 2, 12.0, 18.0, 1, 1, 800.0, true);
    let testbed = TestbedSimulator::new(99);
    let full = testbed.simulate_session(&scenario, 3).unwrap();
    let chunked = testbed.simulate_session_split(&scenario, 3, 16).unwrap();
    assert_eq!(chunked, full);
    assert_eq!(
        testbed.with_session_chunks(0).session_chunks(),
        1,
        "chunk counts clamp to at least 1"
    );
}
