//! The CNN catalog of Table II and the CNN-complexity model of Eq. 12.
//!
//! The paper captures the effect of a CNN on inference latency/energy with a
//! single scalar complexity `C_CNN`, fitted by linear regression over the
//! model's depth (number of layers), size (storage space in MB), and depth
//! scaling factor:
//!
//! `C_CNN = 2.45 + 0.0025·d_CNN + 0.03·s_CNN + 0.0029·d_scale`  (R² = 0.844)
//!
//! `C_CNN` then divides the allocated compute in the local/remote inference
//! latency (Eqs. 11 and 13) — a larger, deeper network slows inference down
//! proportionally to its complexity.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use xr_stats::{FittedLinearModel, LinearRegression};
use xr_types::{Error, MegaBytes, Result};

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CnnModel {
    /// Catalog key, e.g. "MobileNetV2_300_Float".
    pub name: String,
    /// Model depth: number of layers `d_CNN`.
    pub depth: u32,
    /// Storage space `s_CNN` in MB.
    pub size: MegaBytes,
    /// Depth/compound scaling factor `d_scale` (×100 to keep the regression's
    /// coefficient meaningful; 0 when the model has no scaling).
    pub depth_scale: f64,
    /// Whether the testbed ran this model with GPU delegation.
    pub gpu_support: bool,
    /// Whether this is a quantised (int8) variant.
    pub quantized: bool,
    /// Whether the model is light enough to run on the XR device (local
    /// inference) as opposed to edge-only models (YOLOv3/YOLOv7).
    pub on_device: bool,
}

impl CnnModel {
    /// The complexity `C_CNN` of this model under a given complexity model.
    #[must_use]
    pub fn complexity(&self, model: &CnnComplexityModel) -> f64 {
        model.complexity(self)
    }
}

/// The 11-model catalog of Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CnnCatalog {
    models: BTreeMap<String, CnnModel>,
}

impl CnnCatalog {
    /// Builds the catalog of Table II.
    #[must_use]
    pub fn table2() -> Self {
        let mut models = BTreeMap::new();
        let mut add = |name: &str,
                       depth: u32,
                       size_mb: f64,
                       depth_scale: f64,
                       gpu: bool,
                       quant: bool,
                       on_device: bool| {
            models.insert(
                name.to_string(),
                CnnModel {
                    name: name.to_string(),
                    depth,
                    size: MegaBytes::new(size_mb),
                    depth_scale,
                    gpu_support: gpu,
                    quantized: quant,
                    on_device,
                },
            );
        };

        add("MobileNetV1_240_Float", 31, 16.9, 0.0, true, false, true);
        add("MobileNetV1_240_Quant", 31, 4.3, 0.0, false, true, true);
        add("MobileNetV2_300_Float", 99, 24.2, 0.0, true, false, true);
        add("MobileNetV2_300_Quant", 112, 6.9, 0.0, false, true, true);
        add("MobileNetV2_640_Float", 155, 12.3, 0.0, true, false, true);
        add("MobileNetV2_640_Quant", 167, 4.5, 0.0, false, true, true);
        add("EfficientNet_Float", 62, 18.6, 0.0, true, false, true);
        add("EfficientNet_Quant", 65, 5.4, 0.0, false, true, true);
        add("NasNet_Float", 663, 21.4, 0.0, true, false, true);
        add("YoloV3", 106, 210.0, 0.0, true, false, false);
        add("YoloV7", 0, 142.8, 150.0, true, false, false);

        Self { models }
    }

    /// Looks up a CNN by catalog key.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] when the key is unknown.
    pub fn model(&self, name: &str) -> Result<&CnnModel> {
        self.models
            .get(name)
            .ok_or_else(|| Error::not_found("cnn", name))
    }

    /// All models, in name order.
    pub fn iter(&self) -> impl Iterator<Item = &CnnModel> {
        self.models.values()
    }

    /// Lightweight models suitable for on-device (local) inference.
    pub fn on_device_models(&self) -> impl Iterator<Item = &CnnModel> {
        self.iter().filter(|m| m.on_device)
    }

    /// Heavy models deployed on the edge server (YOLOv3, YOLOv7).
    pub fn edge_models(&self) -> impl Iterator<Item = &CnnModel> {
        self.iter().filter(|m| !m.on_device)
    }

    /// The default lightweight on-device model used in the evaluation
    /// (MobileNetV2 with a 300×300 input, float).
    ///
    /// # Panics
    ///
    /// Never panics for the built-in catalog.
    #[must_use]
    pub fn default_local(&self) -> &CnnModel {
        self.model("MobileNetV2_300_Float")
            .expect("built-in catalog contains MobileNetV2_300_Float")
    }

    /// The default edge-side model (YOLOv3).
    ///
    /// # Panics
    ///
    /// Never panics for the built-in catalog.
    #[must_use]
    pub fn default_remote(&self) -> &CnnModel {
        self.model("YoloV3")
            .expect("built-in catalog contains YoloV3")
    }

    /// Number of catalog entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Returns `true` when the catalog is empty (never for
    /// [`CnnCatalog::table2`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

/// The CNN complexity regression of Eq. 12.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CnnComplexityModel {
    model: FittedLinearModel,
}

impl CnnComplexityModel {
    /// The published coefficients of Eq. 12 (R² = 0.844).
    #[must_use]
    pub fn published() -> Self {
        Self {
            model: FittedLinearModel::from_coefficients(2.45, vec![0.0025, 0.03, 0.0029], 0.844),
        }
    }

    /// Refits the complexity model on a dataset of
    /// `(depth, size_mb, depth_scale) → measured complexity` rows, as the
    /// paper does with its latency/energy measurements of the 11 CNNs across
    /// devices.
    ///
    /// # Errors
    ///
    /// Propagates regression errors (empty or singular designs).
    pub fn fit(rows: &[(f64, f64, f64)], complexities: &[f64]) -> Result<Self> {
        let xs: Vec<Vec<f64>> = rows.iter().map(|(d, s, c)| vec![*d, *s, *c]).collect();
        let model = LinearRegression::new().fit(&xs, complexities)?;
        Ok(Self { model })
    }

    /// Evaluates `C_CNN` for a CNN. The result is clamped below at a small
    /// positive value because the complexity divides the compute resource in
    /// Eqs. 11/13.
    #[must_use]
    pub fn complexity(&self, cnn: &CnnModel) -> f64 {
        self.model
            .predict(&[f64::from(cnn.depth), cnn.size.as_f64(), cnn.depth_scale])
            .max(0.1)
    }

    /// Evaluates `C_CNN` from raw covariates.
    #[must_use]
    pub fn complexity_raw(&self, depth: f64, size_mb: f64, depth_scale: f64) -> f64 {
        self.model.predict(&[depth, size_mb, depth_scale]).max(0.1)
    }

    /// R² of the underlying regression.
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        self.model.r_squared()
    }

    /// Access to the fitted regression (coefficients, intervals).
    #[must_use]
    pub fn regression(&self) -> &FittedLinearModel {
        &self.model
    }
}

impl Default for CnnComplexityModel {
    fn default() -> Self {
        Self::published()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_eleven_models() {
        let catalog = CnnCatalog::table2();
        assert_eq!(catalog.len(), 11);
        assert!(!catalog.is_empty());
        assert_eq!(catalog.on_device_models().count(), 9);
        assert_eq!(catalog.edge_models().count(), 2);
    }

    #[test]
    fn lookups_and_defaults() {
        let catalog = CnnCatalog::table2();
        assert!(catalog.model("YoloV3").is_ok());
        assert!(matches!(
            catalog.model("ResNet50"),
            Err(Error::NotFound { .. })
        ));
        assert_eq!(catalog.default_local().name, "MobileNetV2_300_Float");
        assert_eq!(catalog.default_remote().name, "YoloV3");
        assert!(!catalog.default_remote().on_device);
    }

    #[test]
    fn quantized_variants_are_smaller() {
        let catalog = CnnCatalog::table2();
        let float = catalog.model("MobileNetV2_300_Float").unwrap();
        let quant = catalog.model("MobileNetV2_300_Quant").unwrap();
        assert!(quant.size < float.size);
        assert!(quant.quantized && !float.quantized);
    }

    #[test]
    fn published_complexity_matches_eq12() {
        let model = CnnComplexityModel::published();
        let catalog = CnnCatalog::table2();
        let yolo = catalog.model("YoloV3").unwrap();
        let expected = 2.45 + 0.0025 * 106.0 + 0.03 * 210.0;
        assert!((model.complexity(yolo) - expected).abs() < 1e-9);
        assert!((model.r_squared() - 0.844).abs() < 1e-12);
    }

    #[test]
    fn bigger_models_are_more_complex() {
        let model = CnnComplexityModel::published();
        let catalog = CnnCatalog::table2();
        let mobilenet = catalog.model("MobileNetV1_240_Quant").unwrap();
        let nasnet = catalog.model("NasNet_Float").unwrap();
        let yolo = catalog.model("YoloV3").unwrap();
        assert!(model.complexity(yolo) > model.complexity(mobilenet));
        assert!(model.complexity(nasnet) > model.complexity(mobilenet));
        // Complexity is always usable as a divisor.
        for cnn in catalog.iter() {
            assert!(model.complexity(cnn) > 0.0);
        }
    }

    #[test]
    fn refit_recovers_known_coefficients() {
        // Generate synthetic complexities from the published law and refit.
        let published = CnnComplexityModel::published();
        let catalog = CnnCatalog::table2();
        let rows: Vec<(f64, f64, f64)> = catalog
            .iter()
            .map(|m| (f64::from(m.depth), m.size.as_f64(), m.depth_scale))
            .collect();
        let ys: Vec<f64> = catalog.iter().map(|m| published.complexity(m)).collect();
        let refit = CnnComplexityModel::fit(&rows, &ys).unwrap();
        for cnn in catalog.iter() {
            assert!((refit.complexity(cnn) - published.complexity(cnn)).abs() < 1e-6);
        }
        assert!(refit.r_squared() > 0.999);
        assert_eq!(refit.regression().coefficients().len(), 3);
    }

    #[test]
    fn complexity_raw_clamps_below() {
        let model = CnnComplexityModel::published();
        // Absurd negative covariates would drive the prediction negative;
        // the clamp keeps it usable as a divisor.
        assert!(model.complexity_raw(-10_000.0, -10_000.0, 0.0) >= 0.1);
    }
}
