//! The mobility figure: end-to-end latency and handoff rate over a device
//! speed × coverage radius grid.
//!
//! The paper's handoff term (Eq. 17) predicts that latency degrades with
//! device speed and recovers with coverage radius; this experiment measures
//! that surface on the ground-truth testbed, where handoffs are *events* of
//! a stateful random walk threaded through each session — not analytic
//! expectations. Every operating point is measured with several
//! independently seeded replications and reported as mean ± 95 % CI through
//! the shared campaign engine, so the artifact is bit-identical for any
//! worker count.

use crate::campaign::{run_campaign_with, CampaignRow};
use crate::context::ExperimentContext;
use xr_sweep::{CampaignRunner, MobilityCondition, SweepGrid};
use xr_types::{ExecutionTarget, Result};

/// Column header of the mobility-figure CSV.
pub const FIG_MOBILITY_HEADER: [&str; 9] = [
    "speed_mps",
    "radius_m",
    "replications",
    "gt_latency_ms_mean",
    "gt_latency_ms_ci95_lo",
    "gt_latency_ms_ci95_hi",
    "gt_handoff_rate",
    "proposed_latency_ms",
    "mobility",
];

/// Device speeds swept by the mobility figure (m/s): static, pedestrian,
/// cyclist, vehicle.
pub const MOBILITY_SPEEDS: [f64; 4] = [0.0, 1.4, 10.0, 25.0];
/// Coverage radii swept by the mobility figure (m): femtocell to small cell.
pub const MOBILITY_RADII: [f64; 3] = [10.0, 20.0, 40.0];
/// Replications per (speed, radius) operating point.
pub const MOBILITY_REPLICATIONS: usize = 5;

/// The speed × radius grid behind the mobility figure: remote inference on
/// the held-out client at the Fig. 4 midpoint (500 px², 2 GHz), the
/// cartesian product of [`MOBILITY_SPEEDS`] and [`MOBILITY_RADII`] as the
/// mobility axis, and [`MOBILITY_REPLICATIONS`] independently seeded
/// sessions per point.
#[must_use]
pub fn mobility_grid() -> SweepGrid {
    let mobility = MOBILITY_SPEEDS
        .iter()
        .flat_map(|&speed| {
            MOBILITY_RADII.iter().map(move |&radius| {
                if speed <= 0.0 {
                    MobilityCondition::new(format!("static-r{radius:.0}"), 0.0, radius)
                } else {
                    MobilityCondition::new(format!("v{speed:.0}-r{radius:.0}"), speed, radius)
                }
            })
        })
        .collect();
    SweepGrid::paper_panel(ExecutionTarget::Remote)
        .with_frame_sizes([500.0])
        .with_cpu_clocks([2.0])
        .with_mobility(mobility)
        .with_replications(MOBILITY_REPLICATIONS)
}

/// One row of the mobility figure.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityPoint {
    /// Device speed (m/s).
    pub speed_mps: f64,
    /// Coverage radius (m).
    pub coverage_radius_m: f64,
    /// The aggregated campaign measurement at this point.
    pub row: CampaignRow,
}

impl MobilityPoint {
    /// CSV/console cells for the output layer.
    #[must_use]
    pub fn cells(&self) -> Vec<String> {
        vec![
            format!("{:.1}", self.speed_mps),
            format!("{:.0}", self.coverage_radius_m),
            self.row.replications.to_string(),
            format!("{:.3}", self.row.gt_latency_ms.mean),
            format!("{:.3}", self.row.gt_latency_ms.ci95_lo),
            format!("{:.3}", self.row.gt_latency_ms.ci95_hi),
            format!("{:.4}", self.row.gt_handoff_rate),
            format!("{:.3}", self.row.proposed_latency_ms),
            self.row.point.mobility.label.clone(),
        ]
    }
}

/// Runs the mobility sweep and returns one point per (speed, radius) cell
/// in grid order (radius varies fastest).
///
/// # Errors
///
/// Propagates grid, scenario and model errors.
pub fn mobility_sweep(ctx: &ExperimentContext) -> Result<Vec<MobilityPoint>> {
    mobility_sweep_with(ctx, &ctx.runner())
}

/// [`mobility_sweep`] with an explicit runner (determinism tests pin the
/// worker count).
///
/// # Errors
///
/// Propagates grid, scenario and model errors.
pub fn mobility_sweep_with(
    ctx: &ExperimentContext,
    runner: &CampaignRunner,
) -> Result<Vec<MobilityPoint>> {
    let rows = run_campaign_with(ctx, &mobility_grid(), runner)?;
    Ok(rows
        .into_iter()
        .map(|row| MobilityPoint {
            speed_mps: row.point.mobility.speed_mps,
            coverage_radius_m: row.point.mobility.coverage_radius_m,
            row,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobility_sweep_covers_the_speed_radius_grid() {
        let ctx = ExperimentContext::quick(21).unwrap();
        let points = mobility_sweep(&ctx).unwrap();
        assert_eq!(points.len(), MOBILITY_SPEEDS.len() * MOBILITY_RADII.len());
        for point in &points {
            assert!(point.row.gt_latency_ms.mean > 0.0);
            assert_eq!(point.row.replications, MOBILITY_REPLICATIONS);
            assert_eq!(point.cells().len(), FIG_MOBILITY_HEADER.len());
        }
        // Static cells never hand off …
        for point in points.iter().filter(|p| p.speed_mps <= 0.0) {
            assert_eq!(point.row.gt_handoff_rate, 0.0);
        }
        // … while the fast-walker/small-zone corner must.
        let corner = points
            .iter()
            .find(|p| p.speed_mps == 25.0 && p.coverage_radius_m == 10.0)
            .expect("corner cell present");
        assert!(
            corner.row.gt_handoff_rate > 0.0,
            "vehicle in a 10 m cell never handed off"
        );
        // Handoffs carry a real latency penalty over the static baseline.
        let static_same_radius = points
            .iter()
            .find(|p| p.speed_mps <= 0.0 && p.coverage_radius_m == 10.0)
            .expect("static cell present");
        assert!(
            corner.row.gt_latency_ms.mean > static_same_radius.row.gt_latency_ms.mean,
            "mobile latency {} should exceed static latency {}",
            corner.row.gt_latency_ms.mean,
            static_same_radius.row.gt_latency_ms.mean
        );
    }
}
