//! Consolidated measurement campaigns over the full five-axis sweep grid.
//!
//! Where the `figures`/`comparison` modules regenerate individual paper
//! panels, a *campaign* sweeps every axis the engine knows about — frame
//! size, CPU clock, execution target, client device, wireless condition —
//! and emits one consolidated row per operating point. The `campaign`
//! binary drives [`quick_grid`] and is also the CI determinism probe: run
//! twice with different `XR_SWEEP_WORKERS`, the CSVs must be identical.

use crate::context::ExperimentContext;
use serde::{Deserialize, Serialize};
use xr_sweep::{CampaignRunner, OperatingPoint, SweepGrid, WirelessCondition};
use xr_types::{ExecutionTarget, Result};

/// Column header of the consolidated campaign CSV.
pub const CAMPAIGN_HEADER: [&str; 10] = [
    "point",
    "device",
    "wireless",
    "execution",
    "cpu_ghz",
    "frame_size",
    "gt_latency_ms",
    "proposed_latency_ms",
    "gt_energy_mj",
    "proposed_energy_mj",
];

/// One consolidated campaign measurement: the operating point plus ground
/// truth and proposed-model predictions for both metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignRow {
    /// The operating point this row measures.
    pub point: OperatingPoint,
    /// Ground-truth mean end-to-end latency (ms).
    pub gt_latency_ms: f64,
    /// Proposed-model latency prediction (ms).
    pub proposed_latency_ms: f64,
    /// Ground-truth mean per-frame energy (mJ).
    pub gt_energy_mj: f64,
    /// Proposed-model energy prediction (mJ).
    pub proposed_energy_mj: f64,
}

impl CampaignRow {
    /// The row formatted for the CSV/console output layer.
    #[must_use]
    pub fn cells(&self) -> Vec<String> {
        let execution = match self.point.execution {
            ExecutionTarget::Local => "local".to_string(),
            ExecutionTarget::Remote => "remote".to_string(),
            ExecutionTarget::Split { client_share } => format!("split{client_share:.2}"),
        };
        vec![
            self.point.index.to_string(),
            self.point.device.clone(),
            self.point.wireless.label.clone(),
            execution,
            format!("{:.1}", self.point.cpu_clock_ghz),
            format!("{:.0}", self.point.frame_size),
            format!("{:.3}", self.gt_latency_ms),
            format!("{:.3}", self.proposed_latency_ms),
            format!("{:.3}", self.gt_energy_mj),
            format!("{:.3}", self.proposed_energy_mj),
        ]
    }
}

/// The quick consolidated grid the `campaign` binary sweeps: a scenario
/// spread no single figure covers — two client devices, local and remote
/// execution, and a degraded cell-edge link next to the nominal one.
#[must_use]
pub fn quick_grid() -> SweepGrid {
    // Every axis of the starting panel is replaced below, so its execution
    // target carries no meaning here; `paper_panel` is just the only grid
    // constructor.
    SweepGrid::paper_panel(ExecutionTarget::Remote)
        .with_frame_sizes([300.0, 500.0, 700.0])
        .with_cpu_clocks([1.0, 3.0])
        .with_executions([ExecutionTarget::Local, ExecutionTarget::Remote])
        .with_devices(vec!["XR2".to_string(), "XR3".to_string()])
        .with_wireless(vec![
            WirelessCondition::baseline(),
            WirelessCondition::new("cell-edge", Some(60.0), Some(40.0)),
        ])
}

/// Runs a campaign over `grid`, streaming rows **in point order** into
/// `sink` as they complete (the engine's hold-back collector guarantees the
/// order regardless of worker count).
///
/// # Errors
///
/// Propagates grid, scenario and model errors.
pub fn run_campaign_streaming(
    ctx: &ExperimentContext,
    grid: &SweepGrid,
    sink: impl FnMut(usize, CampaignRow) + Send,
) -> Result<()> {
    run_campaign_streaming_with(ctx, grid, &ctx.runner(), sink)
}

/// [`run_campaign_streaming`] with an explicit runner — the entry point for
/// benchmarks and determinism tests that pin the worker count.
///
/// # Errors
///
/// Propagates grid, scenario and model errors.
pub fn run_campaign_streaming_with(
    ctx: &ExperimentContext,
    grid: &SweepGrid,
    runner: &CampaignRunner,
    sink: impl FnMut(usize, CampaignRow) + Send,
) -> Result<()> {
    let points = grid.points()?;
    runner.run_streaming(
        &points,
        |_, point: &OperatingPoint| {
            let scenario = ctx.scenario_for(point)?;
            let session = ctx
                .testbed()
                .simulate_session(&scenario, ctx.frames_per_point())?;
            let report = ctx.proposed().analyze(&scenario)?;
            Ok(CampaignRow {
                point: point.clone(),
                gt_latency_ms: session.mean_latency().as_f64() * 1e3,
                proposed_latency_ms: report.latency_ms().as_f64(),
                gt_energy_mj: session.mean_energy().as_f64() * 1e3,
                proposed_energy_mj: report.energy_mj().as_f64(),
            })
        },
        sink,
    )
}

/// Runs a campaign over `grid` and returns every row in point order.
///
/// # Errors
///
/// Propagates grid, scenario and model errors.
pub fn run_campaign(ctx: &ExperimentContext, grid: &SweepGrid) -> Result<Vec<CampaignRow>> {
    run_campaign_with(ctx, grid, &ctx.runner())
}

/// [`run_campaign`] with an explicit runner.
///
/// # Errors
///
/// Propagates grid, scenario and model errors.
pub fn run_campaign_with(
    ctx: &ExperimentContext,
    grid: &SweepGrid,
    runner: &CampaignRunner,
) -> Result<Vec<CampaignRow>> {
    let mut rows = Vec::new();
    run_campaign_streaming_with(ctx, grid, runner, |_, row| rows.push(row))?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_covers_every_axis_in_order() {
        let ctx = ExperimentContext::quick(17).unwrap();
        let grid = quick_grid();
        let rows = run_campaign(&ctx, &grid).unwrap();
        assert_eq!(rows.len(), grid.len());
        assert_eq!(rows.len(), 48); // 3 sizes × 2 clocks × 2 targets × 2 devices × 2 links
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.point.index, i);
            assert!(row.gt_latency_ms > 0.0);
            assert!(row.proposed_latency_ms > 0.0);
            assert!(row.gt_energy_mj > 0.0);
            assert_eq!(row.cells().len(), CAMPAIGN_HEADER.len());
        }
        let devices: std::collections::BTreeSet<&str> =
            rows.iter().map(|r| r.point.device.as_str()).collect();
        assert_eq!(devices.len(), 2);
        let links: std::collections::BTreeSet<&str> = rows
            .iter()
            .map(|r| r.point.wireless.label.as_str())
            .collect();
        assert_eq!(links.len(), 2);
    }

    #[test]
    fn degraded_link_slows_remote_frames_only() {
        let ctx = ExperimentContext::quick(18).unwrap();
        let grid = quick_grid();
        let rows = run_campaign(&ctx, &grid).unwrap();
        // Pair rows that differ only in the wireless condition.
        let find = |device: &str, wireless: &str, execution, clock: f64, size: f64| {
            rows.iter()
                .find(|r| {
                    r.point.device == device
                        && r.point.wireless.label == wireless
                        && r.point.execution == execution
                        && (r.point.cpu_clock_ghz - clock).abs() < 1e-9
                        && (r.point.frame_size - size).abs() < 1e-9
                })
                .expect("row exists")
        };
        let nominal = find("XR2", "baseline", ExecutionTarget::Remote, 3.0, 500.0);
        let degraded = find("XR2", "cell-edge", ExecutionTarget::Remote, 3.0, 500.0);
        assert!(
            degraded.gt_latency_ms > nominal.gt_latency_ms,
            "cell-edge {} vs baseline {}",
            degraded.gt_latency_ms,
            nominal.gt_latency_ms
        );
        // Local execution never touches the link, so the condition is inert.
        let local_a = find("XR2", "baseline", ExecutionTarget::Local, 3.0, 500.0);
        let local_b = find("XR2", "cell-edge", ExecutionTarget::Local, 3.0, 500.0);
        assert!((local_a.gt_latency_ms - local_b.gt_latency_ms).abs() < 1e-9);
    }
}
