//! Fig. 5(b): normalized energy accuracy of Proposed vs FACT vs LEAF.

use xr_experiments::comparison::{comparison_sweep, Metric};
use xr_experiments::{output, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::from_args();
    let sweep = comparison_sweep(&ctx, Metric::Energy).expect("comparison failed");
    output::print_experiment(
        "Fig. 5(b) — normalized accuracy of end-to-end energy, remote inference (%)",
        &["frame_size", "GT", "Proposed", "FACT", "LEAF"],
        &sweep.rows(),
        "fig5b.csv",
    );
    let (vs_fact, vs_leaf) = sweep.improvement_over_baselines();
    println!(
        "accuracy: proposed {:.2}%, FACT {:.2}%, LEAF {:.2}% — improvement {:.2} pp over FACT (paper: 15.30), {:.2} pp over LEAF (paper: 8.71)",
        sweep.proposed_accuracy(),
        sweep.fact_accuracy(),
        sweep.leaf_accuracy(),
        vs_fact,
        vs_leaf
    );
}
