//! Shared experiment context: the simulated testbed, the measurement
//! campaign, and the calibrated analytical framework.

use xr_core::{Scenario, XrPerformanceModel};
use xr_devices::DeviceCatalog;
use xr_sweep::{grid, CampaignRunner, MobilityCondition, OperatingPoint, WirelessCondition};
use xr_testbed::{CalibratedModels, MeasurementCampaign, TestbedSimulator};
use xr_types::{ExecutionTarget, GigaHertz, MegaBitsPerSecond, Meters, MetersPerSecond, Result};

/// Everything an experiment needs: the ground-truth simulator, the calibrated
/// proposed model, and the sweep bookkeeping.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    testbed: TestbedSimulator,
    calibrated: CalibratedModels,
    proposed: XrPerformanceModel,
    frames_per_point: u64,
    seed: u64,
    reorder_cap: Option<usize>,
}

/// Parses a `--reorder-cap` / `XR_REORDER_CAP` token. The hold-back window
/// must be able to hold at least the next in-order result, so `0` is
/// rejected rather than silently clamped.
///
/// # Errors
///
/// Returns a human-readable message for non-numeric tokens and for `0`.
pub fn parse_reorder_cap(token: &str) -> std::result::Result<usize, String> {
    let cap = token
        .parse::<usize>()
        .map_err(|_| format!("invalid reorder cap `{token}`"))?;
    if cap == 0 {
        return Err("reorder cap must be at least 1".to_string());
    }
    Ok(cap)
}

impl ExperimentContext {
    /// The frame sizes swept in Figs. 4–5 (the paper's x-axis; the canonical
    /// definition lives in `xr-sweep`, the campaign engine).
    pub const FRAME_SIZES: [f64; 5] = grid::PAPER_FRAME_SIZES;
    /// The CPU clocks swept in Fig. 4 (GHz).
    pub const CPU_CLOCKS: [f64; 3] = grid::PAPER_CPU_CLOCKS;

    /// A fast context suitable for tests and benches: a small measurement
    /// campaign and 20 ground-truth frames per operating point.
    ///
    /// # Errors
    ///
    /// Propagates regression-fitting errors.
    pub fn quick(seed: u64) -> Result<Self> {
        Self::with_campaign(seed, MeasurementCampaign::small(seed), 20)
    }

    /// The paper-scale context: 119 465 training records and 100 frames of
    /// ground truth per operating point.
    ///
    /// # Errors
    ///
    /// Propagates regression-fitting errors.
    pub fn paper_scale(seed: u64) -> Result<Self> {
        Self::with_campaign(seed, MeasurementCampaign::paper_scale(seed), 100)
    }

    /// Builds the context the experiment binaries use: quick by default,
    /// paper scale when the process was invoked with `--paper-scale`, and
    /// ground-truth sessions through the scalar reference engine instead of
    /// the batched default when invoked with `--scalar-sessions` (the CI
    /// equivalence diff runs every campaign both ways and requires
    /// byte-identical artifacts).
    ///
    /// `XR_CAMPAIGN_SEED` overrides the base session seed (default 2024).
    /// Re-running the same grid under a different seed produces the
    /// *same-scheme reseed* distribution that calibrates the null rate for
    /// sanctioned draw-scheme re-keys (see `xr_stats::equivalence`).
    ///
    /// # Panics
    ///
    /// Panics with a readable message if the regression calibration fails,
    /// which only happens when the measurement campaign is empty.
    #[must_use]
    pub fn from_args() -> Self {
        let paper_scale = std::env::args().any(|a| a == "--paper-scale");
        let seed = std::env::var("XR_CAMPAIGN_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(2024);
        let ctx = if paper_scale {
            Self::paper_scale(seed)
        } else {
            Self::quick(seed)
        };
        let mut ctx = ctx.expect("failed to calibrate the analytical framework");
        if std::env::args().any(|a| a == "--scalar-sessions") {
            ctx = ctx.with_scalar_sessions();
        }
        let args: Vec<String> = std::env::args().collect();
        let chunks = args
            .iter()
            .position(|a| a == "--session-chunks")
            .and_then(|position| args.get(position + 1))
            .cloned()
            .or_else(|| std::env::var("XR_SESSION_CHUNKS").ok())
            .map(|token| {
                token.parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("invalid session-chunk count `{token}`");
                    std::process::exit(2);
                })
            });
        if let Some(chunks) = chunks {
            ctx = ctx.with_session_chunks(chunks);
        }
        if std::env::args().any(|a| a == "--fused-points")
            || std::env::var("XR_FUSED_POINTS").is_ok_and(|v| v == "1")
        {
            ctx = ctx.with_fused_points();
        }
        let cap = args
            .iter()
            .position(|a| a == "--reorder-cap")
            .and_then(|position| args.get(position + 1))
            .cloned()
            .or_else(|| std::env::var("XR_REORDER_CAP").ok())
            .map(|token| {
                parse_reorder_cap(&token).unwrap_or_else(|message| {
                    eprintln!("{message}");
                    std::process::exit(2);
                })
            });
        if let Some(cap) = cap {
            ctx = ctx.with_reorder_cap(cap);
        }
        ctx
    }

    /// This context with campaign points evaluated by the replication-fused
    /// engine: all replications of one grid point run as a single wide SoA
    /// pass (`TestbedSimulator::simulate_point`), with the engine falling
    /// back to per-rep dispatch wherever fusion cannot apply. Fusion is
    /// bit-identical to the per-rep path by construction, so artifacts do
    /// not change — only the per-point constant costs do. `--fused-points`
    /// / `XR_FUSED_POINTS=1` wire this up for the experiment binaries.
    #[must_use]
    pub fn with_fused_points(mut self) -> Self {
        self.testbed = self
            .testbed
            .with_engine(xr_testbed::SimulationEngine::FusedPoint {
                width: xr_testbed::DEFAULT_BATCH_WIDTH,
            });
        self
    }

    /// This context with an explicit hold-back window for the campaign
    /// runner's in-order collector (`--reorder-cap` / `XR_REORDER_CAP`).
    /// The cap bounds how many out-of-order point results a campaign may
    /// buffer before the runner fails; artifacts are unchanged for any cap
    /// that does not trip.
    #[must_use]
    pub fn with_reorder_cap(mut self, cap: usize) -> Self {
        self.reorder_cap = Some(cap.max(1));
        self
    }

    /// This context with every ground-truth session split across `chunks`
    /// frame ranges simulated on parallel lanes (clamped to at least 1).
    /// Splitting is bit-identical to a whole-session run by the range
    /// engine's contract, so artifacts do not change — only wall-clock time
    /// per session does. `--session-chunks <n>` / `XR_SESSION_CHUNKS` wire
    /// this up for the experiment binaries.
    #[must_use]
    pub fn with_session_chunks(mut self, chunks: usize) -> Self {
        self.testbed = self.testbed.with_session_chunks(chunks);
        self
    }

    /// This context with ground-truth sessions simulated by the scalar
    /// frame-by-frame reference engine instead of the batched default. The
    /// two engines are bit-identical by contract; campaigns run both ways
    /// must produce byte-identical artifacts.
    #[must_use]
    pub fn with_scalar_sessions(mut self) -> Self {
        self.testbed = self
            .testbed
            .with_engine(xr_testbed::SimulationEngine::Scalar);
        self
    }

    /// Builds a context from an explicit measurement campaign.
    ///
    /// # Errors
    ///
    /// Propagates regression-fitting errors.
    pub fn with_campaign(
        seed: u64,
        campaign: MeasurementCampaign,
        frames_per_point: u64,
    ) -> Result<Self> {
        let testbed = TestbedSimulator::new(seed);
        let train = campaign.collect(testbed.laws(), &DeviceCatalog::training_devices());
        let calibrated = CalibratedModels::fit(&train)?;
        let proposed = calibrated.performance_model();
        Ok(Self {
            testbed,
            calibrated,
            proposed,
            frames_per_point: frames_per_point.max(1),
            seed,
            reorder_cap: None,
        })
    }

    /// The ground-truth simulator.
    #[must_use]
    pub fn testbed(&self) -> &TestbedSimulator {
        &self.testbed
    }

    /// The calibrated sub-models (for the regression report).
    #[must_use]
    pub fn calibrated(&self) -> &CalibratedModels {
        &self.calibrated
    }

    /// The calibrated proposed framework.
    #[must_use]
    pub fn proposed(&self) -> &XrPerformanceModel {
        &self.proposed
    }

    /// Number of ground-truth frames simulated per operating point.
    #[must_use]
    pub fn frames_per_point(&self) -> u64 {
        self.frames_per_point
    }

    /// The measurement-campaign size at one operating point: the point's
    /// own `frames_per_session` when its grid sweeps the campaign-size
    /// axis, this context's default otherwise.
    #[must_use]
    pub fn frames_for(&self, point: &OperatingPoint) -> u64 {
        point.frames_per_session.unwrap_or(self.frames_per_point)
    }

    /// The context's base seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Builds the evaluation scenario at one operating point of the Fig. 4/5
    /// sweep: the held-out XR2 client, a given frame size and CPU clock, and
    /// the given execution target.
    ///
    /// # Errors
    ///
    /// Propagates scenario-validation errors.
    pub fn scenario(
        &self,
        frame_size: f64,
        cpu_clock_ghz: f64,
        execution: ExecutionTarget,
    ) -> Result<Scenario> {
        self.scenario_for(&OperatingPoint {
            index: 0,
            frame_size,
            cpu_clock_ghz,
            execution,
            device: grid::PAPER_EVAL_DEVICE.to_string(),
            wireless: WirelessCondition::baseline(),
            mobility: MobilityCondition::static_device(),
            frames_per_session: None,
            users_per_edge: None,
            frame_rate_hz: None,
            topology: None,
            site_density: None,
            migration_policy: None,
        })
    }

    /// Builds the evaluation scenario for one operating point of a campaign
    /// grid: the point's client device, frame size, CPU clock and execution
    /// target, with the point's wireless condition applied to the scenario's
    /// own edge servers and the point's mobility condition applied to the
    /// device — a wireless condition overrides only the fields it names, so
    /// every non-baseline point stays pairwise comparable with its baseline
    /// twin. The baseline wireless condition applies no overrides at all;
    /// the static mobility condition equals the scenario defaults. A point
    /// on the `users_per_edge` axis turns multi-tenant edge contention on,
    /// and one on the `frame_rates` axis overrides the per-session frame
    /// rate (which is also the per-session arrival rate the shared edge
    /// queue sees). A point on any topology axis (`topology`,
    /// `site_density`, `migration_policy`) places the session on a
    /// multi-site edge map: unspecified companion axes default to a square
    /// tiling at 400 sites/km² with eager state migration.
    ///
    /// # Errors
    ///
    /// Propagates catalog-lookup and scenario-validation errors.
    pub fn scenario_for(&self, point: &OperatingPoint) -> Result<Scenario> {
        let mut builder = Scenario::builder()
            .client_from_catalog(&point.device)?
            .frame_side(point.frame_size)
            .cpu_clock(GigaHertz::new(point.cpu_clock_ghz))
            .execution(point.execution);
        if let Some(rate) = point.frame_rate_hz {
            builder = builder.frame_rate(xr_types::Hertz::new(rate));
        }
        if let Some(users) = point.users_per_edge {
            builder = builder.contention(users);
        }
        // Any topology axis turns the multi-site edge map on; unspecified
        // companions fall back to a square tiling at 400 sites/km² with
        // eager state migration, so a grid can sweep one axis alone.
        if point.topology.is_some()
            || point.site_density.is_some()
            || point.migration_policy.is_some()
        {
            builder = builder.topology(xr_core::TopologyConfig {
                layout: point.topology.unwrap_or(xr_types::TopologyLayout::Square),
                site_density: point.site_density.unwrap_or(400.0),
                migration_policy: point
                    .migration_policy
                    .unwrap_or(xr_types::MigrationPolicy::Eager),
            });
        }
        let mut scenario = builder.build()?;
        for server in &mut scenario.edge_servers {
            if let Some(distance) = point.wireless.distance_m {
                server.distance = Meters::new(distance);
            }
            if let Some(throughput) = point.wireless.throughput_mbps {
                server.throughput = Some(MegaBitsPerSecond::new(throughput));
            }
        }
        // Applied unconditionally so a static condition's coverage radius is
        // really in effect (artifact columns must state the measured
        // condition); `MobilityCondition::static_device()` equals the
        // scenario defaults, so baseline grids are unchanged.
        scenario.mobility.speed = MetersPerSecond::new(point.mobility.speed_mps);
        scenario.mobility.coverage_radius = Meters::new(point.mobility.coverage_radius_m);
        scenario.validate()?;
        Ok(scenario)
    }

    /// The ground-truth simulator reseeded for one replication of a campaign
    /// operating point: identical laws, monitor and noise configuration,
    /// only the RNG streams differ. Campaign evaluations pass
    /// `RepContext::seed` here so each replication is an independent
    /// measurement of the same operating point.
    #[must_use]
    pub fn testbed_for_seed(&self, seed: u64) -> TestbedSimulator {
        self.testbed.reseeded(seed)
    }

    /// The campaign runner every experiment drives: worker count from
    /// `XR_SWEEP_WORKERS` (default: available parallelism). Results are
    /// bit-identical for any worker count: the current experiment closures
    /// are deterministic per point because [`TestbedSimulator`] seeds every
    /// frame from its own seed, independent of evaluation order. The
    /// runner's per-point seeds (derived from this context's seed, exposed
    /// via `PointContext::seed`) are there for *stochastic* evaluations —
    /// consume them instead of any shared RNG to keep that property.
    #[must_use]
    pub fn runner(&self) -> CampaignRunner {
        let runner = CampaignRunner::from_env().with_campaign_seed(self.seed);
        match self.reorder_cap {
            Some(cap) => runner.with_reorder_cap(cap),
            None => runner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_builds_and_analyses() {
        let ctx = ExperimentContext::quick(7).unwrap();
        let scenario = ctx.scenario(500.0, 2.0, ExecutionTarget::Remote).unwrap();
        let report = ctx.proposed().analyze(&scenario).unwrap();
        assert!(report.latency.total().as_f64() > 0.0);
        let gt = ctx
            .testbed()
            .simulate_session(&scenario, ctx.frames_per_point())
            .unwrap();
        assert!(gt.mean_latency().as_f64() > 0.0);
        assert_eq!(ctx.seed(), 7);
        assert_eq!(ctx.frames_per_point(), 20);
        assert!(ctx.calibrated().training_r_squared().resource_r_squared > 0.5);
    }

    #[test]
    fn sweep_constants_match_the_paper() {
        assert_eq!(ExperimentContext::FRAME_SIZES.len(), 5);
        assert_eq!(ExperimentContext::CPU_CLOCKS, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn contended_points_carry_population_and_frame_rate_into_the_scenario() {
        let ctx = ExperimentContext::quick(7).unwrap();
        let mut point = OperatingPoint {
            index: 0,
            frame_size: 300.0,
            cpu_clock_ghz: 2.0,
            execution: ExecutionTarget::Remote,
            device: grid::PAPER_EVAL_DEVICE.to_string(),
            wireless: WirelessCondition::baseline(),
            mobility: MobilityCondition::static_device(),
            frames_per_session: None,
            users_per_edge: Some(4),
            frame_rate_hz: Some(5.0),
            topology: None,
            site_density: None,
            migration_policy: None,
        };
        let scenario = ctx.scenario_for(&point).unwrap();
        assert_eq!(
            scenario.contention,
            Some(xr_core::ContentionConfig { users_per_edge: 4 })
        );
        assert!((scenario.frame.frame_rate.as_f64() - 5.0).abs() < 1e-12);
        assert!(scenario.topology.is_none());
        // The default point keeps contention off and the 30 fps default.
        point.users_per_edge = None;
        point.frame_rate_hz = None;
        let scenario = ctx.scenario_for(&point).unwrap();
        assert!(scenario.contention.is_none());
        assert!((scenario.frame.frame_rate.as_f64() - 30.0).abs() < 1e-12);
        // Any topology axis turns the edge map on; absent companions fall
        // back to square/400/eager.
        point.site_density = Some(900.0);
        let scenario = ctx.scenario_for(&point).unwrap();
        assert_eq!(
            scenario.topology,
            Some(xr_core::TopologyConfig {
                layout: xr_types::TopologyLayout::Square,
                site_density: 900.0,
                migration_policy: xr_types::MigrationPolicy::Eager,
            })
        );
        point.topology = Some(xr_types::TopologyLayout::Hex);
        point.migration_policy = Some(xr_types::MigrationPolicy::Lazy);
        let scenario = ctx.scenario_for(&point).unwrap();
        let config = scenario.topology.unwrap();
        assert_eq!(config.layout, xr_types::TopologyLayout::Hex);
        assert_eq!(config.migration_policy, xr_types::MigrationPolicy::Lazy);
    }

    #[test]
    fn reorder_cap_tokens_parse_or_explain() {
        assert_eq!(parse_reorder_cap("8"), Ok(8));
        assert_eq!(
            parse_reorder_cap("0"),
            Err("reorder cap must be at least 1".to_string())
        );
        assert_eq!(
            parse_reorder_cap("many"),
            Err("invalid reorder cap `many`".to_string())
        );
    }

    #[test]
    fn reorder_cap_reaches_the_runner() {
        let ctx = ExperimentContext::quick(7).unwrap();
        assert_eq!(
            ctx.runner().reorder_cap(),
            xr_sweep::DEFAULT_REORDER_CAP,
            "unset cap keeps the runner default"
        );
        assert_eq!(ctx.with_reorder_cap(3).runner().reorder_cap(), 3);
    }

    #[test]
    fn fused_points_switch_the_engine() {
        let ctx = ExperimentContext::quick(7).unwrap().with_fused_points();
        assert!(matches!(
            ctx.testbed().engine(),
            xr_testbed::SimulationEngine::FusedPoint { .. }
        ));
    }

    #[test]
    fn static_mobility_condition_equals_the_scenario_default() {
        // `scenario_for` applies the point's mobility condition
        // unconditionally, which is only override-free for baseline grids
        // because `MobilityCondition::static_device()` mirrors
        // `MobilityConfig::default()`. xr-sweep cannot depend on xr-core,
        // so this cross-crate guard keeps the two literals tied together.
        let condition = MobilityCondition::static_device();
        let default = xr_core::MobilityConfig::default();
        assert_eq!(condition.speed_mps, default.speed.as_f64());
        assert_eq!(
            condition.coverage_radius_m,
            default.coverage_radius.as_f64()
        );
    }
}
