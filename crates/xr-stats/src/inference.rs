//! Small-sample inference: the Student-t distribution and confidence
//! intervals for a sample mean.
//!
//! Replicated measurement campaigns evaluate each operating point with a
//! handful of independently seeded sessions (typically 3–10), where the
//! normal-approximation critical values used for the ≥10⁴-row regression
//! fits are badly anti-conservative (z₀.₉₇₅ ≈ 1.96 vs t₀.₉₇₅,₂ ≈ 4.30).
//! This module implements the exact t quantile from first principles — the
//! regularized incomplete beta function by continued fraction, inverted by
//! bisection — since no numerics crates are available offline.

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9;
/// |relative error| < 1e-13 over the positive reals).
fn ln_gamma(x: f64) -> f64 {
    const COEFFICIENTS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the approximation in its accurate range.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFICIENTS[0];
    for (i, c) in COEFFICIENTS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Continued-fraction evaluation of the regularized incomplete beta
/// function `I_x(a, b)` (Lentz's method), valid for `x < (a+1)/(a+b+2)`.
fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITERATIONS: usize = 200;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITERATIONS {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// # Panics
///
/// Panics if `a` or `b` is not positive or `x` is outside `[0, 1]`.
#[must_use]
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x outside [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let front =
        (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        // Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a), keeping the continued
        // fraction in its convergent region.
        1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b
    }
}

/// Cumulative distribution function of the Student-t distribution with
/// `dof` degrees of freedom.
///
/// # Panics
///
/// Panics if `dof` is not positive or `t` is not finite.
#[must_use]
pub fn students_t_cdf(t: f64, dof: f64) -> f64 {
    assert!(dof > 0.0, "degrees of freedom must be positive");
    assert!(t.is_finite(), "t must be finite");
    let x = dof / (dof + t * t);
    let tail = 0.5 * regularized_incomplete_beta(dof / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Quantile (inverse CDF) of the Student-t distribution with `dof` degrees
/// of freedom, by bisection on [`students_t_cdf`] (the CDF is strictly
/// monotone, so ~90 halvings pin the root far below f64 noise).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)` or `dof` is not positive.
#[must_use]
pub fn students_t_quantile(p: f64, dof: f64) -> f64 {
    assert!(dof > 0.0, "degrees of freedom must be positive");
    assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1)");
    if (p - 0.5).abs() < f64::EPSILON {
        return 0.0;
    }
    // Symmetry reduces to the upper half.
    if p < 0.5 {
        return -students_t_quantile(1.0 - p, dof);
    }
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    while students_t_cdf(hi, dof) < p {
        hi *= 2.0;
        assert!(hi.is_finite(), "t quantile search diverged");
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if students_t_cdf(mid, dof) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= f64::EPSILON * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Two-sided Student-t confidence interval for the mean of `values` at the
/// given confidence `level` (e.g. `0.95`). Returns `(lo, hi)`; with fewer
/// than two samples there is no dispersion information and the degenerate
/// `(mean, mean)` interval is returned.
///
/// # Panics
///
/// Panics if `values` is empty, contains NaN, or `level` is outside `(0, 1)`.
#[must_use]
pub fn mean_confidence_interval(values: &[f64], level: f64) -> (f64, f64) {
    assert!(!values.is_empty(), "cannot infer from an empty sample");
    assert!(
        values.iter().all(|v| !v.is_nan()),
        "sample contains NaN values"
    );
    assert!(level > 0.0 && level < 1.0, "level must be in (0, 1)");
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return (mean, mean);
    }
    let sample_variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
    let standard_error = (sample_variance / n as f64).sqrt();
    let t = students_t_quantile(0.5 + level / 2.0, (n - 1) as f64);
    (mean - t * standard_error, mean + t * standard_error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_and_beta_match_known_values() {
        // Γ(5) = 24, Γ(0.5) = √π.
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
        // I_x(1, 1) = x (uniform CDF).
        for x in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!((regularized_incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
        // Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
        let v = regularized_incomplete_beta(2.5, 4.0, 0.3);
        let w = regularized_incomplete_beta(4.0, 2.5, 0.7);
        assert!((v + w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn t_cdf_matches_textbook_symmetry_and_tails() {
        assert!((students_t_cdf(0.0, 5.0) - 0.5).abs() < 1e-12);
        for t in [0.5, 1.3, 2.7] {
            let upper = students_t_cdf(t, 7.0);
            let lower = students_t_cdf(-t, 7.0);
            assert!((upper + lower - 1.0).abs() < 1e-12);
        }
        // dof = 1 is the Cauchy distribution: F(1) = 3/4.
        assert!((students_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-10);
    }

    #[test]
    fn t_quantiles_match_statistical_tables() {
        // Two-sided 95 % critical values.
        let cases = [
            (1.0, 12.706),
            (2.0, 4.303),
            (4.0, 2.776),
            (9.0, 2.262),
            (30.0, 2.042),
            (1000.0, 1.962),
        ];
        for (dof, expected) in cases {
            let t = students_t_quantile(0.975, dof);
            assert!(
                (t - expected).abs() < 2e-3,
                "t(0.975, {dof}) = {t}, expected {expected}"
            );
        }
        // 99 % one-sided, dof 5 → 3.365.
        assert!((students_t_quantile(0.995, 5.0) - 4.032).abs() < 2e-3);
        assert_eq!(students_t_quantile(0.5, 3.0), 0.0);
        assert!((students_t_quantile(0.025, 4.0) + 2.776).abs() < 2e-3);
    }

    #[test]
    fn confidence_interval_brackets_the_mean() {
        let sample = [9.8, 10.1, 10.3, 9.9, 10.4];
        let (lo, hi) = mean_confidence_interval(&sample, 0.95);
        let mean = sample.iter().sum::<f64>() / sample.len() as f64;
        assert!(lo < mean && mean < hi);
        // Manually: s = 0.2550, se = 0.1140, t = 2.776 → half-width 0.3165.
        assert!(((hi - lo) / 2.0 - 0.3165).abs() < 1e-3);
        // Wider level → wider interval.
        let (lo99, hi99) = mean_confidence_interval(&sample, 0.99);
        assert!(lo99 < lo && hi99 > hi);
        // Degenerate single-sample interval.
        assert_eq!(mean_confidence_interval(&[3.5], 0.95), (3.5, 3.5));
    }

    #[test]
    fn seed_sweep_coverage_is_close_to_nominal() {
        // Seed-sweep property: draw replicated samples from a known
        // distribution and check the 95 % CI covers the true mean in ≳90 %
        // of seeds (the satellite-task acceptance bound; the binomial noise
        // floor over 300 seeds keeps 95 % well inside it).
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use rand_distr::{Distribution, Normal};
        let normal = Normal::new(50.0, 8.0).expect("valid sigma");
        let mut covered = 0usize;
        let seeds = 300;
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let sample: Vec<f64> = (0..6).map(|_| normal.sample(&mut rng)).collect();
            let (lo, hi) = mean_confidence_interval(&sample, 0.95);
            if (lo..=hi).contains(&50.0) {
                covered += 1;
            }
        }
        let coverage = covered as f64 / seeds as f64;
        assert!(
            coverage >= 0.90,
            "95 % CI covered the true mean in only {coverage:.3} of seeds"
        );
        assert!(
            coverage <= 0.99,
            "coverage {coverage:.3} suspiciously high — interval too wide"
        );
    }
}
