//! Regenerates Table II (CNN models).

use xr_experiments::output;
use xr_experiments::tables;

fn main() {
    output::print_experiment(
        "Table II — CNNs used in this research",
        &tables::table2_header(),
        &tables::table2_rows(),
        "table2.csv",
    );
}
