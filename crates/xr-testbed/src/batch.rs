//! The batched structure-of-arrays frame engine.
//!
//! [`TestbedSimulator::simulate_session`] runs through this engine by
//! default: frames are simulated in batches of [`SimulationEngine`] width,
//! and each of the ten pipeline stages runs as a tight loop over one
//! *column* of the batch (all frames' frame-generation noise, then all
//! frames' sensor jitter, …) instead of walking one frame through all ten
//! stages at a time.
//!
//! Two properties make this reordering legal without changing a single
//! random draw:
//!
//! 1. **Per-stage RNG streams.** Every draw of stage `s` at frame `f` comes
//!    from the stream `stage_stream_seed(session_seed, s, f)`
//!    ([`xr_types::seed`]), so a stage never observes how many draws another
//!    stage consumed and columns can be evaluated in any order.
//! 2. **Explicit carry for the sequential stages.** The only cross-frame
//!    state — the mobility walker of the handoff stage — is advanced as one
//!    in-order scan per batch ([`xr_wireless::RandomWalker::advance_many`],
//!    or [`xr_wireless::TopologyWalker::advance_many_into`] when the
//!    scenario places a multi-site [`xr_wireless::EdgeTopology`]), with its
//!    fractional-step carry preserved across batch boundaries. On a
//!    topologized scenario a per-batch walk pre-pass records each frame's
//!    attachment site and [`SiteEvents`]; the handoff column then prices
//!    zone crossings and edge-to-edge state migrations from those records,
//!    and the contended edge column looks up the *site's* M/M/1 plan per
//!    frame.
//!
//! ## The lane-oriented draw layer
//!
//! The stages do not draw from per-frame RNG objects. Each stochastic stage
//! seeds one [`xr_types::lanes::LaneStreams`] bank per batch — lane `j`
//! replays frame `first_index + j`'s own stage stream — and pre-fills its
//! draw columns *by draw index*: one `fill_next` per raw word, then one
//! `rand_distr::column` transform per sampled column (Box–Muller normals,
//! uniform jitter, exponential sojourns), then a multiply-accumulate pass
//! against the hoisted per-session `BatchConsts` base latencies. Seeding and raw word
//! generation become contiguous SplitMix64/xoshiro passes LLVM can
//! autovectorize, the uniform transform takes a runtime-detected AVX2 path,
//! and the per-frame loops reduce to straight-line float arithmetic. Because
//! every frame's words come only from its own lane, the draw scheme is
//! **lane-count invariant by construction** — the same invariant per-stage
//! streams pinned for batching, pushed down to the raw `u64` level.
//!
//! All column storage (`FrameBatch`, `DrawColumns`, the walker's
//! crossing counts) is allocated once per session and reused across
//! batches, and the emitted [`GroundTruthFrame`]s hold their per-segment
//! measurements in fixed slot arrays — the steady-state frame loop
//! performs **no** per-frame heap allocation at all.
//!
//! Bit-identity with the scalar reference
//! ([`TestbedSimulator::simulate_session_scalar`]) is pinned by unit tests
//! here, a cross-crate property test over random scenarios and batch
//! widths, a draw-layer property test (`tests/draw_columns.rs`) pinning
//! wide-lane fills against per-frame `stage_rng` draws, and a CI step that
//! runs a whole campaign through both engines and diffs the CSVs.

use crate::laws::DeviceBias;
use crate::simulator::{
    stream, ContentionPlan, GroundTruthFrame, GroundTruthSession, SessionState, TestbedSimulator,
};
use rand_distr::{column, Distribution, Exp, Normal, StandardNormalPairs};
use xr_core::Scenario;
use xr_types::lanes::LaneStreams;
use xr_types::{Joules, Result, Seconds, Segment, Watts, SPEED_OF_LIGHT};
use xr_wireless::{HandoffKind, SiteEvents, WirelessLink};

/// Default number of frames simulated per batch. Sessions shorter than the
/// width still run batched (one partial batch); longer sessions amortise
/// the per-batch column setup over this many frames. 256 keeps the whole
/// working set (batch columns plus draw columns, ~50 KiB) inside L2 while
/// amortising per-batch reseeds further than the original width of 64;
/// results are bit-identical at every width, so this is purely a
/// throughput default.
pub const DEFAULT_BATCH_WIDTH: usize = 256;

/// Which implementation [`TestbedSimulator::simulate_session`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimulationEngine {
    /// The frame-by-frame reference pipeline
    /// ([`TestbedSimulator::simulate_session_scalar`]).
    Scalar,
    /// The structure-of-arrays engine: stages run as column loops over
    /// `width` frames at a time (clamped to at least 1). Bit-identical to
    /// [`SimulationEngine::Scalar`] for every width.
    Batched {
        /// Frames per batch.
        width: usize,
    },
    /// The replication-fused point engine: for a single session this
    /// behaves exactly like [`SimulationEngine::Batched`], but
    /// [`TestbedSimulator::simulate_point`] additionally evaluates all R
    /// replications of one grid point in a single widened SoA pass (lane
    /// budget `width` split across the replications). Bit-identical to
    /// per-rep dispatch by construction.
    FusedPoint {
        /// Total lane budget per batch, shared by the fused replications.
        width: usize,
    },
}

impl Default for SimulationEngine {
    fn default() -> Self {
        SimulationEngine::Batched {
            width: DEFAULT_BATCH_WIDTH,
        }
    }
}

/// Everything about one `(simulator, scenario)` pair that is constant
/// across frames, hoisted out of the per-frame loops: the deterministic
/// base latency of every stage (the scalar pipeline recomputes these per
/// frame), the per-segment power levels and Eq. 1 inclusion flags of the
/// finalizer, and the handoff-stage mobility parameters.
struct BatchConsts {
    noise: Option<Normal>,
    // Stage 1 — generate.
    generation_base: Seconds,
    volumetric_base: Seconds,
    // Stage 2 — sense: per sensor, (generation period, propagation delay).
    sensors: Vec<(Seconds, Seconds)>,
    updates_per_frame: u32,
    // Stage 3 — buffer: one sojourn distribution per stable flow.
    flows: Vec<Exp>,
    // Stage 4 — encode (`None` when the path is gated off: no base latency
    // *and no noise draw*, matching the scalar gating).
    conversion_base: Option<Seconds>,
    encoding_base: Option<Seconds>,
    // Stage 5 — local inference (includes the client share factor).
    local_base: Option<Seconds>,
    // Stage 6 — uplink + edge: per server, (weighted inference base,
    // transmission base).
    edges: Vec<(Seconds, Seconds)>,
    // Stage 6, contended mode — the shared sampling plan of the multi-tenant
    // M/M/1 queues (`None` keeps the private-edge path).
    contention: Option<ContentionPlan>,
    // Stage 7 — handoff.
    mobile: bool,
    window: Seconds,
    handoff_base: Seconds,
    // Stage 7, topology mode — the multi-edge map's hoisted per-session
    // state (`None` keeps the single-zone path byte-identical).
    topology: Option<BatchTopology>,
    // Stage 8 — render.
    render_base: Seconds,
    result_delivery: Seconds,
    // Stage 9 — cooperate.
    cooperation_base: Seconds,
    // Stage 10 — finalize: per segment (in `Segment::ALL` order, the
    // iteration order of the scalar finalizer's BTreeMap), the power level,
    // the Eq. 1 inclusion flag, and whether it counts as compute for the
    // thermal share.
    segment_power: [Watts; Segment::ALL.len()],
    segment_included: [bool; Segment::ALL.len()],
    segment_is_compute: [bool; Segment::ALL.len()],
    /// `mix(session_seed, stage_id)` per stage — the first half of
    /// [`stage_stream_seed`], hoisted so the per-frame stream derivation is
    /// a single `mix` against the frame index. Each entry is a pure function
    /// of `(session_seed, stage_id)`, so growing the inner array for a new
    /// stream id cannot re-key any existing stage. One outer entry per
    /// fused replication (a plain session has exactly one); everything
    /// *else* in this struct is seed-independent, which is what lets the
    /// fused point engine hoist one `BatchConsts` across all replications.
    stage_bases: Vec<[u64; 13]>,
}

/// The hoisted topology-mode constants of one batched session: the per-site
/// contended sampling plans (when contention is configured) and the
/// deterministic state-migration base latency of the scenario's re-offload
/// policy.
struct BatchTopology {
    /// `plans[site]` — the contended edge stage's sampling plan while the
    /// session is attached to `site`; `None` for an uncontended topology.
    site_plans: Option<Vec<ContentionPlan>>,
    migration_base: Seconds,
}

impl BatchConsts {
    fn new(simulator: &TestbedSimulator, scenario: &Scenario) -> Result<Self> {
        Self::for_seeds(simulator, scenario, std::slice::from_ref(&simulator.seed))
    }

    /// Hoists the constants once for a whole *point*: `session_seeds[r]` is
    /// the session seed of fused replication `r`. Everything outside
    /// `stage_bases` is a pure function of `(simulator, scenario)`, so the
    /// per-rep hoists this replaces were redundant work — including the
    /// contention-plan construction, whose errors (e.g. `UnstableQueue`)
    /// are therefore identical between fused and per-rep dispatch.
    fn for_seeds(
        simulator: &TestbedSimulator,
        scenario: &Scenario,
        session_seeds: &[u64],
    ) -> Result<Self> {
        let client = &scenario.client;
        let bias = DeviceBias::for_device(&client.name);
        let c_true = simulator.laws.compute_resource(
            client.cpu_clock,
            client.gpu_clock,
            client.cpu_share,
            bias,
        );
        let memory = client.memory_bandwidth;
        let uses_local = scenario.execution.uses_client();
        let uses_edge = scenario.execution.uses_edge();
        let client_share = scenario.execution.client_share();
        let edge_share = scenario.execution.edge_share();
        let frame = &scenario.frame;
        let ms = TestbedSimulator::ms;

        let mu = scenario.buffer.service_rate;
        let frame_rate = frame.frame_rate.as_f64();
        let flows = [
            scenario.buffer.frame_arrival_rate.unwrap_or(frame_rate),
            scenario
                .buffer
                .volumetric_arrival_rate
                .unwrap_or(frame_rate),
            scenario.external_arrival_rate(),
        ]
        .into_iter()
        .filter(|&lambda| lambda > 0.0 && lambda < mu)
        .map(|lambda| Exp::new(mu - lambda).expect("positive rate"))
        .collect();

        let encode_work = simulator
            .laws
            .encoding_work(&scenario.encoding, frame, bias);
        let local_complexity = simulator.laws.cnn_complexity(&scenario.local_cnn);
        let remote_complexity = simulator.laws.cnn_complexity(&scenario.remote_cnn);

        let mut edges = Vec::new();
        if uses_edge && !scenario.edge_servers.is_empty() {
            let total_share: f64 = scenario.edge_servers.iter().map(|srv| srv.task_share).sum();
            for (i, server) in scenario.edge_servers.iter().enumerate() {
                let c_edge = simulator.edge_resource(scenario, i, c_true);
                let weight = if total_share > 0.0 {
                    server.task_share / total_share * edge_share
                } else {
                    0.0
                };
                let decode = ms(encode_work * simulator.laws.decode_discount(), c_edge);
                let infer = ms(frame.encoded_size.as_f64() * remote_complexity, c_edge)
                    + frame.encoded_data / server.memory_bandwidth
                    + decode;
                let link = WirelessLink::new(server.technology, server.distance);
                let link = match server.throughput {
                    Some(t) => link.with_throughput(t),
                    None => link,
                };
                edges.push((
                    infer * weight,
                    link.transmission_latency(frame.encoded_data),
                ));
            }
        }

        let mobile = uses_edge && scenario.mobility.speed.as_f64() > 0.0;
        let window = scenario.frame_window();
        let handoff_base = match scenario.mobility.handoff_kind {
            HandoffKind::Horizontal => Seconds::new(0.065),
            HandoffKind::Vertical => Seconds::new(1.2),
        };

        let result_payload = xr_types::MegaBytes::new(0.01);
        let result_delivery = if uses_edge && !scenario.edge_servers.is_empty() {
            let server = &scenario.edge_servers[0];
            let link = WirelessLink::new(server.technology, server.distance);
            let link = match server.throughput {
                Some(t) => link.with_throughput(t),
                None => link,
            };
            link.transmission_latency(result_payload)
        } else {
            result_payload / memory
        };

        // All three per-segment tables precompute the *shared* finalizer
        // classification helpers, so the engines cannot drift apart.
        let compute_power =
            simulator
                .laws
                .mean_power(client.cpu_clock, client.gpu_clock, client.cpu_share, bias);
        let mut segment_power = [Watts::ZERO; Segment::ALL.len()];
        let mut segment_included = [false; Segment::ALL.len()];
        let mut segment_is_compute = [false; Segment::ALL.len()];
        for (slot, &segment) in Segment::ALL.iter().enumerate() {
            segment_is_compute[slot] = TestbedSimulator::segment_is_compute(segment);
            segment_power[slot] = simulator.segment_power(segment, compute_power);
            segment_included[slot] =
                TestbedSimulator::segment_included(scenario, segment, uses_local, uses_edge);
        }

        let topology = match scenario.topology {
            Some(config) => Some(BatchTopology {
                site_plans: simulator.site_contention_plans(scenario)?,
                migration_base: TestbedSimulator::migration_base(config.migration_policy),
            }),
            None => None,
        };
        // With a topology the contended plan is per *site* (held in
        // `topology`); the aggregate plan would shadow it.
        let contention = if scenario.topology.is_none() {
            simulator.contention_plan(scenario)?
        } else {
            None
        };

        Ok(Self {
            noise: (simulator.noise_sigma > 0.0)
                .then(|| Normal::new(0.0, simulator.noise_sigma).expect("valid sigma")),
            generation_base: frame.frame_rate.period()
                + ms(frame.raw_size.as_f64(), c_true)
                + frame.raw_data / memory,
            volumetric_base: ms(frame.scene_size.as_f64(), c_true) + frame.volumetric_data / memory,
            sensors: scenario
                .sensors
                .iter()
                .map(|s| (s.generation_frequency.period(), s.distance / SPEED_OF_LIGHT))
                .collect(),
            updates_per_frame: scenario.updates_per_frame,
            flows,
            conversion_base: uses_local
                .then(|| ms(frame.raw_size.as_f64(), c_true) + frame.raw_data / memory),
            encoding_base: uses_edge.then(|| ms(encode_work, c_true) + frame.raw_data / memory),
            local_base: (uses_local && client_share > 0.0).then(|| {
                (ms(frame.converted_size.as_f64() * local_complexity, c_true)
                    + frame.converted_data / memory)
                    * client_share
            }),
            edges,
            contention,
            mobile,
            window,
            handoff_base,
            topology,
            render_base: ms(frame.raw_size.as_f64(), c_true) + frame.raw_data / memory,
            result_delivery,
            cooperation_base: scenario.cooperation.payload / scenario.cooperation.throughput
                + scenario.cooperation.distance / SPEED_OF_LIGHT,
            segment_power,
            segment_included,
            segment_is_compute,
            stage_bases: session_seeds
                .iter()
                .map(|&seed| std::array::from_fn(|stage| xr_types::seed::mix(seed, stage as u64)))
                .collect(),
        })
    }

    /// `mix(session_seed, stage)` of fused replication `rep`.
    fn base(&self, rep: usize, stage: u64) -> u64 {
        self.stage_bases[rep][stage as usize]
    }

    /// One multiplicative noise factor, drawing through the stream's
    /// [`StandardNormalPairs`] cache exactly like the scalar pipeline's
    /// `TestbedSimulator::noise` (no draw when noiseless). Only the sparse
    /// handoff path still draws frame-at-a-time; the dense stages consume
    /// pre-filled [`DrawColumns`] instead.
    fn noise(&self, rng: &mut rand::rngs::StdRng, pairs: &mut StandardNormalPairs) -> f64 {
        match &self.noise {
            Some(normal) => rand_distr::math::exp(normal.from_standard(pairs.next(rng))),
            None => 1.0,
        }
    }

    /// The stage's RNG stream for one frame of replication `rep` —
    /// bit-identical to [`TestbedSimulator::stage_rng`] on that
    /// replication's session seed, with the stage half of the seed
    /// derivation precomputed.
    fn rng(&self, rep: usize, stage: u64, frame_index: u64) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(xr_types::seed::mix(self.base(rep, stage), frame_index))
    }
}

/// The lane-oriented draw layer of one session: a wide xoshiro bank (one
/// lane per frame of the current batch) plus the raw-word and transformed
/// draw columns the stages pre-fill and consume by index. Allocated once
/// per session; `reseed` only rewrites lane state and column lengths.
struct DrawColumns {
    lanes: LaneStreams,
    /// Raw word columns (draw #d of every frame): the first and second
    /// Box–Muller words, or a single uniform word.
    raw_a: Vec<u64>,
    raw_b: Vec<u64>,
    /// Transformed draw columns. `fac_a` holds single-word transforms
    /// (uniform jitter, exponential sojourns) and the first noise factor;
    /// `fac_b` holds a second concurrent noise factor where a stage needs
    /// two live columns at once (the edge loop).
    fac_a: Vec<f64>,
    fac_b: Vec<f64>,
    /// Per-frame accumulator for the sensor stage's update loop.
    acc: Vec<Seconds>,
    /// Reused crossing counts of the handoff stage's walker scan.
    crossings: Vec<usize>,
    /// Scratch for the fused path's per-replication stage seed bases (one
    /// entry per fused replication, rebuilt on each reseed).
    bases: Vec<u64>,
}

impl DrawColumns {
    fn new() -> Self {
        Self {
            lanes: LaneStreams::new(),
            raw_a: Vec::new(),
            raw_b: Vec::new(),
            fac_a: Vec::new(),
            fac_b: Vec::new(),
            acc: Vec::new(),
            crossings: Vec::new(),
            bases: Vec::new(),
        }
    }

    /// Points the lane bank at `stage`'s streams for the frames of `b` and
    /// sizes the draw columns to the batch. The columns are pure scratch —
    /// every `fill_*` overwrites them end to end before anything reads
    /// them — so their contents are only touched when the batch shape
    /// changes (once per session plus the tail batch). A fused batch seeds
    /// one contiguous lane segment per replication, each replaying its own
    /// session's stage streams.
    fn reseed(&mut self, k: &BatchConsts, stage: u64, b: &FrameBatch) {
        if k.stage_bases.len() == 1 {
            self.lanes.reseed(k.base(0, stage), b.first_index, b.n);
        } else {
            self.bases.clear();
            self.bases
                .extend(k.stage_bases.iter().map(|bases| bases[stage as usize]));
            self.lanes
                .reseed_segments(&self.bases, b.first_index, b.per_rep);
        }
        if self.raw_a.len() != b.n {
            self.raw_a.resize(b.n, 0);
            self.raw_b.resize(b.n, 0);
            self.fac_a.resize(b.n, 0.0);
            self.fac_b.resize(b.n, 0.0);
        }
    }

    /// Fills `fac_a` with the next multiplicative noise factor column —
    /// `exp(N(0, σ))` from the cosine Box–Muller half of one word pair
    /// (two raw words per frame), bit-identical to a stage whose scalar
    /// form draws **one** factor from a fresh pair cache.
    fn noise_a(&mut self, normal: &Normal) {
        self.lanes.fill_next(&mut self.raw_a);
        self.lanes.fill_next(&mut self.raw_b);
        column::fill_lognormal(normal, &self.raw_a, &self.raw_b, &mut self.fac_a);
    }

    /// Fills `fac_a` (cosine halves) **and** `fac_b` (sine halves) with the
    /// two noise factors of the next word pair — still two raw words per
    /// frame, but one `ln`/`sqrt`/`sincos` set now feeds both columns.
    /// Bit-identical to two consecutive draws through the scalar pipeline's
    /// pair cache on the same stream.
    fn noise_pair(&mut self, normal: &Normal) {
        self.lanes.fill_next(&mut self.raw_a);
        self.lanes.fill_next(&mut self.raw_b);
        column::fill_lognormal_pair(
            normal,
            &self.raw_a,
            &self.raw_b,
            &mut self.fac_a,
            &mut self.fac_b,
        );
    }

    /// Fills `fac_a` with the next `gen_range(lo..hi)` column — one raw
    /// word per frame.
    fn uniform_a(&mut self, lo: f64, hi: f64) {
        self.lanes.fill_next(&mut self.raw_a);
        column::fill_uniform_range(lo, hi, &self.raw_a, &mut self.fac_a);
    }

    /// Fills `fac_a` with the next exponential-sojourn column — one raw
    /// word per frame.
    fn exp_a(&mut self, flow: &Exp) {
        self.lanes.fill_next(&mut self.raw_a);
        column::fill_exp(flow, &self.raw_a, &mut self.fac_a);
    }
}

/// One batch of frames in structure-of-arrays layout: a column per pipeline
/// output plus the scratch buffers the stages reuse across batches. Columns
/// are indexed by position within the batch.
///
/// A batch holds `per_rep` frames of each of `n / per_rep` fused
/// replications, laid out **rep-major**: lane `i` is frame
/// `first_index + (i % per_rep)` of replication `i / per_rep`, so each
/// replication's lanes form one contiguous segment that is exactly the
/// batch a standalone run of that session would build. A plain session is
/// the one-replication special case (`per_rep == n`).
struct FrameBatch {
    first_index: u64,
    /// Frames per replication in this batch.
    per_rep: usize,
    /// Total lane count: `per_rep ×` the number of fused replications.
    n: usize,
    /// One latency column per segment, in `Segment::ALL` order.
    latency: [Vec<Seconds>; Segment::ALL.len()],
    buffering: Vec<Seconds>,
    handoff_occurred: Vec<bool>,
    /// Scratch: the per-frame observation windows fed to `advance_many`.
    windows: Vec<Seconds>,
    /// Topology mode: the edge site serving each frame's uplink (the site
    /// at the frame window's start), recorded by the walk pre-pass.
    sites: Vec<usize>,
    /// Topology mode: each frame's crossing/migration events from the walk
    /// pre-pass, priced later by the handoff stage.
    events: Vec<SiteEvents>,
    /// Scratch: one replication's walk events before they are copied into
    /// its `events` segment (`advance_many_into` clears its output, so the
    /// fused pre-pass cannot append segments directly).
    events_scratch: Vec<SiteEvents>,
    /// Scratch: the finalizer's per-frame power phases.
    phases: Vec<(Watts, Seconds)>,
    /// Scratch: the finalizer's Eq. 1 latency totals, one per frame.
    totals: Vec<Seconds>,
    /// Scratch: the finalizer's thermal-share compute energy, one per frame.
    compute: Vec<Joules>,
}

/// Column positions in `Segment::ALL` order, kept as named constants so the
/// stage loops read like the scalar pipeline.
const GENERATION: usize = 0;
const VOLUMETRIC: usize = 1;
const EXTERNAL: usize = 2;
const CONVERSION: usize = 3;
const ENCODING: usize = 4;
const LOCAL_INFERENCE: usize = 5;
const REMOTE_INFERENCE: usize = 6;
const RENDERING: usize = 7;
const TRANSMISSION: usize = 8;
const HANDOFF: usize = 9;
const COOPERATION: usize = 10;

impl FrameBatch {
    fn new() -> Self {
        Self {
            first_index: 0,
            per_rep: 0,
            n: 0,
            latency: Default::default(),
            buffering: Vec::new(),
            handoff_occurred: Vec::new(),
            windows: Vec::new(),
            sites: Vec::new(),
            events: Vec::new(),
            events_scratch: Vec::new(),
            phases: Vec::new(),
            totals: Vec::new(),
            compute: Vec::new(),
        }
    }

    /// Rewinds the batch onto `per_rep` frames starting at absolute frame
    /// index `first_index`, for each of `reps` fused replications
    /// (rep-major lane layout; a plain session passes `reps == 1`).
    ///
    /// Only the columns a stage *reads before writing* are re-zeroed each
    /// batch: the `max`-accumulators (`EXTERNAL`, `REMOTE_INFERENCE`,
    /// `TRANSMISSION`), the `+=`-accumulator (`buffering`), and the
    /// sparsely written handoff outputs. Every other column is either
    /// fully overwritten by its stage on every batch or its stage is gated
    /// off for the whole session (gating lives in the per-session
    /// [`BatchConsts`]), in which case the column keeps the zeros it was
    /// created with — so skipping their memsets cannot leak a stale value.
    fn reset(&mut self, first_index: u64, per_rep: usize, reps: usize) {
        let n = per_rep * reps;
        self.first_index = first_index;
        self.per_rep = per_rep;
        self.n = n;
        for column in &mut self.latency {
            column.resize(n, Seconds::ZERO);
        }
        for slot in [EXTERNAL, REMOTE_INFERENCE, TRANSMISSION, HANDOFF] {
            self.latency[slot].fill(Seconds::ZERO);
        }
        self.buffering.resize(n, Seconds::ZERO);
        self.buffering.fill(Seconds::ZERO);
        self.handoff_occurred.resize(n, false);
        self.handoff_occurred.fill(false);
    }

    /// Absolute frame index of lane `i` (rep-major layout).
    fn frame_index(&self, i: usize) -> u64 {
        self.first_index + (i % self.per_rep) as u64
    }

    /// Which fused replication lane `i` belongs to.
    fn rep(&self, i: usize) -> usize {
        i / self.per_rep
    }
}

impl TestbedSimulator {
    /// [`TestbedSimulator::simulate_session`] through the batched
    /// structure-of-arrays engine with an explicit batch `width` (clamped to
    /// at least 1). Bit-identical to the scalar reference for every width,
    /// including widths that do not divide the frame count.
    ///
    /// # Errors
    ///
    /// Returns scenario-validation errors; `frames` must be at least 1.
    pub fn simulate_session_batched(
        &self,
        scenario: &Scenario,
        frames: u64,
        width: usize,
    ) -> Result<GroundTruthSession> {
        if frames == 0 {
            return Err(xr_types::Error::invalid_parameter(
                "frames",
                "must be at least 1",
            ));
        }
        self.simulate_session_range_batched(scenario, 0..frames, width)
    }

    /// The batched implementation of
    /// [`TestbedSimulator::simulate_session_range`]: fast-forwards the
    /// session state through the skipped prefix, then runs the column
    /// pipeline over batches starting at the range's first frame. Lane
    /// banks reseed on *absolute* frame indices
    /// ([`xr_types::lanes::LaneStreams::reseed_range`] is the underlying
    /// contract), so the batch grid needs no alignment with the range
    /// start — every width and every split point is bit-identical to the
    /// whole-session run.
    ///
    /// # Errors
    ///
    /// Returns scenario-validation errors; the range must be non-empty.
    pub fn simulate_session_range_batched(
        &self,
        scenario: &Scenario,
        frames: std::ops::Range<u64>,
        width: usize,
    ) -> Result<GroundTruthSession> {
        Self::validate_range(&frames)?;
        scenario.validate()?;
        let width = width.max(1) as u64;
        let consts = BatchConsts::new(self, scenario)?;
        let mut session = SessionState::new(self, scenario);
        self.fast_forward_session(scenario, &mut session, frames.start);
        let mut batch = FrameBatch::new();
        let mut draws = DrawColumns::new();
        let mut out = vec![Vec::with_capacity((frames.end - frames.start) as usize)];
        let mut first = frames.start + 1;
        while first <= frames.end {
            let n = width.min(frames.end - first + 1) as usize;
            batch.reset(first, n, 1);
            self.batch_pass(
                &consts,
                &mut batch,
                &mut draws,
                std::slice::from_mut(&mut session),
                &mut out,
            );
            first += n as u64;
        }
        Ok(GroundTruthSession {
            frames: out.pop().expect("one fused lane"),
            migration_time: session.migration_time,
            sites_visited: session.sites_visited(),
        })
    }

    /// Runs the ten column stages over one prepared batch: the shared body
    /// of the per-session driver above (`sessions.len() == 1`) and the
    /// replication-fused point driver
    /// ([`TestbedSimulator::simulate_point`]), which passes one session
    /// state and one output vector per fused replication.
    fn batch_pass(
        &self,
        consts: &BatchConsts,
        batch: &mut FrameBatch,
        draws: &mut DrawColumns,
        sessions: &mut [SessionState],
        outs: &mut [Vec<GroundTruthFrame>],
    ) {
        self.batch_walk(consts, batch, sessions);
        self.batch_generate(consts, batch, draws);
        self.batch_sense(consts, batch, draws);
        self.batch_buffer(consts, batch, draws);
        self.batch_encode(consts, batch, draws);
        self.batch_local_inference(consts, batch, draws);
        self.batch_uplink_and_edge(consts, batch, draws);
        self.batch_handoff(consts, batch, draws, sessions);
        self.batch_render(consts, batch, draws);
        self.batch_cooperate(consts, batch, draws);
        self.batch_finalize(consts, batch, outs);
    }

    /// Evaluates all `reps` replications of one operating point — the
    /// replicated unit of work of a campaign — and returns one
    /// [`GroundTruthSession`] per replication, in replication order.
    /// Replication `r` runs under session seed `mix(point_seed, r)`, the
    /// exact seed `xr_sweep::replication_seed` hands the per-rep dispatch
    /// path, and its result is **bit-identical to a standalone**
    /// `self.reseeded(mix(point_seed, r)).simulate_session(scenario,
    /// frames)` by construction.
    ///
    /// With the fused engine ([`SimulationEngine::FusedPoint`]), more than
    /// one replication, and no within-session range-chunking, the
    /// replications are *fused*: one
    /// `BatchConsts` hoist for the whole point, one rep-major
    /// `FrameBatch`/`DrawColumns` pass per batch of frames (each
    /// replication's lanes form a contiguous segment replaying its own
    /// per-stage streams), and the sparse per-rep state (walkers, handoff
    /// tallies, migration clocks) banked behind rep-indexed arrays.
    /// Otherwise — a scalar or plain batched engine, `reps == 1`, or
    /// `session_chunks > 1` —
    /// the point falls back to sequential per-rep dispatch through
    /// [`TestbedSimulator::simulate_session`].
    ///
    /// # Errors
    ///
    /// Returns scenario-validation and model errors (identical between the
    /// fused and per-rep paths — every fallible hoist is seed-independent);
    /// `reps` and `frames` must each be at least 1.
    pub fn simulate_point(
        &self,
        scenario: &Scenario,
        point_seed: u64,
        reps: usize,
        frames: u64,
    ) -> Result<Vec<GroundTruthSession>> {
        if reps == 0 {
            return Err(xr_types::Error::invalid_parameter(
                "reps",
                "must be at least 1",
            ));
        }
        let width = match self.engine() {
            SimulationEngine::Scalar | SimulationEngine::Batched { .. } => None,
            SimulationEngine::FusedPoint { width } => Some(width.max(1)),
        };
        let rep_seed = |rep: usize| xr_types::seed::mix(point_seed, rep as u64);
        let (Some(width), true) = (width, reps > 1 && self.session_chunks() == 1) else {
            return (0..reps)
                .map(|rep| {
                    self.reseeded(rep_seed(rep))
                        .simulate_session(scenario, frames)
                })
                .collect();
        };
        if frames == 0 {
            return Err(xr_types::Error::invalid_parameter(
                "frames",
                "must be at least 1",
            ));
        }
        scenario.validate()?;
        let consts = {
            let seeds: Vec<u64> = (0..reps).map(rep_seed).collect();
            BatchConsts::for_seeds(self, scenario, &seeds)?
        };
        let mut sessions: Vec<SessionState> = (0..reps)
            .map(|rep| SessionState::new(&self.reseeded(rep_seed(rep)), scenario))
            .collect();
        let mut outs: Vec<Vec<GroundTruthFrame>> = (0..reps)
            .map(|_| Vec::with_capacity(frames as usize))
            .collect();
        // Split the lane budget evenly across the replications so the fused
        // batch touches about as much column memory per pass as a plain
        // batched session would.
        let per_rep_width = (width / reps).max(1) as u64;
        let mut batch = FrameBatch::new();
        let mut draws = DrawColumns::new();
        let mut first = 1u64;
        while first <= frames {
            let per_rep = per_rep_width.min(frames - first + 1) as usize;
            batch.reset(first, per_rep, reps);
            self.batch_pass(&consts, &mut batch, &mut draws, &mut sessions, &mut outs);
            first += per_rep as u64;
        }
        Ok(sessions
            .iter()
            .zip(outs)
            .map(|(session, frames)| GroundTruthSession {
                frames,
                migration_time: session.migration_time,
                sites_visited: session.sites_visited(),
            })
            .collect())
    }

    /// Topology pre-pass — the *other* sequential scan: advance the
    /// topology walker through the whole batch in frame order (preserving
    /// the fractional-step carry, like the legacy walker scan), recording
    /// per frame the site serving its uplink (the site at the window start)
    /// and its crossing/migration events. The walker stream is
    /// session-sequential, but because every stage draws from its own
    /// per-(stage, frame) stream, hoisting the walk before the uplink stage
    /// cannot change any stage's draws — only the walk's in-order totals
    /// matter, and those are identical to the scalar's frame-interleaved
    /// advances. A static topologized session pins every frame to its start
    /// site with no events. A fused batch runs the scan once per
    /// replication over that replication's contiguous lane segment — each
    /// walker's in-order advance sequence is exactly its standalone
    /// session's.
    fn batch_walk(&self, k: &BatchConsts, b: &mut FrameBatch, sessions: &mut [SessionState]) {
        if k.topology.is_none() {
            return;
        }
        b.windows.clear();
        b.windows.resize(b.per_rep, k.window);
        if let [session] = sessions {
            // The plain-session fast path walks straight into the batch
            // columns (no segment copy).
            match session.topo.as_mut() {
                Some(topo) if k.mobile => {
                    topo.advance_many_into(&b.windows, &mut b.events);
                    b.sites.clear();
                    b.sites.extend(b.events.iter().map(|events| events.site));
                    session.site = topo.site_index();
                }
                _ => {
                    b.sites.clear();
                    b.sites.resize(b.n, session.site);
                    b.events.clear();
                    b.events.resize(b.n, SiteEvents::default());
                }
            }
            return;
        }
        b.sites.clear();
        b.sites.resize(b.n, 0);
        b.events.clear();
        b.events.resize(b.n, SiteEvents::default());
        for (rep, session) in sessions.iter_mut().enumerate() {
            let lo = rep * b.per_rep;
            let hi = lo + b.per_rep;
            match session.topo.as_mut() {
                Some(topo) if k.mobile => {
                    topo.advance_many_into(&b.windows, &mut b.events_scratch);
                    b.events[lo..hi].copy_from_slice(&b.events_scratch);
                    for (site, events) in b.sites[lo..hi].iter_mut().zip(&b.events[lo..hi]) {
                        *site = events.site;
                    }
                    session.site = topo.site_index();
                }
                _ => {
                    b.sites[lo..hi].fill(session.site);
                }
            }
        }
    }

    /// Stage 1 column loop — frame/volumetric generation noise: the two
    /// factors are the two halves of one Box–Muller pair (one word pair
    /// per frame), matching the scalar stage's shared pair cache.
    /// Noiseless sessions draw nothing, and `base * 1.0 == base` bit for
    /// bit, so the constant fill matches the scalar multiply.
    fn batch_generate(&self, k: &BatchConsts, b: &mut FrameBatch, d: &mut DrawColumns) {
        match &k.noise {
            Some(normal) => {
                d.reseed(k, stream::GENERATE, b);
                d.noise_pair(normal);
                for (latency, &factor) in b.latency[GENERATION].iter_mut().zip(&d.fac_a) {
                    *latency = k.generation_base * factor;
                }
                for (latency, &factor) in b.latency[VOLUMETRIC].iter_mut().zip(&d.fac_b) {
                    *latency = k.volumetric_base * factor;
                }
            }
            None => {
                b.latency[GENERATION].fill(k.generation_base);
                b.latency[VOLUMETRIC].fill(k.volumetric_base);
            }
        }
    }

    /// Stage 2 column loop — per-update sensor jitter, slowest sensor wins.
    /// The `updates_per_frame × sensors` accumulation runs over pre-filled
    /// jitter columns (one per update), in the scalar's sensor-major draw
    /// and summation order.
    fn batch_sense(&self, k: &BatchConsts, b: &mut FrameBatch, d: &mut DrawColumns) {
        if k.sensors.is_empty() {
            return; // Like the scalar max over no sensors: EXTERNAL stays 0.
        }
        d.reseed(k, stream::SENSE, b);
        for &(period, propagation) in &k.sensors {
            d.acc.clear();
            d.acc.resize(b.n, Seconds::ZERO);
            for _ in 0..k.updates_per_frame {
                d.uniform_a(-0.05, 0.05);
                for (acc, &jitter) in d.acc.iter_mut().zip(&d.fac_a) {
                    *acc += period * (1.0 + jitter) + propagation;
                }
            }
            for (ext, &acc) in b.latency[EXTERNAL].iter_mut().zip(&d.acc) {
                *ext = ext.max(acc);
            }
        }
    }

    /// Stage 3 column loop — M/M/1 sojourn sampling per stable flow, one
    /// exponential column per flow in the scalar's flow order.
    fn batch_buffer(&self, k: &BatchConsts, b: &mut FrameBatch, d: &mut DrawColumns) {
        if k.flows.is_empty() {
            return;
        }
        d.reseed(k, stream::BUFFER, b);
        for flow in &k.flows {
            d.exp_a(flow);
            for (buffering, &sojourn) in b.buffering.iter_mut().zip(&d.fac_a) {
                *buffering += Seconds::new(sojourn);
            }
        }
    }

    /// Stage 4 column loop — conversion (local path) and encoding (edge
    /// path) noise; gated paths draw nothing, like the scalar stage. A
    /// split scenario's two factors are the two halves of one word pair
    /// (the scalar stage shares one pair cache across both paths); a
    /// single active path takes the cosine half only.
    fn batch_encode(&self, k: &BatchConsts, b: &mut FrameBatch, d: &mut DrawColumns) {
        let Some(normal) = &k.noise else {
            if let Some(base) = k.conversion_base {
                b.latency[CONVERSION].fill(base);
            }
            if let Some(base) = k.encoding_base {
                b.latency[ENCODING].fill(base);
            }
            return;
        };
        if k.conversion_base.is_none() && k.encoding_base.is_none() {
            return;
        }
        d.reseed(k, stream::ENCODE, b);
        match (k.conversion_base, k.encoding_base) {
            (Some(conversion), Some(encoding)) => {
                d.noise_pair(normal);
                for (latency, &factor) in b.latency[CONVERSION].iter_mut().zip(&d.fac_a) {
                    *latency = conversion * factor;
                }
                for (latency, &factor) in b.latency[ENCODING].iter_mut().zip(&d.fac_b) {
                    *latency = encoding * factor;
                }
            }
            (Some(base), None) => {
                d.noise_a(normal);
                for (latency, &factor) in b.latency[CONVERSION].iter_mut().zip(&d.fac_a) {
                    *latency = base * factor;
                }
            }
            (None, Some(base)) => {
                d.noise_a(normal);
                for (latency, &factor) in b.latency[ENCODING].iter_mut().zip(&d.fac_a) {
                    *latency = base * factor;
                }
            }
            (None, None) => unreachable!("gated above"),
        }
    }

    /// Stage 5 column loop — the on-device CNN share.
    fn batch_local_inference(&self, k: &BatchConsts, b: &mut FrameBatch, d: &mut DrawColumns) {
        let Some(base) = k.local_base else { return };
        match &k.noise {
            Some(normal) => {
                d.reseed(k, stream::LOCAL_INFERENCE, b);
                d.noise_a(normal);
                for (latency, &factor) in b.latency[LOCAL_INFERENCE].iter_mut().zip(&d.fac_a) {
                    *latency = base * factor;
                }
            }
            None => b.latency[LOCAL_INFERENCE].fill(base),
        }
    }

    /// Stage 6 column loop — weighted-slowest edge compute and slowest
    /// uplink. Per pair of edge servers: one paired noise-factor fill (two
    /// words per frame, when noisy) whose halves serve consecutive
    /// servers, interleaved with one wireless-jitter column per server —
    /// matching the scalar's per-frame word order and pair-cache state.
    ///
    /// In contended mode the remote term instead consumes one exponential
    /// sojourn column per server from the dedicated
    /// [`stream::CONTENTION`] streams (noise-free, pinning the mean to the
    /// M/M/1 closed form), while the wireless jitter keeps its own
    /// [`stream::UPLINK_EDGE`] columns — per stream, the per-frame word
    /// order is exactly the scalar's server order.
    fn batch_uplink_and_edge(&self, k: &BatchConsts, b: &mut FrameBatch, d: &mut DrawColumns) {
        if k.edges.is_empty() {
            return;
        }
        if let Some(plans) = k.topology.as_ref().and_then(|t| t.site_plans.as_ref()) {
            // Topology + contention: the sojourn rate depends on the frame's
            // serving site (recorded by the walk pre-pass), so this path
            // draws frame-at-a-time instead of column-wise — the exponential
            // column transform needs one fixed rate per column, and here the
            // rate changes mid-batch whenever the session migrates. Per
            // frame the stream consumption (one sojourn word per server, in
            // server order, from the CONTENTION stream) is exactly the
            // scalar's.
            for i in 0..b.n {
                let mut rng = k.rng(b.rep(i), stream::CONTENTION, b.frame_index(i));
                for &(weight, sojourn) in &plans[b.sites[i]].pairs {
                    let drawn = Seconds::new(sojourn.sample(&mut rng));
                    let remote = &mut b.latency[REMOTE_INFERENCE][i];
                    *remote = remote.max(drawn * weight);
                }
            }
            d.reseed(k, stream::UPLINK_EDGE, b);
            for &(_, tx_base) in &k.edges {
                d.uniform_a(0.0, 0.12);
                for (tx, &jitter) in b.latency[TRANSMISSION].iter_mut().zip(&d.fac_a) {
                    *tx = tx.max(tx_base * (1.0 + jitter));
                }
            }
            return;
        }
        if let Some(plan) = &k.contention {
            d.reseed(k, stream::CONTENTION, b);
            for &(weight, sojourn) in &plan.pairs {
                d.exp_a(&sojourn);
                for (remote, &drawn) in b.latency[REMOTE_INFERENCE].iter_mut().zip(&d.fac_a) {
                    *remote = remote.max(Seconds::new(drawn) * weight);
                }
            }
            d.reseed(k, stream::UPLINK_EDGE, b);
            for &(_, tx_base) in &k.edges {
                d.uniform_a(0.0, 0.12);
                for (tx, &jitter) in b.latency[TRANSMISSION].iter_mut().zip(&d.fac_a) {
                    *tx = tx.max(tx_base * (1.0 + jitter));
                }
            }
            return;
        }
        d.reseed(k, stream::UPLINK_EDGE, b);
        for (index, &(infer_weighted, tx_base)) in k.edges.iter().enumerate() {
            if let Some(normal) = &k.noise {
                // The scalar stage shares one pair cache across the server
                // loop: even-indexed servers draw a fresh word pair, odd
                // ones reuse its cached sine half (the jitter column in
                // between leaves the cache untouched — it lives in `fac_a`,
                // and the pair's sine half in `fac_b`).
                if index % 2 == 0 {
                    d.noise_pair(normal);
                }
                let factors = if index % 2 == 0 { &d.fac_a } else { &d.fac_b };
                for (remote, &factor) in b.latency[REMOTE_INFERENCE].iter_mut().zip(factors) {
                    *remote = remote.max(infer_weighted * factor);
                }
            } else {
                // `infer_weighted * 1.0 == infer_weighted` bit for bit.
                for remote in &mut b.latency[REMOTE_INFERENCE] {
                    *remote = remote.max(infer_weighted);
                }
            }
            d.uniform_a(0.0, 0.12);
            for (tx, &jitter) in b.latency[TRANSMISSION].iter_mut().zip(&d.fac_a) {
                *tx = tx.max(tx_base * (1.0 + jitter));
            }
        }
    }

    /// Stage 7 — the sequential stage: advance the session walker through
    /// the whole batch as one in-order scan (`advance_many_into` preserves
    /// the fractional-step carry across batches and reuses the crossing
    /// buffer), then price each frame's crossings from its own handoff
    /// stream. Crossings are sparse, so this stage keeps the frame-at-a-time
    /// draw path.
    fn batch_handoff(
        &self,
        k: &BatchConsts,
        b: &mut FrameBatch,
        d: &mut DrawColumns,
        sessions: &mut [SessionState],
    ) {
        if !k.mobile {
            return;
        }
        if let Some(topology) = &k.topology {
            // The walk pre-pass already advanced the topology walkers; price
            // each frame's recorded events here. Crossing noise comes from
            // the HANDOFF stream and migration noise from the MIGRATION
            // stream — the same per-stream draw sequence as the scalar
            // stage (one sample per stream, only when its count is
            // nonzero), so a 1-site topology leaves both paths bit-identical
            // to the single-zone pipeline. In a fused batch each lane's
            // streams and session tallies belong to its own replication.
            for i in 0..b.n {
                let events = b.events[i];
                if events.crossings == 0 {
                    continue;
                }
                let rep = b.rep(i);
                let session = &mut sessions[rep];
                let mut rng = k.rng(rep, stream::HANDOFF, b.frame_index(i));
                let mut pairs = StandardNormalPairs::new();
                b.handoff_occurred[i] = true;
                session.handoffs += events.crossings as u64;
                let mut latency =
                    k.handoff_base * events.crossings as f64 * k.noise(&mut rng, &mut pairs);
                if events.migrations > 0 {
                    session.migrations += events.migrations as u64;
                    let mut migration_rng = k.rng(rep, stream::MIGRATION, b.frame_index(i));
                    let mut migration_pairs = StandardNormalPairs::new();
                    let migration = topology.migration_base
                        * events.migrations as f64
                        * k.noise(&mut migration_rng, &mut migration_pairs);
                    session.migration_time += migration;
                    latency += migration;
                }
                b.latency[HANDOFF][i] = latency;
            }
            return;
        }
        // A batched session always owns its SessionState, and SessionState::new
        // creates a walker whenever the device moves — which `k.mobile`
        // implies. (The scalar pipeline's Bernoulli fallback only exists for
        // standalone frames outside any session, which never reach this
        // engine.) Each replication's walker scans its own lane segment.
        b.windows.clear();
        b.windows.resize(b.per_rep, k.window);
        for (rep, session) in sessions.iter_mut().enumerate() {
            let walker = session
                .walker
                .as_mut()
                .expect("a mobile batched session always carries a walker");
            walker.advance_many_into(&b.windows, &mut d.crossings);
            let lo = rep * b.per_rep;
            for (i, &count) in d.crossings.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let mut rng = k.rng(rep, stream::HANDOFF, b.first_index + i as u64);
                let mut pairs = StandardNormalPairs::new();
                b.handoff_occurred[lo + i] = true;
                session.handoffs += count as u64;
                b.latency[HANDOFF][lo + i] =
                    k.handoff_base * count as f64 * k.noise(&mut rng, &mut pairs);
            }
        }
    }

    /// Stage 8 column loop — rendering noise plus the frame's buffered
    /// input and the (constant) result delivery.
    fn batch_render(&self, k: &BatchConsts, b: &mut FrameBatch, d: &mut DrawColumns) {
        match &k.noise {
            Some(normal) => {
                d.reseed(k, stream::RENDER, b);
                d.noise_a(normal);
                for ((latency, &factor), &buffering) in b.latency[RENDERING]
                    .iter_mut()
                    .zip(&d.fac_a)
                    .zip(&b.buffering)
                {
                    *latency = k.render_base * factor + buffering + k.result_delivery;
                }
            }
            None => {
                for (latency, &buffering) in b.latency[RENDERING].iter_mut().zip(&b.buffering) {
                    *latency = k.render_base + buffering + k.result_delivery;
                }
            }
        }
    }

    /// Stage 9 column loop — cooperation-exchange noise.
    fn batch_cooperate(&self, k: &BatchConsts, b: &mut FrameBatch, d: &mut DrawColumns) {
        match &k.noise {
            Some(normal) => {
                d.reseed(k, stream::COOPERATE, b);
                d.noise_a(normal);
                for (latency, &factor) in b.latency[COOPERATION].iter_mut().zip(&d.fac_a) {
                    *latency = k.cooperation_base * factor;
                }
            }
            None => b.latency[COOPERATION].fill(k.cooperation_base),
        }
    }

    /// Stage 10 — Eq. 1 gating and the Monsoon-style energy measurement,
    /// one output frame per column entry. The per-segment maps are clones
    /// of the session's zeroed templates with values rewritten in key
    /// order — `Segment::ALL` order, the same order the scalar finalizer's
    /// `BTreeMap` yields — so every floating-point sum accumulates
    /// identically and the emitted maps compare equal.
    fn batch_finalize(
        &self,
        k: &BatchConsts,
        b: &mut FrameBatch,
        outs: &mut [Vec<GroundTruthFrame>],
    ) {
        // Column prologue: the Eq. 1 latency total and the thermal-share
        // compute energy are plain slot-ascending accumulations, so they
        // run as one contiguous add pass per included slot — per frame the
        // summation order is exactly the scalar finalizer's BTreeMap
        // (ascending `Segment::ALL`) order.
        b.totals.clear();
        b.totals.resize(b.n, Seconds::ZERO);
        b.compute.clear();
        b.compute.resize(b.n, Joules::ZERO);
        for (slot, &included) in k.segment_included.iter().enumerate() {
            if !included {
                continue;
            }
            for (total, &value) in b.totals.iter_mut().zip(&b.latency[slot]) {
                *total += value;
            }
            if k.segment_is_compute[slot] {
                let power = k.segment_power[slot];
                for (compute, &duration) in b.compute.iter_mut().zip(&b.latency[slot]) {
                    *compute += power * duration;
                }
            }
        }

        for i in 0..b.n {
            let mut latency = [Seconds::ZERO; Segment::ALL.len()];
            for (slot, column) in b.latency.iter().enumerate() {
                latency[slot] = column[i];
            }

            b.phases.clear();
            let mut energy = [Joules::ZERO; Segment::ALL.len()];
            for (slot, value) in energy.iter_mut().enumerate() {
                let duration = latency[slot];
                let power = k.segment_power[slot];
                *value = power * duration;
                if k.segment_included[slot] {
                    b.phases.push((power, duration));
                }
            }
            let trace_energy = self.monitor.measure_energy(
                &b.phases,
                self.base_power,
                xr_types::seed::mix(k.base(b.rep(i), stream::MONITOR), b.frame_index(i)),
            );
            let thermal = b.compute[i] * self.thermal_fraction;
            outs[b.rep(i)].push(GroundTruthFrame {
                latency,
                total_latency: b.totals[i],
                energy,
                total_energy: trace_energy + thermal,
                handoff_occurred: b.handoff_occurred[i],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr_types::{ExecutionTarget, GigaHertz, Meters, MetersPerSecond};

    fn scenario(side: f64, clock: f64, target: ExecutionTarget) -> Scenario {
        Scenario::builder()
            .frame_side(side)
            .cpu_clock(GigaHertz::new(clock))
            .execution(target)
            .build()
            .unwrap()
    }

    fn mobile_scenario(speed: f64, radius: f64) -> Scenario {
        Scenario::builder()
            .execution(ExecutionTarget::Remote)
            .mobility(xr_core::MobilityConfig {
                speed: MetersPerSecond::new(speed),
                coverage_radius: Meters::new(radius),
                handoff_kind: HandoffKind::Vertical,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn batched_sessions_match_the_scalar_reference_bit_for_bit() {
        let testbed = TestbedSimulator::new(42);
        for target in [
            ExecutionTarget::Local,
            ExecutionTarget::Remote,
            ExecutionTarget::Split { client_share: 0.3 },
        ] {
            let s = scenario(500.0, 2.0, target);
            let scalar = testbed.simulate_session_scalar(&s, 37).unwrap();
            for width in [1, 2, 7, 37, 64, 100] {
                let batched = testbed.simulate_session_batched(&s, 37, width).unwrap();
                assert_eq!(batched, scalar, "{target:?} diverged at width {width}");
            }
        }
    }

    #[test]
    fn batched_mobile_sessions_preserve_the_walker_carry_across_batches() {
        // The sequential handoff scan is the only cross-frame state; widths
        // that chop the session mid-walk must not lose the fractional-step
        // carry or re-seed the walker.
        let testbed = TestbedSimulator::new(5);
        let s = mobile_scenario(25.0, 8.0);
        let scalar = testbed.simulate_session_scalar(&s, 101).unwrap();
        assert!(scalar.handoff_rate() > 0.0, "mobile session never crossed");
        for width in [1, 3, 16, 101, 128] {
            let batched = testbed.simulate_session_batched(&s, 101, width).unwrap();
            assert_eq!(batched, scalar, "mobile session diverged at width {width}");
        }
    }

    #[test]
    fn default_engine_is_batched_and_dispatch_honors_overrides() {
        let testbed = TestbedSimulator::new(9);
        assert_eq!(
            testbed.engine(),
            SimulationEngine::Batched {
                width: DEFAULT_BATCH_WIDTH
            }
        );
        let s = scenario(400.0, 2.5, ExecutionTarget::Remote);
        let default = testbed.simulate_session(&s, 23).unwrap();
        let scalar = testbed
            .clone()
            .with_engine(SimulationEngine::Scalar)
            .simulate_session(&s, 23)
            .unwrap();
        let narrow = testbed
            .clone()
            .with_engine(SimulationEngine::Batched { width: 0 })
            .simulate_session(&s, 23)
            .unwrap();
        assert_eq!(default, scalar);
        assert_eq!(narrow, scalar, "width 0 clamps to 1");
        // The engine survives reseeding (campaign replications keep their
        // configured engine).
        assert_eq!(testbed.reseeded(77).engine(), testbed.engine());
    }

    #[test]
    fn batched_rejects_zero_frames_and_invalid_scenarios() {
        let testbed = TestbedSimulator::new(3);
        let s = scenario(500.0, 2.0, ExecutionTarget::Local);
        assert!(testbed.simulate_session_batched(&s, 0, 8).is_err());
        let mut broken = s;
        broken.updates_per_frame = 0;
        assert!(testbed.simulate_session_batched(&broken, 5, 8).is_err());
    }

    #[test]
    fn contended_batches_match_the_scalar_reference_bit_for_bit() {
        // The contended edge stage reroutes the remote term through the
        // CONTENTION streams; every width (including tails) must still
        // reproduce the scalar reference exactly, for full and split
        // offloading and for a noiseless simulator.
        let testbed = TestbedSimulator::new(31);
        for target in [
            ExecutionTarget::Remote,
            ExecutionTarget::Split { client_share: 0.4 },
        ] {
            let s = Scenario::builder()
                .execution(target)
                .frame_side(300.0)
                .frame_rate(xr_types::Hertz::new(5.0))
                .contention(3)
                .build()
                .unwrap();
            let scalar = testbed.simulate_session_scalar(&s, 41).unwrap();
            for width in [1, 2, 5, 41, 64] {
                let batched = testbed.simulate_session_batched(&s, 41, width).unwrap();
                assert_eq!(batched, scalar, "{target:?} diverged at width {width}");
            }
        }
        let noiseless = TestbedSimulator::new(32).with_noise(0.0);
        let s = Scenario::builder()
            .execution(ExecutionTarget::Remote)
            .frame_side(300.0)
            .frame_rate(xr_types::Hertz::new(5.0))
            .contention(5)
            .build()
            .unwrap();
        let scalar = noiseless.simulate_session_scalar(&s, 17).unwrap();
        let batched = noiseless.simulate_session_batched(&s, 17, 6).unwrap();
        assert_eq!(batched, scalar);
    }

    #[test]
    fn contended_saturation_errors_identically_in_both_engines() {
        let testbed = TestbedSimulator::new(33);
        let s = Scenario::builder()
            .execution(ExecutionTarget::Remote)
            .contention(100_000)
            .build()
            .unwrap();
        let scalar = testbed.simulate_session_scalar(&s, 3).unwrap_err();
        let batched = testbed.simulate_session_batched(&s, 3, 2).unwrap_err();
        assert!(matches!(scalar, xr_types::Error::UnstableQueue { .. }));
        assert!(matches!(batched, xr_types::Error::UnstableQueue { .. }));
    }

    fn topology_scenario(
        layout: xr_types::TopologyLayout,
        policy: xr_types::MigrationPolicy,
        density: f64,
        users: Option<u32>,
    ) -> Scenario {
        let mut builder = Scenario::builder()
            .execution(ExecutionTarget::Remote)
            .frame_side(300.0)
            .frame_rate(xr_types::Hertz::new(5.0))
            .mobility(xr_core::MobilityConfig {
                speed: MetersPerSecond::new(25.0),
                coverage_radius: Meters::new(8.0),
                handoff_kind: HandoffKind::Horizontal,
            })
            .topology(xr_core::TopologyConfig {
                layout,
                site_density: density,
                migration_policy: policy,
            });
        if let Some(users) = users {
            builder = builder.contention(users);
        }
        builder.build().unwrap()
    }

    #[test]
    fn topologized_batches_match_the_scalar_reference_bit_for_bit() {
        // Stage 7's edge-to-edge arm reroutes the walk through the batch
        // pre-pass and prices migrations on their own stream; every layout,
        // policy, and width (including tails) must reproduce the scalar
        // reference exactly — contended sessions included, since they pull
        // per-site M/M/1 plans instead of the base plan.
        use xr_types::{MigrationPolicy, TopologyLayout};
        let testbed = TestbedSimulator::new(51);
        for layout in [
            TopologyLayout::Square,
            TopologyLayout::Hex,
            TopologyLayout::Voronoi,
        ] {
            for policy in [MigrationPolicy::Eager, MigrationPolicy::Lazy] {
                for users in [None, Some(3)] {
                    let s = topology_scenario(layout, policy, 2500.0, users);
                    let scalar = testbed.simulate_session_scalar(&s, 97).unwrap();
                    for width in [1, 3, 17, 97, 128] {
                        let batched = testbed.simulate_session_batched(&s, 97, width).unwrap();
                        assert_eq!(
                            batched, scalar,
                            "{layout:?}/{policy:?}/users {users:?} diverged at width {width}"
                        );
                    }
                }
            }
        }
        // Density 2500 sites/km² makes sites ~20 m apart, so a 25 m/s
        // walker genuinely roams — the arm under test actually fired.
        let s = topology_scenario(
            TopologyLayout::Square,
            MigrationPolicy::Eager,
            2500.0,
            Some(3),
        );
        let session = testbed.simulate_session_scalar(&s, 97).unwrap();
        assert!(session.sites_visited() > 1, "walker never migrated");
        assert!(session.migration_time() > Seconds::ZERO);
    }

    #[test]
    fn single_layout_topology_replays_the_legacy_session_bit_for_bit() {
        // A 1-site topology must be indistinguishable from no topology at
        // all: same walker stream, no MIGRATION draws, and (when contended)
        // a per-site plan equal to the base plan — in both engines.
        use xr_types::{MigrationPolicy, TopologyLayout};
        let testbed = TestbedSimulator::new(52);
        for users in [None, Some(4)] {
            let mut legacy = Scenario::builder()
                .execution(ExecutionTarget::Remote)
                .frame_side(300.0)
                .frame_rate(xr_types::Hertz::new(5.0))
                .mobility(xr_core::MobilityConfig {
                    speed: MetersPerSecond::new(25.0),
                    coverage_radius: Meters::new(8.0),
                    handoff_kind: HandoffKind::Horizontal,
                });
            if let Some(users) = users {
                legacy = legacy.contention(users);
            }
            let legacy = legacy.build().unwrap();
            let mut single = legacy.clone();
            single.topology = Some(xr_core::TopologyConfig {
                layout: TopologyLayout::Single,
                site_density: 0.0,
                migration_policy: MigrationPolicy::Eager,
            });
            let reference = testbed.simulate_session_scalar(&legacy, 73).unwrap();
            assert!(reference.handoff_rate() > 0.0);
            assert_eq!(
                testbed.simulate_session_scalar(&single, 73).unwrap(),
                reference,
                "scalar single-site diverged (users {users:?})"
            );
            for width in [1, 9, 73] {
                assert_eq!(
                    testbed
                        .simulate_session_batched(&single, 73, width)
                        .unwrap(),
                    reference,
                    "batched single-site diverged at width {width} (users {users:?})"
                );
            }
        }
    }

    #[test]
    fn noiseless_topologized_batches_still_match() {
        use xr_types::{MigrationPolicy, TopologyLayout};
        let testbed = TestbedSimulator::new(53).with_noise(0.0);
        let s = topology_scenario(TopologyLayout::Hex, MigrationPolicy::Lazy, 2500.0, Some(2));
        let scalar = testbed.simulate_session_scalar(&s, 48).unwrap();
        for width in [1, 7, 48] {
            let batched = testbed.simulate_session_batched(&s, 48, width).unwrap();
            assert_eq!(batched, scalar, "noiseless topology diverged at {width}");
        }
    }

    /// The per-rep reference `simulate_point` must reproduce: one
    /// standalone session per replication seed.
    fn per_rep_reference(
        testbed: &TestbedSimulator,
        s: &Scenario,
        point_seed: u64,
        reps: usize,
        frames: u64,
    ) -> Vec<GroundTruthSession> {
        (0..reps)
            .map(|rep| {
                testbed
                    .reseeded(xr_types::seed::mix(point_seed, rep as u64))
                    .simulate_session(s, frames)
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn fused_points_match_per_rep_sessions_bit_for_bit() {
        let point_seed = xr_types::seed::mix(2024, 17);
        for (label, s) in [
            ("local", scenario(500.0, 2.0, ExecutionTarget::Local)),
            ("remote", scenario(500.0, 2.0, ExecutionTarget::Remote)),
            ("mobile", mobile_scenario(25.0, 8.0)),
        ] {
            let testbed = TestbedSimulator::new(42);
            let reference = per_rep_reference(&testbed, &s, point_seed, 4, 37);
            for width in [1, 7, 64, 256] {
                let fused = testbed
                    .clone()
                    .with_engine(SimulationEngine::FusedPoint { width })
                    .simulate_point(&s, point_seed, 4, 37)
                    .unwrap();
                assert_eq!(fused, reference, "{label} diverged at width {width}");
            }
        }
    }

    #[test]
    fn fused_topologized_and_contended_points_match_per_rep_sessions() {
        use xr_types::{MigrationPolicy, TopologyLayout};
        let testbed =
            TestbedSimulator::new(51).with_engine(SimulationEngine::FusedPoint { width: 96 });
        let point_seed = xr_types::seed::mix(7, 3);
        let topo = topology_scenario(
            TopologyLayout::Square,
            MigrationPolicy::Eager,
            2500.0,
            Some(3),
        );
        let reference = per_rep_reference(&testbed, &topo, point_seed, 3, 53);
        assert!(reference.iter().any(|s| s.sites_visited() > 1));
        assert_eq!(
            testbed.simulate_point(&topo, point_seed, 3, 53).unwrap(),
            reference,
            "topologized point diverged"
        );
        let contended = Scenario::builder()
            .execution(ExecutionTarget::Remote)
            .frame_side(300.0)
            .frame_rate(xr_types::Hertz::new(5.0))
            .contention(3)
            .build()
            .unwrap();
        let reference = per_rep_reference(&testbed, &contended, point_seed, 5, 41);
        assert_eq!(
            testbed
                .simulate_point(&contended, point_seed, 5, 41)
                .unwrap(),
            reference,
            "contended point diverged"
        );
    }

    #[test]
    fn fused_point_fallbacks_and_errors_match_per_rep_dispatch() {
        let s = scenario(400.0, 2.5, ExecutionTarget::Remote);
        let point_seed = 99;
        // reps == 1, scalar engine, and chunked sessions all take the
        // per-rep fallback; each must equal the per-rep reference.
        let fused =
            TestbedSimulator::new(9).with_engine(SimulationEngine::FusedPoint { width: 32 });
        assert_eq!(
            fused.simulate_point(&s, point_seed, 1, 23).unwrap(),
            per_rep_reference(&fused, &s, point_seed, 1, 23)
        );
        let scalar = TestbedSimulator::new(9).with_engine(SimulationEngine::Scalar);
        assert_eq!(
            scalar.simulate_point(&s, point_seed, 3, 23).unwrap(),
            per_rep_reference(&scalar, &s, point_seed, 3, 23)
        );
        let chunked = fused.clone().with_session_chunks(2);
        assert_eq!(
            chunked.simulate_point(&s, point_seed, 3, 23).unwrap(),
            per_rep_reference(&chunked, &s, point_seed, 3, 23)
        );
        // Degenerate inputs are rejected on every path.
        assert!(fused.simulate_point(&s, point_seed, 0, 23).is_err());
        assert!(fused.simulate_point(&s, point_seed, 3, 0).is_err());
        assert!(scalar.simulate_point(&s, point_seed, 3, 0).is_err());
        // Saturated queues error identically to per-rep dispatch.
        let saturated = Scenario::builder()
            .execution(ExecutionTarget::Remote)
            .contention(100_000)
            .build()
            .unwrap();
        let fused_err = fused
            .simulate_point(&saturated, point_seed, 3, 5)
            .unwrap_err();
        let per_rep_err = fused
            .reseeded(xr_types::seed::mix(point_seed, 0))
            .simulate_session(&saturated, 5)
            .unwrap_err();
        assert_eq!(format!("{fused_err:?}"), format!("{per_rep_err:?}"));
    }

    #[test]
    fn fused_engine_runs_single_sessions_like_batched() {
        let testbed = TestbedSimulator::new(9);
        let s = scenario(400.0, 2.5, ExecutionTarget::Remote);
        let reference = testbed.simulate_session(&s, 23).unwrap();
        let fused = testbed
            .clone()
            .with_engine(SimulationEngine::FusedPoint { width: 64 })
            .simulate_session(&s, 23)
            .unwrap();
        assert_eq!(
            fused,
            testbed
                .clone()
                .with_engine(SimulationEngine::Batched { width: 64 })
                .simulate_session(&s, 23)
                .unwrap()
        );
        assert_eq!(fused, reference);
    }

    #[test]
    fn noiseless_batches_still_match() {
        let testbed = TestbedSimulator::new(11).with_noise(0.0);
        let s = scenario(600.0, 1.5, ExecutionTarget::Remote);
        let scalar = testbed.simulate_session_scalar(&s, 10).unwrap();
        let batched = testbed.simulate_session_batched(&s, 10, 4).unwrap();
        assert_eq!(batched, scalar);
    }

    #[test]
    fn noiseless_mobile_and_split_batches_still_match() {
        // The noiseless paths skip whole column fills (no seeding at all);
        // make sure every gated combination still matches the scalar
        // reference, including the handoff stage's 1.0 factor.
        let testbed = TestbedSimulator::new(13).with_noise(0.0);
        let mobile = mobile_scenario(25.0, 8.0);
        let scalar = testbed.simulate_session_scalar(&mobile, 64).unwrap();
        assert!(scalar.handoff_rate() > 0.0);
        for width in [1, 5, 64] {
            let batched = testbed
                .simulate_session_batched(&mobile, 64, width)
                .unwrap();
            assert_eq!(batched, scalar, "noiseless mobile diverged at {width}");
        }
        let split = scenario(450.0, 2.2, ExecutionTarget::Split { client_share: 0.5 });
        let scalar = testbed.simulate_session_scalar(&split, 33).unwrap();
        let batched = testbed.simulate_session_batched(&split, 33, 8).unwrap();
        assert_eq!(batched, scalar);
    }
}
