//! # xr-stats
//!
//! Numerics substrate for the xr-perf workspace: dense linear algebra,
//! ordinary-least-squares multiple linear regression, polynomial feature
//! expansion, descriptive statistics, error metrics, and dataset splitting.
//!
//! The paper fits four multiple-linear-regression sub-models from testbed
//! measurements (compute-resource availability Eq. 3, encoding latency Eq. 10,
//! CNN complexity Eq. 12, mean power Eq. 21) and reports their R² values.
//! Mature numerics crates are not available in this offline environment, so
//! this crate implements the required pieces from first principles:
//!
//! * [`Matrix`] — a small dense row-major matrix with multiplication,
//!   transpose, and linear-system solving via Gaussian elimination with
//!   partial pivoting.
//! * [`LinearRegression`] / [`FittedLinearModel`] — OLS via the normal
//!   equations, exposing coefficients, R², adjusted R², residuals, and
//!   95 % confidence intervals for predictions.
//! * [`PolynomialFeatures`] — degree-2 expansions used by Eqs. 3 and 21.
//! * [`metrics`] — MAE, RMSE, MAPE, mean error %, and the *normalized
//!   accuracy* measure of Fig. 5.
//! * [`Summary`] — descriptive statistics for simulated traces.
//! * [`inference`] — the Student-t distribution (incomplete-beta CDF and
//!   quantile) and small-sample confidence intervals for replicated
//!   campaign measurements.
//! * [`split`] — seeded train/test splitting mirroring the paper's
//!   119 465 / 36 083 sample split.
//! * [`equivalence`] — statistical diffing of two replicated campaign CSVs
//!   (outside-CI rates, relative mean shifts) used to accept sanctioned
//!   draw-scheme re-keys against a same-scheme reseed null.
//!
//! ```
//! use xr_stats::{LinearRegression, metrics};
//!
//! // y = 2 + 3·x, recovered exactly from noiseless data.
//! let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
//! let ys: Vec<f64> = (0..20).map(|i| 2.0 + 3.0 * i as f64).collect();
//! let fit = LinearRegression::new().fit(&xs, &ys)?;
//! assert!((fit.intercept() - 2.0).abs() < 1e-9);
//! assert!((fit.coefficients()[0] - 3.0).abs() < 1e-9);
//! assert!(fit.r_squared() > 0.999);
//! assert!(metrics::mean_absolute_error(&ys, &fit.predict_many(&xs)) < 1e-9);
//! # Ok::<(), xr_types::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod descriptive;
pub mod equivalence;
pub mod features;
pub mod inference;
pub mod matrix;
pub mod metrics;
pub mod regression;
pub mod split;

pub use descriptive::Summary;
pub use equivalence::{compare_campaigns, EquivalenceReport};
pub use features::PolynomialFeatures;
pub use inference::{mean_confidence_interval, students_t_quantile};
pub use matrix::Matrix;
pub use regression::{FittedLinearModel, LinearRegression};
pub use split::TrainTestSplit;
