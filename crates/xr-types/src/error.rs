//! Workspace-wide error type.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Convenience alias used by fallible functions across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the xr-perf crates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Error {
    /// A model was given a parameter outside its validity range, e.g. a
    /// non-positive clock frequency or an M/M/1 queue with `λ ≥ µ`.
    InvalidParameter {
        /// Name of the offending parameter.
        name: String,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A regression fit was requested on a design matrix that is singular or
    /// has fewer rows than columns.
    SingularDesignMatrix {
        /// Number of observations provided.
        rows: usize,
        /// Number of features (including intercept).
        cols: usize,
    },
    /// The queueing system is unstable (`λ ≥ µ`), so steady-state quantities
    /// such as the mean waiting time do not exist.
    UnstableQueue {
        /// Offered arrival rate.
        arrival_rate: f64,
        /// Service rate.
        service_rate: f64,
    },
    /// A lookup (device, CNN, sensor, edge server) failed.
    NotFound {
        /// What kind of entity was looked up.
        entity: String,
        /// The key that missed.
        key: String,
    },
    /// A configuration is structurally inconsistent, e.g. a remote-inference
    /// scenario without any edge server.
    InvalidConfiguration(String),
}

impl Error {
    /// Shorthand constructor for [`Error::InvalidParameter`].
    #[must_use]
    pub fn invalid_parameter(name: impl Into<String>, reason: impl Into<String>) -> Self {
        Error::InvalidParameter {
            name: name.into(),
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`Error::NotFound`].
    #[must_use]
    pub fn not_found(entity: impl Into<String>, key: impl Into<String>) -> Self {
        Error::NotFound {
            entity: entity.into(),
            key: key.into(),
        }
    }

    /// Shorthand constructor for [`Error::InvalidConfiguration`].
    #[must_use]
    pub fn invalid_configuration(reason: impl Into<String>) -> Self {
        Error::InvalidConfiguration(reason.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Error::SingularDesignMatrix { rows, cols } => write!(
                f,
                "singular or under-determined design matrix ({rows} rows, {cols} columns)"
            ),
            Error::UnstableQueue {
                arrival_rate,
                service_rate,
            } => write!(
                f,
                "unstable queue: arrival rate {arrival_rate} is not below service rate {service_rate}"
            ),
            Error::NotFound { entity, key } => write!(f, "{entity} `{key}` not found"),
            Error::InvalidConfiguration(reason) => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = Error::invalid_parameter("f_c", "must be positive");
        assert_eq!(e.to_string(), "invalid parameter `f_c`: must be positive");

        let e = Error::UnstableQueue {
            arrival_rate: 10.0,
            service_rate: 5.0,
        };
        assert!(e.to_string().contains("unstable queue"));

        let e = Error::not_found("device", "XR9");
        assert_eq!(e.to_string(), "device `XR9` not found");

        let e = Error::SingularDesignMatrix { rows: 2, cols: 5 };
        assert!(e.to_string().contains("2 rows"));

        let e = Error::invalid_configuration("remote inference requires an edge server");
        assert!(e.to_string().starts_with("invalid configuration"));
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<Error>();
    }

    #[test]
    fn errors_compare_equal_structurally() {
        assert_eq!(
            Error::not_found("cnn", "yolo"),
            Error::not_found("cnn", "yolo")
        );
        assert_ne!(
            Error::not_found("cnn", "yolo"),
            Error::not_found("cnn", "nasnet")
        );
    }
}
