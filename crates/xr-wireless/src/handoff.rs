//! Horizontal and vertical handoff latency (Eq. 17).
//!
//! The paper computes the average handoff latency during a frame's processing
//! time as `L_HO = l_HO · P(HO)`, with `l_HO` taken from 802.11 mobile-IP
//! fast-handoff measurements \[50\] for horizontal handoffs and from integrated
//! WLAN/UMTS analyses \[51\] for vertical handoffs.

use crate::link::AccessTechnology;
use crate::mobility::RandomWalkMobility;
use serde::{Deserialize, Serialize};
use xr_types::Seconds;

/// The kind of handoff an XR device performs when leaving a coverage zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HandoffKind {
    /// Same access technology / sub-network (e.g. Wi-Fi AP to Wi-Fi AP).
    Horizontal,
    /// Different access technology or sub-network (e.g. Wi-Fi to LTE), the
    /// paper's focus for XR service migration.
    Vertical,
}

/// Handoff latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HandoffModel {
    horizontal_latency: Seconds,
    vertical_latency: Seconds,
}

impl HandoffModel {
    /// Default latencies drawn from the literature the paper cites:
    /// ≈ 65 ms for an 802.11 horizontal handoff (scan + re-association +
    /// mobile-IP binding update, \[50\]) and ≈ 1.2 s for a vertical
    /// WLAN↔cellular handoff (\[51\]).
    #[must_use]
    pub fn literature_defaults() -> Self {
        Self {
            horizontal_latency: Seconds::new(0.065),
            vertical_latency: Seconds::new(1.2),
        }
    }

    /// Creates a model from explicit per-kind latencies.
    ///
    /// # Panics
    ///
    /// Panics if either latency is negative.
    #[must_use]
    pub fn new(horizontal_latency: Seconds, vertical_latency: Seconds) -> Self {
        assert!(
            horizontal_latency.as_f64() >= 0.0 && vertical_latency.as_f64() >= 0.0,
            "handoff latencies must be non-negative"
        );
        Self {
            horizontal_latency,
            vertical_latency,
        }
    }

    /// The raw handoff execution latency `l_HO` for a handoff kind.
    #[must_use]
    pub fn latency(&self, kind: HandoffKind) -> Seconds {
        match kind {
            HandoffKind::Horizontal => self.horizontal_latency,
            HandoffKind::Vertical => self.vertical_latency,
        }
    }

    /// Classifies the handoff between two access technologies.
    #[must_use]
    pub fn classify(&self, from: AccessTechnology, to: AccessTechnology) -> HandoffKind {
        if from.same_family(to) {
            HandoffKind::Horizontal
        } else {
            HandoffKind::Vertical
        }
    }

    /// The expected handoff latency contribution to one frame (Eq. 17):
    /// `L_HO^q = l_HO · P(HO)` where `P(HO)` comes from the mobility model
    /// evaluated over the frame's processing window.
    #[must_use]
    pub fn expected_latency(
        &self,
        kind: HandoffKind,
        mobility: &RandomWalkMobility,
        frame_window: Seconds,
    ) -> Seconds {
        self.latency(kind) * mobility.handoff_probability(frame_window)
    }

    /// Expected latency for a known handoff probability (useful when the
    /// probability comes from a measured trace instead of the mobility
    /// model).
    ///
    /// # Panics
    ///
    /// Panics if the probability lies outside `[0, 1]`.
    #[must_use]
    pub fn expected_latency_with_probability(
        &self,
        kind: HandoffKind,
        probability: f64,
    ) -> Seconds {
        assert!(
            (0.0..=1.0).contains(&probability),
            "handoff probability must lie in [0, 1]"
        );
        self.latency(kind) * probability
    }
}

impl Default for HandoffModel {
    fn default() -> Self {
        Self::literature_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::CoverageZone;
    use xr_types::{Meters, MetersPerSecond};

    #[test]
    fn vertical_handoff_is_slower_than_horizontal() {
        let m = HandoffModel::literature_defaults();
        assert!(m.latency(HandoffKind::Vertical) > m.latency(HandoffKind::Horizontal));
    }

    #[test]
    fn classification_follows_technology_family() {
        let m = HandoffModel::default();
        assert_eq!(
            m.classify(AccessTechnology::WiFi5GHz, AccessTechnology::WiFi2_4GHz),
            HandoffKind::Horizontal
        );
        assert_eq!(
            m.classify(AccessTechnology::WiFi5GHz, AccessTechnology::Lte),
            HandoffKind::Vertical
        );
    }

    #[test]
    fn expected_latency_scales_with_probability() {
        let m = HandoffModel::new(Seconds::new(0.1), Seconds::new(1.0));
        let full = m.expected_latency_with_probability(HandoffKind::Vertical, 1.0);
        let half = m.expected_latency_with_probability(HandoffKind::Vertical, 0.5);
        let none = m.expected_latency_with_probability(HandoffKind::Vertical, 0.0);
        assert!((full.as_f64() - 1.0).abs() < 1e-12);
        assert!((half.as_f64() - 0.5).abs() < 1e-12);
        assert_eq!(none, Seconds::ZERO);
    }

    #[test]
    fn static_device_contributes_no_handoff_latency() {
        let m = HandoffModel::literature_defaults();
        let mobility = RandomWalkMobility::new(
            MetersPerSecond::new(0.0),
            Seconds::new(0.1),
            CoverageZone::new(Meters::new(30.0)),
        );
        let l = m.expected_latency(HandoffKind::Vertical, &mobility, Seconds::new(0.5));
        assert_eq!(l, Seconds::ZERO);
    }

    #[test]
    fn mobile_device_contributes_bounded_latency() {
        let m = HandoffModel::literature_defaults();
        let mobility = RandomWalkMobility::new(
            MetersPerSecond::new(10.0),
            Seconds::new(0.1),
            CoverageZone::new(Meters::new(30.0)),
        );
        let l = m.expected_latency(HandoffKind::Vertical, &mobility, Seconds::new(0.5));
        assert!(l > Seconds::ZERO);
        assert!(l <= m.latency(HandoffKind::Vertical));
    }

    #[test]
    #[should_panic(expected = "handoff probability must lie in [0, 1]")]
    fn out_of_range_probability_rejected() {
        let _ =
            HandoffModel::default().expected_latency_with_probability(HandoffKind::Horizontal, 1.5);
    }

    #[test]
    #[should_panic(expected = "handoff latencies must be non-negative")]
    fn negative_latency_rejected() {
        let _ = HandoffModel::new(Seconds::new(-0.1), Seconds::new(1.0));
    }
}
