//! The operating-point grid a campaign sweeps.

use serde::{Deserialize, Serialize};
use xr_types::{Error, ExecutionTarget, MigrationPolicy, Result, TopologyLayout};

/// The frame sizes swept in Figs. 4–5 (the paper's x-axis, pixel²).
pub const PAPER_FRAME_SIZES: [f64; 5] = [300.0, 400.0, 500.0, 600.0, 700.0];
/// The CPU clocks swept in Fig. 4 (GHz).
pub const PAPER_CPU_CLOCKS: [f64; 3] = [1.0, 2.0, 3.0];
/// The held-out client device the paper evaluates on.
pub const PAPER_EVAL_DEVICE: &str = "XR2";

/// One wireless condition of the sweep: overrides applied to every edge
/// server of the scenario. The [`WirelessCondition::baseline`] condition
/// applies no overrides, reproducing the testbed's nominal link exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WirelessCondition {
    /// Label used in campaign rows (e.g. `"baseline"`, `"cell-edge"`).
    pub label: String,
    /// Distance from the client to each edge server in metres; `None` keeps
    /// the scenario default.
    pub distance_m: Option<f64>,
    /// Link throughput override in Mbit/s; `None` keeps the technology's
    /// nominal throughput.
    pub throughput_mbps: Option<f64>,
}

impl WirelessCondition {
    /// The testbed's nominal link: no overrides.
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            label: "baseline".to_string(),
            distance_m: None,
            throughput_mbps: None,
        }
    }

    /// A named condition overriding edge distance and/or throughput.
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        distance_m: Option<f64>,
        throughput_mbps: Option<f64>,
    ) -> Self {
        Self {
            label: label.into(),
            distance_m,
            throughput_mbps,
        }
    }

    /// `true` when the condition applies no overrides.
    #[must_use]
    pub fn is_baseline(&self) -> bool {
        self.distance_m.is_none() && self.throughput_mbps.is_none()
    }
}

impl Default for WirelessCondition {
    fn default() -> Self {
        Self::baseline()
    }
}

/// One mobility condition of the sweep: the device's random-walk speed and
/// the coverage radius of its serving zone. The
/// [`MobilityCondition::static_device`] condition (zero speed) applies no
/// overrides, reproducing the testbed's stationary default exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilityCondition {
    /// Label used in campaign rows (e.g. `"static"`, `"walk"`, `"vehicle"`).
    pub label: String,
    /// Device speed in m/s; zero disables mobility entirely.
    pub speed_mps: f64,
    /// Coverage radius of the serving zone in metres.
    pub coverage_radius_m: f64,
}

impl MobilityCondition {
    /// The stationary default: no mobility, the scenario's nominal coverage
    /// radius.
    #[must_use]
    pub fn static_device() -> Self {
        Self {
            label: "static".to_string(),
            speed_mps: 0.0,
            coverage_radius_m: 30.0,
        }
    }

    /// A named mobility condition.
    #[must_use]
    pub fn new(label: impl Into<String>, speed_mps: f64, coverage_radius_m: f64) -> Self {
        Self {
            label: label.into(),
            speed_mps,
            coverage_radius_m,
        }
    }

    /// `true` when the device does not move.
    #[must_use]
    pub fn is_static(&self) -> bool {
        self.speed_mps <= 0.0
    }
}

impl Default for MobilityCondition {
    fn default() -> Self {
        Self::static_device()
    }
}

/// One operating point of a campaign: the cartesian coordinates of a single
/// measurement, plus its stable index in the grid's enumeration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Position in the grid's enumeration order (0-based). Stable across
    /// runs; the per-point seed and the output row order both derive from
    /// it. Valid only for a full `points()` enumeration: when sub-slicing or
    /// filtering points before handing them to a runner, the runner's
    /// `PointContext::index` (the slice position) is the authoritative index
    /// and seed source, not this field.
    pub index: usize,
    /// Frame-size parameter (pixel²).
    pub frame_size: f64,
    /// CPU clock in GHz.
    pub cpu_clock_ghz: f64,
    /// Where the inference task executes.
    pub execution: ExecutionTarget,
    /// Client device catalog name.
    pub device: String,
    /// Wireless condition applied to the scenario's edge links.
    pub wireless: WirelessCondition,
    /// Mobility condition applied to the scenario's device.
    pub mobility: MobilityCondition,
    /// Measurement-campaign size at this point: how many ground-truth
    /// frames each session simulates. `None` keeps the experiment context's
    /// default (20 quick / 100 paper-scale).
    pub frames_per_session: Option<u64>,
    /// Number of concurrent sessions sharing the tagged session's edge
    /// server. `None` keeps contention off entirely (the paper's
    /// private-edge assumption); `Some(1)` routes the edge stage through an
    /// M/M/1 queue occupied by the tagged session alone.
    pub users_per_edge: Option<u32>,
    /// Per-session frame rate override in Hz. `None` keeps the scenario
    /// default (30 fps). Contention sweeps pin this low so the shared edge
    /// queue has headroom for a multi-user population before `ρ = 1`.
    pub frame_rate_hz: Option<f64>,
    /// Edge-topology layout the session roams. `None` keeps the legacy
    /// single-zone mobility model (no `xr_core::TopologyConfig` at all).
    pub topology: Option<TopologyLayout>,
    /// Edge-site density in sites/km² for tiled/Voronoi layouts. `None`
    /// keeps the topology's default density when a layout is set.
    pub site_density: Option<f64>,
    /// State-migration policy priced on edge-to-edge handoffs. `None` keeps
    /// the default (eager) when a layout is set.
    pub migration_policy: Option<MigrationPolicy>,
}

/// A campaign grid: the cartesian product of twelve axes, enumerated in a
/// fixed row-major order (topology layout, site density, migration policy,
/// edge population, frame rate, campaign size, device, wireless, mobility,
/// execution, CPU clock, frame size — frame size varies fastest, matching
/// the Fig. 4 panel layout), plus the
/// per-point replication count (how many independently seeded sessions each
/// operating point is measured with — not an enumeration axis, the
/// collector aggregates replications into one row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepGrid {
    frame_sizes: Vec<f64>,
    cpu_clocks: Vec<f64>,
    executions: Vec<ExecutionTarget>,
    devices: Vec<String>,
    wireless: Vec<WirelessCondition>,
    mobility: Vec<MobilityCondition>,
    /// Measurement-campaign sizes (frames per session); `None` entries keep
    /// the context default. The axis opens training-set scaling studies:
    /// sweeping it plots estimator precision against campaign size.
    frames_per_session: Vec<Option<u64>>,
    /// Edge-population axis: how many concurrent sessions share the tagged
    /// session's edge server. `None` entries keep contention off (the
    /// paper's private-edge assumption). Sweeping it plots the latency knee
    /// against the tenant population.
    users_per_edge: Vec<Option<u32>>,
    /// Per-session frame-rate axis in Hz; `None` entries keep the scenario
    /// default (30 fps).
    frame_rates: Vec<Option<f64>>,
    /// Edge-topology layout axis. `None` entries keep the legacy
    /// single-zone mobility model; sweeping it plots migration cost against
    /// the site tiling.
    topologies: Vec<Option<TopologyLayout>>,
    /// Edge-site density axis in sites/km²; `None` entries keep the
    /// topology default.
    site_densities: Vec<Option<f64>>,
    /// State-migration policy axis; `None` entries keep the default
    /// (eager).
    migration_policies: Vec<Option<MigrationPolicy>>,
    replications: usize,
}

impl SweepGrid {
    /// The paper's Fig. 4 panel grid for one execution target: 5 frame sizes
    /// × 3 clocks on the held-out XR2 client over the nominal link.
    #[must_use]
    pub fn paper_panel(execution: ExecutionTarget) -> Self {
        Self {
            frame_sizes: PAPER_FRAME_SIZES.to_vec(),
            cpu_clocks: PAPER_CPU_CLOCKS.to_vec(),
            executions: vec![execution],
            devices: vec![PAPER_EVAL_DEVICE.to_string()],
            wireless: vec![WirelessCondition::baseline()],
            mobility: vec![MobilityCondition::static_device()],
            frames_per_session: vec![None],
            users_per_edge: vec![None],
            frame_rates: vec![None],
            topologies: vec![None],
            site_densities: vec![None],
            migration_policies: vec![None],
            replications: 1,
        }
    }

    /// Replaces the frame-size axis.
    #[must_use]
    pub fn with_frame_sizes(mut self, sizes: impl Into<Vec<f64>>) -> Self {
        self.frame_sizes = sizes.into();
        self
    }

    /// Replaces the CPU-clock axis.
    #[must_use]
    pub fn with_cpu_clocks(mut self, clocks: impl Into<Vec<f64>>) -> Self {
        self.cpu_clocks = clocks.into();
        self
    }

    /// Replaces the execution-target axis.
    #[must_use]
    pub fn with_executions(mut self, executions: impl Into<Vec<ExecutionTarget>>) -> Self {
        self.executions = executions.into();
        self
    }

    /// Replaces the device axis (client catalog names).
    #[must_use]
    pub fn with_devices(mut self, devices: Vec<String>) -> Self {
        self.devices = devices;
        self
    }

    /// Replaces the wireless-condition axis.
    #[must_use]
    pub fn with_wireless(mut self, wireless: Vec<WirelessCondition>) -> Self {
        self.wireless = wireless;
        self
    }

    /// Replaces the mobility-condition axis.
    #[must_use]
    pub fn with_mobility(mut self, mobility: Vec<MobilityCondition>) -> Self {
        self.mobility = mobility;
        self
    }

    /// Replaces the measurement-campaign-size axis: each value is a
    /// frames-per-session count every other axis combination is measured
    /// with (values clamped to at least 1 frame).
    #[must_use]
    pub fn with_frames_per_session(mut self, frames: impl Into<Vec<u64>>) -> Self {
        self.frames_per_session = frames.into().into_iter().map(|f| Some(f.max(1))).collect();
        self
    }

    /// Replaces the edge-population axis: each value is a number of
    /// concurrent sessions sharing the tagged session's edge server (values
    /// clamped to at least 1 user — the tagged session itself).
    #[must_use]
    pub fn with_users_per_edge(mut self, users: impl Into<Vec<u32>>) -> Self {
        self.users_per_edge = users.into().into_iter().map(|u| Some(u.max(1))).collect();
        self
    }

    /// Replaces the per-session frame-rate axis (Hz). Non-positive rates are
    /// rejected later, when the operating point is turned into a scenario.
    #[must_use]
    pub fn with_frame_rates(mut self, rates: impl Into<Vec<f64>>) -> Self {
        self.frame_rates = rates.into().into_iter().map(Some).collect();
        self
    }

    /// Replaces the edge-topology layout axis. Each entry places the
    /// session on a multi-site `xr_core::TopologyConfig` with the given
    /// tiling; the legacy single-zone model is spelled
    /// [`TopologyLayout::Single`].
    #[must_use]
    pub fn with_topologies(mut self, layouts: impl Into<Vec<TopologyLayout>>) -> Self {
        self.topologies = layouts.into().into_iter().map(Some).collect();
        self
    }

    /// Replaces the edge-site density axis (sites/km²). Non-positive
    /// densities are rejected later, when the operating point is turned
    /// into a scenario.
    #[must_use]
    pub fn with_site_densities(mut self, densities: impl Into<Vec<f64>>) -> Self {
        self.site_densities = densities.into().into_iter().map(Some).collect();
        self
    }

    /// Replaces the state-migration policy axis.
    #[must_use]
    pub fn with_migration_policies(mut self, policies: impl Into<Vec<MigrationPolicy>>) -> Self {
        self.migration_policies = policies.into().into_iter().map(Some).collect();
        self
    }

    /// Sets the per-point replication count (clamped to at least 1).
    #[must_use]
    pub fn with_replications(mut self, replications: usize) -> Self {
        self.replications = replications.max(1);
        self
    }

    /// Number of independently seeded sessions per operating point.
    #[must_use]
    pub fn replications(&self) -> usize {
        self.replications
    }

    /// Number of operating points in the grid (replications excluded — they
    /// aggregate into the same row).
    #[must_use]
    pub fn len(&self) -> usize {
        self.frame_sizes.len()
            * self.cpu_clocks.len()
            * self.executions.len()
            * self.devices.len()
            * self.wireless.len()
            * self.mobility.len()
            * self.frames_per_session.len()
            * self.users_per_edge.len()
            * self.frame_rates.len()
            * self.topologies.len()
            * self.site_densities.len()
            * self.migration_policies.len()
    }

    /// `true` when any axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A 64-bit fingerprint of the grid's exact contents: every axis value
    /// (floats by bit pattern, labels by bytes) and the replication count,
    /// folded through the workspace's SplitMix64 chain ([`xr_types::seed`])
    /// with a distinct tag per axis so reordered or re-typed values cannot
    /// collide by construction of the input encoding.
    ///
    /// Two grids fingerprint equally iff they enumerate the same points with
    /// the same replications — this is what shard manifests and checkpoint
    /// files carry to detect merging or resuming against the wrong grid.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        use xr_types::seed::mix;
        fn fold_f64s(h: u64, tag: u64, values: impl IntoIterator<Item = Option<f64>>) -> u64 {
            let mut h = mix(h, tag);
            let mut len = 0u64;
            for value in values {
                h = match value {
                    // `to_bits` keeps -0.0 ≠ 0.0 and NaN payloads distinct;
                    // identity is "same bits", matching CSV formatting.
                    Some(v) => mix(mix(h, 1), v.to_bits()),
                    None => mix(h, 0),
                };
                len += 1;
            }
            mix(h, len)
        }
        fn fold_str(h: u64, s: &str) -> u64 {
            let mut h = mix(h, s.len() as u64);
            for chunk in s.as_bytes().chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                h = mix(h, u64::from_le_bytes(word));
            }
            h
        }
        // Version tag: bump if the encoding ever changes, so stale
        // checkpoints from older layouts are detected rather than trusted.
        let mut h = mix(0x7852_5347_5249_4431, 1); // "xRSGRID1", v1
        h = fold_f64s(h, 1, self.frame_sizes.iter().map(|&v| Some(v)));
        h = fold_f64s(h, 2, self.cpu_clocks.iter().map(|&v| Some(v)));
        h = mix(h, 3);
        for execution in &self.executions {
            h = match execution {
                ExecutionTarget::Local => mix(h, 1),
                ExecutionTarget::Remote => mix(h, 2),
                ExecutionTarget::Split { client_share } => mix(mix(h, 3), client_share.to_bits()),
            };
        }
        h = mix(h, self.executions.len() as u64);
        h = mix(h, 4);
        for device in &self.devices {
            h = fold_str(h, device);
        }
        h = mix(h, self.devices.len() as u64);
        h = mix(h, 5);
        for w in &self.wireless {
            h = fold_str(h, &w.label);
            h = fold_f64s(h, 0, [w.distance_m, w.throughput_mbps]);
        }
        h = mix(h, self.wireless.len() as u64);
        h = mix(h, 6);
        for m in &self.mobility {
            h = fold_str(h, &m.label);
            h = fold_f64s(h, 0, [Some(m.speed_mps), Some(m.coverage_radius_m)]);
        }
        h = mix(h, self.mobility.len() as u64);
        h = mix(h, 7);
        for frames in &self.frames_per_session {
            h = match frames {
                Some(f) => mix(mix(h, 1), *f),
                None => mix(h, 0),
            };
        }
        h = mix(h, self.frames_per_session.len() as u64);
        h = mix(h, 8);
        for users in &self.users_per_edge {
            h = match users {
                Some(u) => mix(mix(h, 1), u64::from(*u)),
                None => mix(h, 0),
            };
        }
        h = mix(h, self.users_per_edge.len() as u64);
        h = fold_f64s(h, 9, self.frame_rates.iter().copied());
        h = mix(h, 10);
        for layout in &self.topologies {
            h = match layout {
                None => mix(h, 0),
                Some(TopologyLayout::Single) => mix(h, 1),
                Some(TopologyLayout::Square) => mix(h, 2),
                Some(TopologyLayout::Hex) => mix(h, 3),
                Some(TopologyLayout::Voronoi) => mix(h, 4),
            };
        }
        h = mix(h, self.topologies.len() as u64);
        h = fold_f64s(h, 11, self.site_densities.iter().copied());
        h = mix(h, 12);
        for policy in &self.migration_policies {
            h = match policy {
                None => mix(h, 0),
                Some(MigrationPolicy::Eager) => mix(h, 1),
                Some(MigrationPolicy::Lazy) => mix(h, 2),
            };
        }
        h = mix(h, self.migration_policies.len() as u64);
        mix(h, self.replications as u64)
    }

    /// Enumerates every operating point in the grid's canonical order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when an axis is empty — an empty
    /// campaign is almost always a configuration bug, so it is rejected
    /// loudly instead of silently producing zero rows.
    pub fn points(&self) -> Result<Vec<OperatingPoint>> {
        if self.is_empty() {
            return Err(Error::invalid_parameter(
                "grid",
                "every sweep axis needs at least one value",
            ));
        }
        let mut points = Vec::with_capacity(self.len());
        let mut index = 0usize;
        for &topology in &self.topologies {
            for &site_density in &self.site_densities {
                for &migration_policy in &self.migration_policies {
                    for &users_per_edge in &self.users_per_edge {
                        for &frame_rate_hz in &self.frame_rates {
                            for &frames_per_session in &self.frames_per_session {
                                for device in &self.devices {
                                    for wireless in &self.wireless {
                                        for mobility in &self.mobility {
                                            for &execution in &self.executions {
                                                for &clock in &self.cpu_clocks {
                                                    for &size in &self.frame_sizes {
                                                        points.push(OperatingPoint {
                                                            index,
                                                            frame_size: size,
                                                            cpu_clock_ghz: clock,
                                                            execution,
                                                            device: device.clone(),
                                                            wireless: wireless.clone(),
                                                            mobility: mobility.clone(),
                                                            frames_per_session,
                                                            users_per_edge,
                                                            frame_rate_hz,
                                                            topology,
                                                            site_density,
                                                            migration_policy,
                                                        });
                                                        index += 1;
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_panel_matches_the_figure_layout() {
        let grid = SweepGrid::paper_panel(ExecutionTarget::Local);
        assert_eq!(grid.len(), 15);
        let points = grid.points().unwrap();
        assert_eq!(points.len(), 15);
        // Frame size varies fastest, clock next: the Fig. 4 row order.
        assert_eq!(points[0].frame_size, 300.0);
        assert_eq!(points[0].cpu_clock_ghz, 1.0);
        assert_eq!(points[4].frame_size, 700.0);
        assert_eq!(points[5].frame_size, 300.0);
        assert_eq!(points[5].cpu_clock_ghz, 2.0);
        assert_eq!(points[14].cpu_clock_ghz, 3.0);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
            assert_eq!(p.device, "XR2");
            assert!(p.wireless.is_baseline());
            assert!(p.mobility.is_static());
        }
        assert_eq!(grid.replications(), 1);
    }

    #[test]
    fn axes_multiply_and_enumerate_outer_to_inner() {
        let grid = SweepGrid::paper_panel(ExecutionTarget::Remote)
            .with_frame_sizes([300.0, 500.0])
            .with_cpu_clocks([2.0])
            .with_executions([ExecutionTarget::Local, ExecutionTarget::Remote])
            .with_devices(vec!["XR2".into(), "XR3".into()])
            .with_wireless(vec![
                WirelessCondition::baseline(),
                WirelessCondition::new("far", Some(60.0), None),
            ]);
        assert_eq!(grid.len(), 16); // 2 sizes × 1 clock × 2 targets × 2 devices × 2 links
        let points = grid.points().unwrap();
        assert_eq!(points.len(), 16);
        assert_eq!(points[0].device, "XR2");
        assert_eq!(points[8].device, "XR3");
        assert!(points[0].wireless.is_baseline());
        assert_eq!(points[4].wireless.label, "far");
        assert!(!points[4].wireless.is_baseline());
    }

    #[test]
    fn empty_axes_are_rejected() {
        let grid = SweepGrid::paper_panel(ExecutionTarget::Local).with_frame_sizes([]);
        assert!(grid.is_empty());
        assert!(grid.points().is_err());
        let grid = SweepGrid::paper_panel(ExecutionTarget::Local).with_mobility(vec![]);
        assert!(grid.points().is_err());
    }

    #[test]
    fn frames_per_session_axis_multiplies_outermost() {
        let grid = SweepGrid::paper_panel(ExecutionTarget::Local)
            .with_frame_sizes([300.0, 500.0])
            .with_cpu_clocks([2.0]);
        assert_eq!(grid.len(), 2);
        let points = grid.points().unwrap();
        assert!(points.iter().all(|p| p.frames_per_session.is_none()));
        let grid = grid.with_frames_per_session([10, 40, 0]);
        assert_eq!(grid.len(), 6, "campaign-size axis multiplies the grid");
        let points = grid.points().unwrap();
        // Campaign size is the outermost axis: each size's block is
        // contiguous, the inner layout is unchanged.
        assert_eq!(points[0].frames_per_session, Some(10));
        assert_eq!(points[1].frames_per_session, Some(10));
        assert_eq!(points[2].frames_per_session, Some(40));
        assert_eq!(points[4].frames_per_session, Some(1), "zero clamps to 1");
        assert_eq!(points[2].frame_size, 300.0);
        assert_eq!(points[3].frame_size, 500.0);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn contention_axes_multiply_outermost_and_default_off() {
        let grid = SweepGrid::paper_panel(ExecutionTarget::Remote)
            .with_frame_sizes([300.0])
            .with_cpu_clocks([2.0]);
        let points = grid.points().unwrap();
        assert!(points.iter().all(|p| p.users_per_edge.is_none()));
        assert!(points.iter().all(|p| p.frame_rate_hz.is_none()));

        let grid = grid
            .with_users_per_edge([1, 4, 0])
            .with_frame_rates([5.0, 10.0]);
        assert_eq!(grid.len(), 6, "population × frame-rate axes multiply");
        let points = grid.points().unwrap();
        // Population is the outermost axis, frame rate the next: each
        // population's block is contiguous and spans every frame rate.
        assert_eq!(points[0].users_per_edge, Some(1));
        assert_eq!(points[0].frame_rate_hz, Some(5.0));
        assert_eq!(points[1].frame_rate_hz, Some(10.0));
        assert_eq!(points[2].users_per_edge, Some(4));
        assert_eq!(points[4].users_per_edge, Some(1), "zero clamps to 1 user");
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn topology_axes_multiply_outermost_and_default_off() {
        let grid = SweepGrid::paper_panel(ExecutionTarget::Remote)
            .with_frame_sizes([300.0])
            .with_cpu_clocks([2.0]);
        let points = grid.points().unwrap();
        assert!(points.iter().all(|p| p.topology.is_none()));
        assert!(points.iter().all(|p| p.site_density.is_none()));
        assert!(points.iter().all(|p| p.migration_policy.is_none()));

        let grid = grid
            .with_topologies([TopologyLayout::Square, TopologyLayout::Hex])
            .with_site_densities([400.0, 1600.0])
            .with_migration_policies([MigrationPolicy::Eager, MigrationPolicy::Lazy])
            .with_users_per_edge([3]);
        assert_eq!(grid.len(), 8, "layout × density × policy axes multiply");
        let points = grid.points().unwrap();
        // Layout is the outermost axis, density next, policy third: each
        // layout's block is contiguous and spans every density × policy.
        assert_eq!(points[0].topology, Some(TopologyLayout::Square));
        assert_eq!(points[0].site_density, Some(400.0));
        assert_eq!(points[0].migration_policy, Some(MigrationPolicy::Eager));
        assert_eq!(points[1].migration_policy, Some(MigrationPolicy::Lazy));
        assert_eq!(points[2].site_density, Some(1600.0));
        assert_eq!(points[4].topology, Some(TopologyLayout::Hex));
        assert!(points.iter().all(|p| p.users_per_edge == Some(3)));
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn fingerprints_separate_every_axis_and_stay_pure() {
        let base = SweepGrid::paper_panel(ExecutionTarget::Local);
        assert_eq!(base.fingerprint(), base.fingerprint());
        assert_eq!(
            base.fingerprint(),
            SweepGrid::paper_panel(ExecutionTarget::Local).fingerprint()
        );
        // Every axis perturbation moves the fingerprint.
        let variants = [
            base.clone().with_frame_sizes([300.0]),
            base.clone().with_cpu_clocks([1.5]),
            base.clone().with_executions([ExecutionTarget::Remote]),
            base.clone()
                .with_executions([ExecutionTarget::Split { client_share: 0.5 }]),
            base.clone()
                .with_executions([ExecutionTarget::Split { client_share: 0.6 }]),
            base.clone().with_devices(vec!["XR3".into()]),
            base.clone()
                .with_wireless(vec![WirelessCondition::new("far", Some(60.0), None)]),
            base.clone()
                .with_wireless(vec![WirelessCondition::new("far", None, Some(60.0))]),
            base.clone()
                .with_mobility(vec![MobilityCondition::new("walk", 1.5, 30.0)]),
            base.clone().with_frames_per_session([20]),
            base.clone().with_users_per_edge([2]),
            base.clone().with_frame_rates([20.0]),
            base.clone().with_topologies([TopologyLayout::Hex]),
            base.clone().with_site_densities([400.0]),
            base.clone()
                .with_migration_policies([MigrationPolicy::Lazy]),
            base.clone().with_replications(2),
            base.clone().with_frame_sizes([300.0, 400.0]),
        ];
        let mut prints: Vec<u64> = variants.iter().map(SweepGrid::fingerprint).collect();
        prints.push(base.fingerprint());
        let total = prints.len();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), total, "fingerprint collision across axes");
    }

    #[test]
    fn mobility_axis_multiplies_and_replications_clamp() {
        let grid = SweepGrid::paper_panel(ExecutionTarget::Remote)
            .with_frame_sizes([500.0])
            .with_cpu_clocks([2.0])
            .with_mobility(vec![
                MobilityCondition::static_device(),
                MobilityCondition::new("vehicle", 20.0, 15.0),
            ])
            .with_replications(0);
        assert_eq!(grid.len(), 2);
        assert_eq!(grid.replications(), 1, "replications clamp to at least 1");
        let points = grid.points().unwrap();
        assert!(points[0].mobility.is_static());
        assert_eq!(points[1].mobility.label, "vehicle");
        assert_eq!(points[1].mobility.speed_mps, 20.0);
        assert_eq!(points[1].mobility.coverage_radius_m, 15.0);
        assert!(!points[1].mobility.is_static());
        let grid = grid.with_replications(7);
        assert_eq!(grid.replications(), 7);
        assert_eq!(grid.len(), 2, "replications are not an enumeration axis");
    }
}
