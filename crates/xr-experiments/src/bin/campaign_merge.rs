//! Merges shard campaign CSVs back into the unsharded artifact.
//!
//! ```text
//! campaign_merge --out target/experiments/campaign.csv \
//!     target/experiments/campaign_shard_1of3.csv \
//!     target/experiments/campaign_shard_2of3.csv \
//!     target/experiments/campaign_shard_3of3.csv
//! ```
//!
//! Each shard CSV must sit next to its `.manifest` (written by `campaign
//! --shard i/N`). The merge validates that every manifest names the same
//! campaign seed, grid fingerprint and grid size, that the shard set is a
//! disjoint complete cover, and that each CSV carries exactly its declared
//! rows — then interleaves the rows back into canonical grid order. The
//! output is **byte-identical** to the `campaign.csv` of an unsharded run.

use std::path::PathBuf;
use xr_experiments::shard_campaign::merge_campaign_csvs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(position) = args.iter().position(|a| a == "--out") else {
        eprintln!("usage: campaign_merge --out <merged.csv> <shard.csv>...");
        std::process::exit(2);
    };
    let Some(out_path) = args.get(position + 1).map(PathBuf::from) else {
        eprintln!("--out requires a file path");
        std::process::exit(2);
    };
    let shard_paths: Vec<PathBuf> = args
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != position && *i != position + 1)
        .map(|(_, a)| PathBuf::from(a))
        .collect();
    if shard_paths.is_empty() {
        eprintln!("usage: campaign_merge --out <merged.csv> <shard.csv>...");
        std::process::exit(2);
    }
    let merged = match merge_campaign_csvs(&shard_paths) {
        Ok(merged) => merged,
        Err(error) => {
            eprintln!("cannot merge shards: {error}");
            std::process::exit(1);
        }
    };
    if let Some(parent) = out_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(error) = std::fs::write(&out_path, &merged) {
        eprintln!("cannot write {}: {error}", out_path.display());
        std::process::exit(1);
    }
    println!(
        "merged {} shard(s) into {} ({} data row(s))",
        shard_paths.len(),
        out_path.display(),
        merged.lines().count().saturating_sub(1)
    );
}
