//! Ablation study over the framework's modelling ingredients: drop one
//! ingredient of the proposed latency model at a time and measure
//! how much accuracy it costs against the ground truth, over the same remote
//! sweep as Fig. 4(b).

use crate::context::ExperimentContext;
use serde::{Deserialize, Serialize};
use xr_core::LatencyModel;
use xr_stats::metrics;
use xr_sweep::SweepGrid;
use xr_types::{ExecutionTarget, Result};

/// One ablated model variant and its accuracy against ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Mean error against ground truth (%), over the remote latency sweep.
    pub mean_error_percent: f64,
    /// Normalized accuracy (%), the Fig. 5 measure.
    pub normalized_accuracy: f64,
}

/// The ablation-study results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationStudy {
    /// One row per model variant, full model first.
    pub rows: Vec<AblationRow>,
}

impl AblationStudy {
    /// Runs the study: the full calibrated model plus each single-ingredient
    /// ablation, evaluated on the remote latency sweep at 2 GHz.
    ///
    /// # Errors
    ///
    /// Propagates scenario and model errors.
    pub fn run(ctx: &ExperimentContext) -> Result<Self> {
        // Ground truth over the frame-size sweep at 2 GHz, remote inference —
        // one campaign on the shared engine.
        let grid = SweepGrid::paper_panel(ExecutionTarget::Remote).with_cpu_clocks([2.0]);
        let measured = ctx.runner().run(&grid.points()?, |_, point| {
            let scenario = ctx.scenario_for(point)?;
            let session = ctx
                .testbed()
                .simulate_session(&scenario, ctx.frames_per_point())?;
            Ok((session.mean_latency().as_f64() * 1e3, scenario))
        })?;
        let (ground_truth, scenarios): (Vec<f64>, Vec<_>) = measured.into_iter().unzip();

        // The calibrated latency model is the reference; each ablation strips
        // one ingredient from it.
        let calibrated = ctx.calibrated();
        let base = || {
            LatencyModel::published()
                .with_compute_model(calibrated.compute.clone())
                .with_cnn_complexity(calibrated.complexity.clone())
                .with_encoding_model(calibrated.encoding.clone())
        };
        let variants: Vec<(String, LatencyModel)> = vec![
            ("full model".into(), base()),
            (
                "without memory-bandwidth terms".into(),
                base().without_memory_terms(),
            ),
            ("without M/M/1 buffering".into(), base().without_buffering()),
            (
                "published coefficients (no re-calibration)".into(),
                LatencyModel::published(),
            ),
        ];

        let mut rows = Vec::new();
        for (variant, model) in variants {
            let predictions: Vec<f64> = scenarios
                .iter()
                .map(|s| model.analyze(s).map(|b| b.total().as_f64() * 1e3))
                .collect::<Result<Vec<_>>>()?;
            rows.push(AblationRow {
                variant,
                mean_error_percent: metrics::mean_error_percent(&ground_truth, &predictions),
                normalized_accuracy: metrics::normalized_accuracy(&ground_truth, &predictions),
            });
        }
        Ok(Self { rows })
    }

    /// The full (un-ablated) model's row.
    ///
    /// # Panics
    ///
    /// Never panics: the study always evaluates the full model first.
    #[must_use]
    pub fn full_model(&self) -> &AblationRow {
        &self.rows[0]
    }

    /// Console/CSV rows.
    #[must_use]
    pub fn table_rows(&self) -> Vec<Vec<String>> {
        self.rows
            .iter()
            .map(|r| {
                vec![
                    r.variant.clone(),
                    format!("{:.2}", r.mean_error_percent),
                    format!("{:.2}", r.normalized_accuracy),
                ]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_ablation_is_no_better_than_the_full_model() {
        let ctx = ExperimentContext::quick(61).unwrap();
        let study = AblationStudy::run(&ctx).unwrap();
        assert_eq!(study.rows.len(), 4);
        let full = study.full_model().mean_error_percent;
        for row in &study.rows[1..] {
            assert!(
                row.mean_error_percent >= full - 0.5,
                "{} should not beat the full model ({} vs {})",
                row.variant,
                row.mean_error_percent,
                full
            );
        }
        // Structural ablations hurt visibly.
        let no_memory = &study.rows[1];
        assert!(no_memory.mean_error_percent > full);
        assert_eq!(study.table_rows().len(), 4);
    }
}
