//! # xr-types
//!
//! Shared units, newtypes, identifiers, and error types for the `xr-perf`
//! workspace — a reproduction of *"A Performance Analysis Modeling Framework
//! for Extended Reality Applications in Edge-Assisted Wireless Networks"*
//! (Mallik, Xie, Han — ICDCS 2024).
//!
//! The paper's analytical models mix many physical dimensions (seconds,
//! millijoules, megabytes, gigahertz, pixels², Mbps, …). Every quantity that
//! crosses a crate boundary in this workspace is wrapped in a newtype from
//! this crate so that, e.g., a memory bandwidth can never be passed where a
//! clock frequency is expected ([C-NEWTYPE]).
//!
//! ```
//! use xr_types::{GigaHertz, MegaBytes, Seconds};
//!
//! let clock = GigaHertz::new(2.0);
//! let data = MegaBytes::new(3.5);
//! let dt = Seconds::new(0.016);
//! assert!(clock.as_f64() > 0.0 && data.as_f64() > 0.0 && dt.as_f64() > 0.0);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod frame;
pub mod ids;
pub mod lanes;
pub mod seed;
pub mod segment;
pub mod topology;
pub mod units;

pub use error::{Error, Result};
pub use frame::{Frame, FrameStream};
pub use ids::{DeviceId, EdgeServerId, FrameId, SensorId};
pub use segment::{ExecutionTarget, Segment, SegmentSet};
pub use topology::{MigrationPolicy, TopologyLayout};
pub use units::{
    Bytes, Celsius, GigaBytesPerSecond, GigaHertz, Hertz, Joules, MegaBitsPerSecond, MegaBytes,
    Meters, MetersPerSecond, MilliJoules, MilliSeconds, MilliWatts, PixelsSquared, Ratio, Seconds,
    Watts, SPEED_OF_LIGHT,
};
