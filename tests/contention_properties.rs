//! Property harness pinning the multi-tenant contention pipeline against
//! M/M/1 closed form.
//!
//! The contended edge stage deliberately draws its sojourn **without** a
//! measurement-noise factor, so the simulated remote-inference segment of a
//! noiseless testbed is a raw sample of the shared queue's sojourn
//! distribution — its empirical mean must converge to
//! `MM1Queue::mean_time_in_system` at the Monte-Carlo rate, with the
//! tolerance scaled like a confidence interval (`k·σ/√n`, and an
//! exponential's σ equals its mean). A lone tenant at negligible load must
//! reproduce the uncontended pipeline: the queue term collapses to the
//! deterministic service time, and every other segment is bit-identical
//! because each pipeline stage owns a private RNG stream.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Exp};
use xr_core::Scenario;
use xr_queueing::MM1Queue;
use xr_testbed::TestbedSimulator;
use xr_types::{ExecutionTarget, Hertz, Segment};

fn contended_scenario(users: u32, rate_hz: f64) -> Scenario {
    Scenario::builder()
        .execution(ExecutionTarget::Remote)
        .frame_side(300.0)
        .frame_rate(Hertz::new(rate_hz))
        .contention(users)
        .build()
        .expect("contended scenario is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // For random `(λ, µ)` with `ρ < 0.9`, the empirical mean of sojourn
    // draws converges to the closed-form `1/(µ − λ)`.
    #[test]
    fn empirical_sojourn_converges_to_the_closed_form(
        mu in 0.5..500.0_f64,
        rho in 0.05..0.9_f64,
        seed in 0u64..1_000_000,
    ) {
        let lambda = rho * mu;
        let queue = MM1Queue::new(lambda, mu).unwrap();
        let closed = queue.mean_time_in_system().as_f64();
        let n = 20_000usize;
        let sojourn = Exp::new(mu - lambda).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mean = (0..n).map(|_| sojourn.sample(&mut rng)).sum::<f64>() / n as f64;
        let tolerance = 5.0 * closed / (n as f64).sqrt();
        prop_assert!(
            (mean - closed).abs() < tolerance,
            "empirical {mean} vs closed form {closed} (ρ = {rho:.3}, tolerance {tolerance})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The simulated contended remote stage is itself such a sample: for
    // populations keeping `ρ < 0.9`, the session's mean remote-inference
    // latency converges to the snapshot's analytic mean contention delay.
    #[test]
    fn contended_remote_stage_converges_to_the_closed_form(
        users in 1u32..9,
        seed in 0u64..1_000_000,
    ) {
        let scenario = contended_scenario(users, 5.0);
        let testbed = TestbedSimulator::new(seed).with_noise(0.0);
        let snapshot = testbed
            .contention_snapshot(&scenario)
            .unwrap()
            .expect("contention configured");
        prop_assert!(snapshot.utilization() < 0.9, "sweep must stay stable");
        let closed = snapshot.mean_contention_delay().as_f64();
        let frames = 4_000u64;
        let session = testbed.simulate_session(&scenario, frames).unwrap();
        let mean = session
            .mean_segment_latency(Segment::RemoteInference)
            .as_f64();
        #[allow(clippy::cast_precision_loss)]
        let tolerance = 5.0 * closed / (frames as f64).sqrt();
        prop_assert!(
            (mean - closed).abs() < tolerance,
            "simulated {mean} vs closed form {closed} ({users} users, tolerance {tolerance})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // A single tenant at negligible load reproduces the uncontended
    // pipeline: the remote stage collapses to the deterministic service
    // time (within the CI-scaled Monte-Carlo tolerance plus the `ρ/(1−ρ)`
    // queueing excess) and every other segment matches bit for bit.
    #[test]
    fn a_lone_light_tenant_reproduces_the_uncontended_latencies(
        seed in 0u64..1_000_000,
    ) {
        let contended = contended_scenario(1, 0.5);
        let mut uncontended = contended.clone();
        uncontended.contention = None;
        let testbed = TestbedSimulator::new(seed).with_noise(0.0);
        let snapshot = testbed
            .contention_snapshot(&contended)
            .unwrap()
            .expect("contention configured");
        let rho = snapshot.utilization();
        prop_assert!(rho < 0.02, "0.5 fps must be negligible load, got ρ = {rho}");

        let frames = 4_000u64;
        let with_queue = testbed.simulate_session(&contended, frames).unwrap();
        let without = testbed.simulate_session(&uncontended, frames).unwrap();

        // The noiseless uncontended remote stage is the deterministic
        // service time the queue was built on.
        let service = without
            .mean_segment_latency(Segment::RemoteInference)
            .as_f64();
        let bottleneck = snapshot.bottleneck();
        prop_assert!((service - bottleneck.service_time().as_f64()).abs() < 1e-15);

        let queued = with_queue
            .mean_segment_latency(Segment::RemoteInference)
            .as_f64();
        #[allow(clippy::cast_precision_loss)]
        let tolerance = service * (5.0 / (frames as f64).sqrt() + rho / (1.0 - rho));
        prop_assert!(
            (queued - service).abs() < tolerance,
            "light-load queue {queued} vs service time {service} (tolerance {tolerance})"
        );

        // Stream isolation: contention only touches the remote term. Every
        // other segment — including transmission, whose jitter shares the
        // UPLINK_EDGE stream — is bit-identical between the two sessions.
        for segment in Segment::ALL {
            if segment == Segment::RemoteInference {
                continue;
            }
            prop_assert!(
                with_queue.mean_segment_latency(segment) == without.mean_segment_latency(segment),
                "segment {segment:?} diverged under a light lone tenant"
            );
        }
        // Consequently the end-to-end gap is exactly the remote gap.
        let total_gap =
            with_queue.mean_latency().as_f64() - without.mean_latency().as_f64();
        prop_assert!((total_gap - (queued - service)).abs() < 1e-12);
    }
}
