//! The Age-of-Information (AoI) and Relevance-of-Information (RoI) analysis
//! model of Section VI (Eqs. 22–26).
//!
//! External sensors generate information at their own frequencies `f_t^m`;
//! packets traverse the wireless medium (propagation delay `d_m/c`) and wait
//! in the XR input buffer (M/M/1 mean time in system `T̄ = 1/(µ − λ)`,
//! Eq. 22). The XR application requests one update every `T_Req` seconds. The
//! AoI of sensor `m` at the `n`-th update of frame `q` is (Eq. 23)
//!
//! ```text
//! t_mnq = T_mn + (d_m/c + T̄) − T_Req^n
//! ```
//!
//! where `T_mn` is the time at which the sensor finished generating the
//! `n`-th piece of information. Averaging over the `N` updates of a frame
//! gives `A_mq` (Eq. 24); the *processed* information frequency is
//! `f̄ = 1/A_mq` (Eq. 25) and the RoI is the ratio of that frequency to the
//! frequency the application requires, `f_req = N / L_tot` (Eq. 26).
//! Information with `RoI ≥ 1` is fresh.

use crate::scenario::{Scenario, SensorConfig};
use serde::{Deserialize, Serialize};
use xr_queueing::MM1Queue;
use xr_types::{Hertz, Result, Seconds, SPEED_OF_LIGHT};

/// AoI/RoI analysis results for one sensor over one frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorAoi {
    /// Sensor label.
    pub name: String,
    /// Information-generation frequency `f_t^m`.
    pub generation_frequency: Hertz,
    /// AoI at each of the `N` update cycles (Eq. 23).
    pub per_update: Vec<Seconds>,
    /// Average AoI over the frame `A_mq` (Eq. 24).
    pub average: Seconds,
    /// Processed information frequency `f̄ = 1/A_mq` (Eq. 25).
    pub processed_frequency: Hertz,
    /// Relevance of Information (Eq. 26).
    pub roi: f64,
}

impl SensorAoi {
    /// Returns `true` when the sensor keeps up with the application's
    /// requirement (`RoI ≥ 1`).
    #[must_use]
    pub fn is_fresh(&self) -> bool {
        self.roi >= 1.0
    }
}

/// AoI/RoI analysis results for all sensors of a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AoiReport {
    /// Per-sensor results, in scenario order.
    pub sensors: Vec<SensorAoi>,
    /// The update period requested by the application (`L_tot / N`).
    pub request_period: Seconds,
    /// The required information frequency `f_req = N / L_tot`.
    pub required_frequency: Hertz,
}

impl AoiReport {
    /// The worst (largest) average AoI across sensors, or zero when there are
    /// no sensors.
    #[must_use]
    pub fn worst_average(&self) -> Seconds {
        self.sensors
            .iter()
            .map(|s| s.average)
            .fold(Seconds::ZERO, Seconds::max)
    }

    /// Returns the sensors whose information is stale (`RoI < 1`).
    #[must_use]
    pub fn stale_sensors(&self) -> Vec<&SensorAoi> {
        self.sensors.iter().filter(|s| !s.is_fresh()).collect()
    }
}

/// The proposed AoI/RoI analysis model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AoiModel {
    /// Whether the queueing term `T̄` uses the paper's mean-time-in-system
    /// approximation (`true`, Eq. 22) or the exact M/M/1 mean-AoI expression
    /// (`false`) — the latter powers the ablation bench.
    use_sojourn_approximation: bool,
}

impl AoiModel {
    /// The paper's model: queueing contribution approximated by
    /// `T̄ = 1/(µ − λ)`.
    #[must_use]
    pub fn published() -> Self {
        Self {
            use_sojourn_approximation: true,
        }
    }

    /// Variant using the exact M/M/1 mean-AoI expression instead of `T̄`.
    #[must_use]
    pub fn with_exact_queueing() -> Self {
        Self {
            use_sojourn_approximation: false,
        }
    }

    fn queueing_delay(&self, sensor: &SensorConfig, service_rate: f64) -> Result<Seconds> {
        let queue = MM1Queue::new(sensor.arrival_rate, service_rate)?;
        Ok(if self.use_sojourn_approximation {
            queue.mean_time_in_system()
        } else {
            queue.mean_aoi_exact()
        })
    }

    /// The AoI of one sensor at update `n` (1-based), for a given request
    /// period (Eq. 23). The generation time of the `n`-th information is
    /// `n/f_t`; when the sensor is faster than the request cadence the
    /// freshest-possible age — propagation plus buffering — applies instead
    /// of a negative age.
    #[must_use]
    pub fn update_aoi(
        sensor: &SensorConfig,
        queueing_delay: Seconds,
        request_period: Seconds,
        update_index: u32,
    ) -> Seconds {
        let n = f64::from(update_index.max(1));
        let generation_time = sensor.generation_frequency.period() * n;
        let request_time = request_period * n;
        let lag = (generation_time - request_time).max(Seconds::ZERO);
        let floor = sensor.distance / SPEED_OF_LIGHT + queueing_delay;
        lag + floor
    }

    /// Generates the per-update AoI series of one sensor over `updates`
    /// cycles with an explicit request period — the raw series plotted in
    /// Figs. 4(e)/(f).
    ///
    /// # Errors
    ///
    /// Returns queueing errors when the sensor saturates the buffer.
    pub fn sensor_series(
        &self,
        sensor: &SensorConfig,
        service_rate: f64,
        request_period: Seconds,
        updates: u32,
    ) -> Result<Vec<Seconds>> {
        let queueing = self.queueing_delay(sensor, service_rate)?;
        Ok((1..=updates.max(1))
            .map(|n| Self::update_aoi(sensor, queueing, request_period, n))
            .collect())
    }

    /// Analyses one sensor over one frame: per-update AoI, average AoI
    /// (Eq. 24), processed frequency (Eq. 25) and RoI (Eq. 26).
    ///
    /// # Errors
    ///
    /// Returns queueing errors when the sensor saturates the buffer.
    pub fn analyze_sensor(
        &self,
        sensor: &SensorConfig,
        service_rate: f64,
        total_latency: Seconds,
        updates_per_frame: u32,
    ) -> Result<SensorAoi> {
        let n = updates_per_frame.max(1);
        let request_period = total_latency / f64::from(n);
        let per_update = self.sensor_series(sensor, service_rate, request_period, n)?;
        let average = per_update.iter().copied().sum::<Seconds>() / f64::from(n);
        let processed_frequency = if average.is_positive() {
            Hertz::new(1.0 / average.as_f64())
        } else {
            Hertz::new(f64::INFINITY)
        };
        let required_frequency = f64::from(n) / total_latency.as_f64().max(f64::MIN_POSITIVE);
        let roi = processed_frequency.as_f64() / required_frequency;
        Ok(SensorAoi {
            name: sensor.name.clone(),
            generation_frequency: sensor.generation_frequency,
            per_update,
            average,
            processed_frequency,
            roi,
        })
    }

    /// Analyses every sensor of a scenario, given the end-to-end latency
    /// `L_tot` produced by the latency model (the RoI definition needs it).
    ///
    /// # Errors
    ///
    /// Returns queueing errors when any sensor saturates the buffer.
    pub fn analyze(&self, scenario: &Scenario, total_latency: Seconds) -> Result<AoiReport> {
        let n = scenario.updates_per_frame.max(1);
        let request_period = total_latency / f64::from(n);
        let sensors = scenario
            .sensors
            .iter()
            .map(|s| {
                self.analyze_sensor(
                    s,
                    scenario.buffer.service_rate,
                    total_latency,
                    scenario.updates_per_frame,
                )
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(AoiReport {
            sensors,
            request_period,
            required_frequency: Hertz::new(
                f64::from(n) / total_latency.as_f64().max(f64::MIN_POSITIVE),
            ),
        })
    }
}

impl Default for AoiModel {
    fn default() -> Self {
        Self::published()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr_types::Meters;

    fn sensor(freq: f64) -> SensorConfig {
        SensorConfig::new(format!("{freq}hz"), Hertz::new(freq), Meters::new(30.0))
    }

    #[test]
    fn fast_sensor_has_flat_aoi() {
        let model = AoiModel::published();
        // 200 Hz sensor, 5 ms request period: generation never lags.
        let series = model
            .sensor_series(&sensor(200.0), 2_000.0, Seconds::from_millis(5.0), 6)
            .unwrap();
        let first = series[0];
        for aoi in &series {
            assert!((aoi.as_f64() - first.as_f64()).abs() < 1e-12);
        }
        // Floor = propagation + queueing, both sub-millisecond here.
        assert!(first.as_f64() < 0.002);
    }

    #[test]
    fn slow_sensor_aoi_grows_linearly() {
        let model = AoiModel::published();
        // 100 Hz sensor (10 ms period) against a 5 ms request period: the lag
        // grows by 5 ms per update, matching the staircase of Fig. 4(f).
        let series = model
            .sensor_series(&sensor(100.0), 2_000.0, Seconds::from_millis(5.0), 5)
            .unwrap();
        for window in series.windows(2) {
            let step = (window[1] - window[0]).as_f64();
            assert!((step - 0.005).abs() < 1e-9, "step {step}");
        }
        // 66.67 Hz grows faster (10 ms per update).
        let slower = model
            .sensor_series(&sensor(66.67), 2_000.0, Seconds::from_millis(5.0), 5)
            .unwrap();
        assert!(slower[4] > series[4]);
    }

    #[test]
    fn average_aoi_and_roi_follow_eqs_24_to_26() {
        let model = AoiModel::published();
        let s = sensor(100.0);
        let total_latency = Seconds::from_millis(30.0);
        let report = model.analyze_sensor(&s, 2_000.0, total_latency, 6).unwrap();
        assert_eq!(report.per_update.len(), 6);
        let manual_avg: f64 = report.per_update.iter().map(|s| s.as_f64()).sum::<f64>() / 6.0;
        assert!((report.average.as_f64() - manual_avg).abs() < 1e-12);
        assert!((report.processed_frequency.as_f64() - 1.0 / manual_avg).abs() < 1e-6);
        let f_req = 6.0 / 0.030;
        assert!((report.roi - report.processed_frequency.as_f64() / f_req).abs() < 1e-9);
    }

    #[test]
    fn roi_flags_stale_sensors() {
        let model = AoiModel::published();
        let scenario = Scenario::builder()
            .sensors(vec![sensor(500.0), sensor(20.0)])
            .updates_per_frame(6)
            .build()
            .unwrap();
        let report = model
            .analyze(&scenario, Seconds::from_millis(100.0))
            .unwrap();
        assert_eq!(report.sensors.len(), 2);
        let fast = &report.sensors[0];
        let slow = &report.sensors[1];
        assert!(fast.roi > slow.roi);
        assert!(slow.roi < 1.0);
        assert!(!slow.is_fresh());
        assert!(report.stale_sensors().iter().any(|s| s.name == slow.name));
        assert!(report.worst_average() >= slow.average);
        assert!((report.request_period.as_f64() - 0.1 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn exact_queueing_variant_is_more_pessimistic() {
        let s = sensor(100.0);
        let approx = AoiModel::published()
            .analyze_sensor(&s, 500.0, Seconds::from_millis(30.0), 6)
            .unwrap();
        let exact = AoiModel::with_exact_queueing()
            .analyze_sensor(&s, 500.0, Seconds::from_millis(30.0), 6)
            .unwrap();
        assert!(exact.average > approx.average);
        assert!(exact.roi < approx.roi);
    }

    #[test]
    fn saturated_sensor_is_an_error() {
        let model = AoiModel::published();
        let s = sensor(100.0);
        assert!(model
            .analyze_sensor(&s, 50.0, Seconds::from_millis(30.0), 6)
            .is_err());
    }

    #[test]
    fn update_aoi_never_negative() {
        let s = sensor(1_000.0);
        for n in 1..=20 {
            let aoi =
                AoiModel::update_aoi(&s, Seconds::from_millis(0.5), Seconds::from_millis(5.0), n);
            assert!(aoi.as_f64() >= 0.0);
        }
    }

    #[test]
    fn scenario_analysis_matches_per_sensor_analysis() {
        let model = AoiModel::published();
        let scenario = Scenario::builder().build().unwrap();
        let total = Seconds::from_millis(200.0);
        let report = model.analyze(&scenario, total).unwrap();
        for (cfg, result) in scenario.sensors.iter().zip(&report.sensors) {
            let standalone = model
                .analyze_sensor(
                    cfg,
                    scenario.buffer.service_rate,
                    total,
                    scenario.updates_per_frame,
                )
                .unwrap();
            assert_eq!(&standalone, result);
        }
    }
}
