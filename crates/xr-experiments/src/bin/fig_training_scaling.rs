//! Training-scaling figure: confidence-interval width of the ground-truth
//! session means versus measurement-campaign size (frames per session),
//! replicated through the shared campaign engine.

use xr_experiments::scaling_experiments::{training_scaling_sweep, FIG_TRAINING_SCALING_HEADER};
use xr_experiments::{output, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::from_args();
    let points = training_scaling_sweep(&ctx).expect("training-scaling sweep failed");
    let cells: Vec<Vec<String>> = points.iter().map(|p| p.cells()).collect();
    output::print_experiment(
        "Training scaling — CI width vs measurement-campaign size",
        &FIG_TRAINING_SCALING_HEADER,
        &cells,
        "fig_training_scaling.csv",
    );
    let first = points.first().expect("at least one campaign size");
    let last = points.last().expect("at least one campaign size");
    println!(
        "{} campaign sizes evaluated with {} worker(s); latency CI width {:.4} ms at {} frames -> {:.4} ms at {} frames",
        points.len(),
        ctx.runner().workers(),
        first.latency_ci_width_ms(),
        first.frames_per_session,
        last.latency_ci_width_ms(),
        last.frames_per_session,
    );
}
