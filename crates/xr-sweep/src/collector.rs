//! In-order streaming collection of out-of-order campaign results.

use std::collections::BTreeMap;

/// Reorders results that complete out of order back into point order,
/// emitting each contiguous prefix to a sink the moment it is complete.
///
/// This is the streaming bridge between a parallel campaign and an
/// append-only artifact such as a CSV file: workers push `(index, row)` pairs
/// as they finish, the collector holds back anything ahead of a gap, and the
/// sink only ever observes rows in index order — so the written artifact is
/// byte-identical to a sequential run.
#[derive(Debug)]
pub struct InOrderCollector<R, F: FnMut(usize, R)> {
    next: usize,
    pending: BTreeMap<usize, R>,
    sink: F,
}

impl<R, F: FnMut(usize, R)> InOrderCollector<R, F> {
    /// A collector forwarding in-order results to `sink`.
    pub fn new(sink: F) -> Self {
        Self {
            next: 0,
            pending: BTreeMap::new(),
            sink,
        }
    }

    /// Accepts the result for `index`, emitting it (and any directly
    /// following held-back results) if it extends the contiguous prefix.
    ///
    /// # Panics
    ///
    /// Panics if `index` was already emitted or is already pending — a
    /// duplicate index means the campaign evaluated a point twice.
    pub fn push(&mut self, index: usize, value: R) {
        assert!(
            index >= self.next,
            "duplicate result for already-emitted point {index}"
        );
        let duplicate = self.pending.insert(index, value);
        assert!(duplicate.is_none(), "duplicate result for point {index}");
        while let Some(value) = self.pending.remove(&self.next) {
            (self.sink)(self.next, value);
            self.next += 1;
        }
    }

    /// Index of the next result the sink is waiting for.
    #[must_use]
    pub fn emitted(&self) -> usize {
        self.next
    }

    /// `true` when nothing is held back waiting for a gap to fill.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_order_pushes_emit_in_order() {
        let seen = std::cell::RefCell::new(Vec::new());
        let mut collector =
            InOrderCollector::new(|i: usize, v: &str| seen.borrow_mut().push((i, v)));
        collector.push(2, "c");
        collector.push(0, "a");
        assert_eq!(*seen.borrow(), vec![(0, "a")]);
        assert!(!collector.is_drained());
        collector.push(1, "b");
        assert_eq!(*seen.borrow(), vec![(0, "a"), (1, "b"), (2, "c")]);
        assert!(collector.is_drained());
        assert_eq!(collector.emitted(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate result")]
    fn duplicate_indices_panic() {
        let mut collector = InOrderCollector::new(|_, _: u8| {});
        collector.push(0, 1);
        collector.push(0, 2);
    }
}
