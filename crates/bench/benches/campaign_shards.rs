//! Shard scale-out of the campaign engine. The partition is round-robin by
//! original point index and every replication seed derives from that
//! original index, so the merged artifact is byte-identical to the
//! unsharded CSV — asserted before any timing. The timed quantity is **one
//! shard of N** on a single-worker runner: exactly the work one process of
//! an N-host fleet performs, so its wall-clock falling near-linearly in N
//! (constant per-shard rows/s) *is* the scale-out curve, measurable even on
//! a single-core bench host where concurrently driven shards would only
//! time-slice.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use xr_experiments::campaign::{quick_grid, run_campaign_with, CAMPAIGN_HEADER};
use xr_experiments::shard_campaign::{
    checkpoint_path, manifest_path, merge_campaign_csvs, run_campaign_shard_with, shard_csv_name,
};
use xr_experiments::ExperimentContext;
use xr_sweep::{CampaignRunner, ShardSpec};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xr-bench-shards-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

/// Runs the whole campaign as `count` concurrent shard runs into fresh
/// artifacts (stale checkpoints removed first, so every iteration evaluates
/// every point) and returns the shard CSV paths.
fn run_sharded(ctx: &ExperimentContext, count: usize) -> Vec<PathBuf> {
    let grid = quick_grid();
    let checkpoint_every = grid.len(); // keep fsync cadence out of the timing
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..=count)
            .map(|index| {
                let grid = &grid;
                scope.spawn(move || {
                    let shard = ShardSpec::new(index, count).expect("spec");
                    let path = scratch(&shard_csv_name(shard));
                    for stale in [&path, &checkpoint_path(&path), &manifest_path(&path)] {
                        let _ = std::fs::remove_file(stale);
                    }
                    let runner = CampaignRunner::new(1).with_campaign_seed(ctx.seed());
                    run_campaign_shard_with(ctx, grid, &runner, shard, &path, checkpoint_every)
                        .expect("shard run");
                    path
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard"))
            .collect()
    })
}

fn campaign_shards(c: &mut Criterion) {
    let ctx = ExperimentContext::quick(2024).expect("context");
    let grid = quick_grid();

    // Byte-identity gate: the merged 3-shard artifact must equal the
    // unsharded CSV before shard throughput means anything.
    let runner = CampaignRunner::new(1).with_campaign_seed(ctx.seed());
    let rows = run_campaign_with(&ctx, &grid, &runner).expect("campaign");
    let mut reference = CAMPAIGN_HEADER.join(",");
    reference.push('\n');
    for row in &rows {
        reference.push_str(&row.cells().join(","));
        reference.push('\n');
    }
    let merged = merge_campaign_csvs(&run_sharded(&ctx, 3)).expect("merge");
    assert_eq!(
        merged, reference,
        "sharded campaign diverged from unsharded"
    );

    let mut group = c.benchmark_group("campaign_shards");
    group.sample_size(10);
    for count in [1usize, 2, 4] {
        let shard = ShardSpec::new(1, count).expect("spec");
        let path = scratch(&format!("timed-{}", shard_csv_name(shard)));
        let checkpoint_every = grid.len();
        group.bench_function(format!("one_shard_of/{count}"), |b| {
            b.iter(|| {
                for stale in [&path, &checkpoint_path(&path), &manifest_path(&path)] {
                    let _ = std::fs::remove_file(stale);
                }
                let runner = CampaignRunner::new(1).with_campaign_seed(ctx.seed());
                black_box(
                    run_campaign_shard_with(&ctx, &grid, &runner, shard, &path, checkpoint_every)
                        .expect("shard run"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, campaign_shards);
criterion_main!(benches);
